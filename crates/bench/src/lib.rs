//! Benchmark-harness library: shared orchestration for the per-figure
//! binaries.
//!
//! Every binary accepts the same flags:
//!
//! ```text
//! --instructions N   instructions per core         (default 60 000)
//! --mixes N          four-core mixes per class     (default 2 → 12 mixes)
//! --threads N        worker threads                (default: all cores)
//! --seed N           RNG seed                      (default 42)
//! --nrh a,b,c        RowHammer threshold sweep     (default 1024…20)
//! --out FILE         also write results as JSON
//! ```
//!
//! Paper scale is `--instructions 100000000 --mixes 10`.

pub mod opts;
pub mod runs;
pub mod tables;

pub use opts::HarnessOpts;
pub use runs::{mix_traces, run_mix, sweep_mixes, sweep_single_core, MixContext, SweepRow};
pub use tables::{format_table, geomean, write_json};
