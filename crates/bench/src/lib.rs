//! Benchmark-harness library: shared orchestration for the per-figure
//! binaries, built on the `chronus-grid` experiment engine.
//!
//! Every binary accepts the same flags:
//!
//! ```text
//! --instructions N   instructions per core         (default 60 000)
//! --mixes N          four-core mixes per class     (default 2 → 12 mixes)
//! --threads N        worker threads                (default: all cores)
//! --seed N           RNG seed                      (default 42)
//! --nrh a,b,c        RowHammer threshold sweep     (default 1024…20)
//! --out FILE         also write results as JSON
//! --shard i/N        own 1/N of the grid cells     (default 1/1)
//! --grid-dir DIR     result-store directory        (default: grid-cache)
//! --no-cache         bypass the result store
//! --quiet            no progress/ETA lines
//! ```
//!
//! Paper scale is `--instructions 100000000 --mixes 10`. Completed cells
//! are cached in the content-addressed result store, so re-running any
//! binary (or `all_figures`) re-simulates nothing that already finished;
//! see BENCH_README.md ("Sweeps, sharding and the result cache").

pub mod grids;
pub mod opts;
pub mod runs;
pub mod tables;

pub use opts::HarnessOpts;
pub use runs::{
    execute, exit_code, finish, mix_traces, run_mix, sweep_mixes, sweep_single_core, AppSweep,
    MixSweep, SweepRow,
};
pub use tables::{format_table, geomean, write_json};
