//! Command-line options shared by all figure binaries.

use std::path::PathBuf;

use chronus_grid::Shard;

/// Parsed harness options.
#[derive(Debug, Clone)]
pub struct HarnessOpts {
    /// Instructions per core.
    pub instructions: u64,
    /// Four-core mixes per intensity class.
    pub mixes_per_class: usize,
    /// Worker threads.
    pub threads: usize,
    /// RNG seed.
    pub seed: u64,
    /// RowHammer threshold sweep.
    pub nrh_list: Vec<u32>,
    /// Optional JSON output path.
    pub out: Option<PathBuf>,
    /// Grid shard this process owns (`--shard i/N`).
    pub shard: Shard,
    /// Result-store directory override (`--grid-dir`); default is
    /// `$CHRONUS_GRID_DIR` or `./grid-cache`.
    pub grid_dir: Option<PathBuf>,
    /// Bypass the result store entirely (`--no-cache`).
    pub no_cache: bool,
    /// Suppress per-cell progress/ETA lines (`--quiet`).
    pub quiet: bool,
    /// Attach the timing-observability probe to every simulation
    /// (`--obs`): reports gain an `ObsReport` section. Changes cell keys
    /// (obs cells cache separately) but no pre-existing report field.
    pub obs: bool,
    /// Fill cache misses through the batched lockstep engine
    /// (`--batched`): cells sharing a workload generate traces once and
    /// timing-identical variants collapse into one simulation. Store
    /// entries are byte-identical to solo runs — this flag changes only
    /// how fast misses fill.
    pub batched: bool,
    /// Retry budget override for failed cells (`--retries N`); `None`
    /// keeps the grid default.
    pub retries: Option<u32>,
    /// Hard per-cell watchdog deadline (`--cell-timeout SECS`); `None`
    /// derives one adaptively from observed cell wall-clocks.
    pub cell_timeout: Option<std::time::Duration>,
    /// Work-claim lease time-to-live override (`--lease-ttl SECS`);
    /// `None` derives one from the adaptive cell-deadline estimator.
    pub lease_ttl: Option<std::time::Duration>,
}

impl Default for HarnessOpts {
    fn default() -> Self {
        Self {
            instructions: 60_000,
            mixes_per_class: 2,
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(8),
            seed: 42,
            nrh_list: vec![1024, 512, 256, 128, 64, 32, 20],
            out: None,
            shard: Shard::full(),
            grid_dir: None,
            no_cache: false,
            quiet: false,
            obs: false,
            batched: false,
            retries: None,
            cell_timeout: None,
            lease_ttl: None,
        }
    }
}

/// Why parsing stopped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseOutcome {
    /// `--help` was requested.
    Help,
    /// A flag was malformed; the message names the flag and the offending
    /// value.
    Invalid(String),
}

/// The flags of [`HarnessOpts::parse_from`] that take no value argument.
/// Argument pre-splitters (`chronus-sweep` separates positionals from
/// flags) consult this so flag arity is defined in exactly one place.
pub const VALUELESS_FLAGS: &[&str] = &[
    "--no-cache",
    "--quiet",
    "--obs",
    "--batched",
    "--help",
    "-h",
];

impl HarnessOpts {
    /// Parses `std::env::args`, printing usage on `--help` (exit 0) and a
    /// diagnostic naming the flag and value on malformed input (exit 2).
    pub fn from_args(tool: &str) -> Self {
        match Self::parse_from(std::env::args().skip(1)) {
            Ok(o) => o,
            Err(ParseOutcome::Help) => {
                eprintln!("{}", Self::usage(tool));
                std::process::exit(0);
            }
            Err(ParseOutcome::Invalid(msg)) => {
                eprintln!("{tool}: {msg}");
                eprintln!("try --help");
                std::process::exit(2);
            }
        }
    }

    /// The `--help` text.
    pub fn usage(tool: &str) -> String {
        format!(
            "{tool}: regenerates one artefact of the Chronus paper.\n\
             flags: --instructions N --mixes N --threads N --seed N \
             --nrh a,b,c --out FILE\n\
             grid:  --shard i/N --grid-dir DIR --no-cache --quiet --obs --batched\n\
             fault: --retries N --cell-timeout SECS --lease-ttl SECS \
             (env: CHRONUS_FAULTS)"
        )
    }

    /// Pure parser over an argument iterator (testable; no process exit).
    ///
    /// # Errors
    ///
    /// [`ParseOutcome::Help`] on `--help`/`-h`; [`ParseOutcome::Invalid`]
    /// with a flag-and-value diagnostic on malformed input.
    pub fn parse_from(args: impl IntoIterator<Item = String>) -> Result<Self, ParseOutcome> {
        let mut o = Self::default();
        let mut args = args.into_iter();
        while let Some(a) = args.next() {
            let mut value = |name: &str| {
                args.next()
                    .ok_or_else(|| ParseOutcome::Invalid(format!("{name} requires a value")))
            };
            match a.as_str() {
                "--instructions" => {
                    o.instructions = parse_flag("--instructions", &value("--instructions")?)?
                }
                "--mixes" => o.mixes_per_class = parse_flag("--mixes", &value("--mixes")?)?,
                "--threads" => o.threads = parse_flag("--threads", &value("--threads")?)?,
                "--seed" => o.seed = parse_flag("--seed", &value("--seed")?)?,
                "--nrh" => {
                    let list = value("--nrh")?;
                    o.nrh_list = list
                        .split(',')
                        .map(|s| parse_flag("--nrh", s.trim()))
                        .collect::<Result<_, _>>()?;
                }
                "--out" => o.out = Some(PathBuf::from(value("--out")?)),
                "--shard" => {
                    let v = value("--shard")?;
                    o.shard = v
                        .parse()
                        .map_err(|e| ParseOutcome::Invalid(format!("--shard: {e}")))?;
                }
                "--grid-dir" => o.grid_dir = Some(PathBuf::from(value("--grid-dir")?)),
                "--retries" => o.retries = Some(parse_flag("--retries", &value("--retries")?)?),
                "--cell-timeout" => {
                    let secs: f64 = parse_flag("--cell-timeout", &value("--cell-timeout")?)?;
                    if !(secs > 0.0 && secs.is_finite()) {
                        return Err(ParseOutcome::Invalid(format!(
                            "--cell-timeout: '{secs}' is not a positive number of seconds"
                        )));
                    }
                    o.cell_timeout = Some(std::time::Duration::from_secs_f64(secs));
                }
                "--lease-ttl" => {
                    let secs: f64 = parse_flag("--lease-ttl", &value("--lease-ttl")?)?;
                    if !(secs > 0.0 && secs.is_finite()) {
                        return Err(ParseOutcome::Invalid(format!(
                            "--lease-ttl: '{secs}' is not a positive number of seconds"
                        )));
                    }
                    o.lease_ttl = Some(std::time::Duration::from_secs_f64(secs));
                }
                "--no-cache" => o.no_cache = true,
                "--quiet" => o.quiet = true,
                "--obs" => o.obs = true,
                "--batched" => o.batched = true,
                "--help" | "-h" => return Err(ParseOutcome::Help),
                other => return Err(ParseOutcome::Invalid(format!("unknown flag '{other}'"))),
            }
        }
        Ok(o)
    }

    /// A scaled-down copy for smoke tests.
    pub fn smoke() -> Self {
        Self {
            instructions: 5_000,
            mixes_per_class: 1,
            nrh_list: vec![1024, 32],
            ..Self::default()
        }
    }
}

/// Parses one flag value, reporting the flag name and offending value on
/// failure instead of panicking with a bare `expect("int")`.
fn parse_flag<T: std::str::FromStr>(flag: &str, value: &str) -> Result<T, ParseOutcome>
where
    T::Err: std::fmt::Display,
{
    value
        .parse()
        .map_err(|e| ParseOutcome::Invalid(format!("{flag}: invalid value '{value}' ({e})")))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<HarnessOpts, ParseOutcome> {
        HarnessOpts::parse_from(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults_cover_the_paper_sweep() {
        let o = HarnessOpts::default();
        assert_eq!(o.nrh_list, vec![1024, 512, 256, 128, 64, 32, 20]);
        assert!(o.threads >= 1);
        assert!(o.shard.is_full());
        assert!(!o.no_cache);
    }

    #[test]
    fn smoke_is_smaller() {
        let s = HarnessOpts::smoke();
        assert!(s.instructions < HarnessOpts::default().instructions);
    }

    #[test]
    fn parses_every_flag() {
        let o = parse(&[
            "--instructions",
            "9000",
            "--mixes",
            "3",
            "--threads",
            "2",
            "--seed",
            "7",
            "--nrh",
            "128, 64",
            "--out",
            "rows.json",
            "--shard",
            "2/4",
            "--grid-dir",
            "/tmp/store",
            "--no-cache",
            "--quiet",
            "--obs",
            "--batched",
        ])
        .unwrap();
        assert_eq!(o.instructions, 9_000);
        assert_eq!(o.mixes_per_class, 3);
        assert_eq!(o.threads, 2);
        assert_eq!(o.seed, 7);
        assert_eq!(o.nrh_list, vec![128, 64]);
        assert_eq!(o.out.as_deref(), Some(std::path::Path::new("rows.json")));
        assert_eq!(o.shard.to_string(), "2/4");
        assert_eq!(
            o.grid_dir.as_deref(),
            Some(std::path::Path::new("/tmp/store"))
        );
        assert!(o.no_cache);
        assert!(o.quiet);
        assert!(o.obs);
        assert!(o.batched);
        assert!(!HarnessOpts::default().obs, "obs is opt-in");
        assert!(!HarnessOpts::default().batched, "batched is opt-in");
    }

    #[test]
    fn bad_int_names_flag_and_value() {
        let err = parse(&["--threads", "x"]).unwrap_err();
        match err {
            ParseOutcome::Invalid(msg) => {
                assert!(msg.contains("--threads"), "flag name missing: {msg}");
                assert!(msg.contains("'x'"), "offending value missing: {msg}");
            }
            ParseOutcome::Help => panic!("expected Invalid"),
        }
    }

    #[test]
    fn bad_nrh_element_names_flag_and_value() {
        let err = parse(&["--nrh", "1024,zap,32"]).unwrap_err();
        match err {
            ParseOutcome::Invalid(msg) => {
                assert!(msg.contains("--nrh"), "{msg}");
                assert!(msg.contains("'zap'"), "{msg}");
            }
            ParseOutcome::Help => panic!("expected Invalid"),
        }
    }

    #[test]
    fn missing_value_and_unknown_flag_are_reported() {
        assert!(matches!(
            parse(&["--seed"]),
            Err(ParseOutcome::Invalid(msg)) if msg.contains("--seed")
        ));
        assert!(matches!(
            parse(&["--bogus"]),
            Err(ParseOutcome::Invalid(msg)) if msg.contains("--bogus")
        ));
        assert!(matches!(
            parse(&["--shard", "5/2"]),
            Err(ParseOutcome::Invalid(msg)) if msg.contains("5/2")
        ));
    }

    #[test]
    fn parses_fault_tolerance_flags() {
        let o = parse(&[
            "--retries",
            "0",
            "--cell-timeout",
            "2.5",
            "--lease-ttl",
            "9",
        ])
        .unwrap();
        assert_eq!(o.retries, Some(0));
        assert_eq!(
            o.cell_timeout,
            Some(std::time::Duration::from_millis(2_500))
        );
        assert_eq!(o.lease_ttl, Some(std::time::Duration::from_secs(9)));
        assert_eq!(HarnessOpts::default().retries, None);
        assert_eq!(HarnessOpts::default().cell_timeout, None);
        assert_eq!(HarnessOpts::default().lease_ttl, None);
        assert!(matches!(
            parse(&["--lease-ttl", "0"]),
            Err(ParseOutcome::Invalid(msg)) if msg.contains("--lease-ttl")
        ));
        assert!(matches!(
            parse(&["--cell-timeout", "-3"]),
            Err(ParseOutcome::Invalid(msg)) if msg.contains("--cell-timeout")
        ));
        assert!(matches!(
            parse(&["--retries", "many"]),
            Err(ParseOutcome::Invalid(msg)) if msg.contains("--retries")
        ));
    }

    #[test]
    fn help_short_circuits() {
        assert_eq!(parse(&["--help"]).unwrap_err(), ParseOutcome::Help);
        assert_eq!(parse(&["-h"]).unwrap_err(), ParseOutcome::Help);
    }
}
