//! Command-line options shared by all figure binaries.

use std::path::PathBuf;

/// Parsed harness options.
#[derive(Debug, Clone)]
pub struct HarnessOpts {
    /// Instructions per core.
    pub instructions: u64,
    /// Four-core mixes per intensity class.
    pub mixes_per_class: usize,
    /// Worker threads.
    pub threads: usize,
    /// RNG seed.
    pub seed: u64,
    /// RowHammer threshold sweep.
    pub nrh_list: Vec<u32>,
    /// Optional JSON output path.
    pub out: Option<PathBuf>,
}

impl Default for HarnessOpts {
    fn default() -> Self {
        Self {
            instructions: 60_000,
            mixes_per_class: 2,
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(8),
            seed: 42,
            nrh_list: vec![1024, 512, 256, 128, 64, 32, 20],
            out: None,
        }
    }
}

impl HarnessOpts {
    /// Parses `std::env::args`, printing usage and exiting on `--help`.
    pub fn from_args(tool: &str) -> Self {
        let mut o = Self::default();
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            let mut value = |name: &str| {
                args.next()
                    .unwrap_or_else(|| panic!("{name} requires a value"))
            };
            match a.as_str() {
                "--instructions" => o.instructions = value("--instructions").parse().expect("int"),
                "--mixes" => o.mixes_per_class = value("--mixes").parse().expect("int"),
                "--threads" => o.threads = value("--threads").parse().expect("int"),
                "--seed" => o.seed = value("--seed").parse().expect("int"),
                "--nrh" => {
                    o.nrh_list = value("--nrh")
                        .split(',')
                        .map(|s| s.trim().parse().expect("int list"))
                        .collect();
                }
                "--out" => o.out = Some(PathBuf::from(value("--out"))),
                "--help" | "-h" => {
                    eprintln!(
                        "{tool}: regenerates one artefact of the Chronus paper.\n\
                         flags: --instructions N --mixes N --threads N --seed N \
                         --nrh a,b,c --out FILE"
                    );
                    std::process::exit(0);
                }
                other => panic!("unknown flag {other}; try --help"),
            }
        }
        o
    }

    /// A scaled-down copy for smoke tests.
    pub fn smoke() -> Self {
        Self {
            instructions: 5_000,
            mixes_per_class: 1,
            nrh_list: vec![1024, 32],
            ..Self::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_cover_the_paper_sweep() {
        let o = HarnessOpts::default();
        assert_eq!(o.nrh_list, vec![1024, 512, 256, 128, 64, 32, 20]);
        assert!(o.threads >= 1);
    }

    #[test]
    fn smoke_is_smaller() {
        let s = HarnessOpts::smoke();
        assert!(s.instructions < HarnessOpts::default().instructions);
    }
}
