//! The named experiment-grid registry.
//!
//! Every simulation-driven figure and table is registered here as a
//! declarative [`GridSpec`] builder, so the `chronus-sweep` CLI can list,
//! pre-compute, shard, merge and garbage-collect the exact cells the
//! figure binaries consume. The binaries themselves call the same
//! builders, which is what makes `chronus-sweep run fig8 --shard 1/2` on
//! one machine + `--shard 2/2` on another, followed by `fig8` against the
//! merged store, equivalent to running `fig8` directly.

use chronus_core::MechanismKind;
use chronus_ctrl::AddressMapping;
use chronus_grid::{
    AppTrace, AttackSpec, BatchSpec, CellSpec, GridOutcome, GridSpec, WorkloadSpec,
};
use chronus_sim::{SimConfig, SimReport, VrdSpec};
use chronus_workloads::{all_profiles, eight_core_spec17_profiles, four_core_mixes, Mix};
use serde::Serialize;

use crate::opts::HarnessOpts;
use crate::runs::{mix_config, AppSweep, MixSweep};
use crate::tables::geomean;

/// Every registered grid, in `all_figures` order.
pub const GRID_NAMES: &[&str] = &[
    "fig4",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "fig12",
    "fig14_15",
    "table4",
    "ablation",
    "perf_attack",
    "leakage",
    "vrd-sweep",
    "smoke",
];

/// Builds the spec of a registered grid with the given options, applying
/// the same per-figure option forcing the binaries apply (e.g. Fig. 7
/// truncates long N_RH sweeps to {1024, 32}).
///
/// Returns `None` for unknown names.
pub fn build_spec(name: &str, opts: &HarnessOpts) -> Option<GridSpec> {
    let spec = match name {
        "fig4" => {
            let mechs = [
                MechanismKind::Prac4,
                MechanismKind::Prac2,
                MechanismKind::Prac1,
                MechanismKind::PracPrfm,
                MechanismKind::Prfm,
            ];
            MixSweep::build("fig4", &mechs, &opts.nrh_list, opts, &|_| {}).spec
        }
        "fig7" => {
            let nrh = fig7_nrh_list(opts);
            AppSweep::build(
                "fig7",
                &all_profiles(),
                MechanismKind::headline(),
                &nrh,
                opts,
                1,
                false,
            )
            .spec
        }
        "fig8" => {
            MixSweep::build(
                "fig8",
                MechanismKind::headline(),
                &opts.nrh_list,
                opts,
                &|_| {},
            )
            .spec
        }
        "fig9" => MixSweep::build("fig9", MechanismKind::headline(), &[32], opts, &|_| {}).spec,
        "fig10" => {
            MixSweep::build(
                "fig10",
                MechanismKind::headline(),
                &opts.nrh_list,
                opts,
                &|_| {},
            )
            .spec
        }
        "fig12" => fig12_sweep(opts).spec,
        "fig14_15" => {
            AppSweep::build(
                "fig14_15",
                &eight_core_spec17_profiles(),
                &[MechanismKind::Prac4],
                &opts.nrh_list,
                opts,
                8,
                true,
            )
            .spec
        }
        "table4" => Table4Grid::build(opts).spec,
        "ablation" => AblationGrid::build(opts).spec,
        "perf_attack" => PerfAttackGrid::build(opts).spec,
        "leakage" => LeakageGrid::build(opts).spec,
        "vrd-sweep" => VrdSweepGrid::build(opts).spec,
        "smoke" => smoke_grid(),
        _ => return None,
    };
    Some(spec)
}

/// Fig. 7 forces long sweeps down to its two published points.
pub fn fig7_nrh_list(opts: &HarnessOpts) -> Vec<u32> {
    if opts.nrh_list.len() > 2 {
        vec![1024, 32]
    } else {
        opts.nrh_list.clone()
    }
}

/// perf_attack forces long sweeps down to its two published points.
pub fn perf_attack_nrh_list(opts: &HarnessOpts) -> Vec<u32> {
    if opts.nrh_list.len() > 2 {
        vec![128, 20]
    } else {
        opts.nrh_list.clone()
    }
}

/// The Fig. 12 sweep: Chronus vs ABACuS with everything (alone runs,
/// baseline and sweep cells) under the ABACuS address mapping.
pub fn fig12_sweep(opts: &HarnessOpts) -> MixSweep {
    MixSweep::build(
        "fig12",
        &[MechanismKind::Chronus, MechanismKind::Abacus],
        &opts.nrh_list,
        opts,
        &|cfg| cfg.mapping = Some(AddressMapping::AbacusMop),
    )
}

/// The deliberately tiny two-cell grid the CI smoke job runs twice to
/// prove the second pass is 100% cache hits.
pub fn smoke_grid() -> GridSpec {
    let mut spec = GridSpec::new("smoke");
    for (slot, app) in ["511.povray", "429.mcf"].iter().enumerate() {
        let mut cfg = SimConfig::single_core();
        cfg.instructions_per_core = 3_000;
        cfg.mechanism = MechanismKind::Chronus;
        cfg.nrh = 64;
        cfg.max_mem_cycles = 1 << 22;
        let workload = WorkloadSpec::Apps {
            apps: vec![AppTrace::new(*app, slot as u64, 42)],
            trace_instructions: 3_600,
        };
        spec.push(CellSpec::new(format!("smoke:{app}"), workload, cfg));
    }
    spec
}

/// One Table 4 output row.
#[derive(Debug, Clone, Serialize)]
pub struct Table4Row {
    /// RowHammer threshold.
    pub nrh: u32,
    /// Performance overhead with the pre-erratum (buggy) PRAC timings.
    pub four_core_overhead_old: f64,
    /// Performance overhead with the fixed timings.
    pub four_core_overhead_new: f64,
    /// Energy overhead with the pre-erratum timings.
    pub energy_overhead_old: f64,
    /// Energy overhead with the fixed timings.
    pub energy_overhead_new: f64,
}

/// Table 4 as a grid: per mix one baseline cell, and per (N_RH, mix) a
/// pre-erratum ("old") and fixed ("new") PRAC-4 cell.
pub struct Table4Grid {
    /// The declarative grid.
    pub spec: GridSpec,
    baseline: Vec<usize>,
    /// (nrh, mix, old cell, new cell).
    jobs: Vec<(u32, usize, usize, usize)>,
}

impl Table4Grid {
    /// Builds the grid.
    pub fn build(opts: &HarnessOpts) -> Self {
        let mixes = four_core_mixes(opts.mixes_per_class, opts.seed);
        let mut spec = GridSpec::new("table4");
        let workload = |mix: &Mix| crate::runs::mix_workload(&mix.apps, opts);
        let baseline = mixes
            .iter()
            .map(|mix| {
                spec.push(CellSpec::new(
                    format!("{}:baseline", mix.name),
                    workload(mix),
                    mix_config(mix.apps.len(), MechanismKind::None, 1024, opts),
                ))
            })
            .collect();
        let mut jobs = Vec::new();
        for &nrh in &opts.nrh_list {
            for (m, mix) in mixes.iter().enumerate() {
                let mut old_cfg = mix_config(mix.apps.len(), MechanismKind::Prac4, nrh, opts);
                old_cfg.timing_override = Some(chronus_dram::TimingMode::PracBuggy);
                let old = spec.push(CellSpec::new(
                    format!("{}:prac4-old@{nrh}", mix.name),
                    workload(mix),
                    old_cfg,
                ));
                let new_cfg = mix_config(mix.apps.len(), MechanismKind::Prac4, nrh, opts);
                let new = spec.push(CellSpec::new(
                    format!("{}:prac4-new@{nrh}", mix.name),
                    workload(mix),
                    new_cfg,
                ));
                jobs.push((nrh, m, old, new));
            }
        }
        Self {
            spec,
            baseline,
            jobs,
        }
    }

    /// Assembles the per-N_RH overhead rows (N_RH points taken from the
    /// grid's own jobs, in build order); points with any cell missing
    /// (partial shard) are skipped.
    pub fn rows(&self, outcome: &GridOutcome) -> Vec<Table4Row> {
        let ipc_sum = |r: &SimReport| r.ipc.iter().sum::<f64>();
        let mut nrh_list = Vec::new();
        for &(nrh, ..) in &self.jobs {
            if !nrh_list.contains(&nrh) {
                nrh_list.push(nrh);
            }
        }
        let mut rows = Vec::new();
        for nrh in nrh_list {
            let mut perf_old = Vec::new();
            let mut perf_new = Vec::new();
            let mut e_old = Vec::new();
            let mut e_new = Vec::new();
            let mut complete = true;
            for &(job_nrh, m, old_cell, new_cell) in &self.jobs {
                if job_nrh != nrh {
                    continue;
                }
                let (Some(old), Some(new), Some(base)) = (
                    outcome.reports[old_cell].as_ref(),
                    outcome.reports[new_cell].as_ref(),
                    outcome.reports[self.baseline[m]].as_ref(),
                ) else {
                    complete = false;
                    break;
                };
                perf_old.push(ipc_sum(old) / ipc_sum(base));
                perf_new.push(ipc_sum(new) / ipc_sum(base));
                e_old.push(old.energy_normalized_to(base));
                e_new.push(new.energy_normalized_to(base));
            }
            if !complete || perf_old.is_empty() {
                continue;
            }
            rows.push(Table4Row {
                nrh,
                four_core_overhead_old: 1.0 - geomean(&perf_old),
                four_core_overhead_new: 1.0 - geomean(&perf_new),
                energy_overhead_old: geomean(&e_old) - 1.0,
                energy_overhead_new: geomean(&e_new) - 1.0,
            });
        }
        rows
    }
}

/// One ablation output row.
#[derive(Debug, Clone, Serialize)]
pub struct AblationRow {
    /// Mechanism label.
    pub mechanism: String,
    /// Forced back-off threshold.
    pub nbo: u32,
    /// Whether the attacked run stayed wave-secure.
    pub secure: bool,
    /// Benign weighted-speedup loss under attack.
    pub benign_ws_loss: f64,
    /// Back-offs honoured in the attacked run.
    pub back_offs: u64,
    /// RFMs issued in the attacked run.
    pub rfms: u64,
}

/// The N_BO ablation as a grid: per (mechanism, N_BO), a calm cell (four
/// benign apps) and an attacked cell (three benign + attacker).
pub struct AblationGrid {
    /// The declarative grid.
    pub spec: GridSpec,
    /// (mechanism, nbo, calm cell, attacked cell).
    jobs: Vec<(MechanismKind, u32, usize, usize)>,
}

/// The ablation's fixed RowHammer threshold (the paper's N_RH = 20 point).
pub const ABLATION_NRH: u32 = 20;

/// The ablation's N_BO sweep.
pub const ABLATION_NBOS: [u32; 5] = [1, 2, 4, 8, 16];

impl AblationGrid {
    /// Builds the grid.
    pub fn build(opts: &HarnessOpts) -> Self {
        let benign = ["470.lbm", "tpch2", "473.astar"];
        let trace_instructions = opts.instructions + 5_000;
        let benign_specs: Vec<AppTrace> = benign
            .iter()
            .enumerate()
            .map(|(i, n)| AppTrace::new(*n, i as u64, opts.seed))
            .collect();
        let calm_workload = WorkloadSpec::Apps {
            apps: benign_specs
                .iter()
                .cloned()
                .chain(std::iter::once(AppTrace::new(
                    "548.exchange2",
                    3,
                    opts.seed,
                )))
                .collect(),
            trace_instructions,
        };
        let attacked_workload = WorkloadSpec::AppsWithAttacker {
            apps: benign_specs,
            trace_instructions,
            attack: AttackSpec {
                mapping: AddressMapping::Mop,
                banks: 4,
                rows: 8,
            },
        };
        let mut spec = GridSpec::new("ablation");
        let mut jobs = Vec::new();
        for &mech in &[MechanismKind::Prac4, MechanismKind::Chronus] {
            for &nbo in &ABLATION_NBOS {
                // The seed is intentionally left at the config default to
                // match the original harness exactly.
                let mut cfg = SimConfig::four_core();
                cfg.instructions_per_core = opts.instructions;
                cfg.mechanism = mech;
                cfg.nrh = ABLATION_NRH;
                cfg.threshold_override = Some(nbo);
                cfg.max_mem_cycles = opts.instructions.saturating_mul(8000).max(1 << 22);
                let calm = spec.push(CellSpec::new(
                    format!("{}:nbo{nbo}:calm", mech.label()),
                    calm_workload.clone(),
                    cfg.clone(),
                ));
                let attacked = spec.push(CellSpec::new(
                    format!("{}:nbo{nbo}:attacked", mech.label()),
                    attacked_workload.clone(),
                    cfg,
                ));
                jobs.push((mech, nbo, calm, attacked));
            }
        }
        Self { spec, jobs }
    }

    /// Assembles rows; pairs with a missing cell are skipped.
    pub fn rows(&self, outcome: &GridOutcome) -> Vec<AblationRow> {
        let ws = |r: &SimReport| r.ipc[..3].iter().sum::<f64>();
        let mut rows = Vec::new();
        for &(mech, nbo, calm_cell, attacked_cell) in &self.jobs {
            let (Some(calm), Some(attacked)) = (
                outcome.reports[calm_cell].as_ref(),
                outcome.reports[attacked_cell].as_ref(),
            ) else {
                continue;
            };
            rows.push(AblationRow {
                mechanism: mech.label().to_string(),
                nbo,
                secure: attacked.secure,
                benign_ws_loss: (1.0 - ws(attacked) / ws(calm)).max(0.0),
                back_offs: attacked.ctrl.back_offs,
                rfms: attacked.dram.rfms,
            });
        }
        rows
    }
}

/// One §11 attack output row.
#[derive(Debug, Clone, Serialize)]
pub struct AttackRow {
    /// Mechanism label.
    pub mechanism: String,
    /// RowHammer threshold.
    pub nrh: u32,
    /// Geomean benign weighted-speedup loss across mixes.
    pub ws_loss_avg: f64,
    /// Worst benign weighted-speedup loss.
    pub ws_loss_max: f64,
    /// Worst single-application slowdown.
    pub max_slowdown: f64,
}

/// Per-mix (attacked cell, reference cell) indices of one
/// (mechanism, N_RH) attack point.
type AttackCells = Vec<(usize, usize)>;

/// The §11 performance-attack study as a grid: per (mechanism, N_RH, mix),
/// an attacked cell (three benign + attacker) and a reference cell (the
/// attacker replaced by the lightest app).
pub struct PerfAttackGrid {
    /// The declarative grid.
    pub spec: GridSpec,
    /// (mechanism, nrh, per-mix cells).
    jobs: Vec<(MechanismKind, u32, AttackCells)>,
}

impl PerfAttackGrid {
    /// Builds the grid.
    pub fn build(opts: &HarnessOpts) -> Self {
        let nrh_list = perf_attack_nrh_list(opts);
        let mixes = four_core_mixes(opts.mixes_per_class, opts.seed);
        let mechs = [
            (MechanismKind::Prac4, Some(1u32)),
            (MechanismKind::Chronus, None),
        ];
        let trace_instructions = opts.instructions + opts.instructions / 10;
        let mut spec = GridSpec::new("perf_attack");
        let mut jobs = Vec::new();
        for &(mech, nbo_override) in &mechs {
            for &nrh in &nrh_list {
                let mut cells = Vec::new();
                for mix in &mixes {
                    let benign: Vec<AppTrace> = mix.apps[..3]
                        .iter()
                        .enumerate()
                        .map(|(i, p)| AppTrace::new(p.name, i as u64, opts.seed))
                        .collect();
                    let mut cfg = SimConfig::four_core();
                    cfg.instructions_per_core = opts.instructions;
                    cfg.mechanism = mech;
                    cfg.nrh = nrh;
                    cfg.threshold_override = nbo_override;
                    cfg.seed = opts.seed;
                    cfg.max_mem_cycles = opts.instructions.saturating_mul(6000).max(1 << 22);
                    let attacked = spec.push(CellSpec::new(
                        format!("{}:{}@{nrh}:attacked", mix.name, mech.label()),
                        WorkloadSpec::AppsWithAttacker {
                            apps: benign.clone(),
                            trace_instructions,
                            attack: AttackSpec {
                                mapping: AddressMapping::Mop,
                                banks: 4,
                                rows: 8,
                            },
                        },
                        cfg.clone(),
                    ));
                    let reference = spec.push(CellSpec::new(
                        format!("{}:{}@{nrh}:reference", mix.name, mech.label()),
                        WorkloadSpec::Apps {
                            apps: benign
                                .into_iter()
                                .chain(std::iter::once(AppTrace::new(
                                    "548.exchange2",
                                    3,
                                    opts.seed,
                                )))
                                .collect(),
                            trace_instructions,
                        },
                        cfg,
                    ));
                    cells.push((attacked, reference));
                }
                jobs.push((mech, nrh, cells));
            }
        }
        Self { spec, jobs }
    }

    /// Assembles rows; (mechanism, N_RH) points with any missing mix are
    /// skipped.
    pub fn rows(&self, outcome: &GridOutcome) -> Vec<AttackRow> {
        let benign_ws = |r: &SimReport| r.ipc[..3].iter().sum::<f64>();
        let mut rows = Vec::new();
        for (mech, nrh, cells) in &self.jobs {
            let mut losses = Vec::new();
            let mut slowdowns = Vec::new();
            let mut complete = true;
            for &(attacked_cell, reference_cell) in cells {
                let (Some(attacked), Some(reference)) = (
                    outcome.reports[attacked_cell].as_ref(),
                    outcome.reports[reference_cell].as_ref(),
                ) else {
                    complete = false;
                    break;
                };
                let loss = 1.0 - benign_ws(attacked) / benign_ws(reference);
                losses.push(loss.max(0.0).max(1e-9));
                let slow = attacked.ipc[..3]
                    .iter()
                    .zip(&reference.ipc[..3])
                    .map(|(a, b)| 1.0 - a / b)
                    .fold(f64::MIN, f64::max);
                slowdowns.push(slow.max(0.0));
            }
            if !complete || losses.is_empty() {
                continue;
            }
            rows.push(AttackRow {
                mechanism: mech.label().to_string(),
                nrh: *nrh,
                ws_loss_avg: geomean(&losses),
                ws_loss_max: losses.iter().copied().fold(f64::MIN, f64::max),
                max_slowdown: slowdowns.iter().copied().fold(f64::MIN, f64::max),
            });
        }
        rows
    }
}

/// One timing-leakage output row.
#[derive(Debug, Clone, Serialize)]
pub struct LeakageRow {
    /// Mechanism label.
    pub mechanism: String,
    /// RowHammer threshold.
    pub nrh: u32,
    /// Shannon entropy of the attacker core's read-latency distribution.
    pub attacker_latency_entropy_bits: f64,
    /// Shannon entropy of the aggregate read-latency distribution.
    pub latency_entropy_bits: f64,
    /// Shannon entropy of the merged inter-CAS gap distribution.
    pub gap_entropy_bits: f64,
    /// Shannon entropy of the hit/miss/conflict outcome mix.
    pub outcome_entropy_bits: f64,
    /// Shannon entropy of the mitigation-pause duration distribution.
    pub pause_entropy_bits: f64,
    /// Memory cycles demand issue was blocked by mitigation work.
    pub pause_cycles: u64,
    /// `pause_cycles` as a fraction of simulated memory cycles.
    pub pause_fraction: f64,
    /// Composite score the figure ranks by: attacker latency entropy +
    /// gap entropy + pause entropy. Higher = more timing signal exposed.
    pub leakage_score: f64,
}

/// The fixed RowHammer threshold of the leakage study: low enough that
/// every mechanism actually fires its mitigations under the probe attack.
pub const LEAKAGE_NRH: u32 = 64;

/// The timing-leakage study as a grid: one obs-enabled cell per mechanism
/// (the unprotected baseline plus all eleven mitigations) under a fixed
/// probe workload of one benign app and the §11 attacker.
pub struct LeakageGrid {
    /// The declarative grid.
    pub spec: GridSpec,
    /// (mechanism, cell).
    jobs: Vec<(MechanismKind, usize)>,
}

impl LeakageGrid {
    /// Builds the grid.
    pub fn build(opts: &HarnessOpts) -> Self {
        let trace_instructions = opts.instructions + opts.instructions / 10;
        let workload = WorkloadSpec::AppsWithAttacker {
            apps: vec![AppTrace::new("429.mcf", 0, opts.seed)],
            trace_instructions,
            attack: AttackSpec {
                mapping: AddressMapping::Mop,
                banks: 4,
                rows: 8,
            },
        };
        let mut spec = GridSpec::new("leakage");
        let mut jobs = Vec::new();
        for &mech in std::iter::once(&MechanismKind::None).chain(MechanismKind::all()) {
            let mut cfg = SimConfig::four_core();
            cfg.instructions_per_core = opts.instructions;
            cfg.mechanism = mech;
            cfg.nrh = LEAKAGE_NRH;
            cfg.seed = opts.seed;
            cfg.mapping = Some(AddressMapping::Mop);
            cfg.obs = true;
            cfg.max_mem_cycles = opts.instructions.saturating_mul(6000).max(1 << 22);
            let cell = spec.push(CellSpec::new(mech.label(), workload.clone(), cfg));
            jobs.push((mech, cell));
        }
        Self { spec, jobs }
    }

    /// Assembles rows ranked by descending leakage score; cells that are
    /// missing (partial shard) or lack an obs section are skipped.
    pub fn rows(&self, outcome: &GridOutcome) -> Vec<LeakageRow> {
        // The attacker is appended after the benign apps, so it is the
        // last core of the two-core probe workload.
        let attacker_core = 1;
        let mut rows = Vec::new();
        for &(mech, cell) in &self.jobs {
            let Some(report) = outcome.reports[cell].as_ref() else {
                continue;
            };
            let Some(obs) = report.obs.as_ref() else {
                continue;
            };
            let pause_cycles = obs.pauses.total_cycles();
            let attacker_latency_entropy_bits = obs.core_latency(attacker_core).entropy_bits();
            let leakage_score =
                attacker_latency_entropy_bits + obs.gap_entropy_bits + obs.pause_entropy_bits;
            rows.push(LeakageRow {
                mechanism: mech.label().to_string(),
                nrh: report.nrh,
                attacker_latency_entropy_bits,
                latency_entropy_bits: obs.latency_entropy_bits,
                gap_entropy_bits: obs.gap_entropy_bits,
                outcome_entropy_bits: obs.outcome_entropy_bits,
                pause_entropy_bits: obs.pause_entropy_bits,
                pause_cycles,
                pause_fraction: if report.mem_cycles == 0 {
                    0.0
                } else {
                    pause_cycles as f64 / report.mem_cycles as f64
                },
                leakage_score,
            });
        }
        rows.sort_by(|a, b| b.leakage_score.total_cmp(&a.leakage_score));
        rows
    }
}

/// One VRD Monte-Carlo output row: the disturbance census of one
/// `min_pct` distribution, aggregated across the seed samples.
#[derive(Debug, Clone, Serialize)]
pub struct VrdRow {
    /// Weakest-row threshold as a percentage of the nominal N_RH (100 =
    /// degenerate: every row at the nominal).
    pub min_pct: u32,
    /// Nominal RowHammer threshold.
    pub nominal_nrh: u32,
    /// Seed samples aggregated.
    pub samples: usize,
    /// Fewest oracle flips observed across samples.
    pub flips_min: u64,
    /// Mean oracle flips across samples.
    pub flips_mean: f64,
    /// Most oracle flips observed across samples.
    pub flips_max: u64,
}

/// Seed samples per `min_pct` point of the VRD sweep.
pub const VRD_SEEDS: usize = 16;

/// The `min_pct` points of the VRD sweep: the degenerate (scalar-
/// equivalent) distribution and a 2× spread.
pub const VRD_MIN_PCTS: [u32; 2] = [100, 50];

/// The Variable Read Disturbance Monte-Carlo study as a grid: an
/// unmitigated single-core 429.mcf run whose ground-truth oracle samples
/// per-row thresholds from `[nrh·min_pct/100, nrh]`, swept over
/// [`VRD_SEEDS`] sampling seeds per [`VRD_MIN_PCTS`] point. Every cell
/// shares one workload and differs only in oracle parameters, so the
/// entire grid is one timing cohort under `--batched` — the flagship
/// workload of the batched lockstep engine.
pub struct VrdSweepGrid {
    /// The declarative grid.
    pub spec: GridSpec,
    /// (min_pct, member cells).
    jobs: Vec<(u32, Vec<usize>)>,
}

impl VrdSweepGrid {
    /// Builds the grid.
    pub fn build(opts: &HarnessOpts) -> Self {
        let workload = WorkloadSpec::Apps {
            apps: vec![AppTrace::new("429.mcf", 0, opts.seed)],
            trace_instructions: opts.instructions + opts.instructions / 10,
        };
        let nominal = opts.nrh_list.first().copied().unwrap_or(1024);
        let mut spec = GridSpec::new("vrd-sweep");
        let mut jobs = Vec::new();
        for &min_pct in &VRD_MIN_PCTS {
            let configs: Vec<SimConfig> = (0..VRD_SEEDS)
                .map(|s| {
                    let mut cfg = SimConfig::single_core();
                    cfg.instructions_per_core = opts.instructions;
                    cfg.nrh = nominal;
                    cfg.seed = opts.seed;
                    cfg.oracle = true;
                    cfg.vrd = Some(VrdSpec {
                        min_pct,
                        seed: opts.seed + s as u64,
                    });
                    cfg.max_mem_cycles = opts.instructions.saturating_mul(6000).max(1 << 22);
                    cfg
                })
                .collect();
            let start = spec.len();
            BatchSpec::new(format!("vrd{min_pct}"), workload.clone(), configs).push_onto(&mut spec);
            jobs.push((min_pct, (start..spec.len()).collect()));
        }
        Self { spec, jobs }
    }

    /// Assembles rows; `min_pct` points with any missing sample (partial
    /// shard) are skipped.
    pub fn rows(&self, outcome: &GridOutcome) -> Vec<VrdRow> {
        let mut rows = Vec::new();
        for (min_pct, cells) in &self.jobs {
            let mut flips = Vec::new();
            let mut nominal = 0;
            let mut complete = true;
            for &cell in cells {
                let Some(report) = outcome.reports[cell].as_ref() else {
                    complete = false;
                    break;
                };
                nominal = report.nrh;
                flips.push(report.oracle_flips.unwrap_or(0));
            }
            if !complete || flips.is_empty() {
                continue;
            }
            rows.push(VrdRow {
                min_pct: *min_pct,
                nominal_nrh: nominal,
                samples: flips.len(),
                flips_min: *flips.iter().min().expect("non-empty"),
                flips_mean: flips.iter().sum::<u64>() as f64 / flips.len() as f64,
                flips_max: *flips.iter().max().expect("non-empty"),
            });
        }
        rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> HarnessOpts {
        HarnessOpts {
            instructions: 2_000,
            mixes_per_class: 1,
            nrh_list: vec![1024, 32],
            quiet: true,
            ..HarnessOpts::default()
        }
    }

    #[test]
    fn every_registered_grid_builds() {
        let opts = tiny();
        for name in GRID_NAMES {
            let spec = build_spec(name, &opts).unwrap_or_else(|| panic!("{name} missing"));
            assert!(!spec.is_empty(), "{name} built an empty grid");
            assert_eq!(&spec.name, name);
            // Hashing must succeed for every cell.
            assert_eq!(spec.hashes().len(), spec.len());
        }
        assert!(build_spec("not-a-grid", &opts).is_none());
    }

    #[test]
    fn smoke_grid_is_two_cells() {
        assert_eq!(smoke_grid().len(), 2);
    }

    #[test]
    fn leakage_grid_covers_every_mechanism_with_obs_on() {
        let grid = LeakageGrid::build(&tiny());
        assert_eq!(grid.spec.len(), 1 + MechanismKind::all().len());
        assert_eq!(grid.spec.len(), 12, "baseline + all eleven mechanisms");
        let labels: Vec<_> = grid.spec.cells.iter().map(|c| c.label.clone()).collect();
        assert!(labels.contains(&"Baseline".to_string()));
        assert!(labels.contains(&"Chronus".to_string()));
        for cell in &grid.spec.cells {
            assert!(
                cell.config.obs,
                "{}: leakage cells must carry the probe",
                cell.label
            );
            assert_eq!(cell.config.nrh, LEAKAGE_NRH);
            assert_eq!(cell.config.num_cores, 2, "one benign app + the attacker");
        }
    }

    #[test]
    fn vrd_sweep_is_one_timing_cohort() {
        let grid = VrdSweepGrid::build(&tiny());
        assert_eq!(grid.spec.len(), VRD_SEEDS * VRD_MIN_PCTS.len());
        for cell in &grid.spec.cells {
            assert!(cell.config.oracle, "{}: VRD needs the oracle", cell.label);
            assert!(cell.config.vrd.is_some());
            assert_eq!(cell.config.mechanism, MechanismKind::None);
            // One shared workload: the whole grid batches into one group.
            assert_eq!(cell.workload, grid.spec.cells[0].workload);
        }
        // Distinct cells: every member hashes uniquely.
        let hashes = grid.spec.hashes();
        let unique: std::collections::HashSet<_> = hashes.iter().collect();
        assert_eq!(unique.len(), hashes.len());
    }

    #[test]
    fn spec_building_is_deterministic() {
        let opts = tiny();
        for name in ["fig8", "table4", "perf_attack"] {
            let a = build_spec(name, &opts).unwrap();
            let b = build_spec(name, &opts).unwrap();
            assert_eq!(a.hashes(), b.hashes(), "{name} spec not deterministic");
        }
    }
}
