//! Ablation study: how the back-off threshold (`N_BO`) drives the
//! performance-attack exposure of PRAC-4 and Chronus.
//!
//! This isolates the paper's central design argument (§6.2/§7.2): PRAC's
//! wave-attack vulnerability forces tiny `N_BO` values, and small `N_BO`
//! is exactly what lets an attacker trigger preventive refreshes cheaply.
//! Chronus, immune to the wave attack, keeps `N_BO` near `N_RH`.

use chronus_bench::grids::{AblationGrid, ABLATION_NRH};
use chronus_bench::{execute, format_table, write_json, HarnessOpts};

fn main() {
    let opts = HarnessOpts::from_args("ablation");
    let grid = AblationGrid::build(&opts);
    let rows = grid.rows(&execute(&grid.spec, &opts));
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.mechanism.clone(),
                r.nbo.to_string(),
                if r.secure { "yes" } else { "NO" }.into(),
                format!("{:.1}%", r.benign_ws_loss * 100.0),
                r.back_offs.to_string(),
                r.rfms.to_string(),
            ]
        })
        .collect();
    println!("Ablation: N_BO vs performance-attack damage at N_RH = {ABLATION_NRH}");
    println!(
        "{}",
        format_table(
            &[
                "mechanism",
                "N_BO",
                "wave-secure",
                "benign WS loss",
                "back-offs",
                "RFMs"
            ],
            &table
        )
    );
    println!("Reading: PRAC must run at tiny N_BO to stay wave-secure — and tiny N_BO");
    println!("multiplies attacker-triggered refreshes. Chronus stays secure at N_BO = 16.");
    if let Some(path) = opts.out {
        write_json(&path, &rows);
    }
    chronus_bench::finish();
}
