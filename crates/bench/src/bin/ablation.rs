//! Ablation study: how the back-off threshold (`N_BO`) drives the
//! performance-attack exposure of PRAC-4 and Chronus.
//!
//! This isolates the paper's central design argument (§6.2/§7.2): PRAC's
//! wave-attack vulnerability forces tiny `N_BO` values, and small `N_BO`
//! is exactly what lets an attacker trigger preventive refreshes cheaply.
//! Chronus, immune to the wave attack, keeps `N_BO` near `N_RH`.

use chronus_bench::{format_table, write_json, HarnessOpts};
use chronus_core::MechanismKind;
use chronus_ctrl::AddressMapping;
use chronus_dram::Geometry;
use chronus_sim::{run_parallel, SimConfig, System};
use chronus_workloads::{perf_attack_trace, synthetic_app};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    mechanism: String,
    nbo: u32,
    secure: bool,
    benign_ws_loss: f64,
    back_offs: u64,
    rfms: u64,
}

fn main() {
    let opts = HarnessOpts::from_args("ablation");
    let nrh = 20;
    let nbos = [1u32, 2, 4, 8, 16];
    let mut jobs = Vec::new();
    for &mech in &[MechanismKind::Prac4, MechanismKind::Chronus] {
        for &nbo in &nbos {
            jobs.push((mech, nbo));
        }
    }
    let rows: Vec<Row> = run_parallel(jobs, opts.threads, |(mech, nbo)| {
        let geo = Geometry::ddr5();
        let build = |attacker: bool| {
            let mut traces: Vec<_> = ["470.lbm", "tpch2", "473.astar"]
                .iter()
                .enumerate()
                .map(|(i, n)| {
                    synthetic_app(n, i as u64)
                        .unwrap()
                        .generate(opts.instructions + 5_000, opts.seed)
                })
                .collect();
            if attacker {
                traces.push(perf_attack_trace(
                    AddressMapping::Mop,
                    &geo,
                    4,
                    8,
                    (opts.instructions + 5_000) as usize,
                ));
            } else {
                traces.push(
                    synthetic_app("548.exchange2", 3)
                        .unwrap()
                        .generate(opts.instructions + 5_000, opts.seed),
                );
            }
            traces
        };
        let mut cfg = SimConfig::four_core();
        cfg.instructions_per_core = opts.instructions;
        cfg.mechanism = mech;
        cfg.nrh = nrh;
        cfg.threshold_override = Some(nbo);
        cfg.max_mem_cycles = opts.instructions.saturating_mul(8000).max(1 << 22);
        let calm = System::build(&cfg).run(build(false));
        let attacked = System::build(&cfg).run(build(true));
        let ws = |r: &chronus_sim::SimReport| r.ipc[..3].iter().sum::<f64>();
        Row {
            mechanism: mech.label().to_string(),
            nbo,
            secure: attacked.secure,
            benign_ws_loss: (1.0 - ws(&attacked) / ws(&calm)).max(0.0),
            back_offs: attacked.ctrl.back_offs,
            rfms: attacked.dram.rfms,
        }
    });
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.mechanism.clone(),
                r.nbo.to_string(),
                if r.secure { "yes" } else { "NO" }.into(),
                format!("{:.1}%", r.benign_ws_loss * 100.0),
                r.back_offs.to_string(),
                r.rfms.to_string(),
            ]
        })
        .collect();
    println!("Ablation: N_BO vs performance-attack damage at N_RH = {nrh}");
    println!(
        "{}",
        format_table(
            &[
                "mechanism",
                "N_BO",
                "wave-secure",
                "benign WS loss",
                "back-offs",
                "RFMs"
            ],
            &table
        )
    );
    println!("Reading: PRAC must run at tiny N_BO to stay wave-secure — and tiny N_BO");
    println!("multiplies attacker-triggered refreshes. Chronus stays secure at N_BO = 16.");
    if let Some(path) = opts.out {
        write_json(&path, &rows);
    }
}
