//! Fig. 4: performance impact of the PRAC and RFM configurations on
//! four-core workloads (normalised weighted speedup vs N_RH).

use chronus_bench::runs::pivot_geomean;
use chronus_bench::{execute, format_table, write_json, HarnessOpts, MixSweep};
use chronus_core::MechanismKind;

fn main() {
    let opts = HarnessOpts::from_args("fig4");
    let mechs = [
        MechanismKind::Prac4,
        MechanismKind::Prac2,
        MechanismKind::Prac1,
        MechanismKind::PracPrfm,
        MechanismKind::Prfm,
    ];
    let sweep = MixSweep::build("fig4", &mechs, &opts.nrh_list, &opts, &|_| {});
    let rows = sweep.rows(&execute(&sweep.spec, &opts));
    let mut headers = vec!["mechanism".to_string()];
    headers.extend(opts.nrh_list.iter().map(|n| format!("N_RH={n}")));
    let headers_ref: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    println!(
        "Fig. 4: normalized weighted speedup, {} four-core mixes ('!' = not wave-attack secure)",
        opts.mixes_per_class * 6
    );
    println!(
        "{}",
        format_table(
            &headers_ref,
            &pivot_geomean(&rows, &opts.nrh_list, |r| r.ws_norm)
        )
    );
    if let Some(path) = opts.out {
        write_json(&path, &rows);
    }
    chronus_bench::finish();
}
