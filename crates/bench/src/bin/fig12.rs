//! Fig. 12 (Appendix C): Chronus vs ABACuS on the four-core mixes, both
//! evaluated under ABACuS's address mapping.

use chronus_bench::grids::fig12_sweep;
use chronus_bench::runs::pivot_geomean;
use chronus_bench::{execute, format_table, write_json, HarnessOpts};

fn main() {
    let opts = HarnessOpts::from_args("fig12");
    let sweep = fig12_sweep(&opts);
    let rows = sweep.rows(&execute(&sweep.spec, &opts));
    let mut headers = vec!["mechanism".to_string()];
    headers.extend(opts.nrh_list.iter().map(|n| format!("N_RH={n}")));
    let headers_ref: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    println!("Fig. 12: Chronus vs ABACuS (ABACuS address mapping), normalized WS");
    println!(
        "{}",
        format_table(
            &headers_ref,
            &pivot_geomean(&rows, &opts.nrh_list, |r| r.ws_norm)
        )
    );
    if let Some(path) = opts.out {
        write_json(&path, &rows);
    }
    chronus_bench::finish();
}
