//! Fig. 12 (Appendix C): Chronus vs ABACuS on the four-core mixes, both
//! evaluated under ABACuS's address mapping.

use chronus_bench::runs::{mix_traces, pivot_geomean, SweepRow};
use chronus_bench::{format_table, write_json, HarnessOpts};
use chronus_core::MechanismKind;
use chronus_ctrl::AddressMapping;
use chronus_sim::system::alone_ipc;
use chronus_sim::{run_parallel, SimConfig, System};
use chronus_workloads::four_core_mixes;

fn main() {
    let opts = HarnessOpts::from_args("fig12");
    let mixes = four_core_mixes(opts.mixes_per_class, opts.seed);
    let mechs = [MechanismKind::Chronus, MechanismKind::Abacus];
    let run = |mix_apps: &[chronus_workloads::AppProfile],
               mech: MechanismKind,
               nrh: u32|
     -> chronus_sim::SimReport {
        let mut cfg = SimConfig::four_core();
        cfg.instructions_per_core = opts.instructions;
        cfg.mechanism = mech;
        cfg.nrh = nrh;
        cfg.seed = opts.seed;
        cfg.mapping = Some(AddressMapping::AbacusMop);
        cfg.max_mem_cycles = opts.instructions.saturating_mul(4000).max(1 << 22);
        let traces = mix_traces(mix_apps, opts.instructions, opts.seed);
        System::build(&cfg).run(traces)
    };

    // Baselines under the ABACuS mapping.
    let contexts = run_parallel(mixes.clone(), opts.threads, |mix| {
        let traces = mix_traces(&mix.apps, opts.instructions, opts.seed);
        let mut single = SimConfig::single_core();
        single.instructions_per_core = opts.instructions;
        single.mapping = Some(AddressMapping::AbacusMop);
        single.max_mem_cycles = opts.instructions.saturating_mul(4000).max(1 << 22);
        let ipc_alone: Vec<f64> = traces
            .iter()
            .map(|t| alone_ipc(t.clone(), &single))
            .collect();
        let baseline = run(&mix.apps, MechanismKind::None, 1024);
        (mix, ipc_alone, baseline)
    });

    let mut jobs = Vec::new();
    for i in 0..contexts.len() {
        for &mech in &mechs {
            for &nrh in &opts.nrh_list {
                jobs.push((i, mech, nrh));
            }
        }
    }
    let ctx = &contexts;
    let rows: Vec<SweepRow> = run_parallel(jobs, opts.threads, move |(i, mech, nrh)| {
        let (mix, ipc_alone, baseline) = &ctx[i];
        let report = run(&mix.apps, mech, nrh);
        let base_ws = baseline.weighted_speedup(ipc_alone);
        SweepRow {
            workload: mix.name.clone(),
            class: mix.class.label(),
            mechanism: report.mechanism.clone(),
            nrh,
            ws_norm: report.weighted_speedup(ipc_alone) / base_ws,
            energy_norm: report.energy_normalized_to(baseline),
            secure: report.secure,
            back_offs: report.ctrl.back_offs,
            preventive_rows: report.dram.vrrs + report.dram.rfm_victim_rows,
        }
    });
    let mut headers = vec!["mechanism".to_string()];
    headers.extend(opts.nrh_list.iter().map(|n| format!("N_RH={n}")));
    let headers_ref: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    println!("Fig. 12: Chronus vs ABACuS (ABACuS address mapping), normalized WS");
    println!(
        "{}",
        format_table(
            &headers_ref,
            &pivot_geomean(&rows, &opts.nrh_list, |r| r.ws_norm)
        )
    );
    if let Some(path) = opts.out {
        write_json(&path, &rows);
    }
}
