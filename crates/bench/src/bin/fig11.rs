//! Fig. 11: storage overhead vs RowHammer threshold for Chronus, PRAC,
//! Graphene, Hydra and PRFM (module with 64 banks × 128K rows).

use chronus_bench::{format_table, write_json, HarnessOpts};
use chronus_core::storage::{
    chronus_storage, fig11_geometry, graphene_storage, hydra_storage, prac_storage, prfm_storage,
};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    nrh: u32,
    chronus_mib: f64,
    prac_mib: f64,
    graphene_mib: f64,
    hydra_mib: f64,
    prfm_bytes: u64,
}

fn main() {
    let opts = HarnessOpts::from_args("fig11");
    let geo = fig11_geometry();
    let acts_per_epoch = 680_000; // 32 ms / 47 ns
    let mut out = Vec::new();
    let mut rows = Vec::new();
    for &nrh in &opts.nrh_list {
        let r = Row {
            nrh,
            chronus_mib: chronus_storage(&geo, nrh).total_mib(),
            prac_mib: prac_storage(&geo, nrh).total_mib(),
            graphene_mib: graphene_storage(&geo, nrh, acts_per_epoch).total_mib(),
            hydra_mib: hydra_storage(&geo, nrh).total_mib(),
            prfm_bytes: prfm_storage(&geo, nrh).cpu_bytes(),
        };
        rows.push(vec![
            nrh.to_string(),
            format!("{:.2}", r.chronus_mib),
            format!("{:.2}", r.prac_mib),
            format!("{:.2}", r.graphene_mib),
            format!("{:.2}", r.hydra_mib),
            format!("{} B", r.prfm_bytes),
        ]);
        out.push(r);
    }
    println!("Fig. 11: storage overhead (MiB) vs N_RH — 64 banks x 128K rows");
    println!(
        "{}",
        format_table(
            &[
                "N_RH",
                "Chronus(DRAM)",
                "PRAC(DRAM)",
                "Graphene(CAM)",
                "Hydra(DRAM+SRAM)",
                "PRFM(SRAM)"
            ],
            &rows
        )
    );
    if let Some(path) = opts.out {
        write_json(&path, &out);
    }
}
