//! Fig. 9: per-intensity-class breakdown at N_RH = 32.

use chronus_bench::{execute, format_table, geomean, write_json, HarnessOpts, MixSweep};
use chronus_core::MechanismKind;

fn main() {
    let mut opts = HarnessOpts::from_args("fig9");
    opts.nrh_list = vec![32];
    let sweep = MixSweep::build("fig9", MechanismKind::headline(), &[32], &opts, &|_| {});
    let rows = sweep.rows(&execute(&sweep.spec, &opts));
    let classes = ["HHHH", "HHMM", "LLHH", "MMMM", "MMLL", "LLLL"];
    let mut mech_order: Vec<String> = Vec::new();
    for r in &rows {
        if !mech_order.contains(&r.mechanism) {
            mech_order.push(r.mechanism.clone());
        }
    }
    let mut table = Vec::new();
    for mech in &mech_order {
        let mut line = vec![mech.clone()];
        for class in classes {
            let vals: Vec<f64> = rows
                .iter()
                .filter(|r| &r.mechanism == mech && r.class == class)
                .map(|r| r.ws_norm)
                .collect();
            line.push(if vals.is_empty() {
                "-".into()
            } else {
                format!("{:.3}", geomean(&vals))
            });
        }
        let all: Vec<f64> = rows
            .iter()
            .filter(|r| &r.mechanism == mech)
            .map(|r| r.ws_norm)
            .collect();
        line.push(format!("{:.3}", geomean(&all)));
        table.push(line);
    }
    let mut headers: Vec<&str> = vec!["mechanism"];
    headers.extend(classes);
    headers.push("geomean");
    println!("Fig. 9: normalized weighted speedup by mix intensity at N_RH = 32");
    println!("{}", format_table(&headers, &table));
    if let Some(path) = opts.out {
        write_json(&path, &rows);
    }
    chronus_bench::finish();
}
