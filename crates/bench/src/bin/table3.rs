//! Table 3 / Appendix A: the Chronus decrementer circuit census, verified
//! exhaustively at gate level.

use chronus_bench::format_table;
use chronus_core::{decrement, Decrementer};

fn main() {
    // Exhaustive functional verification.
    for x in 0..=255u8 {
        assert_eq!(
            decrement(x),
            x.wrapping_sub(1),
            "gate-level mismatch at {x}"
        );
    }
    let c = Decrementer::instance_census();
    println!("Table 3: gate-level 8-bit decrementer (all 256 inputs verified)");
    let rows = vec![
        vec![
            "y0 = !x0".into(),
            "1".into(),
            "0".into(),
            "0".into(),
            "0".into(),
        ],
        vec![
            "y1 = x0 ? x1 : !x1".into(),
            "1".into(),
            "1".into(),
            "0".into(),
            "0".into(),
        ],
        vec![
            "y2 = nor(x0,x1) ? !x2 : x2".into(),
            "1".into(),
            "1".into(),
            "0".into(),
            "1".into(),
        ],
        vec![
            "yi = nand(y(i-1),!x(i-1)) ? xi : !xi (i=3..7)".into(),
            "5".into(),
            "5".into(),
            "5".into(),
            "0".into(),
        ],
        vec![
            "total".into(),
            c.nots.to_string(),
            c.muxes.to_string(),
            c.nands.to_string(),
            c.nors.to_string(),
        ],
    ];
    println!(
        "{}",
        format_table(&["logical expression", "NOT", "MUX", "NAND", "NOR"], &rows)
    );
    println!(
        "gates: {}   transistors: {}   (paper: 21 gates, 96 transistors)",
        c.gates(),
        c.transistors()
    );
    assert_eq!(c.gates(), 21);
    assert_eq!(c.transistors(), 96);
}
