//! Fig. 8: normalised weighted speedup of all seven headline mechanisms
//! across N_RH on the four-core mixes.

use chronus_bench::runs::pivot_geomean;
use chronus_bench::{execute, format_table, write_json, HarnessOpts, MixSweep};
use chronus_core::MechanismKind;

fn main() {
    let opts = HarnessOpts::from_args("fig8");
    let sweep = MixSweep::build(
        "fig8",
        MechanismKind::headline(),
        &opts.nrh_list,
        &opts,
        &|_| {},
    );
    let rows = sweep.rows(&execute(&sweep.spec, &opts));
    let mut headers = vec!["mechanism".to_string()];
    headers.extend(opts.nrh_list.iter().map(|n| format!("N_RH={n}")));
    let headers_ref: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    println!(
        "Fig. 8: normalized weighted speedup, {} four-core mixes ('!' = not secure)",
        opts.mixes_per_class * 6
    );
    println!(
        "{}",
        format_table(
            &headers_ref,
            &pivot_geomean(&rows, &opts.nrh_list, |r| r.ws_norm)
        )
    );
    if let Some(path) = opts.out {
        write_json(&path, &rows);
    }
    chronus_bench::finish();
}
