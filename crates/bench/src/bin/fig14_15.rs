//! Fig. 14 + Fig. 15 (Appendix E): PRAC-4 on 23 eight-core homogeneous
//! SPEC CPU2017 workloads with the 4.5× larger LLC of [Kim+, CAL'25].

use chronus_bench::runs::pivot_geomean;
use chronus_bench::{execute, format_table, write_json, AppSweep, HarnessOpts};
use chronus_core::MechanismKind;
use chronus_workloads::eight_core_spec17_profiles;

fn main() {
    let opts = HarnessOpts::from_args("fig14_15");
    let apps = eight_core_spec17_profiles();
    let sweep = AppSweep::build(
        "fig14_15",
        &apps,
        &[MechanismKind::Prac4],
        &opts.nrh_list,
        &opts,
        8,
        true,
    );
    let rows = sweep.rows(&execute(&sweep.spec, &opts));
    let mut headers = vec!["mechanism".to_string()];
    headers.extend(opts.nrh_list.iter().map(|n| format!("N_RH={n}")));
    let headers_ref: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    println!(
        "Fig. 14: PRAC-4 normalized WS, 23 eight-core homogeneous SPEC17 workloads, 36 MiB LLC"
    );
    println!(
        "{}",
        format_table(
            &headers_ref,
            &pivot_geomean(&rows, &opts.nrh_list, |r| r.ws_norm)
        )
    );
    println!("Fig. 15: PRAC-4 normalized DRAM energy, same setup");
    println!(
        "{}",
        format_table(
            &headers_ref,
            &pivot_geomean(&rows, &opts.nrh_list, |r| r.energy_norm)
        )
    );
    if let Some(path) = opts.out {
        write_json(&path, &rows);
    }
    chronus_bench::finish();
}
