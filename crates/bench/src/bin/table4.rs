//! Table 4 (Appendix E): PRAC overheads before and after the timing-bug
//! fix — the pre-erratum runs leave tRAS/tRTP/tWR unreduced.

use chronus_bench::runs::{mix_traces, run_mix};
use chronus_bench::{format_table, geomean, write_json, HarnessOpts};
use chronus_core::MechanismKind;
use chronus_dram::TimingMode;
use chronus_sim::{run_parallel, SimConfig, System};
use chronus_workloads::four_core_mixes;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    nrh: u32,
    four_core_overhead_old: f64,
    four_core_overhead_new: f64,
    energy_overhead_old: f64,
    energy_overhead_new: f64,
}

fn main() {
    let opts = HarnessOpts::from_args("table4");
    let mixes = four_core_mixes(opts.mixes_per_class, opts.seed);

    let run_with = |apps: &[chronus_workloads::AppProfile], nrh: u32, mode: Option<TimingMode>| {
        let mut cfg = SimConfig::four_core();
        cfg.instructions_per_core = opts.instructions;
        cfg.mechanism = MechanismKind::Prac4;
        cfg.nrh = nrh;
        cfg.seed = opts.seed;
        cfg.timing_override = mode;
        cfg.max_mem_cycles = opts.instructions.saturating_mul(4000).max(1 << 22);
        System::build(&cfg).run(mix_traces(apps, opts.instructions, opts.seed))
    };

    let baselines = run_parallel(mixes.clone(), opts.threads, |mix| {
        run_mix(&mix.apps, MechanismKind::None, 1024, &opts)
    });

    let mut out = Vec::new();
    let mut table = Vec::new();
    for &nrh in &opts.nrh_list {
        let results = run_parallel(
            mixes.iter().cloned().enumerate().collect::<Vec<_>>(),
            opts.threads,
            |(i, mix)| {
                let old = run_with(&mix.apps, nrh, Some(TimingMode::PracBuggy));
                let new = run_with(&mix.apps, nrh, None);
                let base = &baselines[i];
                let ipc_sum = |r: &chronus_sim::SimReport| r.ipc.iter().sum::<f64>();
                (
                    ipc_sum(&old) / ipc_sum(base),
                    ipc_sum(&new) / ipc_sum(base),
                    old.energy_normalized_to(base),
                    new.energy_normalized_to(base),
                )
            },
        );
        let perf_old: Vec<f64> = results.iter().map(|r| r.0).collect();
        let perf_new: Vec<f64> = results.iter().map(|r| r.1).collect();
        let e_old: Vec<f64> = results.iter().map(|r| r.2).collect();
        let e_new: Vec<f64> = results.iter().map(|r| r.3).collect();
        let row = Row {
            nrh,
            four_core_overhead_old: 1.0 - geomean(&perf_old),
            four_core_overhead_new: 1.0 - geomean(&perf_new),
            energy_overhead_old: geomean(&e_old) - 1.0,
            energy_overhead_new: geomean(&e_new) - 1.0,
        };
        table.push(vec![
            nrh.to_string(),
            format!("{:.1}%", row.four_core_overhead_old * 100.0),
            format!("{:.1}%", row.four_core_overhead_new * 100.0),
            format!("{:.1}%", row.energy_overhead_old * 100.0),
            format!("{:.1}%", row.energy_overhead_new * 100.0),
        ]);
        out.push(row);
    }
    println!("Table 4: PRAC-4 overheads, pre-erratum (old) vs fixed (new) timings");
    println!(
        "{}",
        format_table(
            &["N_RH", "perf old", "perf new", "energy old", "energy new"],
            &table
        )
    );
    if let Some(path) = opts.out {
        write_json(&path, &out);
    }
}
