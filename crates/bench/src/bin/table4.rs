//! Table 4 (Appendix E): PRAC overheads before and after the timing-bug
//! fix — the pre-erratum runs leave tRAS/tRTP/tWR unreduced.

use chronus_bench::grids::Table4Grid;
use chronus_bench::{execute, format_table, write_json, HarnessOpts};

fn main() {
    let opts = HarnessOpts::from_args("table4");
    let grid = Table4Grid::build(&opts);
    let rows = grid.rows(&execute(&grid.spec, &opts));
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|row| {
            vec![
                row.nrh.to_string(),
                format!("{:.1}%", row.four_core_overhead_old * 100.0),
                format!("{:.1}%", row.four_core_overhead_new * 100.0),
                format!("{:.1}%", row.energy_overhead_old * 100.0),
                format!("{:.1}%", row.energy_overhead_new * 100.0),
            ]
        })
        .collect();
    println!("Table 4: PRAC-4 overheads, pre-erratum (old) vs fixed (new) timings");
    println!(
        "{}",
        format_table(
            &["N_RH", "perf old", "perf new", "energy old", "energy new"],
            &table
        )
    );
    if let Some(path) = opts.out {
        write_json(&path, &rows);
    }
    chronus_bench::finish();
}
