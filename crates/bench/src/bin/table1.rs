//! Table 1: DRAM timing parameter changes with PRAC.

use chronus_bench::format_table;
use chronus_dram::TimingsNs;

fn main() {
    let base = TimingsNs::ddr5_3200an_baseline();
    let prac = TimingsNs::ddr5_3200an_prac();
    let buggy = TimingsNs::ddr5_3200an_prac_buggy();
    let rows = [
        ("tRAS", base.tras, prac.tras, buggy.tras),
        ("tRP", base.trp, prac.trp, buggy.trp),
        ("tRC", base.trc, prac.trc, buggy.trc),
        ("tRTP", base.trtp, prac.trtp, buggy.trtp),
        ("tWR", base.twr, prac.twr, buggy.twr),
    ];
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|(name, b, p, g)| {
            vec![
                name.to_string(),
                format!("{b} ns"),
                format!("{p} ns"),
                format!("{g} ns"),
            ]
        })
        .collect();
    println!("Table 1: DRAM timing parameter changes with PRAC (DDR5-3200AN)");
    println!(
        "{}",
        format_table(
            &[
                "parameter",
                "DDR5 w/o PRAC",
                "DDR5 w/ PRAC",
                "pre-erratum PRAC (Table 4)"
            ],
            &table
        )
    );
    println!(
        "resolved to cycles (tCK = {} ns): baseline tRC = {} cy, PRAC tRC = {} cy",
        base.tck,
        base.resolve().rc,
        prac.resolve().rc
    );
}
