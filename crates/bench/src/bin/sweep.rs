//! `chronus-sweep` — the experiment-grid console.
//!
//! ```text
//! chronus-sweep list   [grid]   [flags]   show grids, or one grid's cells
//! chronus-sweep run    <grid|all> [flags] execute (respects --shard i/N)
//! chronus-sweep status <grid|all> [flags] cache accounting, no simulation
//! chronus-sweep merge  <grid> [flags]     assemble a complete grid from
//!                                         the store (--out FILE for JSON)
//! chronus-sweep fsck   [flags]            verify every store entry;
//!                                         quarantine corrupt ones
//! chronus-sweep gc     [flags]            drop store entries no current
//!                                         grid references
//! chronus-sweep doctor [flags]            crash recovery: reclaim stale
//!                                         leases, fsck, replay journal
//! ```
//!
//! Exit codes: `0` clean, `2` usage error, `3` degraded — `run` with
//! permanently failed cells, `status`/`merge` over corrupt or failed
//! entries, `fsck` that quarantined anything, `doctor` over a store it
//! could not fully reconcile (a verified entry whose checksum contradicts
//! its journaled `Complete`). Quarantined cells re-enter the grid as plain
//! cache misses: the next `run` re-simulates them; `doctor`-reported
//! interrupted/missing cells likewise heal on the next `run`.
//!
//! Flags are the shared harness flags (`--instructions`, `--mixes`,
//! `--seed`, `--nrh`, `--threads`, `--shard`, `--grid-dir`, `--no-cache`,
//! `--quiet`, `--out`). Grid specs are derived from these flags, so `gc`
//! keeps exactly the cells the same flags would run.
//!
//! The two-machine workflow:
//!
//! ```text
//! machine A$ chronus-sweep run fig8 --shard 1/2 --grid-dir store
//! machine B$ chronus-sweep run fig8 --shard 2/2 --grid-dir store
//! # copy store/ together (files are content-addressed; union is safe)
//! machine A$ chronus-sweep merge fig8 --grid-dir store --out fig8.json
//! ```

use std::collections::HashSet;

use chronus_bench::grids::{build_spec, GRID_NAMES};
use chronus_bench::opts::{HarnessOpts, ParseOutcome, VALUELESS_FLAGS};
use chronus_bench::{format_table, write_json};
use chronus_grid::{
    merge, run_doctor, run_grid_batched, run_grid_coordinated, EntryState, GridSpec, ResultStore,
    DEGRADED_EXIT,
};

fn usage() -> String {
    format!(
        "chronus-sweep: experiment-grid console \
         (list | run | status | merge | fsck | gc | doctor)\n\
         grids: {}  (or 'all')\n{}",
        GRID_NAMES.join(" "),
        HarnessOpts::usage("chronus-sweep")
    )
}

fn fail(msg: &str) -> ! {
    eprintln!("chronus-sweep: {msg}");
    eprintln!("try --help");
    std::process::exit(2);
}

fn main() {
    // Positionals (subcommand, grid) come first; everything else is the
    // shared flag set.
    let mut positional = Vec::new();
    let mut flags = Vec::new();
    let mut args = std::env::args().skip(1).peekable();
    while let Some(a) = args.next() {
        if a.starts_with('-') {
            flags.push(a.clone());
            // Flags with values: forward the value too.
            if !VALUELESS_FLAGS.contains(&a.as_str()) {
                if let Some(v) = args.next() {
                    flags.push(v);
                }
            }
        } else {
            positional.push(a);
        }
    }
    let opts = match HarnessOpts::parse_from(flags) {
        Ok(o) => o,
        Err(ParseOutcome::Help) => {
            eprintln!("{}", usage());
            std::process::exit(0);
        }
        Err(ParseOutcome::Invalid(msg)) => fail(&msg),
    };
    let command = positional.first().map(String::as_str).unwrap_or("list");
    let grid_arg = positional.get(1).map(String::as_str);

    match command {
        "list" => list(grid_arg, &opts),
        "run" => run(grid_arg, &opts),
        "status" => status(grid_arg, &opts),
        "merge" => merge_cmd(grid_arg, &opts),
        "fsck" => fsck(&opts),
        "gc" => gc(&opts),
        "doctor" => doctor(&opts),
        other => fail(&format!("unknown command '{other}'")),
    }
}

fn store_of(opts: &HarnessOpts) -> ResultStore {
    chronus_bench::runs::open_store(opts)
}

/// Resolves `all` / a name / `None` into specs.
fn specs_for(grid_arg: Option<&str>, opts: &HarnessOpts) -> Vec<GridSpec> {
    match grid_arg {
        None | Some("all") => GRID_NAMES
            .iter()
            .map(|n| build_spec(n, opts).expect("registered grid"))
            .collect(),
        Some(name) => match build_spec(name, opts) {
            Some(spec) => vec![spec],
            None => fail(&format!(
                "unknown grid '{name}' (known: {} or 'all')",
                GRID_NAMES.join(" ")
            )),
        },
    }
}

fn list(grid_arg: Option<&str>, opts: &HarnessOpts) {
    let store = store_of(opts);
    match grid_arg {
        None | Some("all") => {
            let mut rows = Vec::new();
            for spec in specs_for(Some("all"), opts) {
                let hashes = spec.hashes();
                let cached = hashes.iter().filter(|h| store.contains(h)).count();
                rows.push(vec![
                    spec.name.clone(),
                    spec.len().to_string(),
                    cached.to_string(),
                    (spec.len() - cached).to_string(),
                ]);
            }
            println!(
                "{}",
                format_table(&["grid", "cells", "cached", "missing"], &rows)
            );
        }
        Some(_) => {
            let spec = specs_for(grid_arg, opts).remove(0);
            let hashes = spec.hashes();
            let rows: Vec<Vec<String>> = spec
                .cells
                .iter()
                .zip(&hashes)
                .enumerate()
                .map(|(i, (cell, hash))| {
                    vec![
                        i.to_string(),
                        hash.clone(),
                        if store.contains(hash) { "yes" } else { "no" }.into(),
                        cell.label.clone(),
                    ]
                })
                .collect();
            println!(
                "{}",
                format_table(&["cell", "hash", "cached", "label"], &rows)
            );
        }
    }
}

fn run(grid_arg: Option<&str>, opts: &HarnessOpts) {
    let store = (!opts.no_cache).then(|| store_of(opts));
    let exec = chronus_bench::runs::exec_opts(opts);
    let coord = chronus_bench::runs::coord_opts(opts);
    let mut degraded = false;
    for spec in specs_for(grid_arg, opts) {
        let outcome = if opts.batched {
            run_grid_batched(&spec, store.as_ref(), &exec)
        } else {
            run_grid_coordinated(&spec, store.as_ref(), &exec, &coord)
        };
        println!(
            "chronus-sweep: grid={} shard={} {} wall={:.1}s",
            spec.name,
            opts.shard,
            outcome.stats.summary(),
            outcome.wall_seconds
        );
        if outcome.is_degraded() {
            degraded = true;
            for f in &outcome.failures {
                println!(
                    "chronus-sweep: grid={} FAILED cell #{} '{}' ({:?} after {} attempt(s)): {}",
                    spec.name, f.index, f.label, f.kind, f.attempts, f.error
                );
            }
        }
    }
    if degraded {
        eprintln!(
            "chronus-sweep: run degraded — rerun the same command to retry failed cells \
             (completed cells replay from the store)"
        );
        std::process::exit(DEGRADED_EXIT);
    }
}

fn status(grid_arg: Option<&str>, opts: &HarnessOpts) {
    let store = store_of(opts);
    let mut degraded = false;
    for spec in specs_for(grid_arg, opts) {
        let hashes = spec.hashes();
        // `verify` (not `contains`): a truncated or tampered entry must
        // show up as corrupt here, never crash the accounting.
        let mut cached = 0usize;
        let mut corrupt = 0usize;
        let mut walls = Vec::new();
        for h in &hashes {
            match store.verify(h) {
                EntryState::Ok(_) => {
                    cached += 1;
                    if let Some(wall) = store.recorded_wall(h) {
                        walls.push(wall);
                    }
                }
                EntryState::Bad(_) => corrupt += 1,
                EntryState::Missing => {}
            }
        }
        let failed = store
            .load_manifest(&spec.name)
            .map_or(0, |m| m.failures.len());
        println!(
            "chronus-sweep: grid={} cells={} cached={} missing={} corrupt={} failed={}{}",
            spec.name,
            hashes.len(),
            cached,
            hashes.len() - cached - corrupt,
            corrupt,
            failed,
            wall_percentiles(&mut walls)
        );
        if corrupt > 0 {
            degraded = true;
            eprintln!(
                "chronus-sweep: grid={} has {corrupt} corrupt entries — \
                 run `chronus-sweep fsck` to quarantine them",
                spec.name
            );
        }
        if failed > 0 {
            degraded = true;
        }
    }
    if degraded {
        std::process::exit(DEGRADED_EXIT);
    }
}

/// Formats the per-grid wall-clock summary from the store's `<hash>.wall`
/// sidecars: ` wall_p50=… wall_p90=… wall_max=…`, or the empty string when
/// no cached cell has a recorded wall-clock (the line stays grep-stable).
fn wall_percentiles(walls: &mut [f64]) -> String {
    if walls.is_empty() {
        return String::new();
    }
    walls.sort_by(f64::total_cmp);
    // Nearest-rank percentile: the smallest recorded wall-clock at or
    // above the requested fraction of the sorted sample.
    let rank = |p: f64| walls[((walls.len() as f64 * p).ceil() as usize).max(1) - 1];
    format!(
        " wall_p50={:.2}s wall_p90={:.2}s wall_max={:.2}s",
        rank(0.50),
        rank(0.90),
        walls[walls.len() - 1]
    )
}

fn merge_cmd(grid_arg: Option<&str>, opts: &HarnessOpts) {
    let Some(name) = grid_arg else {
        fail("merge needs a grid name");
    };
    let store = store_of(opts);
    let specs = specs_for(Some(name), opts);
    if opts.out.is_some() && specs.len() > 1 {
        fail("merge --out needs a single grid name, not 'all' (each grid is one JSON file)");
    }
    let mut degraded = false;
    for spec in specs {
        match merge(&spec, &store) {
            Ok(reports) => {
                println!(
                    "chronus-sweep: grid={} merged={} cells from {}",
                    spec.name,
                    reports.len(),
                    store.dir().display()
                );
                if let Some(path) = &opts.out {
                    write_json(path, &reports);
                }
            }
            Err(holes) => {
                // Distinguish never-ran from corrupt-on-disk: both block
                // the merge, but the remedies differ (run shards vs fsck).
                degraded = true;
                let hashes = spec.hashes();
                let (corrupt, missing): (Vec<usize>, Vec<usize>) = holes
                    .into_iter()
                    .partition(|&i| store.verify(&hashes[i]).is_bad());
                let preview = |idx: &[usize]| -> String {
                    idx.iter()
                        .take(8)
                        .map(|&i| spec.cells[i].label.clone())
                        .collect::<Vec<_>>()
                        .join(", ")
                };
                if !missing.is_empty() {
                    eprintln!(
                        "chronus-sweep: grid='{}' incomplete: {} of {} cells missing \
                         (first: {}) — run the remaining shards first",
                        spec.name,
                        missing.len(),
                        spec.len(),
                        preview(&missing)
                    );
                }
                if !corrupt.is_empty() {
                    eprintln!(
                        "chronus-sweep: grid='{}': {} corrupt entries (first: {}) — \
                         run `chronus-sweep fsck`, then rerun the grid",
                        spec.name,
                        corrupt.len(),
                        preview(&corrupt)
                    );
                }
            }
        }
    }
    if degraded {
        std::process::exit(DEGRADED_EXIT);
    }
}

fn fsck(opts: &HarnessOpts) {
    let store = store_of(opts);
    match store.fsck() {
        Ok(report) => {
            println!(
                "chronus-sweep: fsck {} ({})",
                report.summary(),
                store.dir().display()
            );
            for (name, issue) in &report.quarantined {
                println!("chronus-sweep: quarantined {name}: {issue}");
            }
            if !report.quarantined.is_empty() {
                eprintln!(
                    "chronus-sweep: {} entries moved to {} — the next run re-simulates them",
                    report.quarantined.len(),
                    store.quarantine_dir().display()
                );
                std::process::exit(DEGRADED_EXIT);
            }
        }
        Err(e) => fail(&format!("fsck failed: {e}")),
    }
}

fn doctor(opts: &HarnessOpts) {
    let store = store_of(opts);
    match run_doctor(&store) {
        Ok(report) => {
            println!(
                "chronus-sweep: doctor {} ({})",
                report.summary(),
                store.dir().display()
            );
            for (hash, holder) in &report.reclaimed_leases {
                println!("chronus-sweep: reclaimed lease {hash} (holder {holder})");
            }
            for (name, issue) in &report.fsck.quarantined {
                println!("chronus-sweep: quarantined {name}: {issue}");
            }
            for (name, issue) in &report.fsck.quarantined_manifests {
                println!("chronus-sweep: quarantined manifest {name}: {issue}");
            }
            for hash in &report.interrupted {
                println!("chronus-sweep: interrupted {hash} — the next run re-simulates it");
            }
            for hash in &report.missing_completed {
                println!("chronus-sweep: missing {hash} — the next run re-simulates it");
            }
            for hash in &report.diverged {
                eprintln!(
                    "chronus-sweep: DIVERGED {hash}: verified entry contradicts its \
                     journaled checksum — investigate by hand"
                );
            }
            if !report.is_healthy() {
                std::process::exit(DEGRADED_EXIT);
            }
        }
        Err(e) => fail(&format!("doctor failed: {e}")),
    }
}

fn gc(opts: &HarnessOpts) {
    let store = store_of(opts);
    let mut keep: HashSet<String> = HashSet::new();
    for spec in specs_for(Some("all"), opts) {
        keep.extend(spec.hashes());
    }
    match store.gc(&keep) {
        Ok(removed) => println!(
            "chronus-sweep: gc removed {removed} entries from {} ({} kept)",
            store.dir().display(),
            keep.len()
        ),
        Err(e) => fail(&format!("gc failed: {e}")),
    }
}
