//! `chronus-sweep` — the experiment-grid console.
//!
//! ```text
//! chronus-sweep list   [grid]   [flags]   show grids, or one grid's cells
//! chronus-sweep run    <grid|all> [flags] execute (respects --shard i/N)
//! chronus-sweep status <grid|all> [flags] cache accounting, no simulation
//! chronus-sweep merge  <grid> [flags]     assemble a complete grid from
//!                                         the store (--out FILE for JSON)
//! chronus-sweep gc     [flags]            drop store entries no current
//!                                         grid references
//! ```
//!
//! Flags are the shared harness flags (`--instructions`, `--mixes`,
//! `--seed`, `--nrh`, `--threads`, `--shard`, `--grid-dir`, `--no-cache`,
//! `--quiet`, `--out`). Grid specs are derived from these flags, so `gc`
//! keeps exactly the cells the same flags would run.
//!
//! The two-machine workflow:
//!
//! ```text
//! machine A$ chronus-sweep run fig8 --shard 1/2 --grid-dir store
//! machine B$ chronus-sweep run fig8 --shard 2/2 --grid-dir store
//! # copy store/ together (files are content-addressed; union is safe)
//! machine A$ chronus-sweep merge fig8 --grid-dir store --out fig8.json
//! ```

use std::collections::HashSet;

use chronus_bench::grids::{build_spec, GRID_NAMES};
use chronus_bench::opts::{HarnessOpts, ParseOutcome, VALUELESS_FLAGS};
use chronus_bench::{format_table, write_json};
use chronus_grid::{merge, run_grid, GridSpec, ResultStore};

fn usage() -> String {
    format!(
        "chronus-sweep: experiment-grid console (list | run | status | merge | gc)\n\
         grids: {}  (or 'all')\n{}",
        GRID_NAMES.join(" "),
        HarnessOpts::usage("chronus-sweep")
    )
}

fn fail(msg: &str) -> ! {
    eprintln!("chronus-sweep: {msg}");
    eprintln!("try --help");
    std::process::exit(2);
}

fn main() {
    // Positionals (subcommand, grid) come first; everything else is the
    // shared flag set.
    let mut positional = Vec::new();
    let mut flags = Vec::new();
    let mut args = std::env::args().skip(1).peekable();
    while let Some(a) = args.next() {
        if a.starts_with('-') {
            flags.push(a.clone());
            // Flags with values: forward the value too.
            if !VALUELESS_FLAGS.contains(&a.as_str()) {
                if let Some(v) = args.next() {
                    flags.push(v);
                }
            }
        } else {
            positional.push(a);
        }
    }
    let opts = match HarnessOpts::parse_from(flags) {
        Ok(o) => o,
        Err(ParseOutcome::Help) => {
            eprintln!("{}", usage());
            std::process::exit(0);
        }
        Err(ParseOutcome::Invalid(msg)) => fail(&msg),
    };
    let command = positional.first().map(String::as_str).unwrap_or("list");
    let grid_arg = positional.get(1).map(String::as_str);

    match command {
        "list" => list(grid_arg, &opts),
        "run" => run(grid_arg, &opts),
        "status" => status(grid_arg, &opts),
        "merge" => merge_cmd(grid_arg, &opts),
        "gc" => gc(&opts),
        other => fail(&format!("unknown command '{other}'")),
    }
}

fn store_of(opts: &HarnessOpts) -> ResultStore {
    chronus_bench::runs::open_store(opts)
}

/// Resolves `all` / a name / `None` into specs.
fn specs_for(grid_arg: Option<&str>, opts: &HarnessOpts) -> Vec<GridSpec> {
    match grid_arg {
        None | Some("all") => GRID_NAMES
            .iter()
            .map(|n| build_spec(n, opts).expect("registered grid"))
            .collect(),
        Some(name) => match build_spec(name, opts) {
            Some(spec) => vec![spec],
            None => fail(&format!(
                "unknown grid '{name}' (known: {} or 'all')",
                GRID_NAMES.join(" ")
            )),
        },
    }
}

fn list(grid_arg: Option<&str>, opts: &HarnessOpts) {
    let store = store_of(opts);
    match grid_arg {
        None | Some("all") => {
            let mut rows = Vec::new();
            for spec in specs_for(Some("all"), opts) {
                let hashes = spec.hashes();
                let cached = hashes.iter().filter(|h| store.contains(h)).count();
                rows.push(vec![
                    spec.name.clone(),
                    spec.len().to_string(),
                    cached.to_string(),
                    (spec.len() - cached).to_string(),
                ]);
            }
            println!(
                "{}",
                format_table(&["grid", "cells", "cached", "missing"], &rows)
            );
        }
        Some(_) => {
            let spec = specs_for(grid_arg, opts).remove(0);
            let hashes = spec.hashes();
            let rows: Vec<Vec<String>> = spec
                .cells
                .iter()
                .zip(&hashes)
                .enumerate()
                .map(|(i, (cell, hash))| {
                    vec![
                        i.to_string(),
                        hash.clone(),
                        if store.contains(hash) { "yes" } else { "no" }.into(),
                        cell.label.clone(),
                    ]
                })
                .collect();
            println!(
                "{}",
                format_table(&["cell", "hash", "cached", "label"], &rows)
            );
        }
    }
}

fn run(grid_arg: Option<&str>, opts: &HarnessOpts) {
    let store = (!opts.no_cache).then(|| store_of(opts));
    let exec = chronus_bench::runs::exec_opts(opts);
    for spec in specs_for(grid_arg, opts) {
        let outcome = run_grid(&spec, store.as_ref(), &exec);
        println!(
            "chronus-sweep: grid={} shard={} {} wall={:.1}s",
            spec.name,
            opts.shard,
            outcome.stats.summary(),
            outcome.wall_seconds
        );
    }
}

fn status(grid_arg: Option<&str>, opts: &HarnessOpts) {
    let store = store_of(opts);
    for spec in specs_for(grid_arg, opts) {
        let hashes = spec.hashes();
        let cached = hashes.iter().filter(|h| store.contains(h)).count();
        println!(
            "chronus-sweep: grid={} cells={} cached={} missing={}",
            spec.name,
            hashes.len(),
            cached,
            hashes.len() - cached
        );
    }
}

fn merge_cmd(grid_arg: Option<&str>, opts: &HarnessOpts) {
    let Some(name) = grid_arg else {
        fail("merge needs a grid name");
    };
    let store = store_of(opts);
    let specs = specs_for(Some(name), opts);
    if opts.out.is_some() && specs.len() > 1 {
        fail("merge --out needs a single grid name, not 'all' (each grid is one JSON file)");
    }
    for spec in specs {
        match merge(&spec, &store) {
            Ok(reports) => {
                println!(
                    "chronus-sweep: grid={} merged={} cells from {}",
                    spec.name,
                    reports.len(),
                    store.dir().display()
                );
                if let Some(path) = &opts.out {
                    write_json(path, &reports);
                }
            }
            Err(missing) => {
                let labels: Vec<String> = missing
                    .iter()
                    .take(8)
                    .map(|&i| spec.cells[i].label.clone())
                    .collect();
                fail(&format!(
                    "grid '{}' incomplete: {} of {} cells missing (first: {}) — run the \
                     remaining shards first",
                    spec.name,
                    missing.len(),
                    spec.len(),
                    labels.join(", ")
                ));
            }
        }
    }
}

fn gc(opts: &HarnessOpts) {
    let store = store_of(opts);
    let mut keep: HashSet<String> = HashSet::new();
    for spec in specs_for(Some("all"), opts) {
        keep.extend(spec.hashes());
    }
    match store.gc(&keep) {
        Ok(removed) => println!(
            "chronus-sweep: gc removed {removed} entries from {} ({} kept)",
            store.dir().display(),
            keep.len()
        ),
        Err(e) => fail(&format!("gc failed: {e}")),
    }
}
