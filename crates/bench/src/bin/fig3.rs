//! Fig. 3: maximum activations a single row can reach under (a) PRFM and
//! (b) PRAC-N, from the analytical wave-attack models.

use chronus_bench::{format_table, write_json, HarnessOpts};
use chronus_security::sweep::{fig3a, fig3b};
use chronus_security::wave::WaveTiming;
use serde::Serialize;

#[derive(Serialize)]
struct Out {
    fig3a: Vec<chronus_security::sweep::Fig3aPoint>,
    fig3b: Vec<chronus_security::sweep::Fig3bPoint>,
}

fn main() {
    let opts = HarnessOpts::from_args("fig3");
    let a = fig3a(&WaveTiming::baseline_default());
    let b = fig3b(&WaveTiming::prac_default());

    println!("Fig. 3a: max ACTs to a single row under PRFM (rows = RFMth, columns = |R1|)");
    let r1s: Vec<u64> = vec![2048, 4096, 8192, 16_384, 32_768, 65_536];
    let mut rows = Vec::new();
    for th in [2u32, 3, 4, 8, 16, 32, 64, 80, 128, 256] {
        let mut row = vec![th.to_string()];
        for &r1 in &r1s {
            let v = a
                .iter()
                .find(|p| p.rfm_th == th && p.r1 == r1)
                .map(|p| p.max_acts)
                .unwrap_or(0);
            row.push(v.to_string());
        }
        rows.push(row);
    }
    let mut headers = vec!["RFMth".to_string()];
    headers.extend(r1s.iter().map(|r| format!("|R1|={}K", r / 1024)));
    let headers_ref: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    println!("{}", format_table(&headers_ref, &rows));

    println!("Fig. 3b: worst-case max ACTs under PRAC-N (over the |R1| sweep)");
    let mut rows = Vec::new();
    for nbo in [1u32, 2, 3, 4, 5, 6, 7, 8, 16, 32, 64, 128, 256] {
        let mut row = vec![nbo.to_string()];
        for n in [1u32, 2, 4] {
            let v = b
                .iter()
                .find(|p| p.nbo == nbo && p.n == n)
                .map(|p| p.max_acts)
                .unwrap_or(0);
            row.push(v.to_string());
        }
        rows.push(row);
    }
    println!(
        "{}",
        format_table(&["N_BO", "PRAC-1", "PRAC-2", "PRAC-4"], &rows)
    );
    let prac4_floor = b
        .iter()
        .filter(|p| p.n == 4 && p.nbo == 1)
        .map(|p| p.max_acts)
        .max()
        .unwrap_or(0);
    println!(
        "PRAC-4 @ N_BO=1 worst case: {prac4_floor} ACTs (paper: 19 → N_RH = 20 is the lowest secure threshold)"
    );
    if let Some(path) = opts.out {
        write_json(&path, &Out { fig3a: a, fig3b: b });
    }
}
