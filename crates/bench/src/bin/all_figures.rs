//! Runs every artefact of the paper in sequence.
//!
//! All simulation-driven binaries share the content-addressed grid result
//! store, so `all_figures` is incremental and restartable: interrupt it
//! anywhere and the next invocation re-simulates only the cells that never
//! finished; a second complete run performs zero simulations. Flags after
//! the binary name (e.g. `--instructions`, `--grid-dir`, `--shard`,
//! `--quiet`) are forwarded verbatim to every simulation binary;
//! `--quick` prepends a scaled-down flag set (your own flags win).

use std::process::Command;

fn main() {
    let mut forwarded: Vec<String> = Vec::new();
    let mut quick = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--quick" {
            quick = true;
        } else if a == "--out" {
            // One shared --out would make every child overwrite the same
            // file; per-figure JSON needs per-figure invocations.
            let _ = args.next();
            eprintln!(
                "all_figures: ignoring --out (each figure would overwrite it); \
                 run the individual binaries with --out instead"
            );
        } else {
            forwarded.push(a);
        }
    }
    // User flags come last so they override the quick-mode defaults.
    let mut sim_args: Vec<String> = Vec::new();
    if quick {
        sim_args.extend(
            ["--instructions", "8000", "--mixes", "1", "--nrh", "1024,32"]
                .iter()
                .map(|s| s.to_string()),
        );
    }
    sim_args.extend(forwarded);

    let bins_analytical = ["table1", "table2", "table3", "fig3", "fig11", "fig13"];
    let bins_sim = [
        "fig4",
        "fig7",
        "fig8",
        "fig9",
        "fig10",
        "fig12",
        "table4",
        "perf_attack",
        "fig14_15",
    ];
    for bin in bins_analytical {
        println!("\n================ {bin} ================");
        run(bin, &[]);
    }
    let sim_args_ref: Vec<&str> = sim_args.iter().map(String::as_str).collect();
    for bin in bins_sim {
        println!("\n================ {bin} ================");
        run(bin, &sim_args_ref);
    }
}

fn run(bin: &str, args: &[&str]) {
    let exe = std::env::current_exe().expect("self path");
    let dir = exe.parent().expect("bin dir");
    let status = Command::new(dir.join(bin))
        .args(args)
        .status()
        .unwrap_or_else(|e| panic!("spawning {bin}: {e}"));
    assert!(status.success(), "{bin} failed");
}
