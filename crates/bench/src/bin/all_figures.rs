//! Runs every analytical artefact and prints a manifest of the
//! simulation-driven binaries (which are invoked individually so their
//! flags can be tuned per experiment).

use std::process::Command;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let bins_analytical = ["table1", "table2", "table3", "fig3", "fig11", "fig13"];
    let bins_sim = [
        "fig4",
        "fig7",
        "fig8",
        "fig9",
        "fig10",
        "fig12",
        "table4",
        "perf_attack",
        "fig14_15",
    ];
    for bin in bins_analytical {
        println!("\n================ {bin} ================");
        run(bin, &[]);
    }
    for bin in bins_sim {
        println!("\n================ {bin} ================");
        if quick {
            run(
                bin,
                &["--instructions", "8000", "--mixes", "1", "--nrh", "1024,32"],
            );
        } else {
            run(bin, &[]);
        }
    }
}

fn run(bin: &str, args: &[&str]) {
    let exe = std::env::current_exe().expect("self path");
    let dir = exe.parent().expect("bin dir");
    let status = Command::new(dir.join(bin))
        .args(args)
        .status()
        .unwrap_or_else(|e| panic!("spawning {bin}: {e}"));
    assert!(status.success(), "{bin} failed");
}
