//! Runs every artefact of the paper in sequence.
//!
//! All simulation-driven binaries share the content-addressed grid result
//! store, so `all_figures` is incremental and restartable: interrupt it
//! anywhere and the next invocation re-simulates only the cells that never
//! finished; a second complete run performs zero simulations. Flags after
//! the binary name (e.g. `--instructions`, `--grid-dir`, `--shard`,
//! `--quiet`) are forwarded verbatim to every simulation binary;
//! `--quick` prepends a scaled-down flag set (your own flags win).

use std::process::Command;

use chronus_grid::DEGRADED_EXIT;

fn main() {
    let mut forwarded: Vec<String> = Vec::new();
    let mut quick = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--quick" {
            quick = true;
        } else if a == "--out" {
            // One shared --out would make every child overwrite the same
            // file; per-figure JSON needs per-figure invocations.
            let _ = args.next();
            eprintln!(
                "all_figures: ignoring --out (each figure would overwrite it); \
                 run the individual binaries with --out instead"
            );
        } else {
            forwarded.push(a);
        }
    }
    // User flags come last so they override the quick-mode defaults.
    let mut sim_args: Vec<String> = Vec::new();
    if quick {
        sim_args.extend(
            ["--instructions", "8000", "--mixes", "1", "--nrh", "1024,32"]
                .iter()
                .map(|s| s.to_string()),
        );
    }
    sim_args.extend(forwarded);

    let bins_analytical = ["table1", "table2", "table3", "fig3", "fig11", "fig13"];
    let bins_sim = [
        "fig4",
        "fig7",
        "fig8",
        "fig9",
        "fig10",
        "fig12",
        "table4",
        "perf_attack",
        "fig14_15",
    ];
    let mut degraded: Vec<&str> = Vec::new();
    for bin in bins_analytical {
        println!("\n================ {bin} ================");
        if run(bin, &[]) {
            degraded.push(bin);
        }
    }
    let sim_args_ref: Vec<&str> = sim_args.iter().map(String::as_str).collect();
    for bin in bins_sim {
        println!("\n================ {bin} ================");
        if run(bin, &sim_args_ref) {
            degraded.push(bin);
        }
    }
    if !degraded.is_empty() {
        eprintln!(
            "all_figures: degraded figures: {} — rerun to retry their failed cells \
             (completed cells replay from the store)",
            degraded.join(", ")
        );
        std::process::exit(DEGRADED_EXIT);
    }
}

/// Runs one figure binary; returns whether it ended degraded. A degraded
/// child (some cells failed permanently) does not stop the sequence — the
/// remaining figures still render from their own healthy cells. Any other
/// failure aborts.
fn run(bin: &str, args: &[&str]) -> bool {
    let exe = std::env::current_exe().expect("self path");
    let dir = exe.parent().expect("bin dir");
    let status = Command::new(dir.join(bin))
        .args(args)
        .status()
        .unwrap_or_else(|e| panic!("spawning {bin}: {e}"));
    if status.code() == Some(DEGRADED_EXIT) {
        eprintln!("all_figures: {bin} completed DEGRADED (exit {DEGRADED_EXIT}); continuing");
        return true;
    }
    assert!(status.success(), "{bin} failed");
    false
}
