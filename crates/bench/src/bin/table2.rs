//! Table 2: the simulated system configuration.

use chronus_bench::format_table;
use chronus_sim::SimConfig;

fn main() {
    let c = SimConfig::four_core();
    let rows = vec![
        vec![
            "Processor".to_string(),
            format!(
                "4.2 GHz, {}-core, {}-wide issue, {}-entry instr. window",
                c.num_cores, c.core.width, c.core.window
            ),
        ],
        vec![
            "Last-Level Cache".to_string(),
            format!(
                "{} B line, {}-way, {} MiB shared",
                c.llc.line_bytes,
                c.llc.ways,
                c.llc.capacity >> 20
            ),
        ],
        vec![
            "Memory Controller".to_string(),
            "64-entry RD/WR queues; FR-FCFS + Cap of 4; MOP mapping".to_string(),
        ],
        vec![
            "Main Memory".to_string(),
            format!(
                "DDR5, 1 channel, {} ranks, {} bank groups x {} banks, {}K rows/bank",
                c.geometry.ranks,
                c.geometry.bankgroups,
                c.geometry.banks_per_group,
                c.geometry.rows / 1024
            ),
        ],
    ];
    println!("Table 2: simulated system configuration");
    println!("{}", format_table(&["component", "configuration"], &rows));
}
