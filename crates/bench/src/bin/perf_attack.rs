//! §11: the performance-degradation (memory-service-denial) attack.
//!
//! Prints (1) the theoretical maximum DRAM bandwidth an attacker can burn
//! with preventive refreshes under PRAC vs Chronus, and (2) simulated
//! system-performance loss when one core hammers 8 rows in each of 4
//! banks next to three benign applications.

use chronus_bench::grids::{perf_attack_nrh_list, PerfAttackGrid};
use chronus_bench::{execute, format_table, write_json, HarnessOpts};
use chronus_security::{chronus_secure_nbo, dbc_chronus, dbc_prac};

fn main() {
    let mut opts = HarnessOpts::from_args("perf_attack");
    opts.nrh_list = perf_attack_nrh_list(&opts);

    // ---- Theoretical DBC (§11) ----
    println!("§11 theoretical DRAM bandwidth consumption by preventive refreshes (N_RH = 20):");
    let prac = dbc_prac(1, 4, 350.0, 52.0);
    let chronus = dbc_chronus(chronus_secure_nbo(20, 3).unwrap(), 350.0, 47.0);
    println!("  PRAC-4 (N_BO=1):      {:.0}%  (paper: 94%)", prac * 100.0);
    println!(
        "  Chronus (N_BO=16):    {:.0}%  (paper: 32%)",
        chronus * 100.0
    );

    // ---- Simulation ----
    // PRAC-4 runs at the paper's published N_BO = 1 (its wave-secure
    // configuration per the paper's more pessimistic attack model);
    // Chronus at its derived threshold.
    let grid = PerfAttackGrid::build(&opts);
    let rows = grid.rows(&execute(&grid.spec, &opts));
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.mechanism.clone(),
                r.nrh.to_string(),
                format!("{:.1}%", r.ws_loss_avg * 100.0),
                format!("{:.1}%", r.ws_loss_max * 100.0),
                format!("{:.1}%", r.max_slowdown * 100.0),
            ]
        })
        .collect();
    println!("\n§11 simulated attack: benign-core performance loss (attacker: 8 rows x 4 banks)");
    println!(
        "{}",
        format_table(
            &[
                "mechanism",
                "N_RH",
                "avg WS loss",
                "max WS loss",
                "max slowdown"
            ],
            &table
        )
    );
    if let Some(path) = opts.out {
        write_json(&path, &rows);
    }
    chronus_bench::finish();
}
