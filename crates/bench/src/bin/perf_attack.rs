//! §11: the performance-degradation (memory-service-denial) attack.
//!
//! Prints (1) the theoretical maximum DRAM bandwidth an attacker can burn
//! with preventive refreshes under PRAC vs Chronus, and (2) simulated
//! system-performance loss when one core hammers 8 rows in each of 4
//! banks next to three benign applications.

use chronus_bench::{format_table, geomean, write_json, HarnessOpts};
use chronus_core::MechanismKind;
use chronus_cpu::Trace;
use chronus_ctrl::AddressMapping;
use chronus_security::{chronus_secure_nbo, dbc_chronus, dbc_prac};
use chronus_sim::{run_parallel, SimConfig, System};
use chronus_workloads::generator::synthetic_from_profile;
use chronus_workloads::{four_core_mixes, perf_attack_trace};
use serde::Serialize;

#[derive(Serialize)]
struct AttackRow {
    mechanism: String,
    nrh: u32,
    ws_loss_avg: f64,
    ws_loss_max: f64,
    max_slowdown: f64,
}

fn main() {
    let mut opts = HarnessOpts::from_args("perf_attack");
    if opts.nrh_list.len() > 2 {
        opts.nrh_list = vec![128, 20];
    }

    // ---- Theoretical DBC (§11) ----
    println!("§11 theoretical DRAM bandwidth consumption by preventive refreshes (N_RH = 20):");
    let prac = dbc_prac(1, 4, 350.0, 52.0);
    let chronus = dbc_chronus(chronus_secure_nbo(20, 3).unwrap(), 350.0, 47.0);
    println!("  PRAC-4 (N_BO=1):      {:.0}%  (paper: 94%)", prac * 100.0);
    println!(
        "  Chronus (N_BO=16):    {:.0}%  (paper: 32%)",
        chronus * 100.0
    );

    // ---- Simulation ----
    // PRAC-4 runs at the paper's published N_BO = 1 (its wave-secure
    // configuration per the paper's more pessimistic attack model);
    // Chronus at its derived threshold.
    let mixes = four_core_mixes(opts.mixes_per_class, opts.seed);
    let mechs = [
        (MechanismKind::Prac4, Some(1u32)),
        (MechanismKind::Chronus, None),
    ];
    let mut rows = Vec::new();
    for &(mech, nbo_override) in &mechs {
        for &nrh in &opts.nrh_list {
            let results = run_parallel(mixes.clone(), opts.threads, |mix| {
                // Three benign cores + one attacker core.
                let mut traces: Vec<Trace> = mix.apps[..3]
                    .iter()
                    .enumerate()
                    .map(|(i, p)| {
                        synthetic_from_profile(*p, i as u64)
                            .generate(opts.instructions + opts.instructions / 10, opts.seed)
                    })
                    .collect();
                let geo = chronus_dram::Geometry::ddr5();
                traces.push(perf_attack_trace(
                    AddressMapping::Mop,
                    &geo,
                    4,
                    8,
                    (opts.instructions + opts.instructions / 10) as usize,
                ));
                let mut cfg = SimConfig::four_core();
                cfg.instructions_per_core = opts.instructions;
                cfg.mechanism = mech;
                cfg.nrh = nrh;
                cfg.threshold_override = nbo_override;
                cfg.seed = opts.seed;
                cfg.max_mem_cycles = opts.instructions.saturating_mul(6000).max(1 << 22);
                let attacked = System::build(&cfg).run(traces.clone());
                // Reference: same mechanism, attacker replaced by an idle-ish
                // trace (the lightest app), isolating the attack's cost.
                let mut calm = traces;
                calm[3] = synthetic_from_profile(
                    chronus_workloads::profile_by_name("548.exchange2").unwrap(),
                    3,
                )
                .generate(opts.instructions + opts.instructions / 10, opts.seed);
                let reference = System::build(&cfg).run(calm);
                let benign_ws = |r: &chronus_sim::SimReport| r.ipc[..3].iter().sum::<f64>();
                let loss = 1.0 - benign_ws(&attacked) / benign_ws(&reference);
                let slow = attacked.ipc[..3]
                    .iter()
                    .zip(&reference.ipc[..3])
                    .map(|(a, b)| 1.0 - a / b)
                    .fold(f64::MIN, f64::max);
                (loss.max(0.0), slow.max(0.0))
            });
            let losses: Vec<f64> = results.iter().map(|r| r.0.max(1e-9)).collect();
            let row = AttackRow {
                mechanism: mech.label().to_string(),
                nrh,
                ws_loss_avg: geomean(&losses),
                ws_loss_max: losses.iter().copied().fold(f64::MIN, f64::max),
                max_slowdown: results.iter().map(|r| r.1).fold(f64::MIN, f64::max),
            };
            rows.push(row);
        }
    }
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.mechanism.clone(),
                r.nrh.to_string(),
                format!("{:.1}%", r.ws_loss_avg * 100.0),
                format!("{:.1}%", r.ws_loss_max * 100.0),
                format!("{:.1}%", r.max_slowdown * 100.0),
            ]
        })
        .collect();
    println!("\n§11 simulated attack: benign-core performance loss (attacker: 8 rows x 4 banks)");
    println!(
        "{}",
        format_table(
            &[
                "mechanism",
                "N_RH",
                "avg WS loss",
                "max WS loss",
                "max slowdown"
            ],
            &table
        )
    );
    if let Some(path) = opts.out {
        write_json(&path, &rows);
    }
}
