//! Fig. 10: normalised DRAM energy of the headline mechanisms across N_RH.

use chronus_bench::runs::pivot_geomean;
use chronus_bench::{execute, format_table, write_json, HarnessOpts, MixSweep};
use chronus_core::MechanismKind;

fn main() {
    let opts = HarnessOpts::from_args("fig10");
    let sweep = MixSweep::build(
        "fig10",
        MechanismKind::headline(),
        &opts.nrh_list,
        &opts,
        &|_| {},
    );
    let rows = sweep.rows(&execute(&sweep.spec, &opts));
    let mut headers = vec!["mechanism".to_string()];
    headers.extend(opts.nrh_list.iter().map(|n| format!("N_RH={n}")));
    let headers_ref: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    println!(
        "Fig. 10: DRAM energy normalized to no-mitigation baseline ({} mixes, higher = worse)",
        opts.mixes_per_class * 6
    );
    println!(
        "{}",
        format_table(
            &headers_ref,
            &pivot_geomean(&rows, &opts.nrh_list, |r| r.energy_norm)
        )
    );
    if let Some(path) = opts.out {
        write_json(&path, &rows);
    }
    chronus_bench::finish();
}
