//! Timing-channel leakage figure: how much timing signal each mitigation
//! exposes to a co-located attacker.
//!
//! Every RowHammer mitigation perturbs timing — refreshes, RFMs, back-off
//! recovery and VRR all stall demand traffic in attacker-observable ways.
//! This figure runs the probe workload (one benign app + the §11 attacker)
//! under every mechanism with the observability probe attached, and ranks
//! the mechanisms by a composite leakage score: the Shannon entropy of the
//! attacker's read-latency distribution, plus the inter-CAS gap entropy,
//! plus the mitigation-pause duration entropy. Higher = more timing signal
//! an attacker can measure.

use chronus_bench::grids::{LeakageGrid, LEAKAGE_NRH};
use chronus_bench::{execute, format_table, write_json, HarnessOpts};

fn main() {
    let opts = HarnessOpts::from_args("leakage_report");
    let grid = LeakageGrid::build(&opts);
    let rows = grid.rows(&execute(&grid.spec, &opts));
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.mechanism.clone(),
                format!("{:.3}", r.leakage_score),
                format!("{:.3}", r.attacker_latency_entropy_bits),
                format!("{:.3}", r.gap_entropy_bits),
                format!("{:.3}", r.pause_entropy_bits),
                format!("{:.3}", r.outcome_entropy_bits),
                format!("{:.2}%", r.pause_fraction * 100.0),
            ]
        })
        .collect();
    println!("Timing-channel leakage ranking at N_RH = {LEAKAGE_NRH} (probe: 429.mcf + attacker)");
    println!(
        "{}",
        format_table(
            &[
                "mechanism",
                "leakage score",
                "attacker H(lat)",
                "H(gap)",
                "H(pause)",
                "H(outcome)",
                "paused"
            ],
            &table
        )
    );
    println!("Reading: the score sums the entropies (bits) of the timing distributions an");
    println!("attacker can sample. Mechanisms that stall demand traffic in data-dependent");
    println!("patterns rank high; the baseline bounds the channel floor of plain DRAM.");
    if let Some(path) = opts.out {
        write_json(&path, &rows);
    }
    chronus_bench::finish();
}
