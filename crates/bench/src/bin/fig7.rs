//! Fig. 7: single-core performance of the seven headline mechanisms at
//! N_RH = 1024 and 32, across the 57-application roster.

use chronus_bench::grids::fig7_nrh_list;
use chronus_bench::{execute, format_table, geomean, write_json, AppSweep, HarnessOpts};
use chronus_core::MechanismKind;
use chronus_workloads::all_profiles;

fn main() {
    let mut opts = HarnessOpts::from_args("fig7");
    opts.nrh_list = fig7_nrh_list(&opts);
    let apps = all_profiles();
    let sweep = AppSweep::build(
        "fig7",
        &apps,
        MechanismKind::headline(),
        &opts.nrh_list,
        &opts,
        1,
        false,
    );
    let rows = sweep.rows(&execute(&sweep.spec, &opts));
    for &nrh in &opts.nrh_list {
        println!("\nFig. 7 (N_RH = {nrh}): normalized speedup per application");
        let mut mech_order: Vec<String> = Vec::new();
        for r in &rows {
            if !mech_order.contains(&r.mechanism) {
                mech_order.push(r.mechanism.clone());
            }
        }
        let mut table = Vec::new();
        // The Fig. 7 x-axis applications (most memory-intensive first).
        let mut shown: Vec<&str> = apps
            .iter()
            .filter(|p| p.mpki >= 3.0)
            .map(|p| p.name)
            .collect();
        shown.truncate(20);
        for app in &shown {
            let mut line = vec![app.to_string()];
            for mech in &mech_order {
                let v = rows
                    .iter()
                    .find(|r| r.workload == *app && &r.mechanism == mech && r.nrh == nrh)
                    .map(|r| format!("{:.3}", r.ws_norm))
                    .unwrap_or_else(|| "-".into());
                line.push(v);
            }
            table.push(line);
        }
        let mut geo_line = vec![format!("geomean({})", apps.len())];
        for mech in &mech_order {
            let vals: Vec<f64> = rows
                .iter()
                .filter(|r| &r.mechanism == mech && r.nrh == nrh)
                .map(|r| r.ws_norm)
                .collect();
            geo_line.push(format!("{:.4}", geomean(&vals)));
        }
        table.push(geo_line);
        let mut headers = vec!["application".to_string()];
        headers.extend(mech_order.iter().cloned());
        let headers_ref: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
        println!("{}", format_table(&headers_ref, &table));
    }
    if let Some(path) = opts.out {
        write_json(&path, &rows);
    }
    chronus_bench::finish();
}
