//! Simulator-throughput report: event-driven fast loop vs. the retained
//! cycle-by-cycle reference loop.
//!
//! Measures simulated-memory-cycles per wall-second on an idle-heavy
//! single-core workload (`511.povray`, where the fast-forward engine
//! should shine) and a memory-bound one (`429.mcf`, where it must not
//! regress), plus the wall-clock of one Fig. 3 security-sweep point, and
//! writes the machine-readable `BENCH_loop.json`.
//!
//! ```text
//! cargo run --release -p chronus-bench --bin perf_report -- \
//!     --instructions 2000000 --out BENCH_loop.json
//! ```

use std::path::PathBuf;
use std::time::Instant;

use chronus_bench::{format_table, write_json};
use chronus_core::MechanismKind;
use chronus_cpu::Trace;
use chronus_security::sweep::{fig3a, fig3b};
use chronus_security::wave::WaveTiming;
use chronus_sim::{SimConfig, SimReport, System, VrdSpec};
use chronus_workloads::{perf_attack_trace, synthetic_app};
use serde::Serialize;

/// Repetitions per measurement; the fastest is reported.
const REPS: usize = 3;

#[derive(Debug, Clone, Serialize)]
struct LoopRow {
    app: String,
    kind: String,
    instructions: u64,
    mem_cycles: u64,
    fast_seconds: f64,
    reference_seconds: f64,
    fast_cycles_per_sec: f64,
    reference_cycles_per_sec: f64,
    speedup: f64,
    reports_identical: bool,
    avg_read_latency: f64,
}

/// The batched Monte-Carlo measurement: N oracle variants of one workload
/// through `System::run_batch` vs N solo runs.
#[derive(Debug, Clone, Serialize)]
struct BatchRow {
    app: String,
    variants: usize,
    instructions: u64,
    solo_seconds: f64,
    batched_seconds: f64,
    speedup: f64,
    reports_identical: bool,
}

#[derive(Debug, Clone, Serialize)]
struct PerfReport {
    rows: Vec<LoopRow>,
    batch: BatchRow,
    fig3_point_seconds: f64,
    idle_heavy_speedup: f64,
    memory_bound_speedup: f64,
    batch_speedup: f64,
    meets_idle_target_3x: bool,
    memory_bound_regression_within_5pct: bool,
    meets_batch_target_5x: bool,
}

fn cfg_for(insts: u64) -> SimConfig {
    let mut cfg = SimConfig::single_core();
    cfg.instructions_per_core = insts;
    cfg.mechanism = MechanismKind::None;
    cfg.nrh = 1024;
    cfg.max_mem_cycles = insts.saturating_mul(4_000).max(1 << 22);
    cfg
}

fn best_of<F: FnMut() -> SimReport>(mut run: F) -> (f64, SimReport) {
    let mut best = f64::INFINITY;
    let mut report = None;
    for _ in 0..REPS {
        let start = Instant::now();
        let r = run();
        best = best.min(start.elapsed().as_secs_f64());
        report = Some(r);
    }
    (best, report.expect("at least one repetition"))
}

fn measure(app: &str, kind: &str, insts: u64, seed: u64) -> LoopRow {
    let cfg = cfg_for(insts);
    let trace = synthetic_app(app, 0)
        .expect("known app")
        .generate(insts + insts / 5, seed);
    measure_trace(cfg, app, kind, insts, trace)
}

/// The §11 performance-degradation attack (8 rows × 4 banks of guaranteed
/// row conflicts): the adversarial memory-bound row. The controller never
/// goes idle and almost every access costs a PRE+ACT, so this is the
/// worst case for the event-driven wake computation.
fn measure_attack(insts: u64) -> LoopRow {
    let mut cfg = cfg_for(insts);
    // Attack traces aim at exact (bank, row) coordinates through the
    // inverse mapping; pin it so the coordinates stay honest.
    cfg.mapping = Some(chronus_ctrl::AddressMapping::Mop);
    let trace = perf_attack_trace(
        chronus_ctrl::AddressMapping::Mop,
        &cfg.geometry,
        4,
        8,
        (insts + insts / 5) as usize,
    );
    measure_trace(cfg, "perf-attack", "memory-bound", insts, trace)
}

fn measure_trace(cfg: SimConfig, app: &str, kind: &str, insts: u64, trace: Trace) -> LoopRow {
    let (fast_s, fast) = best_of(|| System::build(&cfg).run(vec![trace.clone()]));
    let (ref_s, naive) = best_of(|| System::build(&cfg).run_reference(vec![trace.clone()]));
    let identical = fast == naive;
    assert!(
        identical,
        "{app}: fast and reference loops diverged — the equivalence \
         guarantee is broken, throughput numbers are meaningless"
    );
    let fast_cps = fast.mem_cycles as f64 / fast_s;
    let ref_cps = naive.mem_cycles as f64 / ref_s;
    LoopRow {
        app: app.to_string(),
        kind: kind.to_string(),
        instructions: insts,
        mem_cycles: fast.mem_cycles,
        fast_seconds: fast_s,
        reference_seconds: ref_s,
        fast_cycles_per_sec: fast_cps,
        reference_cycles_per_sec: ref_cps,
        speedup: fast_cps / ref_cps,
        reports_identical: identical,
        avg_read_latency: fast.ctrl.avg_read_latency(),
    }
}

/// Measures the 64-variant Monte-Carlo sweep both ways: 64 solo runs
/// (each regenerating its trace and stepping its own `System`, exactly
/// what 64 independent grid cells cost) vs one `System::run_batch` over a
/// once-generated trace. The variants differ only in their VRD sampling
/// seed, so the whole batch is one timing cohort judged by a 64-lane
/// oracle. Asserts every batched report is bit-identical to its solo
/// counterpart before reporting throughput.
fn measure_batch(insts: u64) -> BatchRow {
    const VARIANTS: usize = 64;
    let cfgs: Vec<SimConfig> = (0..VARIANTS)
        .map(|v| {
            let mut cfg = cfg_for(insts);
            cfg.oracle = true;
            cfg.vrd = Some(VrdSpec {
                min_pct: 50,
                seed: v as u64,
            });
            cfg
        })
        .collect();
    let gen = || {
        synthetic_app("429.mcf", 0)
            .expect("known app")
            .generate(insts + insts / 5, 11)
    };

    // Solo side: one pass (the 64 back-to-back runs average measurement
    // noise out on their own).
    let t0 = Instant::now();
    let solo: Vec<SimReport> = cfgs
        .iter()
        .map(|cfg| System::build(cfg).run(vec![gen()]))
        .collect();
    let solo_s = t0.elapsed().as_secs_f64();

    // Batched side: trace generated once, best of REPS.
    let mut batched_s = f64::INFINITY;
    let mut batched = None;
    for _ in 0..REPS {
        let t0 = Instant::now();
        let traces = vec![gen()];
        let b = System::run_batch(&cfgs, &traces);
        batched_s = batched_s.min(t0.elapsed().as_secs_f64());
        batched = Some(b);
    }
    let batched = batched.expect("at least one repetition");

    let identical = solo == batched;
    assert!(
        identical,
        "429.mcf batch: batched and solo reports diverged — the lockstep \
         equivalence guarantee is broken, throughput numbers are meaningless"
    );
    BatchRow {
        app: "429.mcf".to_string(),
        variants: VARIANTS,
        instructions: insts,
        solo_seconds: solo_s,
        batched_seconds: batched_s,
        speedup: solo_s / batched_s,
        reports_identical: identical,
    }
}

fn main() {
    let mut instructions: u64 = 2_000_000;
    let mut out: Option<PathBuf> = Some(PathBuf::from("BENCH_loop.json"));
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--instructions" => {
                instructions = args
                    .next()
                    .expect("--instructions requires a value")
                    .parse()
                    .expect("int");
            }
            "--out" => out = Some(PathBuf::from(args.next().expect("--out requires a value"))),
            "--no-out" => out = None,
            "--help" | "-h" => {
                eprintln!(
                    "perf_report: fast-loop vs reference-loop throughput.\n\
                     flags: --instructions N --out FILE --no-out"
                );
                std::process::exit(0);
            }
            other => panic!("unknown flag {other}; try --help"),
        }
    }

    // The memory-bound app needs ~20× fewer instructions for similar
    // wall-clock (its IPC is far lower and every access reaches DRAM).
    let rows = vec![
        measure("511.povray", "idle-heavy", instructions, 11),
        measure("429.mcf", "memory-bound", instructions / 10, 11),
        measure_attack(instructions / 10),
    ];
    // The batch row sweeps 64 variants, so it gets ~20× fewer
    // instructions per variant for comparable wall-clock.
    let batch = measure_batch(instructions / 20);

    let t0 = Instant::now();
    let (a, b) = (
        fig3a(&WaveTiming::baseline_default()),
        fig3b(&WaveTiming::prac_default()),
    );
    let fig3_s = t0.elapsed().as_secs_f64();
    assert!(!a.is_empty() && !b.is_empty());

    let idle = rows[0].speedup;
    // The reported memory-bound speedup is the *minimum* across the
    // memory-bound rows: the gate must hold even on the worst of them.
    let membound = rows
        .iter()
        .filter(|r| r.kind == "memory-bound")
        .map(|r| r.speedup)
        .fold(f64::INFINITY, f64::min);
    let batch_speedup = batch.speedup;
    let report = PerfReport {
        fig3_point_seconds: fig3_s,
        idle_heavy_speedup: idle,
        memory_bound_speedup: membound,
        batch_speedup,
        meets_idle_target_3x: idle >= 3.0,
        memory_bound_regression_within_5pct: membound >= 0.95,
        meets_batch_target_5x: batch_speedup >= 5.0,
        rows,
        batch,
    };

    let table: Vec<Vec<String>> = report
        .rows
        .iter()
        .map(|r| {
            vec![
                r.app.clone(),
                r.kind.clone(),
                format!("{}", r.mem_cycles),
                format!("{:.2e}", r.fast_cycles_per_sec),
                format!("{:.2e}", r.reference_cycles_per_sec),
                format!("{:.2}x", r.speedup),
                format!("{:.1}", r.avg_read_latency),
            ]
        })
        .collect();
    println!(
        "{}",
        format_table(
            &[
                "app",
                "kind",
                "mem_cycles",
                "fast c/s",
                "ref c/s",
                "speedup",
                "avg read lat"
            ],
            &table
        )
    );
    println!(
        "batch: {} x{} variants: solo {:.2}s, batched {:.2}s, speedup {:.2}x",
        report.batch.app,
        report.batch.variants,
        report.batch.solo_seconds,
        report.batch.batched_seconds,
        report.batch.speedup,
    );
    println!("fig3 single point: {fig3_s:.3}s");
    println!(
        "idle-heavy target (>=3x): {} | memory-bound regression (<=5%): {} | batch target (>=5x): {}",
        if report.meets_idle_target_3x {
            "PASS"
        } else {
            "FAIL"
        },
        if report.memory_bound_regression_within_5pct {
            "PASS"
        } else {
            "FAIL"
        },
        if report.meets_batch_target_5x {
            "PASS"
        } else {
            "FAIL"
        },
    );
    if let Some(path) = out {
        write_json(&path, &report);
    }
}
