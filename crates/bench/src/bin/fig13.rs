//! Fig. 13: storage — Chronus (DRAM) vs ABACuS (CAM + SRAM in CPU).

use chronus_bench::{format_table, write_json, HarnessOpts};
use chronus_core::storage::{abacus_storage, chronus_storage, fig11_geometry};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    nrh: u32,
    chronus_mib: f64,
    abacus_cpu_bytes: u64,
}

fn main() {
    let opts = HarnessOpts::from_args("fig13");
    let geo = fig11_geometry();
    let acts = 680_000;
    let mut out = Vec::new();
    let mut rows = Vec::new();
    for &nrh in &opts.nrh_list {
        let r = Row {
            nrh,
            chronus_mib: chronus_storage(&geo, nrh).total_mib(),
            abacus_cpu_bytes: abacus_storage(&geo, nrh, acts).cpu_bytes(),
        };
        rows.push(vec![
            nrh.to_string(),
            format!("{:.2} MiB", r.chronus_mib),
            format!("{} KiB", r.abacus_cpu_bytes / 1024),
        ]);
        out.push(r);
    }
    println!("Fig. 13: Chronus (in-DRAM) vs ABACuS (CPU CAM+SRAM) storage");
    println!("{}", format_table(&["N_RH", "Chronus", "ABACuS"], &rows));
    println!("(ABACuS is small but lives in expensive CPU storage; Chronus rides DRAM density.)");
    if let Some(path) = opts.out {
        write_json(&path, &out);
    }
}
