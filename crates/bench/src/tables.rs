//! Text-table rendering and JSON output for the figure binaries.

use std::path::Path;

use serde::Serialize;

/// Geometric mean of positive values (0.0 for empty input).
pub fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let s: f64 = values.iter().map(|v| v.max(1e-12).ln()).sum();
    (s / values.len() as f64).exp()
}

/// Renders an aligned text table.
pub fn format_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        cells
            .iter()
            .zip(widths)
            .map(|(c, w)| format!("{c:>w$}"))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let head: Vec<String> = headers.iter().map(|s| s.to_string()).collect();
    out.push_str(&fmt_row(&head, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Writes `data` as pretty JSON to `path`.
///
/// # Panics
///
/// Panics on I/O errors — harness binaries want loud failures.
pub fn write_json<T: Serialize>(path: &Path, data: &T) {
    let json = serde_json::to_string_pretty(data).expect("serialisable");
    std::fs::write(path, json).unwrap_or_else(|e| panic!("writing {}: {e}", path.display()));
    eprintln!("wrote {}", path.display());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_of_equal_values() {
        assert!((geomean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 0.0);
    }

    #[test]
    fn geomean_is_between_min_and_max() {
        let g = geomean(&[1.0, 4.0]);
        assert!((g - 2.0).abs() < 1e-12);
    }

    #[test]
    fn table_alignment() {
        let t = format_table(
            &["name", "value"],
            &[
                vec!["a".into(), "1.00".into()],
                vec!["longer".into(), "2".into()],
            ],
        );
        assert!(t.contains("name"));
        assert!(t.lines().count() == 4);
    }
}
