//! Experiment orchestration: alone/baseline/mechanism runs over mixes.

use chronus_core::MechanismKind;
use chronus_cpu::Trace;
use chronus_sim::system::alone_ipc;
use chronus_sim::{run_parallel, SimConfig, SimReport, System};
use chronus_workloads::{four_core_mixes, generator::synthetic_from_profile, AppProfile, Mix};
use serde::Serialize;

use crate::opts::HarnessOpts;

/// One evaluated (workload, mechanism, N_RH) point.
#[derive(Debug, Clone, Serialize)]
pub struct SweepRow {
    /// Workload (mix or application) name.
    pub workload: String,
    /// Intensity label (mix class or app class letter).
    pub class: String,
    /// Mechanism label.
    pub mechanism: String,
    /// RowHammer threshold.
    pub nrh: u32,
    /// Weighted speedup normalised to the unmitigated baseline (single
    /// core: plain speedup).
    pub ws_norm: f64,
    /// DRAM energy normalised to the baseline.
    pub energy_norm: f64,
    /// Whether the configuration is wave-attack secure.
    pub secure: bool,
    /// Back-offs honoured by the controller.
    pub back_offs: u64,
    /// Preventive victim-row refreshes (VRRs + RFM victims + borrowed).
    pub preventive_rows: u64,
}

/// Generates the per-core traces of a mix.
pub fn mix_traces(apps: &[AppProfile], instructions: u64, seed: u64) -> Vec<Trace> {
    apps.iter()
        .enumerate()
        .map(|(i, p)| {
            synthetic_from_profile(*p, i as u64)
                .generate(instructions + instructions / 10, seed ^ (i as u64) << 8)
        })
        .collect()
}

/// Baseline context of one mix: alone IPCs and the unmitigated run.
#[derive(Debug, Clone)]
pub struct MixContext {
    /// The mix.
    pub mix: Mix,
    /// Per-core alone IPCs.
    pub ipc_alone: Vec<f64>,
    /// Unmitigated multi-programmed report.
    pub baseline: SimReport,
}

impl MixContext {
    /// Weighted speedup of the baseline run.
    pub fn baseline_ws(&self) -> f64 {
        self.baseline.weighted_speedup(&self.ipc_alone)
    }
}

/// Runs a mix under one mechanism.
pub fn run_mix(
    apps: &[AppProfile],
    mech: MechanismKind,
    nrh: u32,
    opts: &HarnessOpts,
) -> SimReport {
    let mut cfg = SimConfig::four_core();
    cfg.num_cores = apps.len();
    cfg.instructions_per_core = opts.instructions;
    cfg.mechanism = mech;
    cfg.nrh = nrh;
    cfg.seed = opts.seed;
    cfg.max_mem_cycles = opts.instructions.saturating_mul(4000).max(1 << 22);
    let traces = mix_traces(apps, opts.instructions, opts.seed);
    System::build(&cfg).run(traces)
}

fn build_contexts(mixes: &[Mix], opts: &HarnessOpts) -> Vec<MixContext> {
    run_parallel(mixes.to_vec(), opts.threads, |mix| {
        let traces = mix_traces(&mix.apps, opts.instructions, opts.seed);
        let mut single = SimConfig::single_core();
        single.instructions_per_core = opts.instructions;
        single.max_mem_cycles = opts.instructions.saturating_mul(4000).max(1 << 22);
        let ipc_alone: Vec<f64> = traces
            .iter()
            .map(|t| alone_ipc(t.clone(), &single))
            .collect();
        let baseline = run_mix(&mix.apps, MechanismKind::None, 1024, opts);
        MixContext {
            mix,
            ipc_alone,
            baseline,
        }
    })
}

/// Full multi-core sweep: `mechanisms × nrh_list` over the configured
/// mixes, producing normalised rows (Fig. 4, 8, 9, 10, 12).
pub fn sweep_mixes(
    mechanisms: &[MechanismKind],
    nrh_list: &[u32],
    opts: &HarnessOpts,
) -> Vec<SweepRow> {
    let mixes = four_core_mixes(opts.mixes_per_class, opts.seed);
    let contexts = build_contexts(&mixes, opts);
    let mut jobs = Vec::new();
    for ctx_idx in 0..contexts.len() {
        for &mech in mechanisms {
            for &nrh in nrh_list {
                jobs.push((ctx_idx, mech, nrh));
            }
        }
    }
    let contexts_ref = &contexts;
    run_parallel(jobs, opts.threads, move |(ctx_idx, mech, nrh)| {
        let ctx = &contexts_ref[ctx_idx];
        let report = run_mix(&ctx.mix.apps, mech, nrh, opts);
        let ws_norm = report.weighted_speedup(&ctx.ipc_alone) / ctx.baseline_ws();
        SweepRow {
            workload: ctx.mix.name.clone(),
            class: ctx.mix.class.label(),
            mechanism: report.mechanism.clone(),
            nrh,
            ws_norm,
            energy_norm: report.energy_normalized_to(&ctx.baseline),
            secure: report.secure,
            back_offs: report.ctrl.back_offs,
            preventive_rows: report.dram.rfm_victim_rows
                + report.dram.vrrs
                + report.dram.borrowed_refreshes * 4,
        }
    })
}

/// Single-core sweep over applications (Fig. 7, Fig. 14/15 building block).
pub fn sweep_single_core(
    apps: &[AppProfile],
    mechanisms: &[MechanismKind],
    nrh_list: &[u32],
    opts: &HarnessOpts,
    num_cores: usize,
    large_llc: bool,
) -> Vec<SweepRow> {
    // Phase A: per-app homogeneous baseline.
    let baselines = run_parallel(apps.to_vec(), opts.threads, |app| {
        run_homogeneous(&app, MechanismKind::None, 1024, opts, num_cores, large_llc)
    });
    let mut jobs = Vec::new();
    for (i, _) in apps.iter().enumerate() {
        for &mech in mechanisms {
            for &nrh in nrh_list {
                jobs.push((i, mech, nrh));
            }
        }
    }
    let baselines_ref = &baselines;
    run_parallel(jobs, opts.threads, move |(i, mech, nrh)| {
        let app = &apps[i];
        let base = &baselines_ref[i];
        let report = run_homogeneous(app, mech, nrh, opts, num_cores, large_llc);
        // Homogeneous normalised WS reduces to the IPC-sum ratio.
        let ws_norm = report.ipc.iter().sum::<f64>() / base.ipc.iter().sum::<f64>();
        SweepRow {
            workload: app.name.to_string(),
            class: app.class().letter().to_string(),
            mechanism: report.mechanism.clone(),
            nrh,
            ws_norm,
            energy_norm: report.energy_normalized_to(base),
            secure: report.secure,
            back_offs: report.ctrl.back_offs,
            preventive_rows: report.dram.rfm_victim_rows
                + report.dram.vrrs
                + report.dram.borrowed_refreshes * 4,
        }
    })
}

/// Pivots sweep rows into a mechanism × N_RH table of geometric means.
pub fn pivot_geomean(
    rows: &[SweepRow],
    nrh_list: &[u32],
    value: impl Fn(&SweepRow) -> f64,
) -> Vec<Vec<String>> {
    let mut mech_order: Vec<String> = Vec::new();
    for r in rows {
        if !mech_order.contains(&r.mechanism) {
            mech_order.push(r.mechanism.clone());
        }
    }
    let mut out = Vec::new();
    for mech in &mech_order {
        let mut line = vec![mech.clone()];
        for &nrh in nrh_list {
            let vals: Vec<f64> = rows
                .iter()
                .filter(|r| &r.mechanism == mech && r.nrh == nrh)
                .map(&value)
                .collect();
            let unsafe_marker = rows
                .iter()
                .any(|r| &r.mechanism == mech && r.nrh == nrh && !r.secure);
            let g = crate::tables::geomean(&vals);
            line.push(if vals.is_empty() {
                "-".into()
            } else if unsafe_marker {
                format!("{g:.3}!")
            } else {
                format!("{g:.3}")
            });
        }
        out.push(line);
    }
    out
}

/// Runs `num_cores` copies of one application (single-core when 1).
pub fn run_homogeneous(
    app: &AppProfile,
    mech: MechanismKind,
    nrh: u32,
    opts: &HarnessOpts,
    num_cores: usize,
    large_llc: bool,
) -> SimReport {
    let mut cfg = if large_llc {
        SimConfig::eight_core_large_llc()
    } else {
        SimConfig::four_core()
    };
    cfg.num_cores = num_cores;
    cfg.instructions_per_core = opts.instructions;
    cfg.mechanism = mech;
    cfg.nrh = nrh;
    cfg.seed = opts.seed;
    cfg.max_mem_cycles = opts.instructions.saturating_mul(4000).max(1 << 22);
    let traces: Vec<Trace> = (0..num_cores)
        .map(|i| {
            synthetic_from_profile(*app, i as u64).generate(
                opts.instructions + opts.instructions / 10,
                opts.seed ^ i as u64,
            )
        })
        .collect();
    System::build(&cfg).run(traces)
}
