//! Experiment orchestration: alone/baseline/mechanism runs over mixes,
//! expressed as declarative `chronus-grid` specs.
//!
//! Every simulation a figure needs — including the per-mix alone-IPC and
//! no-mitigation baseline context runs — is one grid cell, so repeated
//! invocations complete from the content-addressed result store and
//! `--shard i/N` splits any figure across processes or machines.

use std::sync::atomic::{AtomicBool, Ordering};

use chronus_core::MechanismKind;
use chronus_cpu::Trace;
use chronus_grid::{
    run_grid_coordinated, AppTrace, CellSpec, CoordOpts, ExecOpts, FaultInjector, FaultPlan,
    GridOutcome, GridSpec, ResultStore, RetryPolicy, WorkloadSpec, DEGRADED_EXIT,
};
use chronus_sim::{SimConfig, SimReport, System};
use chronus_workloads::{four_core_mixes, generator::synthetic_from_profile, AppProfile, Mix};
use serde::Serialize;

use crate::opts::HarnessOpts;

/// One evaluated (workload, mechanism, N_RH) point.
#[derive(Debug, Clone, Serialize)]
pub struct SweepRow {
    /// Workload (mix or application) name.
    pub workload: String,
    /// Intensity label (mix class or app class letter).
    pub class: String,
    /// Mechanism label.
    pub mechanism: String,
    /// RowHammer threshold.
    pub nrh: u32,
    /// Weighted speedup normalised to the unmitigated baseline (single
    /// core: plain speedup).
    pub ws_norm: f64,
    /// DRAM energy normalised to the baseline.
    pub energy_norm: f64,
    /// Whether the configuration is wave-attack secure.
    pub secure: bool,
    /// Back-offs honoured by the controller.
    pub back_offs: u64,
    /// Preventive victim-row refreshes (VRRs + RFM victims + borrowed).
    pub preventive_rows: u64,
}

/// Generates the per-core traces of a mix.
pub fn mix_traces(apps: &[AppProfile], instructions: u64, seed: u64) -> Vec<Trace> {
    apps.iter()
        .enumerate()
        .map(|(i, p)| {
            synthetic_from_profile(*p, i as u64)
                .generate(instructions + instructions / 10, seed ^ (i as u64) << 8)
        })
        .collect()
}

/// Runs a mix under one mechanism (direct, uncached; the sweeps go through
/// the grid instead).
pub fn run_mix(
    apps: &[AppProfile],
    mech: MechanismKind,
    nrh: u32,
    opts: &HarnessOpts,
) -> SimReport {
    let cfg = mix_config(apps.len(), mech, nrh, opts);
    let traces = mix_traces(apps, opts.instructions, opts.seed);
    System::build(&cfg).run(traces)
}

/// The multi-programmed configuration every mix cell uses.
pub fn mix_config(
    num_cores: usize,
    mech: MechanismKind,
    nrh: u32,
    opts: &HarnessOpts,
) -> SimConfig {
    let mut cfg = SimConfig::four_core();
    cfg.num_cores = num_cores;
    cfg.instructions_per_core = opts.instructions;
    cfg.mechanism = mech;
    cfg.nrh = nrh;
    cfg.seed = opts.seed;
    cfg.max_mem_cycles = opts.instructions.saturating_mul(4000).max(1 << 22);
    cfg.obs = opts.obs;
    cfg
}

/// The single-core alone-run configuration (mirrors
/// `chronus_sim::system::alone_ipc`: mechanism off, default seed).
fn alone_config(opts: &HarnessOpts) -> SimConfig {
    let mut cfg = SimConfig::single_core();
    cfg.instructions_per_core = opts.instructions;
    cfg.max_mem_cycles = opts.instructions.saturating_mul(4000).max(1 << 22);
    cfg.obs = opts.obs;
    cfg
}

/// The per-core trace specs of a mix (slot i, seed `opts.seed ^ (i << 8)`).
/// Shared with `grids.rs` so every mix-shaped grid produces hash-identical
/// cells (the basis of cross-figure cache sharing).
pub(crate) fn mix_workload(apps: &[AppProfile], opts: &HarnessOpts) -> WorkloadSpec {
    WorkloadSpec::Apps {
        apps: apps
            .iter()
            .enumerate()
            .map(|(i, p)| AppTrace::new(p.name, i as u64, opts.seed ^ (i as u64) << 8))
            .collect(),
        trace_instructions: opts.instructions + opts.instructions / 10,
    }
}

/// Set when any executed grid ended degraded; read by [`exit_code`] so the
/// process reports [`DEGRADED_EXIT`] no matter how many grids a binary ran
/// in between.
static DEGRADED: AtomicBool = AtomicBool::new(false);

/// Parses `CHRONUS_FAULTS` into an injector. A malformed spec is a usage
/// error (exit 2) — silently running *without* the faults the user asked
/// for would invalidate whatever they were testing.
pub fn env_faults(tool: &str) -> Option<FaultInjector> {
    match FaultPlan::from_env() {
        Ok(plan) => plan.filter(FaultPlan::is_active).map(FaultPlan::injector),
        Err(msg) => {
            eprintln!("{tool}: ${}: {msg}", chronus_grid::FAULTS_ENV);
            std::process::exit(2);
        }
    }
}

/// Opens the result store the harness options point at, wiring any
/// `CHRONUS_FAULTS` injection into its I/O path.
pub fn open_store(opts: &HarnessOpts) -> ResultStore {
    let store = match &opts.grid_dir {
        Some(dir) => ResultStore::open(dir),
        None => ResultStore::open_default(),
    };
    store
        .unwrap_or_else(|e| panic!("opening grid result store: {e}"))
        .with_faults(env_faults("chronus-bench"))
}

/// Grid execution options derived from the harness options (including the
/// `CHRONUS_FAULTS` environment).
pub fn exec_opts(opts: &HarnessOpts) -> ExecOpts {
    ExecOpts {
        threads: opts.threads,
        shard: opts.shard,
        progress: !opts.quiet,
        retry: match opts.retries {
            Some(n) => RetryPolicy::with_retries(n),
            None => RetryPolicy::default(),
        },
        cell_timeout: opts.cell_timeout,
        faults: env_faults("chronus-bench"),
    }
}

/// Cross-process coordination options derived from the harness options.
pub fn coord_opts(opts: &HarnessOpts) -> CoordOpts {
    CoordOpts {
        lease_ttl: opts.lease_ttl,
        ..CoordOpts::default()
    }
}

/// Executes a spec with the harness options and prints the cache/shard
/// accounting line on stderr. `--no-cache` runs without a store — no
/// directory is created or read.
///
/// Cells that failed permanently never abort the binary: they are reported
/// on stderr, recorded in the store's failure manifest, and flagged so
/// [`exit_code`] returns [`DEGRADED_EXIT`] — the figure still renders from
/// every healthy cell.
pub fn execute(spec: &GridSpec, opts: &HarnessOpts) -> GridOutcome {
    let store = (!opts.no_cache).then(|| open_store(opts));
    let outcome = run_grid_coordinated(spec, store.as_ref(), &exec_opts(opts), &coord_opts(opts));
    if !opts.quiet {
        let where_ = match &store {
            Some(s) => format!(" (store: {})", s.dir().display()),
            None => String::new(),
        };
        eprintln!(
            "[{}] {} in {:.1}s{where_}",
            spec.name,
            outcome.stats.summary(),
            outcome.wall_seconds,
        );
    }
    if outcome.is_degraded() {
        DEGRADED.store(true, Ordering::Relaxed);
        eprintln!(
            "[{}] DEGRADED: {} cell(s) failed permanently:",
            spec.name,
            outcome.failures.len()
        );
        for f in &outcome.failures {
            eprintln!(
                "[{}]   #{} '{}' ({:?} after {} attempt(s)): {}",
                spec.name, f.index, f.label, f.kind, f.attempts, f.error
            );
        }
        eprintln!(
            "[{}] rerun the same command to retry the failed cells \
             (completed cells replay from the store)",
            spec.name
        );
    } else if !outcome.is_complete() && opts.shard.is_full() {
        // With a full shard and zero recorded failures every cell should
        // resolve; a hole here means the executor itself lost track.
        panic!("grid '{}' incomplete after a full (1/1) run", spec.name);
    }
    outcome
}

/// The exit code this process should end with: [`DEGRADED_EXIT`] if any
/// grid executed so far was degraded, `0` otherwise.
pub fn exit_code() -> i32 {
    if DEGRADED.load(Ordering::Relaxed) {
        DEGRADED_EXIT
    } else {
        0
    }
}

/// Terminates the process with [`exit_code`] — the last line of every
/// figure binary, so degraded grids surface to scripts and CI.
pub fn finish() -> ! {
    std::process::exit(exit_code());
}

fn preventive_rows(report: &SimReport) -> u64 {
    report.dram.rfm_victim_rows + report.dram.vrrs + report.dram.borrowed_refreshes * 4
}

/// A multi-programmed mix sweep (Fig. 4, 8, 9, 10, 12) as a grid: per mix,
/// one alone cell per core, one unmitigated baseline cell, and one cell
/// per (mechanism, N_RH) point.
pub struct MixSweep {
    /// The declarative grid.
    pub spec: GridSpec,
    mixes: Vec<Mix>,
    /// Per mix: alone-run cell index per core.
    alone: Vec<Vec<usize>>,
    /// Per mix: baseline cell index.
    baseline: Vec<usize>,
    /// (mix index, cell index) in row order.
    jobs: Vec<(usize, usize)>,
}

impl MixSweep {
    /// Builds the grid. `tweak` is applied to every cell's resolved config
    /// (alone, baseline and sweep cells alike) — Fig. 12 forces the ABACuS
    /// address mapping through it.
    pub fn build(
        name: &str,
        mechanisms: &[MechanismKind],
        nrh_list: &[u32],
        opts: &HarnessOpts,
        tweak: &dyn Fn(&mut SimConfig),
    ) -> Self {
        let mixes = four_core_mixes(opts.mixes_per_class, opts.seed);
        let mut spec = GridSpec::new(name);
        let mut alone = Vec::new();
        let mut baseline = Vec::new();
        let mut jobs = Vec::new();
        for mix in &mixes {
            let mut per_core = Vec::new();
            for (i, app) in mix.apps.iter().enumerate() {
                let mut cfg = alone_config(opts);
                tweak(&mut cfg);
                let workload = WorkloadSpec::Apps {
                    apps: vec![AppTrace::new(
                        app.name,
                        i as u64,
                        opts.seed ^ (i as u64) << 8,
                    )],
                    trace_instructions: opts.instructions + opts.instructions / 10,
                };
                per_core.push(spec.push(CellSpec::new(
                    format!("{}:alone:{}", mix.name, app.name),
                    workload,
                    cfg,
                )));
            }
            alone.push(per_core);

            let mut cfg = mix_config(mix.apps.len(), MechanismKind::None, 1024, opts);
            tweak(&mut cfg);
            baseline.push(spec.push(CellSpec::new(
                format!("{}:baseline", mix.name),
                mix_workload(&mix.apps, opts),
                cfg,
            )));
        }
        for (m, mix) in mixes.iter().enumerate() {
            for &mech in mechanisms {
                for &nrh in nrh_list {
                    let mut cfg = mix_config(mix.apps.len(), mech, nrh, opts);
                    tweak(&mut cfg);
                    let cell = spec.push(CellSpec::new(
                        format!("{}:{}@{}", mix.name, mech.label(), nrh),
                        mix_workload(&mix.apps, opts),
                        cfg,
                    ));
                    jobs.push((m, cell));
                }
            }
        }
        Self {
            spec,
            mixes,
            alone,
            baseline,
            jobs,
        }
    }

    /// Assembles normalised rows from an outcome. Cells missing under a
    /// partial shard are skipped; an unsharded run yields every row.
    pub fn rows(&self, outcome: &GridOutcome) -> Vec<SweepRow> {
        let mut rows = Vec::new();
        for &(m, cell) in &self.jobs {
            let Some(report) = outcome.reports[cell].as_ref() else {
                continue;
            };
            let Some(baseline) = outcome.reports[self.baseline[m]].as_ref() else {
                continue;
            };
            let ipc_alone: Option<Vec<f64>> = self.alone[m]
                .iter()
                .map(|&i| outcome.reports[i].as_ref().map(|r| r.ipc[0]))
                .collect();
            let Some(ipc_alone) = ipc_alone else {
                continue;
            };
            let mix = &self.mixes[m];
            let ws_norm =
                report.weighted_speedup(&ipc_alone) / baseline.weighted_speedup(&ipc_alone);
            rows.push(SweepRow {
                workload: mix.name.clone(),
                class: mix.class.label(),
                mechanism: report.mechanism.clone(),
                nrh: report.nrh,
                ws_norm,
                energy_norm: report.energy_normalized_to(baseline),
                secure: report.secure,
                back_offs: report.ctrl.back_offs,
                preventive_rows: preventive_rows(report),
            });
        }
        rows
    }
}

/// Full multi-core sweep: `mechanisms × nrh_list` over the configured
/// mixes, producing normalised rows (Fig. 4, 8, 9, 10, 12).
pub fn sweep_mixes(
    mechanisms: &[MechanismKind],
    nrh_list: &[u32],
    opts: &HarnessOpts,
) -> Vec<SweepRow> {
    let sweep = MixSweep::build("mix-sweep", mechanisms, nrh_list, opts, &|_| {});
    let outcome = execute(&sweep.spec, opts);
    sweep.rows(&outcome)
}

/// A homogeneous-copies sweep (Fig. 7 with one core, Fig. 14/15 with
/// eight) as a grid: per app, one baseline cell and one cell per
/// (mechanism, N_RH).
pub struct AppSweep {
    /// The declarative grid.
    pub spec: GridSpec,
    apps: Vec<AppProfile>,
    baseline: Vec<usize>,
    /// (app index, cell index) in row order.
    jobs: Vec<(usize, usize)>,
}

impl AppSweep {
    /// Builds the grid over `apps`.
    pub fn build(
        name: &str,
        apps: &[AppProfile],
        mechanisms: &[MechanismKind],
        nrh_list: &[u32],
        opts: &HarnessOpts,
        num_cores: usize,
        large_llc: bool,
    ) -> Self {
        let mut spec = GridSpec::new(name);
        let workload = |app: &AppProfile| WorkloadSpec::Apps {
            apps: (0..num_cores)
                .map(|i| AppTrace::new(app.name, i as u64, opts.seed ^ i as u64))
                .collect(),
            trace_instructions: opts.instructions + opts.instructions / 10,
        };
        let config = |mech: MechanismKind, nrh: u32| {
            let mut cfg = if large_llc {
                SimConfig::eight_core_large_llc()
            } else {
                SimConfig::four_core()
            };
            cfg.instructions_per_core = opts.instructions;
            cfg.mechanism = mech;
            cfg.nrh = nrh;
            cfg.seed = opts.seed;
            cfg.max_mem_cycles = opts.instructions.saturating_mul(4000).max(1 << 22);
            cfg.obs = opts.obs;
            cfg
        };
        let baseline = apps
            .iter()
            .map(|app| {
                spec.push(CellSpec::new(
                    format!("{}:baseline", app.name),
                    workload(app),
                    config(MechanismKind::None, 1024),
                ))
            })
            .collect();
        let mut jobs = Vec::new();
        for (i, app) in apps.iter().enumerate() {
            for &mech in mechanisms {
                for &nrh in nrh_list {
                    let cell = spec.push(CellSpec::new(
                        format!("{}:{}@{}", app.name, mech.label(), nrh),
                        workload(app),
                        config(mech, nrh),
                    ));
                    jobs.push((i, cell));
                }
            }
        }
        Self {
            spec,
            apps: apps.to_vec(),
            baseline,
            jobs,
        }
    }

    /// Assembles normalised rows (homogeneous WS reduces to the IPC-sum
    /// ratio); cells missing under a partial shard are skipped.
    pub fn rows(&self, outcome: &GridOutcome) -> Vec<SweepRow> {
        let mut rows = Vec::new();
        for &(i, cell) in &self.jobs {
            let (Some(report), Some(base)) = (
                outcome.reports[cell].as_ref(),
                outcome.reports[self.baseline[i]].as_ref(),
            ) else {
                continue;
            };
            let app = &self.apps[i];
            rows.push(SweepRow {
                workload: app.name.to_string(),
                class: app.class().letter().to_string(),
                mechanism: report.mechanism.clone(),
                nrh: report.nrh,
                ws_norm: report.ipc.iter().sum::<f64>() / base.ipc.iter().sum::<f64>(),
                energy_norm: report.energy_normalized_to(base),
                secure: report.secure,
                back_offs: report.ctrl.back_offs,
                preventive_rows: preventive_rows(report),
            });
        }
        rows
    }
}

/// Single-core sweep over applications (Fig. 7, Fig. 14/15 building block).
pub fn sweep_single_core(
    apps: &[AppProfile],
    mechanisms: &[MechanismKind],
    nrh_list: &[u32],
    opts: &HarnessOpts,
    num_cores: usize,
    large_llc: bool,
) -> Vec<SweepRow> {
    let sweep = AppSweep::build(
        "app-sweep",
        apps,
        mechanisms,
        nrh_list,
        opts,
        num_cores,
        large_llc,
    );
    let outcome = execute(&sweep.spec, opts);
    sweep.rows(&outcome)
}

/// Runs `num_cores` copies of one application (single-core when 1),
/// directly and uncached.
pub fn run_homogeneous(
    app: &AppProfile,
    mech: MechanismKind,
    nrh: u32,
    opts: &HarnessOpts,
    num_cores: usize,
    large_llc: bool,
) -> SimReport {
    let mut cfg = if large_llc {
        SimConfig::eight_core_large_llc()
    } else {
        SimConfig::four_core()
    };
    cfg.num_cores = num_cores;
    cfg.instructions_per_core = opts.instructions;
    cfg.mechanism = mech;
    cfg.nrh = nrh;
    cfg.seed = opts.seed;
    cfg.obs = opts.obs;
    cfg.max_mem_cycles = opts.instructions.saturating_mul(4000).max(1 << 22);
    let traces: Vec<Trace> = (0..num_cores)
        .map(|i| {
            synthetic_from_profile(*app, i as u64).generate(
                opts.instructions + opts.instructions / 10,
                opts.seed ^ i as u64,
            )
        })
        .collect();
    System::build(&cfg).run(traces)
}

/// Pivots sweep rows into a mechanism × N_RH table of geometric means.
pub fn pivot_geomean(
    rows: &[SweepRow],
    nrh_list: &[u32],
    value: impl Fn(&SweepRow) -> f64,
) -> Vec<Vec<String>> {
    let mut mech_order: Vec<String> = Vec::new();
    for r in rows {
        if !mech_order.contains(&r.mechanism) {
            mech_order.push(r.mechanism.clone());
        }
    }
    let mut out = Vec::new();
    for mech in &mech_order {
        let mut line = vec![mech.clone()];
        for &nrh in nrh_list {
            let vals: Vec<f64> = rows
                .iter()
                .filter(|r| &r.mechanism == mech && r.nrh == nrh)
                .map(&value)
                .collect();
            let unsafe_marker = rows
                .iter()
                .any(|r| &r.mechanism == mech && r.nrh == nrh && !r.secure);
            let g = crate::tables::geomean(&vals);
            line.push(if vals.is_empty() {
                "-".into()
            } else if unsafe_marker {
                format!("{g:.3}!")
            } else {
                format!("{g:.3}")
            });
        }
        out.push(line);
    }
    out
}
