//! Scaled-down versions of the figure pipelines, exercised under
//! criterion so `cargo bench` touches every experiment code path.

use criterion::{criterion_group, criterion_main, Criterion};

use chronus_bench::runs::{sweep_mixes, sweep_single_core};
use chronus_bench::HarnessOpts;
use chronus_core::MechanismKind;
use chronus_security::sweep::{fig3a, fig3b};
use chronus_security::wave::WaveTiming;
use chronus_workloads::eight_core_spec17_profiles;

fn tiny_opts() -> HarnessOpts {
    HarnessOpts {
        instructions: 3_000,
        mixes_per_class: 1,
        threads: 8,
        seed: 7,
        nrh_list: vec![1024, 32],
        // Bypass the grid result store so every iteration really
        // simulates, and keep progress lines out of bench output.
        no_cache: true,
        quiet: true,
        ..HarnessOpts::default()
    }
}

fn smoke_fig3(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures/fig3_security_sweep");
    g.sample_size(10);
    g.bench_function("fig3a+fig3b", |b| {
        b.iter(|| {
            let a = fig3a(&WaveTiming::baseline_default());
            let bb = fig3b(&WaveTiming::prac_default());
            (a.len(), bb.len())
        })
    });
    g.finish();
}

fn smoke_fig4(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures/fig4_prac_variants");
    g.sample_size(10);
    g.bench_function("6mixes_2nrh", |b| {
        let opts = tiny_opts();
        b.iter(|| {
            sweep_mixes(
                &[MechanismKind::Prac4, MechanismKind::Prfm],
                &opts.nrh_list,
                &opts,
            )
        })
    });
    g.finish();
}

fn smoke_fig8(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures/fig8_headline");
    g.sample_size(10);
    g.bench_function("chronus_vs_prac", |b| {
        let opts = tiny_opts();
        b.iter(|| {
            sweep_mixes(
                &[MechanismKind::Chronus, MechanismKind::Prac4],
                &[32],
                &opts,
            )
        })
    });
    g.finish();
}

fn smoke_fig14(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures/fig14_eight_core");
    g.sample_size(10);
    g.bench_function("one_app", |b| {
        let opts = tiny_opts();
        let apps = &eight_core_spec17_profiles()[..1];
        b.iter(|| sweep_single_core(apps, &[MechanismKind::Prac4], &[1024], &opts, 8, true))
    });
    g.finish();
}

criterion_group!(figures, smoke_fig3, smoke_fig4, smoke_fig8, smoke_fig14);
criterion_main!(figures);
