//! Criterion microbenchmarks of the simulator's hot paths.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use chronus_core::{decrement, Att, MechanismKind, MisraGries};
use chronus_ctrl::AddressMapping;
use chronus_dram::{BankId, Command, DramConfig, DramDevice, Geometry};
use chronus_security::wave::{prac_wave_max_acts, PracBackOff, WaveTiming};
use chronus_sim::{SimConfig, System};
use chronus_workloads::synthetic_app;

fn bench_dram_row_cycle(c: &mut Criterion) {
    c.bench_function("dram/act_rd_pre_cycle", |b| {
        let mut cfg = DramConfig::ddr5_baseline();
        cfg.strict = false;
        b.iter_batched(
            || DramDevice::new(cfg.clone()),
            |mut dev| {
                let t = *dev.timings();
                let bank = BankId::new(0, 0, 0);
                let mut now = 0u64;
                for row in 0..64u32 {
                    dev.issue(&Command::Act { bank, row }, now);
                    dev.issue(&Command::Rd { bank, col: 0 }, now + t.rcd);
                    dev.issue(&Command::Pre { bank }, now + t.ras);
                    now += t.rc;
                }
                dev
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_mapping_decode(c: &mut Criterion) {
    let geo = Geometry::ddr5();
    c.bench_function("ctrl/mop_decode", |b| {
        let mut addr = 0u64;
        b.iter(|| {
            addr = addr.wrapping_add(0x1_0040);
            std::hint::black_box(AddressMapping::Mop.decode(addr, &geo))
        })
    });
}

fn bench_att_observe(c: &mut Criterion) {
    c.bench_function("core/att_observe", |b| {
        let mut att = Att::new(4);
        let mut i = 0u32;
        b.iter(|| {
            i = i.wrapping_add(1);
            att.observe(i % 64, i);
        })
    });
}

fn bench_misra_gries(c: &mut Criterion) {
    c.bench_function("core/misra_gries_observe_1k_entries", |b| {
        let mut mg = MisraGries::new(1024);
        let mut i = 0u32;
        b.iter(|| {
            i = i.wrapping_add(7);
            mg.observe(i % 4096)
        })
    });
}

fn bench_decrementer(c: &mut Criterion) {
    c.bench_function("core/gate_level_decrement", |b| {
        let mut x = 0u8;
        b.iter(|| {
            x = x.wrapping_add(1);
            decrement(x)
        })
    });
}

fn bench_wave_model(c: &mut Criterion) {
    let t = WaveTiming::prac_default();
    c.bench_function("security/prac_wave_recurrence_16k_rows", |b| {
        b.iter(|| prac_wave_max_acts(PracBackOff::prac_n(4, 1), 16_384, &t))
    });
}

fn bench_trace_generation(c: &mut Criterion) {
    let app = synthetic_app("429.mcf", 0).unwrap();
    c.bench_function("workloads/generate_100k_instr", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            app.generate(100_000, seed)
        })
    });
}

fn bench_end_to_end(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim/end_to_end_5k_instr");
    group.sample_size(10);
    for mech in [
        MechanismKind::None,
        MechanismKind::Chronus,
        MechanismKind::Prac4,
    ] {
        group.bench_function(mech.label(), |b| {
            b.iter(|| {
                let mut cfg = SimConfig::single_core();
                cfg.instructions_per_core = 5_000;
                cfg.mechanism = mech;
                cfg.nrh = 128;
                let t = synthetic_app("470.lbm", 0).unwrap().generate(6_000, 1);
                System::build(&cfg).run(vec![t])
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_dram_row_cycle,
    bench_mapping_decode,
    bench_att_observe,
    bench_misra_gries,
    bench_decrementer,
    bench_wave_model,
    bench_trace_generation,
    bench_end_to_end,
);
criterion_main!(benches);
