//! Analytical security models for RFM / PRAC / Chronus.
//!
//! This crate reproduces §5, §8, §11 and Appendix D of the paper with no
//! simulation dependency:
//!
//! * [`wave`] — the wave (feinting) attack against PRFM (Eq. 1) and PRAC-N
//!   (Eq. 2), as both closed-form recurrences and an independent discrete
//!   attack simulator used to cross-check them.
//! * [`sweep`] — the configuration sweeps behind Fig. 3a/3b and the
//!   secure-threshold search used to configure every mechanism for a given
//!   `N_RH`.
//! * [`bounds`] — Chronus's security bound (§8), the Aggressor Tracking
//!   Table sizing argument, and the §11 / Appendix D maximum
//!   DRAM-bandwidth-consumption results.
//!
//! ```
//! use chronus_security::{sweep, wave::WaveTiming};
//!
//! // PRAC-4 with the most aggressive back-off threshold tolerates the wave
//! // attack up to a small maximum hammer count (the paper reports 19,
//! // making N_RH = 20 the lowest secure threshold).
//! let t = WaveTiming::prac_default();
//! let worst = sweep::prac_worst_case(1, 4, 4, &t);
//! assert!(worst.max_acts < 20);
//! ```

pub mod bounds;
pub mod sweep;
pub mod wave;

pub use bounds::{att_entries, chronus_max_acts, chronus_secure_nbo, dbc_chronus, dbc_prac};
pub use sweep::{
    prac_secure_nbo, prac_secure_nbo_vrd, prac_worst_case, prfm_secure_threshold,
    prfm_secure_threshold_vrd, prfm_worst_case, VrdModel,
};
pub use wave::{prac_wave_max_acts, prfm_wave_max_acts, PracBackOff, WaveTiming};
