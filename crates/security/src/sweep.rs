//! Configuration sweeps (Fig. 3) and secure-threshold search.
//!
//! The paper configures every mechanism "against the wave attack": the
//! largest threshold whose worst-case achievable activation count stays
//! below `N_RH`. These searches feed `chronus-core`'s mechanism builders so
//! the simulated mechanisms run exactly the configurations the paper's
//! security analysis prescribes.

use serde::{Deserialize, Serialize};

use crate::wave::{prac_wave_max_acts, prfm_wave_max_acts, PracBackOff, WaveTiming};

/// Starting row-set sizes swept in Fig. 3 (2K – 64K) plus smaller sets that
/// matter for aggressive configurations.
pub const R1_SWEEP: &[u64] = &[
    2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192, 16_384, 32_768, 65_536,
];

/// Worst case over the `R_1` sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WorstCase {
    /// Highest achievable activation count before mitigation.
    pub max_acts: u64,
    /// The starting row-set size that achieves it.
    pub worst_r1: u64,
}

/// Worst-case wave-attack outcome against PRFM with threshold `rfm_th`.
pub fn prfm_worst_case(rfm_th: u32, t: &WaveTiming) -> WorstCase {
    let mut worst = WorstCase {
        max_acts: 0,
        worst_r1: R1_SWEEP[0],
    };
    for &r1 in R1_SWEEP {
        let m = prfm_wave_max_acts(rfm_th, r1, t);
        if m > worst.max_acts {
            worst = WorstCase {
                max_acts: m,
                worst_r1: r1,
            };
        }
    }
    worst
}

/// Worst-case wave-attack outcome against PRAC-N.
pub fn prac_worst_case(nbo: u32, n_ref: u32, n_delay: u32, t: &WaveTiming) -> WorstCase {
    let cfg = PracBackOff {
        nbo,
        n_ref,
        n_delay,
    };
    let mut worst = WorstCase {
        max_acts: 0,
        worst_r1: R1_SWEEP[0],
    };
    for &r1 in R1_SWEEP {
        let m = prac_wave_max_acts(cfg, r1, t);
        if m > worst.max_acts {
            worst = WorstCase {
                max_acts: m,
                worst_r1: r1,
            };
        }
    }
    worst
}

/// Largest `RFMth` that keeps the worst-case activation count below `nrh`,
/// or `None` if even `RFMth = 1` is insecure.
pub fn prfm_secure_threshold(nrh: u32, t: &WaveTiming) -> Option<u32> {
    if prfm_worst_case(1, t).max_acts >= nrh as u64 {
        return None;
    }
    // Worst-case count is monotone non-decreasing in the threshold: binary
    // search the largest secure value.
    let (mut lo, mut hi) = (1u32, 4096u32);
    while lo < hi {
        let mid = (lo + hi).div_ceil(2);
        if prfm_worst_case(mid, t).max_acts < nrh as u64 {
            lo = mid;
        } else {
            hi = mid - 1;
        }
    }
    Some(lo)
}

/// Largest `N_BO` that keeps PRAC-N's worst case below `nrh`, or `None` if
/// even `N_BO = 1` is insecure (the paper: PRAC is not securable below
/// `N_RH = 20`).
pub fn prac_secure_nbo(nrh: u32, n_ref: u32, n_delay: u32, t: &WaveTiming) -> Option<u32> {
    if prac_worst_case(1, n_ref, n_delay, t).max_acts >= nrh as u64 {
        return None;
    }
    let (mut lo, mut hi) = (1u32, nrh.max(2));
    while lo < hi {
        let mid = (lo + hi).div_ceil(2);
        if prac_worst_case(mid, n_ref, n_delay, t).max_acts < nrh as u64 {
            lo = mid;
        } else {
            hi = mid - 1;
        }
    }
    Some(lo)
}

/// The Variable Read Disturbance threshold distribution: `N_RH` is a
/// per-row random variable drawn uniformly from `[floor, nominal]`
/// (PAPERS.md: VRD), parameterized as the nominal threshold plus the
/// weakest row's percentage of it. This is the analytical side of the
/// `vrd-sweep` Monte-Carlo grid — the simulator's per-row oracle
/// (`chronus_dram::ThresholdModel::PerRow`) samples against exactly this
/// floor, and secure-configuration searches must hold at the floor, since
/// a configuration is only secure if the *weakest* row stays safe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct VrdModel {
    /// The nominal (maximum) per-row threshold.
    pub nominal: u32,
    /// The weakest row's threshold as a percentage of nominal (100 =
    /// degenerate: every row at nominal, the scalar model).
    pub min_pct: u32,
}

impl VrdModel {
    /// The weakest row's threshold: `nominal · min_pct / 100`, clamped to
    /// `[1, nominal]`.
    pub fn floor(&self) -> u32 {
        ((self.nominal as u64 * self.min_pct as u64) / 100).clamp(1, self.nominal as u64) as u32
    }

    /// Whether the distribution collapses to the scalar model (every row
    /// at nominal).
    pub fn is_degenerate(&self) -> bool {
        self.floor() == self.nominal
    }

    /// Expected threshold of a uniformly drawn row.
    pub fn mean(&self) -> f64 {
        (self.floor() as f64 + self.nominal as f64) / 2.0
    }
}

/// Largest `RFMth` that keeps every row of a VRD distribution secure: the
/// scalar search evaluated at the distribution's floor.
pub fn prfm_secure_threshold_vrd(model: &VrdModel, t: &WaveTiming) -> Option<u32> {
    prfm_secure_threshold(model.floor(), t)
}

/// Largest `N_BO` that keeps every row of a VRD distribution secure under
/// PRAC-N: the scalar search evaluated at the distribution's floor.
pub fn prac_secure_nbo_vrd(
    model: &VrdModel,
    n_ref: u32,
    n_delay: u32,
    t: &WaveTiming,
) -> Option<u32> {
    prac_secure_nbo(model.floor(), n_ref, n_delay, t)
}

/// One series point of Fig. 3a: max activations vs `RFMth` for each
/// starting row-set size.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig3aPoint {
    /// Bank-activation threshold on the x axis.
    pub rfm_th: u32,
    /// Starting row-set size (colour-coded series).
    pub r1: u64,
    /// Maximum activations to a single row (y axis).
    pub max_acts: u64,
}

/// Regenerates the Fig. 3a sweep.
pub fn fig3a(t: &WaveTiming) -> Vec<Fig3aPoint> {
    let thresholds = [2u32, 3, 4, 8, 16, 32, 64, 80, 128, 256];
    let row_sets = [2048u64, 4096, 8192, 16_384, 32_768, 65_536];
    let mut out = Vec::new();
    for &rfm_th in &thresholds {
        for &r1 in &row_sets {
            out.push(Fig3aPoint {
                rfm_th,
                r1,
                max_acts: prfm_wave_max_acts(rfm_th, r1, t),
            });
        }
    }
    out
}

/// One series point of Fig. 3b: worst-case max activations vs `N_BO` for
/// each PRAC-N variant.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig3bPoint {
    /// Back-off threshold on the x axis.
    pub nbo: u32,
    /// PRAC variant (`N_Ref = N_Delay = n`).
    pub n: u32,
    /// Worst-case maximum activations over the row-set sweep.
    pub max_acts: u64,
    /// The row-set size achieving the worst case.
    pub worst_r1: u64,
}

/// Regenerates the Fig. 3b sweep.
pub fn fig3b(t: &WaveTiming) -> Vec<Fig3bPoint> {
    let nbos = [1u32, 2, 3, 4, 5, 6, 7, 8, 16, 32, 64, 128, 256];
    let variants = [1u32, 2, 4];
    let mut out = Vec::new();
    for &nbo in &nbos {
        for &n in &variants {
            let w = prac_worst_case(nbo, n, n, t);
            out.push(Fig3bPoint {
                nbo,
                n,
                max_acts: w.max_acts,
                worst_r1: w.worst_r1,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prac4_is_securable_at_nrh_20() {
        let t = WaveTiming::prac_default();
        let nbo = prac_secure_nbo(20, 4, 4, &t);
        assert!(nbo.is_some(), "paper: PRAC-4 is secure at N_RH = 20");
    }

    #[test]
    fn prac_is_not_securable_at_very_low_nrh() {
        let t = WaveTiming::prac_default();
        // Below the worst-case wave-attack count even N_BO = 1 fails.
        let floor = prac_worst_case(1, 4, 4, &t).max_acts as u32;
        assert!(prac_secure_nbo(floor, 4, 4, &t).is_none());
    }

    #[test]
    fn secure_nbo_grows_with_nrh() {
        let t = WaveTiming::prac_default();
        let mut prev = 0;
        for nrh in [32u32, 64, 128, 256, 512, 1024] {
            let nbo = prac_secure_nbo(nrh, 4, 4, &t).expect("securable");
            assert!(nbo >= prev, "nbo not monotone at nrh={nrh}");
            prev = nbo;
        }
        assert!(prev > 64, "high N_RH should allow a relaxed threshold");
    }

    #[test]
    fn secure_threshold_is_actually_secure_and_maximal() {
        let t = WaveTiming::prac_default();
        for nrh in [64u32, 256, 1024] {
            let nbo = prac_secure_nbo(nrh, 4, 4, &t).unwrap();
            assert!(prac_worst_case(nbo, 4, 4, &t).max_acts < nrh as u64);
            assert!(prac_worst_case(nbo + 1, 4, 4, &t).max_acts >= nrh as u64);
        }
    }

    #[test]
    fn prfm_secure_threshold_for_low_nrh_is_small() {
        let t = WaveTiming::baseline_default();
        // Fig. 3a: preventing bitflips at N_RH ≈ 32 needs RFMth < 4.
        let th = prfm_secure_threshold(32, &t).expect("securable");
        assert!(th <= 8, "got {th}");
        let th_1k = prfm_secure_threshold(1024, &t).expect("securable");
        assert!(th_1k > th);
    }

    #[test]
    fn vrd_floor_math() {
        let m = VrdModel {
            nominal: 1000,
            min_pct: 50,
        };
        assert_eq!(m.floor(), 500);
        assert!(!m.is_degenerate());
        assert_eq!(m.mean(), 750.0);
        // 100% (or more) collapses to the scalar model.
        let scalar = VrdModel {
            nominal: 64,
            min_pct: 100,
        };
        assert_eq!(scalar.floor(), 64);
        assert!(scalar.is_degenerate());
        // The floor never reaches zero.
        let tiny = VrdModel {
            nominal: 10,
            min_pct: 1,
        };
        assert_eq!(tiny.floor(), 1);
    }

    #[test]
    fn vrd_secure_search_holds_at_the_weakest_row() {
        let t = WaveTiming::prac_default();
        let model = VrdModel {
            nominal: 1024,
            min_pct: 25,
        };
        let vrd_nbo = prac_secure_nbo_vrd(&model, 4, 4, &t).expect("securable");
        let scalar_nbo = prac_secure_nbo(1024, 4, 4, &t).expect("securable");
        assert_eq!(vrd_nbo, prac_secure_nbo(model.floor(), 4, 4, &t).unwrap());
        assert!(
            vrd_nbo <= scalar_nbo,
            "a spread distribution can never relax the threshold"
        );
        // Degenerate distribution = scalar search exactly.
        let degenerate = VrdModel {
            nominal: 1024,
            min_pct: 100,
        };
        assert_eq!(
            prac_secure_nbo_vrd(&degenerate, 4, 4, &t),
            prac_secure_nbo(1024, 4, 4, &t)
        );
        assert_eq!(
            prfm_secure_threshold_vrd(&degenerate, &WaveTiming::baseline_default()),
            prfm_secure_threshold(1024, &WaveTiming::baseline_default())
        );
    }

    #[test]
    fn fig3a_has_full_grid() {
        let pts = fig3a(&WaveTiming::baseline_default());
        assert_eq!(pts.len(), 10 * 6);
        // Larger row sets never reduce the achievable count at fixed th.
        let at = |th: u32, r1: u64| {
            pts.iter()
                .find(|p| p.rfm_th == th && p.r1 == r1)
                .unwrap()
                .max_acts
        };
        assert!(at(256, 65_536) >= at(256, 2048) || at(256, 2048) > 1000);
    }

    #[test]
    fn fig3b_prac4_dominates_prac1() {
        let pts = fig3b(&WaveTiming::prac_default());
        for nbo in [1u32, 4, 16, 64] {
            let get = |n: u32| {
                pts.iter()
                    .find(|p| p.nbo == nbo && p.n == n)
                    .unwrap()
                    .max_acts
            };
            assert!(get(4) <= get(1), "PRAC-4 should dominate at nbo={nbo}");
        }
    }
}
