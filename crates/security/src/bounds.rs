//! Chronus's security bound (§8), ATT sizing, and the §11 / Appendix D
//! maximum DRAM-bandwidth-consumption analysis.

/// Maximum activation count any row can reach under Chronus Back-Off:
/// `N_BO + A_normal` (§8), where `A_normal = ⌊tABOACT / tRC⌋` is the number
/// of activations the window of normal traffic admits.
pub fn chronus_max_acts(nbo: u32, a_normal: u32) -> u32 {
    nbo + a_normal
}

/// Largest secure Chronus back-off threshold for `nrh`: `N_BO < N_RH −
/// A_normal`, additionally capped at 256 by the 8-bit decrementer counter
/// (§7.1). Returns `None` when no positive threshold is secure.
pub fn chronus_secure_nbo(nrh: u32, a_normal: u32) -> Option<u32> {
    if nrh <= a_normal + 1 {
        return None;
    }
    Some((nrh - a_normal - 1).min(256))
}

/// Entries the Aggressor Tracking Table needs to never lose an aggressor:
/// `A_normal + 1` (§8 — the attacker can push at most `A_normal` additional
/// rows past `N_BO` during the window of normal traffic).
pub fn att_entries(a_normal: u32) -> u32 {
    a_normal + 1
}

/// Maximum fraction of DRAM bandwidth an attacker can consume with
/// preventive refreshes in a PRAC-protected system (§11):
/// `(N_Ref·tRFM) / (N_Ref·tRFM + N_BO·tRC)`.
pub fn dbc_prac(nbo: u32, n_ref: u32, trfm_ns: f64, trc_ns: f64) -> f64 {
    let refresh = n_ref as f64 * trfm_ns;
    refresh / (refresh + nbo as f64 * trc_ns)
}

/// Maximum fraction of DRAM bandwidth an attacker can consume in a
/// Chronus-protected system (§11): `tRFM / (tRFM + N_BO·tRC)` — one RFM per
/// back-off is optimal for the attacker (triggering more costs `N_BO·tRC`
/// each).
pub fn dbc_chronus(nbo: u32, trfm_ns: f64, trc_ns: f64) -> f64 {
    trfm_ns / (trfm_ns + nbo as f64 * trc_ns)
}

/// DRAM bandwidth consumption achieved by an arbitrary attack pattern that
/// triggers back-offs after `acts[i] ≥ N_BO` activations each (Appendix D's
/// `DBC` function). Used by property tests to confirm no pattern beats the
/// §11 worst case.
pub fn dbc_of_pattern(
    acts_per_backoff: &[u64],
    nbo: u32,
    n_ref: u32,
    trfm_ns: f64,
    trc_ns: f64,
) -> f64 {
    assert!(
        acts_per_backoff.iter().all(|&a| a >= nbo as u64),
        "triggering a back-off requires at least N_BO activations"
    );
    if acts_per_backoff.is_empty() {
        return 0.0;
    }
    let backoffs = acts_per_backoff.len() as f64;
    let refresh = backoffs * n_ref as f64 * trfm_ns;
    let act_time: f64 = acts_per_backoff.iter().map(|&a| a as f64 * trc_ns).sum();
    refresh / (refresh + act_time)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chronus_bound_matches_section8() {
        // A_normal = ⌊180/47⌋ = 3; the proof gives A(i) ≤ N_BO + 3.
        assert_eq!(chronus_max_acts(16, 3), 19);
    }

    #[test]
    fn chronus_nbo_for_nrh20_is_16() {
        // §11 configures N_BO = 16 for N_RH = 20 (20 − 3 − 1).
        assert_eq!(chronus_secure_nbo(20, 3), Some(16));
    }

    #[test]
    fn chronus_nbo_capped_by_counter_width() {
        assert_eq!(chronus_secure_nbo(1024, 3), Some(256));
        assert_eq!(chronus_secure_nbo(300, 3), Some(256));
        assert_eq!(chronus_secure_nbo(260, 3), Some(256));
        assert_eq!(chronus_secure_nbo(256, 3), Some(252));
    }

    #[test]
    fn chronus_insecure_below_a_normal() {
        assert_eq!(chronus_secure_nbo(4, 3), None);
        assert_eq!(chronus_secure_nbo(5, 3), Some(1));
    }

    #[test]
    fn att_needs_four_entries_for_ddr5() {
        // ⌊180/47⌋ + 1 = 4 (§8).
        assert_eq!(att_entries(3), 4);
    }

    #[test]
    fn dbc_prac_at_nrh20_is_about_94_percent() {
        // §11: N_BO=1, N_Ref=4, tRFM=350 ns, tRC=52 ns → ~94 % (we compute
        // 96.4 %; the paper's 94 % uses additional slack — same conclusion).
        let d = dbc_prac(1, 4, 350.0, 52.0);
        assert!((0.90..=0.97).contains(&d), "got {d}");
    }

    #[test]
    fn dbc_chronus_at_nrh20_is_about_32_percent() {
        // §11: N_BO=16, tRFM=350 ns, tRC=47 ns → 32 %.
        let d = dbc_chronus(16, 350.0, 47.0);
        assert!((0.30..=0.34).contains(&d), "got {d}");
    }

    #[test]
    fn chronus_attack_surface_is_much_smaller_than_prac() {
        let prac = dbc_prac(1, 4, 350.0, 52.0);
        let chronus = dbc_chronus(16, 350.0, 47.0);
        assert!(chronus < prac / 2.0);
    }

    #[test]
    fn no_pattern_beats_the_worst_case() {
        // Appendix D: the minimal pattern (exactly N_BO acts per back-off)
        // maximises DBC; padding any trigger with extra activations lowers it.
        let worst = dbc_of_pattern(&[1, 1, 1, 1], 1, 4, 350.0, 52.0);
        assert!((worst - dbc_prac(1, 4, 350.0, 52.0)).abs() < 1e-12);
        for pattern in [&[1u64, 2, 1, 1][..], &[5, 5, 5], &[1, 100], &[3]] {
            let d = dbc_of_pattern(pattern, 1, 4, 350.0, 52.0);
            assert!(d <= worst + 1e-12, "pattern {pattern:?} beats worst case");
        }
    }

    #[test]
    #[should_panic(expected = "at least N_BO")]
    fn pattern_below_nbo_is_rejected() {
        let _ = dbc_of_pattern(&[3], 4, 4, 350.0, 52.0);
    }
}
