//! The wave (feinting) attack models of §4–§5.
//!
//! The attack hammers a set `R_1` of decoy rows in balanced rounds so that
//! the mitigation can only service a fraction of them per preventive
//! refresh; the last surviving row accumulates one activation per round.
//! Equation 1 (PRFM) and Equation 2 (PRAC-N) of the paper give the number
//! of unmitigated rows at round *i*; the functions here iterate those
//! recurrences under the `tREFW` time budget.
//!
//! [`discrete`] contains an independent event-driven implementation of the
//! same attacks used by property tests to validate the recurrences.

use serde::{Deserialize, Serialize};

/// Timing inputs of the analytical model, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WaveTiming {
    /// Row-cycle time: the attacker's activation period.
    pub trc_ns: f64,
    /// RFM service time (§5: 350 ns, four victims of one aggressor).
    pub trfm_ns: f64,
    /// Window of normal traffic after a back-off (180 ns).
    pub taboact_ns: f64,
    /// Refresh window: the attack must finish before the victims are
    /// periodically refreshed (32 ms).
    pub trefw_ns: f64,
}

impl WaveTiming {
    /// Timings for a PRAC-enabled device (tRC = 52 ns, Table 1).
    pub fn prac_default() -> Self {
        Self {
            trc_ns: 52.0,
            trfm_ns: 350.0,
            taboact_ns: 180.0,
            trefw_ns: 32.0e6,
        }
    }

    /// Timings for a non-PRAC device (tRC = 47 ns) — used for PRFM.
    pub fn baseline_default() -> Self {
        Self {
            trc_ns: 47.0,
            ..Self::prac_default()
        }
    }
}

/// PRAC back-off configuration (§3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PracBackOff {
    /// Back-off threshold: activation count at which the chip asserts
    /// `alert_n`.
    pub nbo: u32,
    /// RFM commands issued per back-off (PRAC-N ⇒ `n_ref = N`).
    pub n_ref: u32,
    /// ACT commands required before a new back-off can be asserted (the
    /// delay period; the JEDEC spec ties it to `n_ref`).
    pub n_delay: u32,
}

impl PracBackOff {
    /// The standard PRAC-N configuration where `N_Ref = N_Delay = n`.
    pub fn prac_n(n: u32, nbo: u32) -> Self {
        Self {
            nbo,
            n_ref: n,
            n_delay: n,
        }
    }
}

/// Safety valve for the recurrence loops; no realistic configuration comes
/// close (the time budget binds first).
const MAX_ROUNDS: u64 = 1 << 22;

/// Maximum activation count a single row can reach under PRFM before its
/// victims are refreshed (Eq. 1 iterated under the `tREFW` budget).
///
/// `rfm_th` is the bank-activation threshold at which the controller issues
/// an RFM; `r1` is the starting row-set size. Each RFM lets the device
/// refresh the victims of exactly one aggressor.
pub fn prfm_wave_max_acts(rfm_th: u32, r1: u64, t: &WaveTiming) -> u64 {
    assert!(rfm_th >= 1, "RFM threshold must be at least 1");
    assert!(r1 >= 1, "the attack needs at least one row");
    let mut cum: u64 = 0; // attacker activations so far
    let mut rounds: u64 = 0;
    while rounds < MAX_ROUNDS {
        let removed = cum / rfm_th as u64; // aggressors mitigated so far
        let remaining = r1.saturating_sub(removed);
        if remaining == 0 {
            break;
        }
        let new_cum = cum + remaining;
        let rfms = new_cum / rfm_th as u64;
        let elapsed = new_cum as f64 * t.trc_ns + rfms as f64 * t.trfm_ns;
        if elapsed > t.trefw_ns {
            break; // victims periodically refreshed before the round ends
        }
        cum = new_cum;
        rounds += 1;
    }
    rounds
}

/// Maximum activation count a single row can reach under PRAC-N (Eq. 2
/// iterated under the `tREFW` budget).
///
/// The attacker first brings every row in `R_1` to `N_BO − 1` activations;
/// afterwards each round adds one activation per surviving row, and the
/// chip can trigger one back-off per `N_Delay + tABOACT/tRC` activations,
/// each servicing `N_Ref` aggressors.
pub fn prac_wave_max_acts(cfg: PracBackOff, r1: u64, t: &WaveTiming) -> u64 {
    assert!(cfg.nbo >= 1, "back-off threshold must be at least 1");
    assert!(cfg.n_ref >= 1, "PRAC issues at least one RFM per back-off");
    assert!(r1 >= 1, "the attack needs at least one row");
    let denom = cfg.n_delay as f64 + t.taboact_ns / t.trc_ns;
    let prep_acts = r1 * (cfg.nbo as u64 - 1);
    let prep_time = prep_acts as f64 * t.trc_ns;
    if prep_time > t.trefw_ns {
        // The preparation phase alone exceeds the refresh window; the best
        // the attacker can do is the prep count on a smaller set — callers
        // sweep `r1`, so just report the count achievable here.
        return (t.trefw_ns / t.trc_ns / r1 as f64).floor() as u64;
    }
    let mut cum: u64 = 0;
    let mut rounds: u64 = 0;
    while rounds < MAX_ROUNDS {
        let removed = cfg.n_ref as u64 * (cum as f64 / denom).floor() as u64;
        let remaining = r1.saturating_sub(removed);
        if remaining == 0 {
            break;
        }
        let new_cum = cum + remaining;
        let backoffs = (new_cum as f64 / denom).floor() as u64;
        let elapsed = prep_time
            + new_cum as f64 * t.trc_ns
            + backoffs as f64 * (cfg.n_ref as f64 * t.trfm_ns);
        if elapsed > t.trefw_ns {
            break;
        }
        cum = new_cum;
        rounds += 1;
    }
    cfg.nbo as u64 - 1 + rounds
}

/// Independent discrete-event implementations of the same attacks, used to
/// validate the recurrences.
pub mod discrete {
    use super::*;

    /// Event-driven wave attack against PRFM: the attacker round-robins the
    /// surviving rows; every `rfm_th`-th bank activation triggers an RFM
    /// that mitigates the row with the highest activation count.
    pub fn prfm_attack(rfm_th: u32, r1: usize, t: &WaveTiming) -> u64 {
        let mut counts: Vec<u64> = vec![0; r1];
        let mut alive: Vec<usize> = (0..r1).collect();
        let mut bank_acts: u64 = 0;
        let mut elapsed = 0.0;
        let mut max_count = 0u64;
        while !alive.is_empty() {
            let mut idx = 0;
            while idx < alive.len() {
                let row = alive[idx];
                counts[row] += 1;
                max_count = max_count.max(counts[row]);
                bank_acts += 1;
                elapsed += t.trc_ns;
                if elapsed > t.trefw_ns {
                    return max_count;
                }
                if bank_acts.is_multiple_of(rfm_th as u64) {
                    // Mitigate the hottest surviving row.
                    elapsed += t.trfm_ns;
                    if let Some((pos, _)) = alive.iter().enumerate().max_by_key(|(_, &r)| counts[r])
                    {
                        let removed = alive.swap_remove(pos);
                        counts[removed] = 0;
                        if removed == row {
                            // The row we just hammered was mitigated;
                            // continue from the same position.
                            continue;
                        }
                        if pos < idx && idx > 0 {
                            idx -= 1;
                        }
                    }
                }
                idx += 1;
            }
        }
        max_count
    }

    /// Event-driven wave attack against PRAC-N.
    ///
    /// Rows are prepared to `nbo − 1` activations; afterwards the attacker
    /// round-robins the surviving rows. A back-off fires once some row
    /// reaches `nbo` *and* the delay period has elapsed; the attacker then
    /// gets `⌊tABOACT / tRC⌋` more activations before the recovery refreshes
    /// the `n_ref` hottest rows.
    pub fn prac_attack(cfg: PracBackOff, r1: usize, t: &WaveTiming) -> u64 {
        let window_acts = (t.taboact_ns / t.trc_ns).floor() as u64;
        let mut counts: Vec<u64> = vec![cfg.nbo as u64 - 1; r1];
        let mut alive: Vec<usize> = (0..r1).collect();
        let mut elapsed = (r1 as u64 * (cfg.nbo as u64 - 1)) as f64 * t.trc_ns;
        let mut max_count = cfg.nbo as u64 - 1;
        if elapsed > t.trefw_ns {
            return ((t.trefw_ns / t.trc_ns) / r1 as f64).floor() as u64;
        }
        let mut acts_since_recovery: u64 = cfg.n_delay as u64; // first back-off is free
        let mut pos = 0usize;
        loop {
            if alive.is_empty() {
                return max_count;
            }
            if pos >= alive.len() {
                pos = 0;
            }
            let row = alive[pos];
            counts[row] += 1;
            max_count = max_count.max(counts[row]);
            acts_since_recovery += 1;
            elapsed += t.trc_ns;
            if elapsed > t.trefw_ns {
                return max_count;
            }
            let backoff =
                counts[row] >= cfg.nbo as u64 && acts_since_recovery >= cfg.n_delay as u64;
            if backoff {
                // Window of normal traffic: hammer `window_acts` more rows.
                for _ in 0..window_acts {
                    pos = (pos + 1) % alive.len();
                    let r = alive[pos];
                    counts[r] += 1;
                    max_count = max_count.max(counts[r]);
                    elapsed += t.trc_ns;
                    if elapsed > t.trefw_ns {
                        return max_count;
                    }
                }
                // Recovery: refresh the n_ref hottest rows.
                elapsed += cfg.n_ref as f64 * t.trfm_ns;
                if elapsed > t.trefw_ns {
                    return max_count;
                }
                for _ in 0..cfg.n_ref {
                    if let Some((p, _)) = alive.iter().enumerate().max_by_key(|(_, &r)| counts[r]) {
                        let removed = alive.swap_remove(p);
                        counts[removed] = 0;
                    }
                }
                acts_since_recovery = 0;
                // Round-robin continues where it left off (the attacker
                // does not restart the wave after a recovery).
                continue;
            }
            pos += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prfm_small_threshold_bounds_attack_tightly() {
        let t = WaveTiming::baseline_default();
        // With RFMth = 1 every activation is answered by a refresh of the
        // hottest row: the wave can never build up.
        let m = prfm_wave_max_acts(1, 4096, &t);
        assert!(m <= 2, "got {m}");
    }

    #[test]
    fn prfm_worst_case_grows_with_threshold() {
        // The attacker picks the best R_1 per threshold; only the maximum
        // over row sets is monotone in RFMth (the time budget makes any
        // fixed R_1 non-monotone).
        let t = WaveTiming::baseline_default();
        let worst = |th: u32| {
            crate::sweep::R1_SWEEP
                .iter()
                .map(|&r1| prfm_wave_max_acts(th, r1, &t))
                .max()
                .unwrap()
        };
        let mut prev = 0;
        for th in [2u32, 8, 32, 128] {
            let m = worst(th);
            assert!(m >= prev, "not monotone at th={th}: {m} < {prev}");
            prev = m;
        }
        assert!(prev > 64, "large thresholds should allow large counts");
    }

    #[test]
    fn prfm_max_acts_grows_with_row_set_when_time_permits() {
        // With a small threshold the whole attack fits in tREFW, so larger
        // decoy sets strictly help.
        let t = WaveTiming::baseline_default();
        let a = prfm_wave_max_acts(8, 64, &t);
        let b = prfm_wave_max_acts(8, 256, &t);
        let c = prfm_wave_max_acts(8, 1024, &t);
        assert!(a <= b && b <= c, "{a} {b} {c}");
    }

    #[test]
    fn prac4_most_aggressive_config_matches_paper_scale() {
        // Paper Fig. 3b: PRAC-4 with N_BO = 1 allows at most 19 activations,
        // making N_RH = 20 the lowest secure threshold. Our recurrence lands
        // in the same range.
        let t = WaveTiming::prac_default();
        let mut worst = 0;
        for r1 in [1024u64, 4096, 16_384, 65_536] {
            worst = worst.max(prac_wave_max_acts(PracBackOff::prac_n(4, 1), r1, &t));
        }
        assert!(
            (10..=24).contains(&worst),
            "worst case {worst} out of range"
        );
    }

    #[test]
    fn prac_max_acts_grows_with_nbo() {
        let t = WaveTiming::prac_default();
        let mut prev = 0;
        for nbo in [1u32, 2, 4, 8, 16, 32, 64] {
            let m = prac_wave_max_acts(PracBackOff::prac_n(4, nbo), 16_384, &t);
            assert!(m >= prev, "not monotone at nbo={nbo}");
            prev = m;
        }
    }

    #[test]
    fn more_rfms_per_backoff_reduce_max_acts() {
        let t = WaveTiming::prac_default();
        let m1 = prac_wave_max_acts(PracBackOff::prac_n(1, 4), 16_384, &t);
        let m4 = prac_wave_max_acts(PracBackOff::prac_n(4, 4), 16_384, &t);
        assert!(m4 <= m1, "PRAC-4 ({m4}) should beat PRAC-1 ({m1})");
    }

    #[test]
    fn discrete_prfm_tracks_recurrence() {
        let t = WaveTiming::baseline_default();
        for (th, r1) in [(4u32, 64u64), (8, 128), (16, 256), (32, 512)] {
            let rec = prfm_wave_max_acts(th, r1, &t);
            let sim = discrete::prfm_attack(th, r1 as usize, &t);
            let diff = rec.abs_diff(sim);
            assert!(
                diff <= rec.max(sim) / 4 + 2,
                "th={th} r1={r1}: recurrence {rec} vs sim {sim}"
            );
        }
    }

    #[test]
    fn discrete_prac_tracks_recurrence() {
        let t = WaveTiming::prac_default();
        for (n, nbo, r1) in [(4u32, 1u32, 256u64), (2, 1, 256), (4, 8, 128), (1, 4, 128)] {
            let rec = prac_wave_max_acts(PracBackOff::prac_n(n, nbo), r1, &t);
            let sim = discrete::prac_attack(PracBackOff::prac_n(n, nbo), r1 as usize, &t);
            let diff = rec.abs_diff(sim);
            assert!(
                diff <= rec.max(sim) / 3 + 3,
                "n={n} nbo={nbo} r1={r1}: recurrence {rec} vs sim {sim}"
            );
        }
    }

    #[test]
    fn time_budget_caps_huge_row_sets() {
        let t = WaveTiming::baseline_default();
        // 64K rows × large threshold would take > tREFW; the bound must stay
        // finite and meaningfully below the unconstrained round count.
        let m = prfm_wave_max_acts(1024, 65_536, &t);
        assert!(m < 2000, "time budget not applied: {m}");
    }
}
