//! Parallel experiment execution over the local cores.
//!
//! The paper's artifact farms ~500 Ramulator jobs onto a Slurm cluster;
//! here a crossbeam-scoped worker pool runs the (workload × mechanism ×
//! N_RH) grid on the local machine.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Applies `f` to every item on `threads` worker threads, preserving input
/// order in the output.
pub fn run_parallel<T, R, F>(items: Vec<T>, threads: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let threads = threads.max(1);
    let n = items.len();
    let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let work: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let next = AtomicUsize::new(0);
    crossbeam::scope(|s| {
        for _ in 0..threads.min(n.max(1)) {
            s.spawn(|_| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = work[i].lock().expect("work slot").take().expect("taken once");
                let r = f(item);
                *slots[i].lock().expect("result slot") = Some(r);
            });
        }
    })
    .expect("worker panicked");
    slots
        .into_iter()
        .map(|m| m.into_inner().expect("result mutex").expect("result set"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let out = run_parallel((0..100).collect(), 8, |x: i32| x * 2);
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn works_single_threaded() {
        let out = run_parallel(vec!["a", "bb", "ccc"], 1, |s: &str| s.len());
        assert_eq!(out, vec![1, 2, 3]);
    }

    #[test]
    fn empty_input() {
        let out: Vec<i32> = run_parallel(Vec::<i32>::new(), 4, |x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn more_threads_than_items() {
        let out = run_parallel(vec![1, 2], 16, |x: i32| x + 1);
        assert_eq!(out, vec![2, 3]);
    }
}
