//! Parallel experiment execution over the local cores.
//!
//! The paper's artifact farms ~500 Ramulator jobs onto a Slurm cluster;
//! here a `std::thread::scope` worker pool runs the (workload × mechanism ×
//! N_RH) grid on the local machine. Items are dealt round-robin into
//! per-worker chunks; each worker owns its chunk outright and streams
//! `(index, result)` pairs back over an mpsc channel, so no slot-level
//! locking (and no `unsafe`) is needed while input order is still
//! preserved in the output.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc;

/// Renders a panic payload as text for error reporting.
fn panic_text(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_string()
    }
}

/// Applies `f` to every item on `threads` worker threads, preserving input
/// order in the output. A panicking `f` aborts the whole call — callers
/// that must survive per-item panics use [`try_run_parallel`].
pub fn run_parallel<T, R, F>(items: Vec<T>, threads: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    try_run_parallel(items, threads, f)
        .into_iter()
        .map(|r| r.unwrap_or_else(|msg| panic!("parallel worker panicked: {msg}")))
        .collect()
}

/// Panic-isolated [`run_parallel`]: each item's `f` runs under
/// `catch_unwind`, so one panicking item becomes `Err(panic message)` in
/// its output slot while every other item still completes. Input order is
/// preserved.
pub fn try_run_parallel<T, R, F>(items: Vec<T>, threads: usize, f: F) -> Vec<Result<R, String>>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let guarded = |item: T| catch_unwind(AssertUnwindSafe(|| f(item))).map_err(panic_text);
    let threads = threads.max(1).min(n);
    if threads == 1 {
        return items.into_iter().map(guarded).collect();
    }

    // Deal items round-robin so long-running neighbours (e.g. one slow mix
    // class) spread across workers.
    let mut chunks: Vec<Vec<(usize, T)>> = (0..threads).map(|_| Vec::new()).collect();
    for (i, item) in items.into_iter().enumerate() {
        chunks[i % threads].push((i, item));
    }

    let (tx, rx) = mpsc::channel::<(usize, Result<R, String>)>();
    let guarded = &guarded;
    std::thread::scope(|s| {
        for chunk in chunks {
            let tx = tx.clone();
            s.spawn(move || {
                for (i, item) in chunk {
                    if tx.send((i, guarded(item))).is_err() {
                        // Receiver gone: the main thread is unwinding.
                        return;
                    }
                }
            });
        }
        drop(tx);
        let mut out: Vec<Option<Result<R, String>>> = (0..n).map(|_| None).collect();
        for (i, r) in rx {
            debug_assert!(out[i].is_none(), "result {i} delivered twice");
            out[i] = Some(r);
        }
        out.into_iter()
            .map(|r| r.expect("worker delivered every result"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let out = run_parallel((0..100).collect(), 8, |x: i32| x * 2);
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn works_single_threaded() {
        let out = run_parallel(vec!["a", "bb", "ccc"], 1, |s: &str| s.len());
        assert_eq!(out, vec![1, 2, 3]);
    }

    #[test]
    fn empty_input() {
        let out: Vec<i32> = run_parallel(Vec::<i32>::new(), 4, |x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn more_threads_than_items() {
        let out = run_parallel(vec![1, 2], 16, |x: i32| x + 1);
        assert_eq!(out, vec![2, 3]);
    }

    #[test]
    fn uneven_items_balance_across_workers() {
        let out = run_parallel((0..37).collect(), 5, |x: u64| x * x);
        assert_eq!(out, (0..37).map(|x| x * x).collect::<Vec<_>>());
    }

    #[test]
    fn try_variant_isolates_panics_per_item() {
        let out = try_run_parallel((0..10).collect(), 4, |x: i32| {
            if x % 3 == 0 {
                panic!("boom at {x}");
            }
            x * 2
        });
        assert_eq!(out.len(), 10);
        for (i, slot) in out.iter().enumerate() {
            if i % 3 == 0 {
                assert_eq!(slot.as_ref().unwrap_err(), &format!("boom at {i}"));
            } else {
                assert_eq!(slot.as_ref().unwrap(), &(i as i32 * 2));
            }
        }
    }

    #[test]
    fn try_variant_isolates_panics_single_threaded() {
        let out = try_run_parallel(vec![1, 2, 3], 1, |x: i32| {
            if x == 2 {
                panic!("two");
            }
            x
        });
        assert_eq!(out[0], Ok(1));
        assert_eq!(out[1], Err("two".to_string()));
        assert_eq!(out[2], Ok(3));
    }

    #[test]
    #[should_panic(expected = "parallel worker panicked: unlucky")]
    fn plain_variant_propagates_panics() {
        let _ = run_parallel(vec![0, 7], 2, |x: i32| {
            if x == 7 {
                panic!("unlucky");
            }
            x
        });
    }
}
