//! Parallel experiment execution over the local cores.
//!
//! The paper's artifact farms ~500 Ramulator jobs onto a Slurm cluster;
//! here a `std::thread::scope` worker pool runs the (workload × mechanism ×
//! N_RH) grid on the local machine. Items are dealt round-robin into
//! per-worker chunks; each worker owns its chunk outright and streams
//! `(index, result)` pairs back over an mpsc channel, so no slot-level
//! locking (and no `unsafe`) is needed while input order is still
//! preserved in the output.

use std::sync::mpsc;

/// Applies `f` to every item on `threads` worker threads, preserving input
/// order in the output.
pub fn run_parallel<T, R, F>(items: Vec<T>, threads: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let threads = threads.max(1).min(n);
    if threads == 1 {
        return items.into_iter().map(f).collect();
    }

    // Deal items round-robin so long-running neighbours (e.g. one slow mix
    // class) spread across workers.
    let mut chunks: Vec<Vec<(usize, T)>> = (0..threads).map(|_| Vec::new()).collect();
    for (i, item) in items.into_iter().enumerate() {
        chunks[i % threads].push((i, item));
    }

    let (tx, rx) = mpsc::channel::<(usize, R)>();
    let f = &f;
    std::thread::scope(|s| {
        for chunk in chunks {
            let tx = tx.clone();
            s.spawn(move || {
                for (i, item) in chunk {
                    if tx.send((i, f(item))).is_err() {
                        // Receiver gone: the main thread is unwinding.
                        return;
                    }
                }
            });
        }
        drop(tx);
        let mut out: Vec<Option<R>> = (0..n).map(|_| None).collect();
        for (i, r) in rx {
            debug_assert!(out[i].is_none(), "result {i} delivered twice");
            out[i] = Some(r);
        }
        out.into_iter()
            .map(|r| r.expect("worker delivered every result"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let out = run_parallel((0..100).collect(), 8, |x: i32| x * 2);
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn works_single_threaded() {
        let out = run_parallel(vec!["a", "bb", "ccc"], 1, |s: &str| s.len());
        assert_eq!(out, vec![1, 2, 3]);
    }

    #[test]
    fn empty_input() {
        let out: Vec<i32> = run_parallel(Vec::<i32>::new(), 4, |x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn more_threads_than_items() {
        let out = run_parallel(vec![1, 2], 16, |x: i32| x + 1);
        assert_eq!(out, vec![2, 3]);
    }

    #[test]
    fn uneven_items_balance_across_workers() {
        let out = run_parallel((0..37).collect(), 5, |x: u64| x * x);
        assert_eq!(out, (0..37).map(|x| x * x).collect::<Vec<_>>());
    }
}
