//! Full-system simulator.
//!
//! Wires the trace-driven cores and shared LLC (`chronus-cpu`), memory
//! controller (`chronus-ctrl`), DDR5 device (`chronus-dram`), mitigation
//! mechanisms (`chronus-core`) and energy model (`chronus-energy`) into
//! the evaluation platform of Table 2, with the 4.2 GHz : 1.6 GHz clock
//! ratio expressed exactly as 21 CPU cycles per 8 memory cycles.
//!
//! ```no_run
//! use chronus_sim::{SimConfig, System};
//! use chronus_core::MechanismKind;
//! use chronus_workloads::synthetic_app;
//!
//! let mut cfg = SimConfig::four_core();
//! cfg.mechanism = MechanismKind::Chronus;
//! cfg.nrh = 1024;
//! let traces: Vec<_> = ["429.mcf", "470.lbm", "tpch2", "511.povray"]
//!     .iter()
//!     .enumerate()
//!     .map(|(i, n)| synthetic_app(n, i as u64).unwrap().generate(100_000, 42))
//!     .collect();
//! let report = System::build(&cfg).run(traces);
//! println!("weighted IPC sum: {:?}", report.ipc);
//! ```

pub mod config;
pub mod parallel;
pub mod report;
pub mod slab;
pub mod system;

pub use config::{SimConfig, VrdSpec};
pub use parallel::{run_parallel, try_run_parallel};
pub use report::SimReport;
pub use slab::InflightSlab;
pub use system::System;
