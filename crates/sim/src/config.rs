//! Simulation configuration (Table 2 defaults).

use chronus_core::MechanismKind;
use chronus_cpu::{CacheConfig, CoreConfig};
use chronus_ctrl::AddressMapping;
use chronus_dram::{Geometry, TimingMode};
use serde::{Deserialize, Serialize};

/// Everything needed to build a [`crate::System`].
///
/// Serialization is stable field-by-field JSON: the experiment-grid result
/// cache (`chronus-grid`) derives its content-addressed cell keys from this
/// representation, so renaming or reordering fields invalidates cached
/// sweeps (which is the safe direction).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Number of cores (and traces).
    pub num_cores: usize,
    /// Instructions each core must retire.
    pub instructions_per_core: u64,
    /// RowHammer threshold the mechanism is configured for.
    pub nrh: u32,
    /// The mitigation mechanism under test.
    pub mechanism: MechanismKind,
    /// Force the mechanism threshold (PRAC/Chronus `N_BO`, PRFM `RFMth`)
    /// instead of deriving the secure value — ablations and
    /// paper-published configurations.
    pub threshold_override: Option<u32>,
    /// Address mapping; `None` uses the mechanism's preferred mapping
    /// (MOP, or ABACuS-MOP for ABACuS).
    pub mapping: Option<AddressMapping>,
    /// Override the timing mode (Table 4 uses `PracBuggy`); `None` uses
    /// the mechanism's mode.
    pub timing_override: Option<TimingMode>,
    /// LLC configuration.
    pub llc: CacheConfig,
    /// Core configuration.
    pub core: CoreConfig,
    /// DRAM geometry.
    pub geometry: Geometry,
    /// Attach the ground-truth disturbance oracle (slower; used by the
    /// security harness).
    pub oracle: bool,
    /// Panic on any DRAM timing violation (tests); off for speed in
    /// harness runs.
    pub strict_timing: bool,
    /// RNG seed (PARA and workload placement).
    pub seed: u64,
    /// Safety limit on memory cycles (0 = none).
    pub max_mem_cycles: u64,
    /// Attach the timing-observability probe (`chronus_ctrl::obs`): the
    /// report gains an `ObsReport` section. Observational only — every
    /// pre-existing report field is unchanged by this flag.
    pub obs: bool,
}

impl SimConfig {
    /// The paper's four-core configuration (Table 2).
    pub fn four_core() -> Self {
        Self {
            num_cores: 4,
            instructions_per_core: 100_000,
            nrh: 1024,
            mechanism: MechanismKind::None,
            threshold_override: None,
            mapping: None,
            timing_override: None,
            llc: CacheConfig::default(),
            core: CoreConfig::default(),
            geometry: Geometry::ddr5(),
            oracle: false,
            strict_timing: false,
            seed: 1,
            max_mem_cycles: 0,
            obs: false,
        }
    }

    /// Single-core configuration (Fig. 7).
    pub fn single_core() -> Self {
        Self {
            num_cores: 1,
            ..Self::four_core()
        }
    }

    /// The Appendix E eight-core configuration: eight cores over the 4.5×
    /// larger LLC of [Kim+, CAL'25].
    pub fn eight_core_large_llc() -> Self {
        Self {
            num_cores: 8,
            llc: CacheConfig::large_kim25(),
            ..Self::four_core()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_core_matches_table2() {
        let c = SimConfig::four_core();
        assert_eq!(c.num_cores, 4);
        assert_eq!(c.llc.capacity, 8 << 20);
        assert_eq!(c.core.window, 128);
        assert_eq!(c.core.width, 4);
        assert_eq!(c.geometry.total_banks(), 64);
    }

    #[test]
    fn eight_core_uses_large_cache() {
        let c = SimConfig::eight_core_large_llc();
        assert_eq!(c.num_cores, 8);
        assert_eq!(c.llc.capacity, 36 << 20);
    }
}
