//! Simulation configuration (Table 2 defaults).

use chronus_core::MechanismKind;
use chronus_cpu::{CacheConfig, CoreConfig};
use chronus_ctrl::AddressMapping;
use chronus_dram::{Geometry, ThresholdModel, TimingMode};
use chronus_security::VrdModel;
use serde::{Deserialize, Serialize};

/// Variable Read Disturbance sampling: give the oracle per-row thresholds
/// drawn uniformly from `[nominal·min_pct/100, nominal]` instead of the
/// scalar `nrh`. Purely observational — the oracle never affects timing —
/// so two configs differing only here simulate identically and can share
/// one batched run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct VrdSpec {
    /// The weakest row's threshold as a percentage of `nrh` (100 =
    /// degenerate: the scalar model, still sampled per row).
    pub min_pct: u32,
    /// Per-row sampling seed (independent of the mechanism seed).
    pub seed: u64,
}

/// Everything needed to build a [`crate::System`].
///
/// Serialization is stable field-by-field JSON: the experiment-grid result
/// cache (`chronus-grid`) derives its content-addressed cell keys from this
/// representation, so renaming or reordering fields invalidates cached
/// sweeps (which is the safe direction).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Number of cores (and traces).
    pub num_cores: usize,
    /// Instructions each core must retire.
    pub instructions_per_core: u64,
    /// RowHammer threshold the mechanism is configured for.
    pub nrh: u32,
    /// The mitigation mechanism under test.
    pub mechanism: MechanismKind,
    /// Force the mechanism threshold (PRAC/Chronus `N_BO`, PRFM `RFMth`)
    /// instead of deriving the secure value — ablations and
    /// paper-published configurations.
    pub threshold_override: Option<u32>,
    /// Address mapping; `None` uses the mechanism's preferred mapping
    /// (MOP, or ABACuS-MOP for ABACuS).
    pub mapping: Option<AddressMapping>,
    /// Override the timing mode (Table 4 uses `PracBuggy`); `None` uses
    /// the mechanism's mode.
    pub timing_override: Option<TimingMode>,
    /// LLC configuration.
    pub llc: CacheConfig,
    /// Core configuration.
    pub core: CoreConfig,
    /// DRAM geometry.
    pub geometry: Geometry,
    /// Attach the ground-truth disturbance oracle (slower; used by the
    /// security harness).
    pub oracle: bool,
    /// Panic on any DRAM timing violation (tests); off for speed in
    /// harness runs.
    pub strict_timing: bool,
    /// RNG seed (PARA and workload placement).
    pub seed: u64,
    /// Safety limit on memory cycles (0 = none).
    pub max_mem_cycles: u64,
    /// Attach the timing-observability probe (`chronus_ctrl::obs`): the
    /// report gains an `ObsReport` section. Observational only — every
    /// pre-existing report field is unchanged by this flag.
    pub obs: bool,
    /// Per-row N_RH distribution for the oracle (requires `oracle`);
    /// `None` keeps the scalar `nrh` threshold.
    pub vrd: Option<VrdSpec>,
}

impl SimConfig {
    /// The paper's four-core configuration (Table 2).
    pub fn four_core() -> Self {
        Self {
            num_cores: 4,
            instructions_per_core: 100_000,
            nrh: 1024,
            mechanism: MechanismKind::None,
            threshold_override: None,
            mapping: None,
            timing_override: None,
            llc: CacheConfig::default(),
            core: CoreConfig::default(),
            geometry: Geometry::ddr5(),
            oracle: false,
            strict_timing: false,
            seed: 1,
            max_mem_cycles: 0,
            obs: false,
            vrd: None,
        }
    }

    /// Single-core configuration (Fig. 7).
    pub fn single_core() -> Self {
        Self {
            num_cores: 1,
            ..Self::four_core()
        }
    }

    /// The Appendix E eight-core configuration: eight cores over the 4.5×
    /// larger LLC of [Kim+, CAL'25].
    pub fn eight_core_large_llc() -> Self {
        Self {
            num_cores: 8,
            llc: CacheConfig::large_kim25(),
            ..Self::four_core()
        }
    }

    /// The oracle threshold model this configuration implies: the scalar
    /// `nrh`, or a per-row VRD distribution whose floor comes from the
    /// analytical [`VrdModel`] (so the simulated weakest row and the
    /// security-search floor are the same number).
    pub fn oracle_model(&self) -> ThresholdModel {
        match self.vrd {
            None => ThresholdModel::Uniform(self.nrh),
            Some(v) => ThresholdModel::PerRow {
                nominal: self.nrh,
                floor: VrdModel {
                    nominal: self.nrh,
                    min_pct: v.min_pct,
                }
                .floor(),
                seed: v.seed,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_core_matches_table2() {
        let c = SimConfig::four_core();
        assert_eq!(c.num_cores, 4);
        assert_eq!(c.llc.capacity, 8 << 20);
        assert_eq!(c.core.window, 128);
        assert_eq!(c.core.width, 4);
        assert_eq!(c.geometry.total_banks(), 64);
    }

    #[test]
    fn eight_core_uses_large_cache() {
        let c = SimConfig::eight_core_large_llc();
        assert_eq!(c.num_cores, 8);
        assert_eq!(c.llc.capacity, 36 << 20);
    }

    #[test]
    fn oracle_model_follows_vrd_spec() {
        let mut c = SimConfig::single_core();
        c.nrh = 1000;
        assert_eq!(c.oracle_model(), ThresholdModel::Uniform(1000));
        c.vrd = Some(VrdSpec {
            min_pct: 50,
            seed: 7,
        });
        assert_eq!(
            c.oracle_model(),
            ThresholdModel::PerRow {
                nominal: 1000,
                floor: 500,
                seed: 7,
            }
        );
        // Degenerate distribution: still per-row, floor pinned at nominal.
        c.vrd = Some(VrdSpec {
            min_pct: 100,
            seed: 7,
        });
        assert_eq!(
            c.oracle_model(),
            ThresholdModel::PerRow {
                nominal: 1000,
                floor: 1000,
                seed: 7,
            }
        );
    }
}
