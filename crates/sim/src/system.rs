//! System assembly and the main simulation loop.

use std::collections::HashMap;

use chronus_core::MechanismKind;
use chronus_cpu::{CoreState, SharedLlc, SimpleO3Core, Trace, UncoreRequest};
use chronus_ctrl::{CtrlConfig, MemRequest, MemoryController, ReqKind};
use chronus_dram::{DramConfig, DramDevice};
use chronus_energy::{EnergyParams, MechanismEnergy};

use crate::config::SimConfig;
use crate::report::SimReport;

/// CPU cycles per `CLOCK_MEM` memory cycles: 4.2 GHz / 1.6 GHz = 21 / 8.
const CLOCK_CPU: u64 = 21;
const CLOCK_MEM: u64 = 8;

/// A fully wired simulation instance.
pub struct System {
    cfg: SimConfig,
    dram: DramDevice,
    ctrl: MemoryController,
    llc: SharedLlc,
    mechanism_label: String,
    secure: bool,
}

impl System {
    /// Builds the platform for `cfg` (mechanism thresholds are derived
    /// from the analytical security models).
    pub fn build(cfg: &SimConfig) -> Self {
        let setup =
            cfg.mechanism
                .build_with_threshold(cfg.nrh, cfg.geometry, cfg.seed, cfg.threshold_override);
        let timing_mode = cfg.timing_override.unwrap_or(setup.timing_mode);
        let mut dram_cfg = DramConfig::with_mode(timing_mode);
        dram_cfg.geometry = cfg.geometry;
        dram_cfg.strict = cfg.strict_timing;
        if cfg.oracle {
            dram_cfg.oracle_nrh = Some(cfg.nrh);
        }
        let dram = DramDevice::with_mitigation(dram_cfg, setup.dram_mitigation);
        let ctrl_cfg = CtrlConfig {
            mapping: cfg
                .mapping
                .unwrap_or_else(|| cfg.mechanism.preferred_mapping()),
            rfm_policy: setup.rfm_policy,
            raa_threshold: setup.raa_threshold,
            ..CtrlConfig::default()
        };
        let ctrl = MemoryController::with_mitigation(ctrl_cfg, &dram, setup.ctrl_mitigation);
        let llc = SharedLlc::new(cfg.llc);
        Self {
            cfg: cfg.clone(),
            dram,
            ctrl,
            llc,
            mechanism_label: cfg.mechanism.label().to_string(),
            secure: setup.secure,
        }
    }

    /// Runs `traces` (one per core) until every core retires its target,
    /// then returns the report.
    ///
    /// # Panics
    ///
    /// Panics if the number of traces does not match `num_cores`.
    pub fn run(mut self, traces: Vec<Trace>) -> SimReport {
        assert_eq!(
            traces.len(),
            self.cfg.num_cores,
            "need one trace per core"
        );
        let mapping = self.ctrl.config().mapping;
        let geo = *self.dram.geometry();
        let llc_hit_latency = self.cfg.llc.hit_latency;
        let mut cores: Vec<SimpleO3Core> = traces
            .into_iter()
            .enumerate()
            .map(|(i, t)| {
                SimpleO3Core::new(
                    i as u8,
                    self.cfg.core,
                    t,
                    self.cfg.instructions_per_core,
                    llc_hit_latency,
                )
            })
            .collect();

        let mut mem_cycle: u64 = 0;
        let mut cpu_cycle: u64 = 0;
        let mut cpu_credit: u64 = 0;
        let mut next_req_id: u64 = 1;
        // req id → (line address, uncached) for fill routing.
        let mut inflight: HashMap<u64, (u64, bool)> = HashMap::new();
        let mut completions = Vec::new();
        let mut truncated = false;

        loop {
            // --- memory domain ---
            self.ctrl.tick(&mut self.dram, mem_cycle);
            completions.clear();
            self.ctrl.drain_completions(mem_cycle, &mut completions);
            for c in &completions {
                if let Some((line, uncached)) = inflight.remove(&c.id) {
                    let fill = self.llc.on_fill(line, uncached);
                    for token in fill.waiters {
                        let core = SimpleO3Core::token_core(token) as usize;
                        cores[core].on_mem_complete(token, cpu_cycle);
                    }
                    if let Some(victim) = fill.writeback {
                        let addr = mapping.decode(victim, &geo);
                        // Writebacks are controller-internal; a full write
                        // queue simply retries next cycle via the outbox
                        // path below (we re-queue through the LLC outbox).
                        if !self.ctrl.push_request(MemRequest {
                            id: 0,
                            kind: ReqKind::Write,
                            addr,
                            core: chronus_ctrl::request::INTERNAL_CORE,
                            arrived: mem_cycle,
                        }) {
                            // Drop-retry: push back into the outbox.
                            self.llc_push_writeback(victim);
                        }
                    }
                }
            }
            // Forward LLC misses/writebacks to the controller.
            while let Some(req) = self.llc.peek_request() {
                let kind = if req.write {
                    ReqKind::Write
                } else {
                    ReqKind::Read
                };
                if !self.ctrl.can_accept(kind) {
                    break;
                }
                let req: UncoreRequest = *req;
                self.llc.pop_request();
                let id = next_req_id;
                next_req_id += 1;
                let addr = mapping.decode(req.line_addr, &geo);
                let accepted = self.ctrl.push_request(MemRequest {
                    id,
                    kind,
                    addr,
                    core: 0,
                    arrived: mem_cycle,
                });
                debug_assert!(accepted);
                if !req.write {
                    inflight.insert(id, (req.line_addr, req.uncached));
                }
            }

            // --- CPU domain (21 CPU cycles per 8 memory cycles) ---
            cpu_credit += CLOCK_CPU;
            while cpu_credit >= CLOCK_MEM {
                cpu_credit -= CLOCK_MEM;
                for core in cores.iter_mut() {
                    core.tick(cpu_cycle, &mut self.llc);
                }
                cpu_cycle += 1;
            }

            mem_cycle += 1;
            if cores.iter().all(|c| c.state() == CoreState::Done) {
                break;
            }
            if self.cfg.max_mem_cycles > 0 && mem_cycle >= self.cfg.max_mem_cycles {
                truncated = true;
                break;
            }
        }

        self.dram.finalize(mem_cycle);
        let mech_energy = match self.cfg.mechanism {
            MechanismKind::Prac1
            | MechanismKind::Prac2
            | MechanismKind::Prac4
            | MechanismKind::PracPrfm => MechanismEnergy::prac(),
            MechanismKind::Chronus | MechanismKind::ChronusPb => MechanismEnergy::chronus(),
            _ => MechanismEnergy::default(),
        };
        let energy = chronus_energy::compute(
            self.dram.stats(),
            &self.dram.mitigation_stats(),
            self.dram.timings(),
            &EnergyParams::default(),
            &mech_energy,
            2 * self.dram.config().blast_radius,
        );
        SimReport {
            mechanism: self.mechanism_label,
            nrh: self.cfg.nrh,
            secure: self.secure,
            mem_cycles: mem_cycle,
            cpu_cycles: cpu_cycle,
            ipc: cores.iter().map(|c| c.ipc(cpu_cycle)).collect(),
            retired: cores.iter().map(|c| c.retired()).collect(),
            dram: *self.dram.stats(),
            ctrl: *self.ctrl.stats(),
            dram_mitigation: self.dram.mitigation_stats(),
            ctrl_mitigation: self.ctrl.mitigation_stats(),
            energy,
            oracle_max_acts: self.dram.oracle().map(|o| o.max_aggressor_acts()),
            oracle_flips: self.dram.oracle().map(|o| o.flips()),
            truncated,
        }
    }

    fn llc_push_writeback(&mut self, _line: u64) {
        // Writeback retry is best-effort: losing a modelled writeback only
        // under-counts write traffic in an already-saturated queue state.
    }
}

/// Runs one application alone on the unmitigated baseline and returns its
/// IPC (the `IPC_alone` of the weighted-speedup metric).
pub fn alone_ipc(trace: Trace, base_cfg: &SimConfig) -> f64 {
    let mut cfg = base_cfg.clone();
    cfg.num_cores = 1;
    cfg.mechanism = MechanismKind::None;
    cfg.oracle = false;
    let report = System::build(&cfg).run(vec![trace]);
    report.ipc[0]
}

#[cfg(test)]
mod tests {
    use super::*;
    use chronus_workloads::synthetic_app;

    fn quick_cfg(mech: MechanismKind, nrh: u32) -> SimConfig {
        let mut cfg = SimConfig::single_core();
        cfg.instructions_per_core = 20_000;
        cfg.mechanism = mech;
        cfg.nrh = nrh;
        cfg
    }

    fn trace_for(name: &str, slot: u64) -> Trace {
        synthetic_app(name, slot).unwrap().generate(25_000, 3)
    }

    #[test]
    fn baseline_single_core_completes() {
        let cfg = quick_cfg(MechanismKind::None, 1024);
        let r = System::build(&cfg).run(vec![trace_for("429.mcf", 0)]);
        assert!(!r.truncated);
        assert!(r.retired[0] >= 20_000);
        assert!(r.ipc[0] > 0.0);
        assert!(r.dram.acts > 0);
        assert!(r.dram.refs > 0, "periodic refresh must run");
    }

    #[test]
    fn cpu_clock_leads_memory_clock() {
        let cfg = quick_cfg(MechanismKind::None, 1024);
        let r = System::build(&cfg).run(vec![trace_for("470.lbm", 0)]);
        let ratio = r.cpu_cycles as f64 / r.mem_cycles as f64;
        assert!((ratio - 2.625).abs() < 0.01, "clock ratio {ratio}");
    }

    #[test]
    fn four_core_mix_completes() {
        let mut cfg = SimConfig::four_core();
        cfg.instructions_per_core = 10_000;
        let traces = vec![
            trace_for("429.mcf", 0),
            trace_for("470.lbm", 1),
            trace_for("tpch2", 2),
            trace_for("511.povray", 3),
        ];
        let r = System::build(&cfg).run(traces);
        assert_eq!(r.ipc.len(), 4);
        assert!(r.total_instructions() >= 40_000);
    }

    #[test]
    fn prac_timing_slows_memory_bound_app() {
        let base = System::build(&quick_cfg(MechanismKind::None, 1024))
            .run(vec![trace_for("429.mcf", 0)]);
        let prac = System::build(&quick_cfg(MechanismKind::Prac4, 1024))
            .run(vec![trace_for("429.mcf", 0)]);
        assert!(
            prac.ipc[0] < base.ipc[0],
            "PRAC {} !< baseline {}",
            prac.ipc[0],
            base.ipc[0]
        );
    }

    #[test]
    fn chronus_is_near_baseline_at_high_nrh() {
        let base = System::build(&quick_cfg(MechanismKind::None, 1024))
            .run(vec![trace_for("429.mcf", 0)]);
        let chronus = System::build(&quick_cfg(MechanismKind::Chronus, 1024))
            .run(vec![trace_for("429.mcf", 0)]);
        let slowdown = 1.0 - chronus.ipc[0] / base.ipc[0];
        assert!(slowdown < 0.02, "Chronus slowdown {slowdown}");
    }

    #[test]
    fn max_cycles_truncates() {
        let mut cfg = quick_cfg(MechanismKind::None, 1024);
        cfg.max_mem_cycles = 500;
        let r = System::build(&cfg).run(vec![trace_for("429.mcf", 0)]);
        assert!(r.truncated);
    }

    #[test]
    fn alone_ipc_positive() {
        let cfg = quick_cfg(MechanismKind::None, 1024);
        assert!(alone_ipc(trace_for("tpch2", 0), &cfg) > 0.0);
    }
}
