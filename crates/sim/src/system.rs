//! System assembly and the main simulation loops.
//!
//! [`System::run`] is the production loop: event-driven, fast-forwarding
//! both clock domains over provably inert stretches (empty controller
//! queues, memory-blocked or bubble-sprinting cores) and allocation-free
//! on its per-cycle paths. [`System::run_reference`] retains the naive
//! strictly cycle-by-cycle loop; the two are kept bit-identical in their
//! [`SimReport`] output (see `tests/loop_equivalence.rs`), so the fast
//! path can never silently change figure results.

use chronus_core::MechanismKind;
use chronus_cpu::{CoreState, CoreWake, SharedLlc, SimpleO3Core, Trace};
use chronus_ctrl::{Completion, CtrlConfig, MemRequest, MemoryController, ReqKind};
use chronus_dram::{DisturbOracle, DramConfig, DramDevice, Geometry, ThresholdModel};
use chronus_energy::{EnergyParams, MechanismEnergy};

use crate::config::SimConfig;
use crate::report::SimReport;
use crate::slab::InflightSlab;

/// CPU cycles per `CLOCK_MEM` memory cycles: 4.2 GHz / 1.6 GHz = 21 / 8.
const CLOCK_CPU: u64 = 21;
const CLOCK_MEM: u64 = 8;

/// Request id for traffic that never produces a routed completion
/// (writebacks); demand reads use dense slab indices instead.
const UNROUTED_ID: u64 = u64::MAX;

/// A fully wired simulation instance.
pub struct System {
    cfg: SimConfig,
    dram: DramDevice,
    ctrl: MemoryController,
    llc: SharedLlc,
    mechanism_label: String,
    secure: bool,
}

impl System {
    /// Builds the platform for `cfg` (mechanism thresholds are derived
    /// from the analytical security models).
    pub fn build(cfg: &SimConfig) -> Self {
        let setup = cfg.mechanism.build_with_threshold(
            cfg.nrh,
            cfg.geometry,
            cfg.seed,
            cfg.threshold_override,
        );
        let timing_mode = cfg.timing_override.unwrap_or(setup.timing_mode);
        let mut dram_cfg = DramConfig::with_mode(timing_mode);
        dram_cfg.geometry = cfg.geometry;
        dram_cfg.strict = cfg.strict_timing;
        if cfg.oracle {
            dram_cfg.oracle_model = Some(cfg.oracle_model());
        }
        let dram = DramDevice::with_mitigation(dram_cfg, setup.dram_mitigation);
        let ctrl_cfg = CtrlConfig {
            mapping: cfg
                .mapping
                .unwrap_or_else(|| cfg.mechanism.preferred_mapping()),
            rfm_policy: setup.rfm_policy,
            raa_threshold: setup.raa_threshold,
            ..CtrlConfig::default()
        };
        let mut ctrl = MemoryController::with_mitigation(ctrl_cfg, &dram, setup.ctrl_mitigation);
        if cfg.obs {
            ctrl.enable_obs();
        }
        let llc = SharedLlc::new(cfg.llc);
        Self {
            cfg: cfg.clone(),
            dram,
            ctrl,
            llc,
            mechanism_label: cfg.mechanism.label().to_string(),
            secure: setup.secure,
        }
    }

    fn build_cores(&self, traces: Vec<Trace>) -> Vec<SimpleO3Core> {
        assert_eq!(traces.len(), self.cfg.num_cores, "need one trace per core");
        let llc_hit_latency = self.cfg.llc.hit_latency;
        traces
            .into_iter()
            .enumerate()
            .map(|(i, t)| {
                SimpleO3Core::new(
                    i as u8,
                    self.cfg.core,
                    t,
                    self.cfg.instructions_per_core,
                    llc_hit_latency,
                )
            })
            .collect()
    }

    /// Runs `traces` (one per core) until every core retires its target,
    /// then returns the report. Event-driven: inert cycles are jumped in
    /// both clock domains.
    ///
    /// # Panics
    ///
    /// Panics if the number of traces does not match `num_cores`.
    pub fn run(mut self, traces: Vec<Trace>) -> SimReport {
        let mut cores = self.build_cores(traces);
        let (mem_cycle, cpu_cycle, truncated) = self.run_loop(&mut cores);
        self.finish(cores, mem_cycle, cpu_cycle, truncated)
    }

    /// The event-driven loop body shared by [`System::run`] and
    /// [`System::run_batch`]: drives `cores` to completion and returns
    /// `(mem_cycle, cpu_cycle, truncated)` for [`System::finish`].
    fn run_loop(&mut self, cores: &mut [SimpleO3Core]) -> (u64, u64, bool) {
        let mapping = self.ctrl.config().mapping;
        let geo = *self.dram.geometry();

        let mut mem_cycle: u64 = 0;
        let mut cpu_cycle: u64 = 0;
        let mut cpu_credit: u64 = 0;
        let mut inflight = InflightSlab::new();
        let mut completions: Vec<Completion> = Vec::with_capacity(64);
        let mut waiters: Vec<u64> = Vec::with_capacity(16);
        let mut truncated = false;
        // First cycle at which the controller could act again; recomputed
        // whenever new work reaches it.
        let mut ctrl_wake: u64 = 0;

        loop {
            // --- memory domain ---
            let mut pushed = false;
            if mem_cycle >= ctrl_wake {
                self.ctrl.tick(&mut self.dram, mem_cycle);
                ctrl_wake = self.ctrl.next_wake(&self.dram, mem_cycle);
            }
            completions.clear();
            self.ctrl.drain_completions(mem_cycle, &mut completions);
            if !completions.is_empty() {
                pushed |= deliver_fills(
                    &mut self.ctrl,
                    &mut self.llc,
                    cores,
                    &mut inflight,
                    &completions,
                    &mut waiters,
                    mapping,
                    &geo,
                    mem_cycle,
                    cpu_cycle,
                );
            }
            if self.llc.peek_request().is_some() {
                pushed |= forward_llc_requests(
                    &mut self.ctrl,
                    &mut self.llc,
                    &mut inflight,
                    mapping,
                    &geo,
                    mem_cycle,
                );
            }
            if pushed {
                // Arrivals invalidate the memoized wake; recomputing here
                // (rather than re-arming to `mem_cycle + 1`) lets the next
                // tick reuse the fused-scan verdict and keeps jumps long
                // when the arrival itself cannot issue for a while.
                ctrl_wake = self.ctrl.next_wake(&self.dram, mem_cycle);
            }

            // --- CPU domain (21 CPU cycles per 8 memory cycles) ---
            cpu_credit += CLOCK_CPU;
            while cpu_credit >= CLOCK_MEM {
                cpu_credit -= CLOCK_MEM;
                for core in cores.iter_mut() {
                    core.tick(cpu_cycle, &mut self.llc);
                }
                cpu_cycle += 1;
            }

            mem_cycle += 1;
            if cores.iter().all(|c| c.state() == CoreState::Done) {
                break;
            }
            if self.cfg.max_mem_cycles > 0 && mem_cycle >= self.cfg.max_mem_cycles {
                truncated = true;
                break;
            }

            // --- event-driven fast-forward ---
            // Jump over iterations in which neither domain can change
            // state: the controller sleeps until `ctrl_wake`, no data is
            // due before the earliest pending completion, the LLC outbox
            // is empty or its head is unacceptable, and every core is
            // memory-blocked or sleeping until a known CPU cycle.
            if let Some(req) = self.llc.peek_request() {
                let kind = if req.write {
                    ReqKind::Write
                } else {
                    ReqKind::Read
                };
                if self.ctrl.can_accept(kind) {
                    // The head would be forwarded next iteration.
                    continue;
                }
                // A stalled head is inert: queue space only frees when the
                // controller issues (at `ctrl_wake`), and both bounds below
                // already include it, so the jump cannot delay forwarding.
            }
            let last_cpu = cpu_cycle - 1;
            let mut target = ctrl_wake;
            if let Some(at) = self.ctrl.next_completion_at() {
                target = target.min(at);
            }
            if target <= mem_cycle {
                continue;
            }
            let mut skippable = true;
            for core in cores.iter() {
                match core.next_event_cycle(last_cpu) {
                    CoreWake::Busy => {
                        skippable = false;
                        break;
                    }
                    CoreWake::At(c) => {
                        // Iteration executing CPU cycle `c`: the credit
                        // accumulator runs cycle c once total CPU cycles
                        // exceed c, i.e. at iteration ceil(8(c+1)/21) - 1.
                        let m = (CLOCK_MEM * (c + 1)).div_ceil(CLOCK_CPU) - 1;
                        target = target.min(m);
                    }
                    CoreWake::Blocked => {}
                }
            }
            if !skippable || target <= mem_cycle {
                continue;
            }
            if self.cfg.max_mem_cycles > 0 {
                target = target.min(self.cfg.max_mem_cycles);
                if target <= mem_cycle {
                    continue;
                }
            }
            // Advance both clock domains over the inert stretch exactly as
            // the per-cycle loop would have.
            let skipped = target - mem_cycle;
            mem_cycle = target;
            cpu_credit += CLOCK_CPU * skipped;
            cpu_cycle += cpu_credit / CLOCK_MEM;
            cpu_credit %= CLOCK_MEM;
            if self.cfg.max_mem_cycles > 0 && mem_cycle >= self.cfg.max_mem_cycles {
                truncated = true;
                break;
            }
        }

        (mem_cycle, cpu_cycle, truncated)
    }

    /// The retained strictly cycle-by-cycle loop. Kept as the equivalence
    /// baseline for [`System::run`] (and for before/after benchmarking):
    /// both loops must produce bit-identical [`SimReport`]s.
    ///
    /// # Panics
    ///
    /// Panics if the number of traces does not match `num_cores`.
    pub fn run_reference(mut self, traces: Vec<Trace>) -> SimReport {
        let mut cores = self.build_cores(traces);
        for core in &mut cores {
            // Strictly cycle-by-cycle: no closed-form bubble sprints, so
            // this loop independently re-derives what `run` fast-forwards.
            core.set_sprint_enabled(false);
        }
        let mapping = self.ctrl.config().mapping;
        let geo = *self.dram.geometry();

        let mut mem_cycle: u64 = 0;
        let mut cpu_cycle: u64 = 0;
        let mut cpu_credit: u64 = 0;
        let mut inflight = InflightSlab::new();
        let mut completions: Vec<Completion> = Vec::with_capacity(64);
        let mut waiters: Vec<u64> = Vec::with_capacity(16);
        let mut truncated = false;

        loop {
            // --- memory domain ---
            self.ctrl.tick(&mut self.dram, mem_cycle);
            completions.clear();
            self.ctrl.drain_completions(mem_cycle, &mut completions);
            deliver_fills(
                &mut self.ctrl,
                &mut self.llc,
                &mut cores,
                &mut inflight,
                &completions,
                &mut waiters,
                mapping,
                &geo,
                mem_cycle,
                cpu_cycle,
            );
            forward_llc_requests(
                &mut self.ctrl,
                &mut self.llc,
                &mut inflight,
                mapping,
                &geo,
                mem_cycle,
            );

            // --- CPU domain (21 CPU cycles per 8 memory cycles) ---
            cpu_credit += CLOCK_CPU;
            while cpu_credit >= CLOCK_MEM {
                cpu_credit -= CLOCK_MEM;
                for core in cores.iter_mut() {
                    core.tick(cpu_cycle, &mut self.llc);
                }
                cpu_cycle += 1;
            }

            mem_cycle += 1;
            if cores.iter().all(|c| c.state() == CoreState::Done) {
                break;
            }
            if self.cfg.max_mem_cycles > 0 && mem_cycle >= self.cfg.max_mem_cycles {
                truncated = true;
                break;
            }
        }

        self.finish(cores, mem_cycle, cpu_cycle, truncated)
    }

    /// Runs a batch of config variants over one shared workload, in
    /// lockstep where possible, and returns one [`SimReport`] per variant,
    /// each bit-identical to what its solo [`System::run`] would produce.
    ///
    /// The engine partitions the variants into *timing cohorts*. The
    /// disturbance oracle is strictly observational (no hook affects a
    /// timing frontier), so variants that differ only in oracle-visible
    /// parameters — the VRD distribution (`vrd`), the seed of a
    /// seed-insensitive mechanism, or `nrh` under the unmitigated baseline
    /// — share one simulation: the cohort runs once with a multi-lane
    /// [`DisturbOracle`] (one threshold-model lane per member) and each
    /// member's report is the cohort report with its own `nrh` and lane
    /// flip count patched in. Every other field is provably
    /// cohort-invariant: the mechanism label, timing, and `secure` verdict
    /// are functions of the cohort key alone.
    ///
    /// A variant whose parameters *do* perturb timing (different
    /// mechanism, threshold, mapping, LLC, …) forks onto its own cohort —
    /// its own controller clock — but still shares the decoded traces,
    /// which the caller generates once.
    ///
    /// # Panics
    ///
    /// Panics if `cfgs` is empty or any variant's `num_cores` does not
    /// match the trace count.
    pub fn run_batch(cfgs: &[SimConfig], traces: &[Trace]) -> Vec<SimReport> {
        assert!(!cfgs.is_empty(), "batch needs at least one variant");
        for cfg in cfgs {
            assert_eq!(
                cfg.num_cores,
                traces.len(),
                "every batch member must run the shared workload"
            );
        }
        // The cohort key is the config with every timing-inert field
        // canonicalized away; equal keys ⇒ bit-identical timing.
        let cohort_key = |cfg: &SimConfig| {
            let mut key = cfg.clone();
            key.vrd = None;
            if !key.mechanism.uses_seed() {
                key.seed = 0;
            }
            if key.mechanism == MechanismKind::None {
                // No mechanism consumes the threshold: nrh only reaches
                // the oracle (a lane) and the report (patched below).
                key.nrh = 0;
            }
            key
        };
        let mut cohorts: Vec<(SimConfig, Vec<usize>)> = Vec::new();
        for (i, cfg) in cfgs.iter().enumerate() {
            let key = cohort_key(cfg);
            match cohorts.iter_mut().find(|(k, _)| *k == key) {
                Some((_, members)) => members.push(i),
                None => cohorts.push((key, vec![i])),
            }
        }
        let mut out: Vec<Option<SimReport>> = vec![None; cfgs.len()];
        for (_, members) in &cohorts {
            let rep_cfg = &cfgs[members[0]];
            let mut sys = System::build(rep_cfg);
            if rep_cfg.oracle {
                // One lane per member, in member order: the counter state
                // is shared, each lane judges its own threshold model.
                let models: Vec<ThresholdModel> =
                    members.iter().map(|&i| cfgs[i].oracle_model()).collect();
                sys.dram.set_oracle(Some(DisturbOracle::with_lanes(
                    rep_cfg.geometry,
                    sys.dram.config().blast_radius,
                    models,
                )));
            }
            let mut cores = sys.build_cores(traces.to_vec());
            let (mem_cycle, cpu_cycle, truncated) = sys.run_loop(&mut cores);
            let lane_flips: Option<Vec<u64>> = sys
                .dram
                .oracle()
                .map(|o| (0..o.lane_count()).map(|l| o.flips_of(l)).collect());
            let template = sys.finish(cores, mem_cycle, cpu_cycle, truncated);
            for (lane, &i) in members.iter().enumerate() {
                let mut report = template.clone();
                report.nrh = cfgs[i].nrh;
                if let Some(flips) = &lane_flips {
                    report.oracle_flips = Some(flips[lane]);
                }
                out[i] = Some(report);
            }
        }
        out.into_iter()
            .map(|r| r.expect("every member belongs to a cohort"))
            .collect()
    }

    fn finish(
        mut self,
        mut cores: Vec<SimpleO3Core>,
        mem_cycle: u64,
        cpu_cycle: u64,
        truncated: bool,
    ) -> SimReport {
        for core in &mut cores {
            // Remove sprint credit for cycles the run never reached.
            core.settle_retired(cpu_cycle.saturating_sub(1));
        }
        let obs = self.ctrl.take_obs_report(mem_cycle);
        self.dram.finalize(mem_cycle);
        let mech_energy = match self.cfg.mechanism {
            MechanismKind::Prac1
            | MechanismKind::Prac2
            | MechanismKind::Prac4
            | MechanismKind::PracPrfm => MechanismEnergy::prac(),
            MechanismKind::Chronus | MechanismKind::ChronusPb => MechanismEnergy::chronus(),
            _ => MechanismEnergy::default(),
        };
        let energy = chronus_energy::compute(
            self.dram.stats(),
            &self.dram.mitigation_stats(),
            self.dram.timings(),
            &EnergyParams::default(),
            &mech_energy,
            2 * self.dram.config().blast_radius,
        );
        SimReport {
            mechanism: self.mechanism_label,
            nrh: self.cfg.nrh,
            secure: self.secure,
            mem_cycles: mem_cycle,
            cpu_cycles: cpu_cycle,
            ipc: cores.iter().map(|c| c.ipc(cpu_cycle)).collect(),
            retired: cores.iter().map(|c| c.retired()).collect(),
            dram: *self.dram.stats(),
            ctrl: *self.ctrl.stats(),
            dram_mitigation: self.dram.mitigation_stats(),
            ctrl_mitigation: self.ctrl.mitigation_stats(),
            energy,
            oracle_max_acts: self.dram.oracle().map(|o| o.max_aggressor_acts()),
            oracle_flips: self.dram.oracle().map(|o| o.flips()),
            truncated,
            obs,
        }
    }
}

/// Routes drained completions back through the LLC: wakes waiting cores
/// and queues dirty-victim writebacks. Returns `true` if a request was
/// pushed to the controller.
#[allow(clippy::too_many_arguments)]
fn deliver_fills(
    ctrl: &mut MemoryController,
    llc: &mut SharedLlc,
    cores: &mut [SimpleO3Core],
    inflight: &mut InflightSlab,
    completions: &[Completion],
    waiters: &mut Vec<u64>,
    mapping: chronus_ctrl::AddressMapping,
    geo: &Geometry,
    mem_cycle: u64,
    cpu_cycle: u64,
) -> bool {
    let mut pushed = false;
    for c in completions {
        let Some(read) = inflight.take(c.id) else {
            continue;
        };
        let writeback = llc.on_fill(read.line_addr, read.uncached, waiters);
        for token in waiters.drain(..) {
            let core = SimpleO3Core::token_core(token) as usize;
            cores[core].on_mem_complete(token, cpu_cycle);
        }
        if let Some(victim) = writeback {
            let addr = mapping.decode(victim, geo);
            // Writebacks are controller-internal; when the write queue is
            // full the modelled writeback is dropped (it only under-counts
            // write traffic in an already-saturated state).
            pushed |= ctrl.push_request(MemRequest {
                id: UNROUTED_ID,
                kind: ReqKind::Write,
                addr,
                core: chronus_ctrl::request::INTERNAL_CORE,
                arrived: mem_cycle,
            });
        }
    }
    pushed
}

/// Forwards LLC misses/writebacks to the controller while it accepts
/// them. Returns `true` if any request was pushed.
fn forward_llc_requests(
    ctrl: &mut MemoryController,
    llc: &mut SharedLlc,
    inflight: &mut InflightSlab,
    mapping: chronus_ctrl::AddressMapping,
    geo: &Geometry,
    mem_cycle: u64,
) -> bool {
    let mut pushed = false;
    while let Some(req) = llc.peek_request() {
        let kind = if req.write {
            ReqKind::Write
        } else {
            ReqKind::Read
        };
        if !ctrl.can_accept(kind) {
            break;
        }
        let req = *req;
        llc.pop_request();
        let id = if req.write {
            UNROUTED_ID
        } else {
            inflight.insert(req.line_addr, req.uncached)
        };
        let addr = mapping.decode(req.line_addr, geo);
        let accepted = ctrl.push_request(MemRequest {
            id,
            kind,
            addr,
            core: req.core,
            arrived: mem_cycle,
        });
        debug_assert!(accepted);
        pushed = true;
    }
    pushed
}

/// Runs one application alone on the unmitigated baseline and returns its
/// IPC (the `IPC_alone` of the weighted-speedup metric).
pub fn alone_ipc(trace: Trace, base_cfg: &SimConfig) -> f64 {
    let mut cfg = base_cfg.clone();
    cfg.num_cores = 1;
    cfg.mechanism = MechanismKind::None;
    cfg.oracle = false;
    let report = System::build(&cfg).run(vec![trace]);
    report.ipc[0]
}

#[cfg(test)]
mod tests {
    use super::*;
    use chronus_workloads::synthetic_app;

    fn quick_cfg(mech: MechanismKind, nrh: u32) -> SimConfig {
        let mut cfg = SimConfig::single_core();
        cfg.instructions_per_core = 20_000;
        cfg.mechanism = mech;
        cfg.nrh = nrh;
        cfg
    }

    fn trace_for(name: &str, slot: u64) -> Trace {
        synthetic_app(name, slot).unwrap().generate(25_000, 3)
    }

    #[test]
    fn baseline_single_core_completes() {
        let cfg = quick_cfg(MechanismKind::None, 1024);
        let r = System::build(&cfg).run(vec![trace_for("429.mcf", 0)]);
        assert!(!r.truncated);
        assert!(r.retired[0] >= 20_000);
        assert!(r.ipc[0] > 0.0);
        assert!(r.dram.acts > 0);
        assert!(r.dram.refs > 0, "periodic refresh must run");
    }

    #[test]
    fn cpu_clock_leads_memory_clock() {
        let cfg = quick_cfg(MechanismKind::None, 1024);
        let r = System::build(&cfg).run(vec![trace_for("470.lbm", 0)]);
        let ratio = r.cpu_cycles as f64 / r.mem_cycles as f64;
        assert!((ratio - 2.625).abs() < 0.01, "clock ratio {ratio}");
    }

    #[test]
    fn four_core_mix_completes() {
        let mut cfg = SimConfig::four_core();
        cfg.instructions_per_core = 10_000;
        let traces = vec![
            trace_for("429.mcf", 0),
            trace_for("470.lbm", 1),
            trace_for("tpch2", 2),
            trace_for("511.povray", 3),
        ];
        let r = System::build(&cfg).run(traces);
        assert_eq!(r.ipc.len(), 4);
        assert!(r.total_instructions() >= 40_000);
    }

    #[test]
    fn prac_timing_slows_memory_bound_app() {
        let base =
            System::build(&quick_cfg(MechanismKind::None, 1024)).run(vec![trace_for("429.mcf", 0)]);
        let prac = System::build(&quick_cfg(MechanismKind::Prac4, 1024))
            .run(vec![trace_for("429.mcf", 0)]);
        assert!(
            prac.ipc[0] < base.ipc[0],
            "PRAC {} !< baseline {}",
            prac.ipc[0],
            base.ipc[0]
        );
    }

    #[test]
    fn chronus_is_near_baseline_at_high_nrh() {
        let base =
            System::build(&quick_cfg(MechanismKind::None, 1024)).run(vec![trace_for("429.mcf", 0)]);
        let chronus = System::build(&quick_cfg(MechanismKind::Chronus, 1024))
            .run(vec![trace_for("429.mcf", 0)]);
        let slowdown = 1.0 - chronus.ipc[0] / base.ipc[0];
        assert!(slowdown < 0.02, "Chronus slowdown {slowdown}");
    }

    #[test]
    fn max_cycles_truncates() {
        let mut cfg = quick_cfg(MechanismKind::None, 1024);
        cfg.max_mem_cycles = 500;
        let r = System::build(&cfg).run(vec![trace_for("429.mcf", 0)]);
        assert!(r.truncated);
    }

    #[test]
    fn max_cycles_truncates_identically_in_both_loops() {
        // The fast loop may jump straight to the cycle limit; the report
        // must still match the per-cycle loop bit for bit.
        let mut cfg = quick_cfg(MechanismKind::None, 1024);
        cfg.max_mem_cycles = 1_000;
        let fast = System::build(&cfg).run(vec![trace_for("511.povray", 0)]);
        let naive = System::build(&cfg).run_reference(vec![trace_for("511.povray", 0)]);
        assert!(fast.truncated && naive.truncated);
        assert_eq!(fast, naive);
    }

    #[test]
    fn obs_report_present_iff_enabled() {
        let cfg = quick_cfg(MechanismKind::None, 1024);
        let off = System::build(&cfg).run(vec![trace_for("429.mcf", 0)]);
        assert!(off.obs.is_none(), "obs is opt-in");
        let mut cfg_on = cfg.clone();
        cfg_on.obs = true;
        let on = System::build(&cfg_on).run(vec![trace_for("429.mcf", 0)]);
        let obs = on.obs.as_ref().expect("obs enabled");
        // The histogram is the distribution behind the existing scalars.
        assert_eq!(obs.read_latency.total, on.ctrl.reads_served);
        assert_eq!(obs.read_latency.sum, on.ctrl.read_latency_sum);
        assert!(obs.latency_entropy_bits > 0.0, "mcf latencies vary");
        // Periodic refresh under demand traffic must be visible as pauses.
        assert!(obs.pauses.refresh_intervals > 0);
        // Observational only: everything else bit-identical to the off run.
        let mut stripped = on.clone();
        stripped.obs = None;
        assert_eq!(stripped, off, "obs flag must not perturb the simulation");
    }

    #[test]
    fn alone_ipc_positive() {
        let cfg = quick_cfg(MechanismKind::None, 1024);
        assert!(alone_ipc(trace_for("tpch2", 0), &cfg) > 0.0);
    }
}
