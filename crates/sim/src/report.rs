//! Simulation results.

use chronus_ctrl::{CtrlMitigationStats, CtrlStats, ObsReport};
use chronus_dram::{DramStats, MitigationStats};
use chronus_energy::EnergyBreakdown;
use serde::{Deserialize, Serialize};

/// Everything a run produces.
///
/// `PartialEq` compares every field (including floats) exactly — the loop
/// equivalence harness relies on bit-identical reports between
/// [`crate::System::run`] and [`crate::System::run_reference`], and the
/// grid result store relies on serialize → deserialize → re-serialize
/// being byte-identical (see `crates/sim/tests/report_roundtrip.rs`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimReport {
    /// Mechanism label.
    pub mechanism: String,
    /// Configured RowHammer threshold.
    pub nrh: u32,
    /// Whether the configuration is wave-attack secure.
    pub secure: bool,
    /// Memory-controller cycles simulated.
    pub mem_cycles: u64,
    /// CPU cycles simulated.
    pub cpu_cycles: u64,
    /// Per-core IPC at the moment each core reached its target.
    pub ipc: Vec<f64>,
    /// Per-core retired instruction counts.
    pub retired: Vec<u64>,
    /// Device statistics.
    pub dram: DramStats,
    /// Controller statistics.
    pub ctrl: CtrlStats,
    /// On-die mechanism statistics.
    pub dram_mitigation: MitigationStats,
    /// Controller-side mechanism statistics.
    pub ctrl_mitigation: CtrlMitigationStats,
    /// Energy breakdown.
    pub energy: EnergyBreakdown,
    /// Highest per-aggressor activation count the oracle observed, if the
    /// oracle was attached.
    pub oracle_max_acts: Option<u32>,
    /// Would-be bitflip events the oracle counted.
    pub oracle_flips: Option<u64>,
    /// True if the run hit the safety cycle limit before all cores
    /// finished.
    pub truncated: bool,
    /// Timing-observability section; `None` unless `SimConfig::obs` was
    /// set (the probe is opt-in and zero-cost when off).
    pub obs: Option<ObsReport>,
}

impl SimReport {
    /// Sum of retired instructions.
    pub fn total_instructions(&self) -> u64 {
        self.retired.iter().sum()
    }

    /// Raw weighted speedup against per-core alone-IPCs.
    pub fn weighted_speedup(&self, ipc_alone: &[f64]) -> f64 {
        chronus_cpu::weighted_speedup(&self.ipc, ipc_alone)
    }

    /// Maximum single-application slowdown against alone-IPCs (§11).
    pub fn max_slowdown(&self, ipc_alone: &[f64]) -> f64 {
        chronus_cpu::max_slowdown(&self.ipc, ipc_alone)
    }

    /// Total energy normalised to a baseline report.
    pub fn energy_normalized_to(&self, baseline: &SimReport) -> f64 {
        self.energy.total_pj() / baseline.energy.total_pj()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy(ipc: Vec<f64>, energy_pj: f64) -> SimReport {
        SimReport {
            mechanism: "test".into(),
            nrh: 1024,
            secure: true,
            mem_cycles: 100,
            cpu_cycles: 262,
            ipc,
            retired: vec![10, 20],
            dram: DramStats::default(),
            ctrl: CtrlStats::default(),
            dram_mitigation: MitigationStats::default(),
            ctrl_mitigation: CtrlMitigationStats::default(),
            energy: EnergyBreakdown {
                act_pre_pj: energy_pj,
                ..Default::default()
            },
            oracle_max_acts: None,
            oracle_flips: None,
            truncated: false,
            obs: None,
        }
    }

    #[test]
    fn helpers_compose() {
        let r = dummy(vec![1.0, 2.0], 500.0);
        assert_eq!(r.total_instructions(), 30);
        assert!((r.weighted_speedup(&[2.0, 2.0]) - 1.5).abs() < 1e-12);
        assert!((r.max_slowdown(&[2.0, 2.0]) - 0.5).abs() < 1e-12);
        let base = dummy(vec![1.0, 2.0], 1000.0);
        assert!((r.energy_normalized_to(&base) - 0.5).abs() < 1e-12);
    }
}
