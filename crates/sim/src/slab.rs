//! Id-indexed slab for in-flight read bookkeeping.
//!
//! The simulation loop needs to route every read completion back to the
//! LLC line (and cacheability) it was issued for. The seed used a
//! `HashMap<u64, (u64, bool)>`, which hashes and reallocates on the
//! hottest per-completion path; this slab hands out dense indices as
//! request ids instead, so insert/take are two bounds-checked array moves
//! and freed slots are recycled without ever shrinking.

/// Routing data for one in-flight demand read.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InflightRead {
    /// LLC line address the fill belongs to.
    pub line_addr: u64,
    /// True when the read bypasses the cache (non-cacheable load).
    pub uncached: bool,
}

/// Slab of in-flight reads, keyed by the request id it hands out.
#[derive(Debug, Default)]
pub struct InflightSlab {
    slots: Vec<Option<InflightRead>>,
    free: Vec<u32>,
    live: usize,
}

impl InflightSlab {
    /// An empty slab.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers an in-flight read and returns the id to tag the memory
    /// request with.
    pub fn insert(&mut self, line_addr: u64, uncached: bool) -> u64 {
        let entry = InflightRead {
            line_addr,
            uncached,
        };
        self.live += 1;
        match self.free.pop() {
            Some(idx) => {
                debug_assert!(self.slots[idx as usize].is_none());
                self.slots[idx as usize] = Some(entry);
                u64::from(idx)
            }
            None => {
                self.slots.push(Some(entry));
                (self.slots.len() - 1) as u64
            }
        }
    }

    /// Removes and returns the read registered under `id`, if any.
    pub fn take(&mut self, id: u64) -> Option<InflightRead> {
        let idx = usize::try_from(id).ok()?;
        let entry = self.slots.get_mut(idx)?.take()?;
        self.free.push(idx as u32);
        self.live -= 1;
        Some(entry)
    }

    /// Number of reads currently in flight.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True when nothing is in flight.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_take_roundtrip() {
        let mut s = InflightSlab::new();
        let a = s.insert(0x1000, false);
        let b = s.insert(0x2000, true);
        assert_ne!(a, b);
        assert_eq!(s.len(), 2);
        let got = s.take(a).unwrap();
        assert_eq!(got.line_addr, 0x1000);
        assert!(!got.uncached);
        assert!(s.take(a).is_none(), "double take must fail");
        assert_eq!(s.take(b).unwrap().line_addr, 0x2000);
        assert!(s.is_empty());
    }

    #[test]
    fn freed_ids_are_recycled() {
        let mut s = InflightSlab::new();
        let a = s.insert(1, false);
        s.take(a).unwrap();
        let b = s.insert(2, false);
        assert_eq!(a, b, "slot should be reused");
        assert_eq!(s.take(b).unwrap().line_addr, 2);
    }

    #[test]
    fn unknown_ids_are_rejected() {
        let mut s = InflightSlab::new();
        assert!(s.take(0).is_none());
        assert!(s.take(u64::MAX).is_none());
    }
}
