//! Fast-forward / reference loop equivalence.
//!
//! The event-driven loop ([`System::run`]) is only allowed to exist
//! because it is provably observation-equivalent to the retained
//! cycle-by-cycle loop ([`System::run_reference`]): every [`SimReport`]
//! field — cycle counts, IPC, DRAM/controller statistics, mitigation
//! counters, energy — must match bit for bit across the paper's mechanism
//! matrix. Any divergence here means the speedup changed figure outputs.

use chronus_core::MechanismKind;
use chronus_cpu::{Trace, TraceEntry, TraceOp};
use chronus_ctrl::AddressMapping;
use chronus_dram::BankId;
use chronus_sim::{SimConfig, SimReport, System};
use chronus_workloads::{perf_attack_trace, synthetic_app, wave_attack_trace};

/// The equivalence matrix of the issue: controller-, device-, and
/// hybrid-side mechanisms at a relaxed and an aggressive threshold.
const MECHANISMS: [MechanismKind; 5] = [
    MechanismKind::None,
    MechanismKind::Prac4,
    MechanismKind::Chronus,
    MechanismKind::Prfm,
    MechanismKind::Graphene,
];
const NRH_POINTS: [u32; 2] = [1024, 64];

fn single_cfg(mech: MechanismKind, nrh: u32, insts: u64) -> SimConfig {
    let mut cfg = SimConfig::single_core();
    cfg.instructions_per_core = insts;
    cfg.mechanism = mech;
    cfg.nrh = nrh;
    cfg.max_mem_cycles = insts * 5_000;
    cfg
}

fn assert_identical(fast: &SimReport, naive: &SimReport, what: &str) {
    // Compare the load-bearing scalars first for readable failures, then
    // the whole report (energy, mitigation stats, oracle fields, …).
    assert_eq!(fast.mem_cycles, naive.mem_cycles, "{what}: mem_cycles");
    assert_eq!(fast.cpu_cycles, naive.cpu_cycles, "{what}: cpu_cycles");
    assert_eq!(fast.retired, naive.retired, "{what}: retired");
    assert_eq!(fast.ipc, naive.ipc, "{what}: ipc");
    assert_eq!(fast.dram, naive.dram, "{what}: dram stats");
    assert_eq!(fast.ctrl, naive.ctrl, "{what}: ctrl stats");
    assert_eq!(
        fast.dram_mitigation, naive.dram_mitigation,
        "{what}: dram mitigation stats"
    );
    assert_eq!(
        fast.ctrl_mitigation, naive.ctrl_mitigation,
        "{what}: ctrl mitigation stats"
    );
    assert_eq!(fast, naive, "{what}: full report");
}

fn check_single(mech: MechanismKind, nrh: u32, app: &str, insts: u64) {
    let cfg = single_cfg(mech, nrh, insts);
    let trace = || {
        synthetic_app(app, 0)
            .unwrap()
            .generate(insts + insts / 5, 11)
    };
    let fast = System::build(&cfg).run(vec![trace()]);
    let naive = System::build(&cfg).run_reference(vec![trace()]);
    assert!(!fast.truncated, "{mech}@{nrh}/{app} truncated");
    assert_identical(&fast, &naive, &format!("{mech}@{nrh}/{app}"));
}

#[test]
fn idle_heavy_app_matrix_is_bit_identical() {
    // 511.povray: the fast loop spends most of its time in bubble sprints
    // and full-system jumps — exactly the paths that could drift.
    for mech in MECHANISMS {
        for nrh in NRH_POINTS {
            check_single(mech, nrh, "511.povray", 6_000);
        }
    }
}

#[test]
fn memory_bound_app_matrix_is_bit_identical() {
    // 429.mcf: queues stay hot, exercising the busy paths and the
    // wake/re-arm hand-off around refresh and back-off activity.
    for mech in MECHANISMS {
        for nrh in NRH_POINTS {
            check_single(mech, nrh, "429.mcf", 4_000);
        }
    }
}

#[test]
fn four_core_mix_is_bit_identical() {
    for (mech, nrh) in [(MechanismKind::Chronus, 64), (MechanismKind::Prac4, 1024)] {
        let mut cfg = SimConfig::four_core();
        cfg.instructions_per_core = 3_000;
        cfg.mechanism = mech;
        cfg.nrh = nrh;
        cfg.max_mem_cycles = 20_000_000;
        let traces = || {
            ["429.mcf", "470.lbm", "tpch2", "511.povray"]
                .iter()
                .enumerate()
                .map(|(i, n)| synthetic_app(n, i as u64).unwrap().generate(4_000, 17))
                .collect::<Vec<_>>()
        };
        let fast = System::build(&cfg).run(traces());
        let naive = System::build(&cfg).run_reference(traces());
        assert_identical(&fast, &naive, &format!("4-core {mech}@{nrh}"));
    }
}

/// A store-heavy trace whose lines alias across banks and LLC sets:
/// every store misses, fills, and evicts a dirty victim, so the write
/// queue rides the drain-mode hysteresis (`wr_high`/`wr_low`) constantly.
fn write_thrash_trace(entries: usize) -> Trace {
    let mut t = Trace::new("write-thrash");
    for i in 0..entries {
        // Large, co-prime strides: distinct lines that revisit the same
        // LLC sets often enough to force dirty evictions.
        let addr = (i as u64 * 4288) % (1 << 22);
        t.entries.push(TraceEntry {
            bubbles: (i % 3) as u32,
            op: TraceOp::Store(addr),
        });
    }
    t
}

fn check_trace(mech: MechanismKind, nrh: u32, trace: &Trace, insts: u64, what: &str) {
    let mut cfg = single_cfg(mech, nrh, insts);
    // Attack traces aim at exact (bank, row) coordinates through the
    // inverse mapping; pin the mapping so the coordinates stay honest for
    // mechanisms that prefer a different default.
    cfg.mapping = Some(AddressMapping::Mop);
    let fast = System::build(&cfg).run(vec![trace.clone()]);
    let naive = System::build(&cfg).run_reference(vec![trace.clone()]);
    assert_identical(&fast, &naive, what);
}

#[test]
fn attack_pattern_matrix_is_bit_identical() {
    // The §11 performance attack keeps a handful of banks row-conflicting
    // nonstop: RFM / back-off / PRFM activity is continuous, so the wake
    // computation must agree with the reference tick ladder under load.
    let cfg = SimConfig::single_core();
    let geo = cfg.geometry;
    let insts = 2_500u64;
    let accesses = (insts + insts / 5) as usize;
    let attack = |mapping| perf_attack_trace(mapping, &geo, 4, 8, accesses);
    for mech in [
        MechanismKind::Prac4,
        MechanismKind::Chronus,
        MechanismKind::Prfm,
    ] {
        for nrh in [256, 32] {
            check_trace(
                mech,
                nrh,
                &attack(AddressMapping::Mop),
                insts,
                &format!("perf-attack {mech}@{nrh}"),
            );
        }
    }
}

#[test]
fn wave_attack_vrr_storm_is_bit_identical() {
    // Hammering one bank's decoy rows at a low threshold floods the VRR
    // queue (Graphene) / trips probabilistic refreshes (Para): the VRR
    // service window is part of the wake computation and must not drift.
    let cfg = SimConfig::single_core();
    let geo = cfg.geometry;
    let bank = BankId::from_flat(3, &geo);
    let rows: Vec<u32> = (0..6).map(|i| 2_000 + i * 32).collect();
    let insts = 2_500u64;
    let trace = wave_attack_trace(
        AddressMapping::Mop,
        &geo,
        bank,
        &rows,
        (insts + insts / 5) as usize,
    );
    for (mech, nrh) in [
        (MechanismKind::Graphene, 64),
        (MechanismKind::Graphene, 32),
        (MechanismKind::Para, 64),
        (MechanismKind::Chronus, 32),
    ] {
        check_trace(
            mech,
            nrh,
            &trace,
            insts,
            &format!("wave-attack {mech}@{nrh}"),
        );
    }
}

#[test]
fn write_drain_thrash_is_bit_identical() {
    // Dirty evictions keep the write queue around the drain thresholds;
    // the memoized wake must replicate the next tick's drain-mode verdict
    // (preference hysteresis) exactly or the queues are served in a
    // different order.
    let insts = 3_000u64;
    let trace = write_thrash_trace((insts + insts / 5) as usize);
    for (mech, nrh) in [
        (MechanismKind::None, 1024),
        (MechanismKind::Prac4, 64),
        (MechanismKind::Prfm, 64),
    ] {
        let cfg = single_cfg(mech, nrh, insts);
        let fast = System::build(&cfg).run(vec![trace.clone()]);
        let naive = System::build(&cfg).run_reference(vec![trace.clone()]);
        assert_identical(&fast, &naive, &format!("write-thrash {mech}@{nrh}"));
    }
}

#[test]
fn obs_reports_are_bit_identical_across_loops() {
    // The observability probe samples at command-issue events, which both
    // loops execute in the same order at the same cycles — so the entire
    // ObsReport (histograms, pause intervals, entropy floats) must match
    // bit for bit, exactly like every other report field. A divergence
    // here means a hook fired on a loop-specific path (e.g. per tick).
    for mech in MECHANISMS {
        for nrh in NRH_POINTS {
            let mut cfg = single_cfg(mech, nrh, 3_000);
            cfg.obs = true;
            let trace = || synthetic_app("429.mcf", 0).unwrap().generate(3_600, 11);
            let fast = System::build(&cfg).run(vec![trace()]);
            let naive = System::build(&cfg).run_reference(vec![trace()]);
            let what = format!("obs {mech}@{nrh}");
            assert!(fast.obs.is_some(), "{what}: probe did not report");
            assert_eq!(fast.obs, naive.obs, "{what}: ObsReport diverged");
            assert_identical(&fast, &naive, &what);
        }
    }
}

#[test]
fn obs_probe_never_perturbs_the_simulation() {
    // The probe is strictly observational: with obs on, every
    // pre-existing report field must be bit-identical to the obs-off run
    // of the same cell. Mechanisms with heavy mitigation traffic (pause
    // hooks firing constantly) are the interesting cases.
    for (mech, nrh) in [
        (MechanismKind::None, 1024),
        (MechanismKind::Prac4, 64),
        (MechanismKind::Chronus, 64),
        (MechanismKind::Graphene, 64),
    ] {
        let cfg_off = single_cfg(mech, nrh, 3_000);
        let mut cfg_on = cfg_off.clone();
        cfg_on.obs = true;
        let trace = || synthetic_app("429.mcf", 0).unwrap().generate(3_600, 11);
        let off = System::build(&cfg_off).run(vec![trace()]);
        let on = System::build(&cfg_on).run(vec![trace()]);
        assert!(off.obs.is_none(), "{mech}@{nrh}: obs-off run has a report");
        assert!(on.obs.is_some(), "{mech}@{nrh}: obs-on run lost its report");
        let mut stripped = on.clone();
        stripped.obs = None;
        assert_eq!(
            stripped, off,
            "{mech}@{nrh}: the probe changed a pre-existing report field"
        );
    }
}

#[test]
fn remaining_mechanisms_match_on_a_smoke_point() {
    // Everything the headline matrix skips still has to agree.
    for mech in [
        MechanismKind::Prac1,
        MechanismKind::Prac2,
        MechanismKind::PracPrfm,
        MechanismKind::ChronusPb,
        MechanismKind::Hydra,
        MechanismKind::Para,
        MechanismKind::Abacus,
    ] {
        check_single(mech, 128, "462.libquantum", 2_500);
    }
}
