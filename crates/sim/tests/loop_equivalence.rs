//! Fast-forward / reference loop equivalence.
//!
//! The event-driven loop ([`System::run`]) is only allowed to exist
//! because it is provably observation-equivalent to the retained
//! cycle-by-cycle loop ([`System::run_reference`]): every [`SimReport`]
//! field — cycle counts, IPC, DRAM/controller statistics, mitigation
//! counters, energy — must match bit for bit across the paper's mechanism
//! matrix. Any divergence here means the speedup changed figure outputs.

use chronus_core::MechanismKind;
use chronus_sim::{SimConfig, SimReport, System};
use chronus_workloads::synthetic_app;

/// The equivalence matrix of the issue: controller-, device-, and
/// hybrid-side mechanisms at a relaxed and an aggressive threshold.
const MECHANISMS: [MechanismKind; 5] = [
    MechanismKind::None,
    MechanismKind::Prac4,
    MechanismKind::Chronus,
    MechanismKind::Prfm,
    MechanismKind::Graphene,
];
const NRH_POINTS: [u32; 2] = [1024, 64];

fn single_cfg(mech: MechanismKind, nrh: u32, insts: u64) -> SimConfig {
    let mut cfg = SimConfig::single_core();
    cfg.instructions_per_core = insts;
    cfg.mechanism = mech;
    cfg.nrh = nrh;
    cfg.max_mem_cycles = insts * 5_000;
    cfg
}

fn assert_identical(fast: &SimReport, naive: &SimReport, what: &str) {
    // Compare the load-bearing scalars first for readable failures, then
    // the whole report (energy, mitigation stats, oracle fields, …).
    assert_eq!(fast.mem_cycles, naive.mem_cycles, "{what}: mem_cycles");
    assert_eq!(fast.cpu_cycles, naive.cpu_cycles, "{what}: cpu_cycles");
    assert_eq!(fast.retired, naive.retired, "{what}: retired");
    assert_eq!(fast.ipc, naive.ipc, "{what}: ipc");
    assert_eq!(fast.dram, naive.dram, "{what}: dram stats");
    assert_eq!(fast.ctrl, naive.ctrl, "{what}: ctrl stats");
    assert_eq!(
        fast.dram_mitigation, naive.dram_mitigation,
        "{what}: dram mitigation stats"
    );
    assert_eq!(
        fast.ctrl_mitigation, naive.ctrl_mitigation,
        "{what}: ctrl mitigation stats"
    );
    assert_eq!(fast, naive, "{what}: full report");
}

fn check_single(mech: MechanismKind, nrh: u32, app: &str, insts: u64) {
    let cfg = single_cfg(mech, nrh, insts);
    let trace = || {
        synthetic_app(app, 0)
            .unwrap()
            .generate(insts + insts / 5, 11)
    };
    let fast = System::build(&cfg).run(vec![trace()]);
    let naive = System::build(&cfg).run_reference(vec![trace()]);
    assert!(!fast.truncated, "{mech}@{nrh}/{app} truncated");
    assert_identical(&fast, &naive, &format!("{mech}@{nrh}/{app}"));
}

#[test]
fn idle_heavy_app_matrix_is_bit_identical() {
    // 511.povray: the fast loop spends most of its time in bubble sprints
    // and full-system jumps — exactly the paths that could drift.
    for mech in MECHANISMS {
        for nrh in NRH_POINTS {
            check_single(mech, nrh, "511.povray", 6_000);
        }
    }
}

#[test]
fn memory_bound_app_matrix_is_bit_identical() {
    // 429.mcf: queues stay hot, exercising the busy paths and the
    // wake/re-arm hand-off around refresh and back-off activity.
    for mech in MECHANISMS {
        for nrh in NRH_POINTS {
            check_single(mech, nrh, "429.mcf", 4_000);
        }
    }
}

#[test]
fn four_core_mix_is_bit_identical() {
    for (mech, nrh) in [(MechanismKind::Chronus, 64), (MechanismKind::Prac4, 1024)] {
        let mut cfg = SimConfig::four_core();
        cfg.instructions_per_core = 3_000;
        cfg.mechanism = mech;
        cfg.nrh = nrh;
        cfg.max_mem_cycles = 20_000_000;
        let traces = || {
            ["429.mcf", "470.lbm", "tpch2", "511.povray"]
                .iter()
                .enumerate()
                .map(|(i, n)| synthetic_app(n, i as u64).unwrap().generate(4_000, 17))
                .collect::<Vec<_>>()
        };
        let fast = System::build(&cfg).run(traces());
        let naive = System::build(&cfg).run_reference(traces());
        assert_identical(&fast, &naive, &format!("4-core {mech}@{nrh}"));
    }
}

#[test]
fn remaining_mechanisms_match_on_a_smoke_point() {
    // Everything the headline matrix skips still has to agree.
    for mech in [
        MechanismKind::Prac1,
        MechanismKind::Prac2,
        MechanismKind::PracPrfm,
        MechanismKind::ChronusPb,
        MechanismKind::Hydra,
        MechanismKind::Para,
        MechanismKind::Abacus,
    ] {
        check_single(mech, 128, "462.libquantum", 2_500);
    }
}
