//! Batched lockstep engine vs solo runs: every member of a
//! [`System::run_batch`] call must produce a [`SimReport`] bit-identical
//! to its own solo [`System::run`] over the same traces — across all
//! mechanisms, mixed thresholds, mixed seeds, mixed VRD distributions,
//! and multi-core workloads. This is the contract that makes batching a
//! pure cache-fill accelerator: the grid store cannot tell which path
//! produced an entry.

use chronus_core::MechanismKind;
use chronus_cpu::Trace;
use chronus_sim::{SimConfig, System, VrdSpec};
use chronus_workloads::synthetic_app;

fn base_cfg() -> SimConfig {
    let mut cfg = SimConfig::single_core();
    cfg.instructions_per_core = 4_000;
    cfg.nrh = 64;
    cfg.max_mem_cycles = 1 << 22;
    cfg
}

fn trace(app: &str, slot: u64, seed: u64) -> Trace {
    synthetic_app(app, slot)
        .expect("known app")
        .generate(5_000, seed)
}

fn assert_batch_matches_solo(cfgs: &[SimConfig], traces: &[Trace]) {
    let batch = System::run_batch(cfgs, traces);
    assert_eq!(batch.len(), cfgs.len());
    for (i, (cfg, batched)) in cfgs.iter().zip(&batch).enumerate() {
        let solo = System::build(cfg).run(traces.to_vec());
        assert_eq!(
            &solo, batched,
            "member {i} ({}@{} seed={} vrd={:?}) diverged from its solo run",
            cfg.mechanism, cfg.nrh, cfg.seed, cfg.vrd
        );
    }
}

#[test]
fn every_mechanism_is_bit_identical_to_its_solo_run() {
    let traces = vec![trace("429.mcf", 0, 42)];
    let cfgs: Vec<SimConfig> = std::iter::once(&MechanismKind::None)
        .chain(MechanismKind::all())
        .map(|&mech| {
            let mut cfg = base_cfg();
            cfg.mechanism = mech;
            cfg.oracle = true;
            cfg
        })
        .collect();
    assert_eq!(cfgs.len(), 12, "baseline + all eleven mechanisms");
    assert_batch_matches_solo(&cfgs, &traces);
}

#[test]
fn mixed_nrh_vrd_and_seed_batches_match_solo() {
    let traces = vec![trace("511.povray", 0, 7)];
    let mut cfgs = Vec::new();

    // Unmitigated members differing only in oracle parameters (N_RH, VRD
    // distribution): one timing cohort judged by a multi-lane oracle.
    for (nrh, vrd) in [
        (64u32, None),
        (
            128,
            Some(VrdSpec {
                min_pct: 50,
                seed: 1,
            }),
        ),
        (
            256,
            Some(VrdSpec {
                min_pct: 75,
                seed: 2,
            }),
        ),
        // Degenerate distribution: still a PerRow lane.
        (
            64,
            Some(VrdSpec {
                min_pct: 100,
                seed: 3,
            }),
        ),
    ] {
        let mut cfg = base_cfg();
        cfg.oracle = true;
        cfg.nrh = nrh;
        cfg.vrd = vrd;
        cfgs.push(cfg);
    }

    // PARA consumes the seed, so differing seeds fork timing cohorts.
    for seed in [1u64, 9] {
        let mut cfg = base_cfg();
        cfg.mechanism = MechanismKind::Para;
        cfg.oracle = true;
        cfg.seed = seed;
        cfgs.push(cfg);
    }

    // Chronus at different thresholds is timing-divergent: each member
    // forks onto its own controller clock (own cohort), still sharing the
    // decoded traces.
    for nrh in [64u32, 32] {
        let mut cfg = base_cfg();
        cfg.mechanism = MechanismKind::Chronus;
        cfg.oracle = true;
        cfg.nrh = nrh;
        cfgs.push(cfg);
    }

    // A duplicated member must come back twice, identically.
    cfgs.push(cfgs[0].clone());

    assert_batch_matches_solo(&cfgs, &traces);
}

#[test]
fn four_core_batches_match_solo() {
    let apps = ["429.mcf", "470.lbm", "tpch2", "511.povray"];
    let traces: Vec<Trace> = apps
        .iter()
        .enumerate()
        .map(|(i, app)| trace(app, i as u64, 42))
        .collect();
    let cfgs: Vec<SimConfig> = (0..3u64)
        .map(|s| {
            let mut cfg = SimConfig::four_core();
            cfg.instructions_per_core = 3_000;
            cfg.max_mem_cycles = 1 << 22;
            cfg.oracle = true;
            cfg.vrd = Some(VrdSpec {
                min_pct: 50,
                seed: s,
            });
            cfg
        })
        .collect();
    assert_batch_matches_solo(&cfgs, &traces);
}

#[test]
fn scalar_and_degenerate_vrd_members_report_identical_flip_counts() {
    // A degenerate (min_pct = 100) distribution pins every row at the
    // nominal threshold, so its flip census must equal the scalar
    // member's exactly — inside one batch and against solo runs.
    let traces = vec![trace("429.mcf", 0, 11)];
    let mut scalar = base_cfg();
    scalar.oracle = true;
    let mut degenerate = scalar.clone();
    degenerate.vrd = Some(VrdSpec {
        min_pct: 100,
        seed: 99,
    });
    let batch = System::run_batch(&[scalar, degenerate], &traces);
    assert_eq!(batch[0].oracle_flips, batch[1].oracle_flips);
    assert_eq!(batch[0].oracle_max_acts, batch[1].oracle_max_acts);
}
