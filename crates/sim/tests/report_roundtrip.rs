//! Pins the JSON cache format of the grid result store: serializing a
//! `SimReport` (or `SimConfig`), parsing it back, and re-serializing must
//! be byte-identical, and the parsed value must equal the original.

use chronus_core::MechanismKind;
use chronus_sim::{SimConfig, SimReport, System};
use chronus_workloads::synthetic_app;

fn small_report(mech: MechanismKind, oracle: bool) -> (SimConfig, SimReport) {
    small_report_obs(mech, oracle, false)
}

fn small_report_obs(mech: MechanismKind, oracle: bool, obs: bool) -> (SimConfig, SimReport) {
    let mut cfg = SimConfig::single_core();
    cfg.instructions_per_core = 8_000;
    cfg.mechanism = mech;
    cfg.nrh = 64;
    cfg.oracle = oracle;
    cfg.obs = obs;
    let trace = synthetic_app("429.mcf", 0)
        .expect("known app")
        .generate(10_000, 3);
    let report = System::build(&cfg).run(vec![trace]);
    (cfg, report)
}

fn assert_roundtrip(report: &SimReport) {
    let compact = serde_json::to_string(report).unwrap();
    let parsed: SimReport = serde_json::from_str(&compact).unwrap();
    assert_eq!(&parsed, report, "parsed report differs from the original");
    let again = serde_json::to_string(&parsed).unwrap();
    assert_eq!(again, compact, "re-serialization is not byte-identical");

    // Pretty output (the on-disk store format) must round-trip too.
    let pretty = serde_json::to_string_pretty(report).unwrap();
    let parsed_pretty: SimReport = serde_json::from_str(&pretty).unwrap();
    assert_eq!(
        serde_json::to_string_pretty(&parsed_pretty).unwrap(),
        pretty
    );
}

#[test]
fn report_roundtrip_baseline() {
    let (_, report) = small_report(MechanismKind::None, false);
    assert!(report.oracle_max_acts.is_none(), "oracle off → None fields");
    assert_roundtrip(&report);
}

#[test]
fn report_roundtrip_mechanism_with_oracle() {
    // Chronus with the oracle attached exercises the Option<..> = Some
    // paths and the mitigation counters.
    let (_, report) = small_report(MechanismKind::Chronus, true);
    assert!(report.oracle_max_acts.is_some());
    assert_roundtrip(&report);
}

#[test]
fn report_roundtrip_with_obs_section() {
    // The ObsReport section carries histograms and entropy floats; the
    // store format requires those to survive serialize → parse →
    // re-serialize byte-identically (the f64 writer emits the shortest
    // round-trippable form).
    let (_, report) = small_report_obs(MechanismKind::Chronus, false, true);
    let obs = report.obs.as_ref().expect("obs was enabled");
    assert!(obs.read_latency.total > 0, "probe recorded no reads");
    assert!(
        obs.latency_entropy_bits > 0.0,
        "a real workload has latency spread"
    );
    assert_roundtrip(&report);
}

#[test]
fn report_roundtrip_with_vrd_oracle() {
    // A per-row VRD oracle exercises the PerRow lane; the report's flip
    // census must survive the store format like any other field.
    let mut cfg = SimConfig::single_core();
    cfg.instructions_per_core = 8_000;
    cfg.nrh = 64;
    cfg.oracle = true;
    cfg.vrd = Some(chronus_sim::VrdSpec {
        min_pct: 50,
        seed: 4,
    });
    let trace = chronus_workloads::synthetic_app("429.mcf", 0)
        .expect("known app")
        .generate(10_000, 3);
    let report = System::build(&cfg).run(vec![trace]);
    assert!(report.oracle_flips.is_some());
    assert_roundtrip(&report);
}

#[test]
fn config_vrd_field_roundtrips_and_is_required() {
    let mut cfg = SimConfig::single_core();
    cfg.oracle = true;
    cfg.vrd = Some(chronus_sim::VrdSpec {
        min_pct: 50,
        seed: 9,
    });
    let compact = serde_json::to_string(&cfg).unwrap();
    let parsed: SimConfig = serde_json::from_str(&compact).unwrap();
    assert_eq!(parsed, cfg);
    assert_eq!(serde_json::to_string(&parsed).unwrap(), compact);

    // Older-schema documents (no `vrd` key) must error, not default: the
    // grid store then treats pre-VRD entries as misses.
    let pruned = compact.replacen(",\"vrd\":{\"min_pct\":50,\"seed\":9}", "", 1);
    assert_ne!(pruned, compact, "test must actually remove the field");
    let err = serde_json::from_str::<SimConfig>(&pruned).unwrap_err();
    assert!(
        err.to_string().contains("missing field"),
        "unexpected error: {err}"
    );
}

#[test]
fn config_roundtrip_is_byte_identical() {
    let mut cfg = SimConfig::four_core();
    cfg.mechanism = MechanismKind::Prac4;
    cfg.nrh = 32;
    cfg.threshold_override = Some(4);
    cfg.mapping = Some(chronus_ctrl::AddressMapping::AbacusMop);
    cfg.timing_override = Some(chronus_dram::TimingMode::PracBuggy);
    let compact = serde_json::to_string(&cfg).unwrap();
    let parsed: SimConfig = serde_json::from_str(&compact).unwrap();
    assert_eq!(parsed, cfg);
    assert_eq!(serde_json::to_string(&parsed).unwrap(), compact);
}

#[test]
fn missing_fields_fail_to_parse() {
    // A document from an older schema (field absent) must error — not
    // default the field — so the grid store treats stale entries as
    // misses and re-simulates instead of serving partial reports.
    let cfg = SimConfig::four_core();
    let json = serde_json::to_string(&cfg).unwrap();
    let pruned = json.replacen("\"nrh\":1024,", "", 1);
    assert_ne!(pruned, json, "test must actually remove the field");
    let err = serde_json::from_str::<SimConfig>(&pruned).unwrap_err();
    assert!(
        err.to_string().contains("missing field"),
        "unexpected error: {err}"
    );
}
