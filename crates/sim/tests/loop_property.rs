//! Randomized fast-loop / reference-loop equivalence.
//!
//! The matrix tests in `loop_equivalence.rs` pin known-hostile workloads;
//! this file closes the gaps between them: random traces (random op mix,
//! bubble spacing, and address clustering), random mechanisms, and random
//! thresholds, all asserting that [`System::run`] and
//! [`System::run_reference`] produce bit-identical [`SimReport`]s.

use chronus_core::MechanismKind;
use chronus_cpu::{Trace, TraceEntry, TraceOp};
use chronus_sim::{SimConfig, System, VrdSpec};
use proptest::prelude::*;

/// Mechanisms sampled by the property: one per mitigation family
/// (none, PRAC+ABO, hybrid, PRFM, tracker+VRR, probabilistic).
const MECHANISMS: [MechanismKind; 6] = [
    MechanismKind::None,
    MechanismKind::Prac4,
    MechanismKind::Chronus,
    MechanismKind::Prfm,
    MechanismKind::Graphene,
    MechanismKind::Para,
];

/// Builds a trace from sampled `(bubbles, kind, addr)` triples, folding
/// each address into a `footprint_bits`-sized working set.
fn trace_from(entries: &[(u32, u8, u64)], footprint_bits: u32) -> Trace {
    let mut t = Trace::new("random");
    let mask = (1u64 << footprint_bits) - 1;
    for &(bubbles, kind, addr) in entries {
        let addr = addr & mask;
        let op = match kind {
            // Loads dominate so the read queue stays hot; stores force
            // dirty evictions; non-cacheable loads bypass the LLC and
            // stress the per-access DRAM path.
            0..=4 => TraceOp::Load(addr),
            5..=7 => TraceOp::Store(addr),
            _ => TraceOp::LoadNc(addr),
        };
        t.entries.push(TraceEntry { bubbles, op });
    }
    t
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    // Each case runs a full fast and reference simulation; the case count
    // is small but every run covers thousands of memory cycles across
    // refresh, drain, back-off, and VRR activity.
    #[test]
    fn random_traces_run_bit_identical_to_the_reference_loop(
        entries in proptest::collection::vec((0u32..12, 0u8..10, 0u64..u64::MAX), 600..1800),
        mech_idx in 0usize..MECHANISMS.len(),
        nrh_exp in 5u32..11,
        // Small footprints maximize row conflicts; large ones maximize
        // LLC miss rates. Sample both regimes.
        footprint_bits in 14u32..26,
    ) {
        let mech = MECHANISMS[mech_idx];
        let nrh = 1u32 << nrh_exp;
        let insts = (entries.len() as u64 * 4) / 5;
        let trace = trace_from(&entries, footprint_bits);
        let mut cfg = SimConfig::single_core();
        cfg.instructions_per_core = insts;
        cfg.mechanism = mech;
        cfg.nrh = nrh;
        cfg.max_mem_cycles = insts * 10_000;
        // Attach the observability probe on half the sampled space
        // (deterministically, so failures replay): obs-on cases must stay
        // bit-identical including the ObsReport section.
        cfg.obs = nrh_exp % 2 == 0;
        let fast = System::build(&cfg).run(vec![trace.clone()]);
        let naive = System::build(&cfg).run_reference(vec![trace]);
        prop_assert_eq!(fast.obs.is_some(), cfg.obs, "obs presence mismatch");
        prop_assert_eq!(&fast, &naive, "{}@{} diverged", mech, nrh);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    // Fuzzes the batched lockstep engine over mechanism × N_RH × seed ×
    // VRD variants on one random trace: every member of a
    // `System::run_batch` must be bit-identical to its own solo
    // `System::run`. Random seeds across non-PARA members double as a
    // check that nothing but PARA consumes the seed (the cohort key
    // normalizes it away).
    #[test]
    fn random_batches_run_bit_identical_to_solo_runs(
        entries in proptest::collection::vec((0u32..12, 0u8..10, 0u64..u64::MAX), 300..900),
        // `min_pct` 0 encodes "no VRD" (the scalar oracle); 1..=100 is a
        // real distribution, 100 being the degenerate one.
        variants in proptest::collection::vec(
            (0usize..MECHANISMS.len(), 5u32..11, 0u32..101u32, 0u64..u64::MAX),
            2..5,
        ),
        footprint_bits in 14u32..26,
    ) {
        let insts = (entries.len() as u64 * 4) / 5;
        let traces = vec![trace_from(&entries, footprint_bits)];
        let cfgs: Vec<SimConfig> = variants
            .iter()
            .map(|&(mech_idx, nrh_exp, vrd_pct, seed)| {
                let mut cfg = SimConfig::single_core();
                cfg.instructions_per_core = insts;
                cfg.mechanism = MECHANISMS[mech_idx];
                cfg.nrh = 1u32 << nrh_exp;
                cfg.seed = seed;
                cfg.oracle = true;
                cfg.vrd = (vrd_pct > 0).then_some(VrdSpec {
                    min_pct: vrd_pct,
                    seed: seed ^ 0x5a,
                });
                cfg.max_mem_cycles = insts * 10_000;
                cfg
            })
            .collect();
        let batch = System::run_batch(&cfgs, &traces);
        for (cfg, batched) in cfgs.iter().zip(&batch) {
            let solo = System::build(cfg).run(traces.clone());
            prop_assert_eq!(
                &solo,
                batched,
                "{}@{} seed={} vrd={:?} diverged from its solo run",
                cfg.mechanism,
                cfg.nrh,
                cfg.seed,
                cfg.vrd
            );
        }
    }
}
