//! Periodic-refresh scheduling with bounded postponement.
//!
//! DDR5 controllers may postpone up to four REF commands when demand
//! traffic is pending (§5 of the paper discusses why this weakens
//! borrowed-refresh-style defences). The engine tracks, per rank, how many
//! refreshes are owed and whether the debt has become urgent.

use chronus_dram::Cycle;

/// Maximum REF commands that may be postponed (DDR5).
pub const MAX_POSTPONED: u64 = 4;

/// Per-rank refresh debt tracking.
#[derive(Debug, Clone)]
pub struct RefreshEngine {
    refi: Cycle,
    /// REFs that should have been issued by now.
    due: u64,
    /// REFs actually issued.
    done: u64,
    /// Next cycle at which a new REF becomes due.
    next_due: Cycle,
}

impl RefreshEngine {
    /// An engine issuing a REF every `refi` cycles.
    pub fn new(refi: Cycle) -> Self {
        Self {
            refi,
            due: 0,
            done: 0,
            next_due: refi,
        }
    }

    /// Advances time; accumulates newly due refreshes. Returns `true` when
    /// the debt grew (a wake-relevant change: pending/urgent may flip).
    pub fn tick(&mut self, now: Cycle) -> bool {
        let before = self.due;
        while now >= self.next_due {
            self.due += 1;
            self.next_due += self.refi;
        }
        self.due != before
    }

    /// A refresh is owed (may still be postponed if not urgent).
    pub fn pending(&self) -> bool {
        self.due > self.done
    }

    /// The debt reached the postponement limit: a REF must be issued before
    /// any other command to this rank.
    pub fn urgent(&self) -> bool {
        self.due - self.done >= MAX_POSTPONED
    }

    /// Records an issued REFab.
    pub fn refreshed(&mut self) {
        self.done += 1;
        debug_assert!(self.done <= self.due + 1);
    }

    /// REFs issued so far.
    pub fn completed(&self) -> u64 {
        self.done
    }

    /// The next cycle at which a new REF becomes due — the wake-up point
    /// for the event-driven loop when no refresh is currently owed.
    pub fn next_due(&self) -> Cycle {
        self.next_due
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn refresh_becomes_due_every_refi() {
        let mut e = RefreshEngine::new(100);
        e.tick(99);
        assert!(!e.pending());
        e.tick(100);
        assert!(e.pending());
        e.refreshed();
        assert!(!e.pending());
    }

    #[test]
    fn urgency_after_four_postponements() {
        let mut e = RefreshEngine::new(100);
        e.tick(399);
        assert!(e.pending());
        assert!(!e.urgent());
        e.tick(400);
        assert!(e.urgent());
        e.refreshed();
        assert!(!e.urgent());
        assert!(e.pending());
    }

    #[test]
    fn debt_accumulates() {
        let mut e = RefreshEngine::new(10);
        e.tick(55);
        assert!(e.pending());
        for _ in 0..5 {
            e.refreshed();
        }
        assert!(!e.pending());
        assert_eq!(e.completed(), 5);
    }

    #[test]
    fn next_due_advances_with_time() {
        let mut e = RefreshEngine::new(100);
        assert_eq!(e.next_due(), 100);
        e.tick(250);
        assert_eq!(e.next_due(), 300);
    }
}
