//! Controller-side mitigation extension point.
//!
//! Graphene, Hydra, PARA and ABACuS (implemented in `chronus-core`) observe
//! every row activation the controller performs and respond with actions:
//! victim-row refreshes (modelled as `VRR` pseudo-commands with strict
//! priority) and, for Hydra, auxiliary DRAM reads/writes that model its
//! in-DRAM counter-table traffic.

use chronus_dram::{BankId, Cycle, DramAddr, RowId};
use serde::{Deserialize, Serialize};

/// An action a controller-side mechanism requests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MitigationAction {
    /// Preventively refresh all victims of `aggressor` (the controller
    /// expands this to one `VRR` per victim under the device's blast
    /// radius). Used by the deterministic mechanisms (Graphene, Hydra,
    /// ABACuS).
    RefreshVictims {
        /// Bank holding the aggressor.
        bank: BankId,
        /// The aggressor whose neighbourhood is refreshed.
        aggressor: RowId,
    },
    /// Preventively refresh one victim row (occupies the bank for `tRC`).
    /// Used by PARA, which samples a single neighbour per trigger.
    RefreshRow {
        /// Bank holding the victim.
        bank: BankId,
        /// Victim row.
        row: RowId,
    },
    /// Inject a cache-line read (Hydra RCT fill).
    AuxRead {
        /// Target of the auxiliary access.
        addr: DramAddr,
    },
    /// Inject a cache-line write (Hydra RCT writeback).
    AuxWrite {
        /// Target of the auxiliary access.
        addr: DramAddr,
    },
}

/// Counters reported by controller-side mechanisms.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CtrlMitigationStats {
    /// Preventive victim-row refreshes requested.
    pub victim_refreshes: u64,
    /// Auxiliary DRAM reads injected.
    pub aux_reads: u64,
    /// Auxiliary DRAM writes injected.
    pub aux_writes: u64,
    /// Mechanism-specific trigger events (threshold crossings, PARA coin
    /// flips that hit, …).
    pub triggers: u64,
}

/// Controller-side read-disturbance mitigation hook.
pub trait CtrlMitigation: Send {
    /// Called for every row activation the controller issues on behalf of a
    /// demand request. The mechanism appends any actions to `actions`.
    fn on_activate(&mut self, addr: DramAddr, now: Cycle, actions: &mut Vec<MitigationAction>);

    /// Evaluation counters.
    fn stats(&self) -> CtrlMitigationStats {
        CtrlMitigationStats::default()
    }

    /// Short mechanism name for reports.
    fn kind_name(&self) -> &'static str;
}

/// No controller-side mechanism (baseline, or when the mechanism lives on
/// the DRAM die).
#[derive(Debug, Clone, Copy, Default)]
pub struct NoCtrlMitigation;

impl CtrlMitigation for NoCtrlMitigation {
    fn on_activate(&mut self, _addr: DramAddr, _now: Cycle, _actions: &mut Vec<MitigationAction>) {}

    fn kind_name(&self) -> &'static str {
        "none"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chronus_dram::BankId;

    #[test]
    fn no_ctrl_mitigation_is_inert() {
        let mut m = NoCtrlMitigation;
        let mut actions = Vec::new();
        m.on_activate(DramAddr::new(BankId::new(0, 0, 0), 1, 0), 5, &mut actions);
        assert!(actions.is_empty());
        assert_eq!(m.stats(), CtrlMitigationStats::default());
    }
}
