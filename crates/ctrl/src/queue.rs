//! Per-bank indexed request queues for the event-driven controller.
//!
//! The scheduler's FR-FCFS passes only ever care about two requests per
//! bank — the oldest row hit and the oldest non-hit — so the controller
//! keeps demand requests in a stable slab indexed by flat bank id:
//! [`RequestQueue::bank_slots`] yields each bank's requests oldest-first,
//! [`RequestQueue::occupied_banks`] enumerates only banks that have work,
//! and per-entry sequence numbers ([`Entry::seq`]) recover the global age
//! order the flat `Vec` used to encode positionally. Removal is O(bank
//! depth) instead of O(queue) `Vec::remove`.

use chronus_dram::Geometry;

use crate::request::MemRequest;
use crate::scheduler::Entry;

/// Largest flat-bank index the fixed bitsets support. Controllers reject
/// geometries beyond this at construction (a hard error, not a
/// `debug_assert!` — see [`BankSet`]).
pub const MAX_BANKS: usize = 256;

const WORDS: usize = MAX_BANKS / 64;

/// A fixed-capacity set of flat bank ids (up to [`MAX_BANKS`]).
///
/// Replaces the bare `u64` masks the scheduler used to shift into — those
/// silently overflowed for geometries past 64 banks in release builds.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BankSet {
    words: [u64; WORDS],
}

impl BankSet {
    /// An empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `flat` to the set.
    #[inline]
    pub fn insert(&mut self, flat: usize) {
        self.words[flat / 64] |= 1 << (flat % 64);
    }

    /// Removes `flat` from the set.
    #[inline]
    pub fn remove(&mut self, flat: usize) {
        self.words[flat / 64] &= !(1 << (flat % 64));
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, flat: usize) -> bool {
        self.words[flat / 64] & (1 << (flat % 64)) != 0
    }

    /// Iterates members in ascending order.
    pub fn iter(&self) -> BankSetIter {
        BankSetIter {
            words: self.words,
            word: 0,
        }
    }
}

/// Iterator over a [`BankSet`], ascending.
pub struct BankSetIter {
    words: [u64; WORDS],
    word: usize,
}

impl Iterator for BankSetIter {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        while self.word < WORDS {
            let w = self.words[self.word];
            if w != 0 {
                let bit = w.trailing_zeros() as usize;
                self.words[self.word] = w & (w - 1);
                return Some(self.word * 64 + bit);
            }
            self.word += 1;
        }
        None
    }
}

/// A demand queue (reads or writes) indexed by flat bank.
#[derive(Debug)]
pub struct RequestQueue {
    geo: Geometry,
    /// Stable storage; slot ids stay valid until removal.
    slots: Vec<Option<Entry>>,
    free: Vec<u32>,
    /// Per flat bank: slot ids in age order (oldest first).
    by_bank: Vec<Vec<u32>>,
    occupied: BankSet,
    rank_len: Vec<usize>,
    len: usize,
    next_seq: u64,
}

impl RequestQueue {
    /// An empty queue for `geo`.
    ///
    /// # Panics
    ///
    /// Panics when the geometry exceeds [`MAX_BANKS`] flat banks — the
    /// scheduler's bank bitsets are fixed-width, so larger geometries must
    /// fail loudly at construction rather than mis-schedule silently.
    pub fn new(geo: Geometry) -> Self {
        assert!(
            geo.total_banks() <= MAX_BANKS,
            "geometry has {} banks; the controller's bank bitsets support \
             at most {MAX_BANKS}",
            geo.total_banks()
        );
        Self {
            geo,
            slots: Vec::new(),
            free: Vec::new(),
            by_bank: vec![Vec::new(); geo.total_banks()],
            occupied: BankSet::new(),
            rank_len: vec![0; geo.ranks],
            len: 0,
            next_seq: 0,
        }
    }

    /// Queued requests.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no request is queued.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Queued requests whose bank lives in `rank`.
    pub fn rank_len(&self, rank: usize) -> usize {
        self.rank_len[rank]
    }

    /// Appends `req` (it becomes the youngest entry) and returns its slot.
    pub fn push(&mut self, req: MemRequest) -> u32 {
        let entry = Entry {
            req,
            caused_pre: false,
            caused_act: false,
            seq: self.next_seq,
        };
        self.next_seq += 1;
        let slot = match self.free.pop() {
            Some(s) => {
                self.slots[s as usize] = Some(entry);
                s
            }
            None => {
                self.slots.push(Some(entry));
                (self.slots.len() - 1) as u32
            }
        };
        let flat = req.addr.bank.flat(&self.geo);
        self.by_bank[flat].push(slot);
        self.occupied.insert(flat);
        self.rank_len[req.addr.bank.rank as usize] += 1;
        self.len += 1;
        slot
    }

    /// The entry stored at `slot`.
    pub fn get(&self, slot: u32) -> &Entry {
        self.slots[slot as usize].as_ref().expect("live slot")
    }

    /// Mutable access to the entry stored at `slot`.
    pub fn get_mut(&mut self, slot: u32) -> &mut Entry {
        self.slots[slot as usize].as_mut().expect("live slot")
    }

    /// Removes and returns the entry at `slot`.
    pub fn remove(&mut self, slot: u32) -> Entry {
        let entry = self.slots[slot as usize].take().expect("live slot");
        let flat = entry.req.addr.bank.flat(&self.geo);
        let list = &mut self.by_bank[flat];
        let pos = list
            .iter()
            .position(|&s| s == slot)
            .expect("slot indexed under its bank");
        list.remove(pos);
        if list.is_empty() {
            self.occupied.remove(flat);
        }
        self.rank_len[entry.req.addr.bank.rank as usize] -= 1;
        self.len -= 1;
        self.free.push(slot);
        entry
    }

    /// The [`ReqKind`](crate::request::ReqKind) of the queued requests, or
    /// `None` when empty. Queues are kind-uniform (the controller keeps
    /// reads and writes apart), so any live entry's kind is *the* kind.
    pub fn head_kind(&self) -> Option<crate::request::ReqKind> {
        let flat = self.occupied.iter().next()?;
        let slot = self.by_bank[flat][0];
        Some(self.get(slot).req.kind)
    }

    /// Flat bank ids that currently hold at least one request, ascending.
    pub fn occupied_banks(&self) -> BankSetIter {
        self.occupied.iter()
    }

    /// Slot ids queued for flat bank `flat`, oldest first.
    pub fn bank_slots(&self, flat: usize) -> &[u32] {
        &self.by_bank[flat]
    }

    /// All live `(slot, entry)` pairs, in unspecified order. Sort by
    /// [`Entry::seq`] to recover arrival order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &Entry)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|e| (i as u32, e)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::ReqKind;
    use chronus_dram::{BankId, DramAddr};

    fn req(id: u64, flat: usize, geo: &Geometry) -> MemRequest {
        MemRequest {
            id,
            kind: ReqKind::Read,
            addr: DramAddr::new(BankId::from_flat(flat, geo), id as u32, 0),
            core: 0,
            arrived: id,
        }
    }

    #[test]
    fn bank_lists_stay_age_ordered_across_reuse() {
        let geo = Geometry::tiny();
        let mut q = RequestQueue::new(geo);
        let a = q.push(req(0, 1, &geo));
        let b = q.push(req(1, 1, &geo));
        let c = q.push(req(2, 3, &geo));
        assert_eq!(q.len(), 3);
        assert_eq!(q.rank_len(0), 3);
        assert_eq!(q.occupied_banks().collect::<Vec<_>>(), vec![1, 3]);
        assert_eq!(q.bank_slots(1), &[a, b]);
        // Remove the middle-aged entry; the freed slot is reused but the
        // new entry is still the youngest of its bank.
        let gone = q.remove(a);
        assert_eq!(gone.req.id, 0);
        let d = q.push(req(3, 1, &geo));
        assert_eq!(q.bank_slots(1), &[b, d]);
        assert!(q.get(b).seq < q.get(d).seq, "seq recovers age order");
        let _ = q.remove(b);
        let _ = q.remove(d);
        assert_eq!(q.occupied_banks().collect::<Vec<_>>(), vec![3]);
        let _ = q.remove(c);
        assert!(q.is_empty());
        assert_eq!(q.rank_len(0), 0);
    }

    #[test]
    fn bank_set_spans_more_than_64_banks() {
        let mut s = BankSet::new();
        for flat in [0usize, 63, 64, 130, 255] {
            s.insert(flat);
        }
        assert!(s.contains(130), "bit 130 must not be shifted out");
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 63, 64, 130, 255]);
        s.remove(64);
        assert!(!s.contains(64));
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 63, 130, 255]);
    }

    #[test]
    #[should_panic(expected = "at most")]
    fn oversized_geometry_is_rejected_at_construction() {
        let mut geo = Geometry::ddr5();
        geo.ranks = 16; // 16 × 32 = 512 flat banks
        let _ = RequestQueue::new(geo);
    }
}
