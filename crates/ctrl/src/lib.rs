//! DDR5 memory controller.
//!
//! Implements the controller half of the paper's evaluation platform
//! (Table 2): 64-entry read/write queues, FR-FCFS scheduling with a cap on
//! column-over-row reordering (Cap = 4), MOP address mapping, periodic
//! refresh with bounded postponement, and — central to the paper — the
//! refresh-management machinery:
//!
//! * **PRFM** (early DDR5): per-bank rolling activation counters that force
//!   an RFM every `RFMth` activations.
//! * **PRAC back-off** (DDR5 as of April 2024): on `alert_n`, a window of
//!   normal traffic (`tABOACT`), a recovery period of `N_Ref` back-to-back
//!   RFMs, and a delay period of `N_Delay` activations.
//! * **Chronus back-off** (§7.2): RFMs are issued while the device keeps
//!   `alert_n` asserted — as many as needed, with no delay period.
//!
//! Controller-side mitigation mechanisms (Graphene, Hydra, PARA, ABACuS —
//! implemented in `chronus-core`) plug in through [`CtrlMitigation`] and
//! inject victim-row refreshes and auxiliary DRAM traffic.

pub mod controller;
pub mod mapping;
pub mod mitigation;
pub mod obs;
pub mod queue;
pub mod refresh;
pub mod request;
pub mod rfm;
pub mod scheduler;

pub use controller::{CtrlConfig, CtrlStats, MemoryController};
pub use mapping::AddressMapping;
pub use mitigation::{CtrlMitigation, CtrlMitigationStats, MitigationAction, NoCtrlMitigation};
pub use obs::{ObsHistogram, ObsPauses, ObsReport};
pub use queue::{BankSet, RequestQueue, MAX_BANKS};
pub use request::{Completion, MemRequest, ReqKind};
pub use rfm::RfmPolicy;
