//! The memory controller: queues, arbitration, refresh, RFM/back-off.

use std::collections::{BinaryHeap, VecDeque};

use chronus_dram::{BankId, Command, Cycle, DramDevice, RowId};
use serde::{Deserialize, Serialize};

use crate::mapping::AddressMapping;
use crate::mitigation::{CtrlMitigation, CtrlMitigationStats, MitigationAction, NoCtrlMitigation};
use crate::obs::{ObsProbe, ObsReport, PauseCause, RowOutcome};
use crate::queue::RequestQueue;
use crate::refresh::RefreshEngine;
use crate::request::{Completion, MemRequest, ReqKind, INTERNAL_CORE};
use crate::rfm::{BackOffFsm, BackOffState, RfmPolicy};
use crate::scheduler::{self, Decision};

/// Controller configuration (Table 2 defaults via [`CtrlConfig::default`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CtrlConfig {
    /// Read-queue capacity.
    pub read_q: usize,
    /// Write-queue capacity.
    pub write_q: usize,
    /// FR-FCFS column-over-row reordering cap.
    pub cap: u32,
    /// Physical-address mapping.
    pub mapping: AddressMapping,
    /// Enter write-drain mode at this write-queue occupancy.
    pub wr_high: usize,
    /// Leave write-drain mode at this occupancy.
    pub wr_low: usize,
    /// Back-off policy (PRAC / Chronus / none).
    pub rfm_policy: RfmPolicy,
    /// PRFM: issue an RFM when a bank accumulates this many activations.
    pub raa_threshold: Option<u32>,
}

impl Default for CtrlConfig {
    fn default() -> Self {
        Self {
            read_q: 64,
            write_q: 64,
            cap: 4,
            mapping: AddressMapping::Mop,
            wr_high: 48,
            wr_low: 16,
            rfm_policy: RfmPolicy::None,
            raa_threshold: None,
        }
    }
}

/// Controller statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CtrlStats {
    /// Reads served from an already-open row.
    pub row_hits: u64,
    /// Reads/writes that required an activation only.
    pub row_misses: u64,
    /// Reads/writes that required closing another row first.
    pub row_conflicts: u64,
    /// Demand reads completed.
    pub reads_served: u64,
    /// Demand writes issued to DRAM.
    pub writes_served: u64,
    /// Sum of read latencies (arrival → data), in memory cycles.
    pub read_latency_sum: u64,
    /// Victim-row refreshes issued (controller-side mechanisms).
    pub vrrs_issued: u64,
    /// RFMs issued by the PRFM RAA counters.
    pub raa_rfms: u64,
    /// Back-offs honoured (PRAC / Chronus policies).
    pub back_offs: u64,
    /// RFMs issued during back-off recovery periods.
    pub recovery_rfms: u64,
}

impl CtrlStats {
    /// Mean demand-read latency in memory cycles.
    pub fn avg_read_latency(&self) -> f64 {
        if self.reads_served == 0 {
            0.0
        } else {
            self.read_latency_sum as f64 / self.reads_served as f64
        }
    }
}

#[derive(PartialEq, Eq)]
struct PendingCompletion(Completion);

impl Ord for PendingCompletion {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Min-heap on completion time.
        other.0.at.cmp(&self.0.at).then(other.0.id.cmp(&self.0.id))
    }
}

impl PartialOrd for PendingCompletion {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// One pending victim-row refresh. When `completes_service_of` is set,
/// issuing this VRR finishes a whole victim group and the controller
/// notifies the device's oracle that the aggressor has been serviced.
#[derive(Debug, Clone, Copy)]
struct PendingVrr {
    bank: BankId,
    row: RowId,
    completes_service_of: Option<RowId>,
}

/// Tombstones beyond which the VRR queue is compacted in one `retain`
/// sweep (middle removals are tombstoned to stay O(1); issue order is
/// unaffected because tombstones are invisible to the scan).
const VRR_COMPACT_THRESHOLD: usize = 64;

/// The DDR5 memory controller.
pub struct MemoryController {
    cfg: CtrlConfig,
    reads: RequestQueue,
    writes: RequestQueue,
    /// Pending victim-row refreshes (strict priority over demand).
    /// `None` entries are tombstones of already-issued VRRs.
    vrrq: VecDeque<Option<PendingVrr>>,
    vrr_tombstones: usize,
    completions: BinaryHeap<PendingCompletion>,
    fsm: Vec<BackOffFsm>,
    refresh: Vec<RefreshEngine>,
    /// PRFM rolling activation counters, per flat bank.
    raa: Vec<u32>,
    /// Ranks whose RAA counters demand an RFM before further activations
    /// (maintained incrementally at the increment/subtract points; blocks
    /// demand like a recovery period).
    raa_hot: Vec<bool>,
    hit_streak: Vec<u32>,
    mitigation: Box<dyn CtrlMitigation>,
    drain_mode: bool,
    actions_buf: Vec<MitigationAction>,
    stats: CtrlStats,
    /// Memoized [`MemoryController::next_wake`] verdict; valid while
    /// `!wake_dirty` and strictly in the future.
    wake_cache: Cycle,
    wake_dirty: bool,
    /// The demand decision the tick at `wake_cache` will take, when the
    /// wake is decided strictly by a demand candidate (`(decision,
    /// is_write_queue)`). Valid under the same conditions as `wake_cache`
    /// and only at exactly that cycle; lets the tick skip its queue scan.
    wake_decision: Option<(Decision, bool)>,
    wake_recomputes: u64,
    wake_shortcuts: u64,
    /// Opt-in timing-observability probe ([`crate::obs`]); `None` (one
    /// branch per issued command) unless [`MemoryController::enable_obs`]
    /// was called. Strictly observational: never consulted by scheduling.
    obs: Option<Box<ObsProbe>>,
}

impl std::fmt::Debug for MemoryController {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MemoryController")
            .field("cfg", &self.cfg)
            .field("reads", &self.reads.len())
            .field("writes", &self.writes.len())
            .field("vrrq", &self.pending_vrrs())
            .field("stats", &self.stats)
            .finish()
    }
}

impl MemoryController {
    /// A controller for the given device geometry.
    pub fn new(cfg: CtrlConfig, dram: &DramDevice) -> Self {
        Self::with_mitigation(cfg, dram, Box::new(NoCtrlMitigation))
    }

    /// A controller with a controller-side mitigation mechanism attached.
    ///
    /// # Panics
    ///
    /// Panics when the geometry exceeds [`crate::queue::MAX_BANKS`] flat
    /// banks (the scheduler's bank bitsets are fixed-width).
    pub fn with_mitigation(
        cfg: CtrlConfig,
        dram: &DramDevice,
        mitigation: Box<dyn CtrlMitigation>,
    ) -> Self {
        let geo = *dram.geometry();
        let refi = dram.timings().refi;
        Self {
            cfg,
            reads: RequestQueue::new(geo),
            writes: RequestQueue::new(geo),
            vrrq: VecDeque::new(),
            vrr_tombstones: 0,
            completions: BinaryHeap::new(),
            fsm: (0..geo.ranks)
                .map(|_| BackOffFsm::new(cfg.rfm_policy))
                .collect(),
            refresh: (0..geo.ranks).map(|_| RefreshEngine::new(refi)).collect(),
            raa: vec![0; geo.total_banks()],
            raa_hot: vec![false; geo.ranks],
            hit_streak: vec![0; geo.total_banks()],
            mitigation,
            drain_mode: false,
            actions_buf: Vec::new(),
            stats: CtrlStats::default(),
            wake_cache: 0,
            wake_dirty: true,
            wake_decision: None,
            wake_recomputes: 0,
            wake_shortcuts: 0,
            obs: None,
        }
    }

    /// Attaches the timing-observability probe ([`crate::obs`]). Recording
    /// happens only at command-issue events, so the fast and reference
    /// loops observe identical streams.
    pub fn enable_obs(&mut self) {
        let total_banks = self.raa.len();
        self.obs = Some(Box::new(ObsProbe::new(total_banks)));
    }

    /// Whether the observability probe is attached.
    pub fn obs_enabled(&self) -> bool {
        self.obs.is_some()
    }

    /// Detaches the probe and freezes it into a report; any open
    /// mitigation pause is closed at `mem_cycles`. `None` when obs was
    /// never enabled.
    pub fn take_obs_report(&mut self, mem_cycles: Cycle) -> Option<ObsReport> {
        self.obs.take().map(|p| p.finish(mem_cycles))
    }

    /// Probe hook for a non-demand command: opens/extends a mitigation
    /// pause when demand is actually waiting behind it.
    fn obs_block(&mut self, cause: PauseCause, now: Cycle) {
        if let Some(obs) = self.obs.as_deref_mut() {
            if self.reads.len() + self.writes.len() > 0 {
                obs.note_block(cause, now);
            }
        }
    }

    /// Whether a new request of `kind` can be accepted this cycle.
    pub fn can_accept(&self, kind: ReqKind) -> bool {
        match kind {
            ReqKind::Read => self.reads.len() < self.cfg.read_q,
            ReqKind::Write => self.writes.len() < self.cfg.write_q,
        }
    }

    /// Enqueues a demand request. Returns `false` (rejecting the request)
    /// when the corresponding queue is full.
    pub fn push_request(&mut self, req: MemRequest) -> bool {
        if !self.can_accept(req.kind) {
            return false;
        }
        match req.kind {
            ReqKind::Read => self.reads.push(req),
            ReqKind::Write => self.writes.push(req),
        };
        self.wake_dirty = true;
        true
    }

    /// Delivers completions whose data has arrived by `now`.
    pub fn drain_completions(&mut self, now: Cycle, out: &mut Vec<Completion>) {
        while let Some(PendingCompletion(c)) = self.completions.peek() {
            if c.at > now {
                break;
            }
            let c = *c;
            self.completions.pop();
            out.push(c);
        }
    }

    /// Outstanding demand requests (both queues).
    pub fn pending_requests(&self) -> usize {
        self.reads.len() + self.writes.len()
    }

    /// Outstanding victim refreshes.
    pub fn pending_vrrs(&self) -> usize {
        self.vrrq.len() - self.vrr_tombstones
    }

    /// Reads still waiting for data.
    pub fn pending_reads(&self) -> usize {
        self.reads.len() + self.completions.len()
    }

    /// Controller statistics.
    pub fn stats(&self) -> &CtrlStats {
        &self.stats
    }

    /// Controller-side mechanism statistics.
    pub fn mitigation_stats(&self) -> CtrlMitigationStats {
        self.mitigation.stats()
    }

    /// The attached controller-side mechanism.
    pub fn mitigation(&self) -> &dyn CtrlMitigation {
        self.mitigation.as_ref()
    }

    /// The controller configuration.
    pub fn config(&self) -> &CtrlConfig {
        &self.cfg
    }

    /// Arrival time of the earliest pending read completion, if any. The
    /// event-driven loop uses this to bound fast-forward jumps: completions
    /// are drained outside [`MemoryController::tick`], so they do not
    /// contribute to [`MemoryController::next_wake`].
    pub fn next_completion_at(&self) -> Option<Cycle> {
        self.completions.peek().map(|PendingCompletion(c)| c.at)
    }

    /// How many times [`MemoryController::next_wake`] actually recomputed
    /// its verdict (as opposed to serving the memoized one). Exposed for
    /// the cache-invalidation tests.
    pub fn wake_recomputes(&self) -> u64 {
        self.wake_recomputes
    }

    /// How many ticks issued straight from the fused-scan verdict without
    /// re-scanning the queues (see [`MemoryController::next_wake`]).
    pub fn wake_shortcuts(&self) -> u64 {
        self.wake_shortcuts
    }

    /// The exact first cycle strictly after `now` at which
    /// [`MemoryController::tick`] could act, assuming no new requests
    /// arrive in the meantime. Called right after a tick; the simulation
    /// loop may skip every cycle before the returned one.
    ///
    /// The verdict is the min over every action the tick priority ladder
    /// could take — back-off window deadlines and visible-alert times,
    /// refresh due times, recovery / urgent-refresh / RAA-hot / idle-rank
    /// refresh service (`PREab` → `REFab`/`RFMab`), the first eight
    /// pending VRRs, and both demand queues' per-bank candidates via
    /// [`scheduler::next_demand_event`] — each at its
    /// [`DramDevice::earliest_issue_at`]. Every quantity consulted only
    /// changes when a command issues, a request arrives, or one of the
    /// included timers fires, so the result is memoized behind a dirty
    /// flag set on issue/arrival and reused until `now` catches up to it.
    ///
    /// When the wake is decided *strictly* by a demand candidate (every
    /// refresh/back-off/VRR source is later), the fused scan also caches
    /// the exact [`Decision`] the scheduler will take at the wake cycle, so
    /// the tick there skips its own queue scan
    /// ([`MemoryController::tick`]'s step 6 applies the cached verdict
    /// directly). The same dirty discipline guards it: any issue or
    /// arrival invalidates, and the verdict is only honoured at exactly
    /// the cached cycle.
    pub fn next_wake(&mut self, dram: &DramDevice, now: Cycle) -> Cycle {
        if !self.wake_dirty && self.wake_cache > now {
            return self.wake_cache;
        }
        self.wake_recomputes += 1;
        let (wake, decision) = self.compute_wake(dram, now);
        self.wake_cache = wake;
        self.wake_decision = decision;
        self.wake_dirty = false;
        wake
    }

    /// Earliest cycle at which `rank` could take its next refresh-service
    /// step: `PREab` while any bank is open, otherwise `REFab`/`RFMab`
    /// (both gated by the same all-idle ACT frontier).
    fn rank_service_ready(dram: &DramDevice, rank: usize) -> Cycle {
        if dram.rank_all_idle(rank) {
            dram.refresh_ready_at(rank)
        } else {
            dram.preall_ready_at(rank)
        }
    }

    fn compute_wake(&self, dram: &DramDevice, now: Cycle) -> (Cycle, Option<(Decision, bool)>) {
        let ranks = dram.geometry().ranks;
        // Wake sources from the ladder's steps 1–5 (timers, refresh/RFM
        // service, VRRs). Demand is folded in afterwards so that a wake
        // decided strictly by demand can carry its scheduling verdict.
        let mut wake = Cycle::MAX;
        for r in 0..ranks {
            let engine = &self.refresh[r];
            // A REF becoming due can flip the pending/urgent verdicts.
            wake = wake.min(engine.next_due());
            let fsm = &self.fsm[r];
            match fsm.state {
                BackOffState::Window { deadline } => wake = wake.min(deadline),
                // A latched alert matters once visible (and honoured).
                BackOffState::Normal if fsm.policy().honours_alert() => {
                    if let Some(at) = dram.alert_latched_at(r) {
                        wake = wake.min(at);
                    }
                }
                // Delay only advances on demand activations, which are
                // issues (they invalidate the cache themselves).
                _ => {}
            }
            if fsm.in_recovery() {
                // Only recovery PREab/RFMab may touch this rank; demand and
                // VRR scans below skip it.
                wake = wake.min(Self::rank_service_ready(dram, r));
                continue;
            }
            if engine.urgent() {
                wake = wake.min(Self::rank_service_ready(dram, r));
            }
            if self.cfg.raa_threshold.is_some() && self.raa_hot[r] {
                wake = wake.min(Self::rank_service_ready(dram, r));
            }
            if engine.pending() && self.reads.rank_len(r) + self.writes.rank_len(r) == 0 {
                // Opportunistic refresh: due, and the rank has no demand.
                wake = wake.min(Self::rank_service_ready(dram, r));
            }
        }
        // The first eight live VRRs (the tick's service window).
        let mut considered = 0;
        for v in &self.vrrq {
            let Some(v) = v else { continue };
            if considered >= 8 {
                break;
            }
            considered += 1;
            if self.fsm[v.bank.rank as usize].in_recovery() {
                continue;
            }
            let cmd = if dram.open_row(v.bank).is_some() {
                Command::Pre { bank: v.bank }
            } else {
                Command::Vrr {
                    bank: v.bank,
                    row: v.row,
                }
            };
            wake = wake.min(dram.earliest_issue_at(&cmd, now));
        }
        // Demand: the preferred queue falls through to the other one, so
        // any issuable candidate in either queue makes the tick act. The
        // preference must be the one the *wake-cycle* tick will compute:
        // its `update_drain_mode` sees today's queue lengths (they only
        // move on arrivals and issues, which invalidate this result), so
        // apply the same hysteresis to them here.
        let fsm = &self.fsm;
        let raa_hot = &self.raa_hot;
        let rank_usable = |r: usize| !fsm[r].in_recovery() && !raa_hot[r];
        let drain_at_wake = if self.drain_mode {
            self.writes.len() > self.cfg.wr_low
        } else {
            self.writes.len() >= self.cfg.wr_high
        };
        let serve_writes = drain_at_wake || self.reads.is_empty();
        let (preferred, other) = if serve_writes {
            (&self.writes, &self.reads)
        } else {
            (&self.reads, &self.writes)
        };
        let (t_p, d_p) = scheduler::next_demand_event(
            preferred,
            dram,
            now,
            self.cfg.cap,
            &self.hit_streak,
            &rank_usable,
        );
        // When the preferred queue already acts at the earliest possible
        // cycle (`now + 1`), the other queue cannot beat it — ties go to
        // the preferred queue — so its scan is skipped entirely.
        let (t_o, d_o) = if t_p <= now + 1 {
            (Cycle::MAX, None)
        } else {
            scheduler::next_demand_event(
                other,
                dram,
                now,
                self.cfg.cap,
                &self.hit_streak,
                &rank_usable,
            )
        };
        // On a tie the tick consults the preferred queue first.
        let (t_d, d_d) = if t_p <= t_o {
            (t_p, d_p.map(|d| (d, serve_writes)))
        } else {
            (t_o, d_o.map(|d| (d, !serve_writes)))
        };
        // The verdict is only usable when demand strictly decides the
        // wake: on a tie with any step-1..5 source that step acts first.
        let decision = if t_d < wake { d_d } else { None };
        (wake.min(t_d).max(now + 1), decision)
    }

    /// Advances the controller by one memory cycle, issuing at most one
    /// command to the device.
    pub fn tick(&mut self, dram: &mut DramDevice, now: Cycle) {
        if self.tick_inner(dram, now) {
            self.wake_dirty = true;
        }
    }

    /// The tick body; returns `true` when any wake-relevant state changed
    /// (a command issued, a timer fired, or an alert was honoured).
    fn tick_inner(&mut self, dram: &mut DramDevice, now: Cycle) -> bool {
        let t = *dram.timings();
        let ranks = dram.geometry().ranks;
        let mut changed = false;
        for r in 0..ranks {
            changed |= self.refresh[r].tick(now);
            changed |= self.fsm[r].tick(now);
            if dram.alert_visible(r, now) && self.fsm[r].on_alert(now, t.aboact) {
                self.stats.back_offs += 1;
                dram.clear_alert(r);
                changed = true;
            }
        }

        // 1. Back-off recovery: PREab then RFMab until the period ends.
        for r in 0..ranks {
            if !self.fsm[r].in_recovery() {
                continue;
            }
            if !dram.rank_all_idle(r) {
                let cmd = Command::PreAll { rank: r };
                if dram.can_issue(&cmd, now) {
                    dram.issue(&cmd, now);
                    self.obs_block(PauseCause::BackOff, now);
                    return true;
                }
                // Wait for tRAS etc.; nothing else may touch this rank.
                continue;
            }
            let cmd = Command::RfmAll { rank: r };
            if dram.can_issue(&cmd, now) {
                dram.issue(&cmd, now);
                self.obs_block(PauseCause::BackOff, now);
                self.stats.recovery_rfms += 1;
                let still = dram.alert_still_needed(r);
                if self.fsm[r].on_recovery_rfm(still) {
                    dram.clear_alert(r);
                }
                return true;
            }
            // RFM blocked (previous RFM/REF in flight): hold the rank.
        }

        // 2. Urgent refresh (postponement limit reached).
        for r in 0..ranks {
            if !self.refresh[r].urgent() || self.fsm[r].in_recovery() {
                continue;
            }
            if self.try_refresh(dram, r, now) {
                return true;
            }
        }

        // 3. PRFM: RAA threshold crossed somewhere in the rank. A hot rank
        // blocks further demand (the DDR5 RAA maximum-limit rule) so its
        // banks drain, precharge, and the RFM can issue.
        if let Some(th) = self.cfg.raa_threshold {
            for r in 0..ranks {
                if self.fsm[r].in_recovery() || !self.raa_hot[r] {
                    continue;
                }
                if !dram.rank_all_idle(r) {
                    let cmd = Command::PreAll { rank: r };
                    if dram.can_issue(&cmd, now) {
                        dram.issue(&cmd, now);
                        self.obs_block(PauseCause::Raa, now);
                        return true;
                    }
                    continue;
                }
                let cmd = Command::RfmAll { rank: r };
                if dram.can_issue(&cmd, now) {
                    dram.issue(&cmd, now);
                    self.obs_block(PauseCause::Raa, now);
                    self.stats.raa_rfms += 1;
                    let base = r * dram.geometry().banks_per_rank();
                    for i in 0..dram.geometry().banks_per_rank() {
                        let c = &mut self.raa[base + i];
                        *c = c.saturating_sub(th);
                    }
                    self.raa_hot[r] =
                        (0..dram.geometry().banks_per_rank()).any(|i| self.raa[base + i] >= th);
                    return true;
                }
            }
        }

        // 4. Opportunistic refresh: due, and the rank has no demand traffic.
        for r in 0..ranks {
            if !self.refresh[r].pending() || self.fsm[r].in_recovery() {
                continue;
            }
            if self.reads.rank_len(r) + self.writes.rank_len(r) > 0 {
                continue;
            }
            if self.try_refresh(dram, r, now) {
                return true;
            }
        }

        // 5. Victim-row refreshes (strict priority over demand): the first
        // eight live entries, oldest first (tombstones are invisible).
        let mut considered = 0;
        let mut idx = 0;
        while idx < self.vrrq.len() && considered < 8 {
            let Some(PendingVrr {
                bank,
                row,
                completes_service_of,
            }) = self.vrrq[idx]
            else {
                idx += 1;
                continue;
            };
            considered += 1;
            idx += 1;
            if self.fsm[bank.rank as usize].in_recovery() {
                continue;
            }
            if dram.open_row(bank).is_some() {
                let cmd = Command::Pre { bank };
                if dram.can_issue(&cmd, now) {
                    dram.issue(&cmd, now);
                    self.obs_block(PauseCause::Vrr, now);
                    self.hit_streak[bank.flat(dram.geometry())] = 0;
                    return true;
                }
                continue;
            }
            let cmd = Command::Vrr { bank, row };
            if dram.can_issue(&cmd, now) {
                dram.issue(&cmd, now);
                self.obs_block(PauseCause::Vrr, now);
                self.vrrq[idx - 1] = None;
                self.vrr_tombstones += 1;
                self.vrr_compact();
                self.stats.vrrs_issued += 1;
                if let Some(aggressor) = completes_service_of {
                    dram.note_aggressor_serviced(bank, aggressor);
                }
                return true;
            }
        }

        // 6. Demand traffic under FR-FCFS+Cap with write draining.
        self.update_drain_mode();
        // Fused-scan fast path: `compute_wake` already decided what this
        // exact cycle's demand verdict is, and nothing invalidated it (no
        // issue or arrival since — both set `wake_dirty`). Steps 1–5 above
        // were all enumerated as strictly-later wake sources, so they
        // cannot have acted; skip the queue scans and apply the verdict.
        if !self.wake_dirty && now == self.wake_cache {
            if let Some((decision, is_write_queue)) = self.wake_decision.take() {
                self.wake_shortcuts += 1;
                self.apply(decision, is_write_queue, dram, now);
                return true;
            }
        }
        let serve_writes = self.drain_mode || self.reads.is_empty();
        let fsm = &self.fsm;
        let raa_hot = &self.raa_hot;
        let rank_usable = |r: usize| !fsm[r].in_recovery() && !raa_hot[r];
        let queue = if serve_writes {
            &self.writes
        } else {
            &self.reads
        };
        let decision = scheduler::pick(
            queue,
            dram,
            now,
            self.cfg.cap,
            &self.hit_streak,
            &rank_usable,
        );
        let Some(decision) = decision else {
            // Nothing issuable in the preferred queue; try the other one.
            let other = if serve_writes {
                &self.reads
            } else {
                &self.writes
            };
            let Some(decision) = scheduler::pick(
                other,
                dram,
                now,
                self.cfg.cap,
                &self.hit_streak,
                &rank_usable,
            ) else {
                return changed;
            };
            self.apply(decision, !serve_writes, dram, now);
            return true;
        };
        self.apply(decision, serve_writes, dram, now);
        true
    }

    /// Drops leading tombstones and, past a threshold, compacts the VRR
    /// queue in one order-preserving sweep.
    fn vrr_compact(&mut self) {
        while matches!(self.vrrq.front(), Some(None)) {
            self.vrrq.pop_front();
            self.vrr_tombstones -= 1;
        }
        if self.vrr_tombstones > VRR_COMPACT_THRESHOLD && self.vrr_tombstones * 2 > self.vrrq.len()
        {
            self.vrrq.retain(Option::is_some);
            self.vrr_tombstones = 0;
        }
    }

    fn try_refresh(&mut self, dram: &mut DramDevice, rank: usize, now: Cycle) -> bool {
        if !dram.rank_all_idle(rank) {
            let cmd = Command::PreAll { rank };
            if dram.can_issue(&cmd, now) {
                dram.issue(&cmd, now);
                self.obs_block(PauseCause::Refresh, now);
                return true;
            }
            return false;
        }
        let cmd = Command::RefAll { rank };
        if dram.can_issue(&cmd, now) {
            dram.issue(&cmd, now);
            self.obs_block(PauseCause::Refresh, now);
            self.refresh[rank].refreshed();
            return true;
        }
        false
    }

    fn update_drain_mode(&mut self) {
        if self.drain_mode {
            if self.writes.len() <= self.cfg.wr_low {
                self.drain_mode = false;
            }
        } else if self.writes.len() >= self.cfg.wr_high {
            self.drain_mode = true;
        }
    }

    fn apply(
        &mut self,
        decision: Decision,
        is_write_queue: bool,
        dram: &mut DramDevice,
        now: Cycle,
    ) {
        // Every decision issues exactly one demand command, closing any
        // open mitigation pause at its issue cycle.
        if let Some(obs) = self.obs.as_deref_mut() {
            obs.note_demand(now);
        }
        let t = *dram.timings();
        let geo = *dram.geometry();
        let queue = if is_write_queue {
            &mut self.writes
        } else {
            &mut self.reads
        };
        match decision {
            Decision::Cas(slot, bypass) => {
                let entry = queue.remove(slot);
                let cmd = entry.cas_command();
                dram.issue(&cmd, now);
                let flat = entry.req.addr.bank.flat(&geo);
                // Row-locality classification at service time.
                let outcome = if entry.caused_pre {
                    self.stats.row_conflicts += 1;
                    RowOutcome::Conflict
                } else if entry.caused_act {
                    self.stats.row_misses += 1;
                    RowOutcome::Miss
                } else {
                    self.stats.row_hits += 1;
                    RowOutcome::Hit
                };
                if let Some(obs) = self.obs.as_deref_mut() {
                    obs.record_cas(flat, outcome, now);
                }
                // Cap bookkeeping: only bypassing hits build the streak.
                if bypass {
                    self.hit_streak[flat] += 1;
                } else {
                    self.hit_streak[flat] = 0;
                }
                match entry.req.kind {
                    ReqKind::Read => {
                        self.stats.reads_served += 1;
                        let at = now + t.cl + t.bl;
                        self.stats.read_latency_sum += at - entry.req.arrived;
                        if let Some(obs) = self.obs.as_deref_mut() {
                            obs.record_read(entry.req.core, at - entry.req.arrived);
                        }
                        if entry.req.core != INTERNAL_CORE {
                            self.completions.push(PendingCompletion(Completion {
                                id: entry.req.id,
                                at,
                            }));
                        }
                    }
                    ReqKind::Write => {
                        self.stats.writes_served += 1;
                    }
                }
            }
            Decision::Act(slot) => {
                let addr = queue.get(slot).req.addr;
                queue.get_mut(slot).caused_act = true;
                let cmd = Command::Act {
                    bank: addr.bank,
                    row: addr.row,
                };
                dram.issue(&cmd, now);
                let flat = addr.bank.flat(&geo);
                self.hit_streak[flat] = 0;
                self.on_demand_activate(addr, now, dram);
            }
            Decision::Pre(slot) => {
                let bank = queue.get(slot).req.addr.bank;
                queue.get_mut(slot).caused_pre = true;
                let cmd = Command::Pre { bank };
                dram.issue(&cmd, now);
                self.hit_streak[bank.flat(&geo)] = 0;
            }
        }
    }

    /// Bookkeeping common to every demand activation: PRFM RAA counters,
    /// delay-period progress, and the controller-side mechanism.
    fn on_demand_activate(
        &mut self,
        addr: chronus_dram::DramAddr,
        now: Cycle,
        dram: &mut DramDevice,
    ) {
        let rank = addr.bank.rank as usize;
        if self.fsm[rank].on_activate() {
            // Delay period over: any alert latched (and masked) during the
            // delay is stale per the PRAC spec; the chip reasserts on the
            // next threshold crossing.
            dram.clear_alert(rank);
        }
        if let Some(th) = self.cfg.raa_threshold {
            let flat = addr.bank.flat(dram.geometry());
            self.raa[flat] = self.raa[flat].saturating_add(1);
            if self.raa[flat] >= th {
                self.raa_hot[rank] = true;
            }
        }
        self.actions_buf.clear();
        self.mitigation
            .on_activate(addr, now, &mut self.actions_buf);
        let blast = dram.config().blast_radius;
        let rows = dram.geometry().rows;
        for a in self.actions_buf.drain(..) {
            match a {
                MitigationAction::RefreshVictims { bank, aggressor } => {
                    let victims = chronus_dram::geometry::victims_of(aggressor, blast, rows);
                    let last = victims.len().saturating_sub(1);
                    for (vi, v) in victims.into_iter().enumerate() {
                        self.vrrq.push_back(Some(PendingVrr {
                            bank,
                            row: v,
                            completes_service_of: (vi == last).then_some(aggressor),
                        }));
                    }
                    debug_assert!(self.vrrq.len() < 1 << 20, "runaway VRR queue");
                }
                MitigationAction::RefreshRow { bank, row } => {
                    self.vrrq.push_back(Some(PendingVrr {
                        bank,
                        row,
                        completes_service_of: None,
                    }));
                    debug_assert!(self.vrrq.len() < 1 << 20, "runaway VRR queue");
                }
                MitigationAction::AuxRead { addr } => {
                    self.reads.push(MemRequest {
                        id: u64::MAX,
                        kind: ReqKind::Read,
                        addr,
                        core: INTERNAL_CORE,
                        arrived: now,
                    });
                }
                MitigationAction::AuxWrite { addr } => {
                    self.writes.push(MemRequest {
                        id: u64::MAX,
                        kind: ReqKind::Write,
                        addr,
                        core: INTERNAL_CORE,
                        arrived: now,
                    });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chronus_dram::{DramAddr, DramConfig};

    fn setup(policy: RfmPolicy) -> (MemoryController, DramDevice) {
        let dram = DramDevice::new(DramConfig::tiny());
        let cfg = CtrlConfig {
            rfm_policy: policy,
            ..CtrlConfig::default()
        };
        let ctrl = MemoryController::new(cfg, &dram);
        (ctrl, dram)
    }

    fn read_req(id: u64, bank: BankId, row: u32, col: u32, now: Cycle) -> MemRequest {
        MemRequest {
            id,
            kind: ReqKind::Read,
            addr: DramAddr::new(bank, row, col),
            core: 0,
            arrived: now,
        }
    }

    const B0: BankId = BankId::new(0, 0, 0);

    #[test]
    fn read_completes_end_to_end() {
        let (mut ctrl, mut dram) = setup(RfmPolicy::None);
        assert!(ctrl.push_request(read_req(1, B0, 10, 3, 0)));
        let mut done = Vec::new();
        for now in 0..500 {
            ctrl.tick(&mut dram, now);
            ctrl.drain_completions(now, &mut done);
            if !done.is_empty() {
                break;
            }
        }
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].id, 1);
        assert_eq!(ctrl.stats().reads_served, 1);
        assert_eq!(ctrl.stats().row_misses, 1);
        assert_eq!(dram.stats().acts, 1);
        assert_eq!(dram.stats().reads, 1);
    }

    #[test]
    fn second_read_same_row_is_a_hit() {
        let (mut ctrl, mut dram) = setup(RfmPolicy::None);
        ctrl.push_request(read_req(1, B0, 10, 3, 0));
        ctrl.push_request(read_req(2, B0, 10, 7, 0));
        let mut done = Vec::new();
        for now in 0..1000 {
            ctrl.tick(&mut dram, now);
            ctrl.drain_completions(now, &mut done);
            if done.len() == 2 {
                break;
            }
        }
        assert_eq!(done.len(), 2);
        assert_eq!(ctrl.stats().row_hits, 1);
        assert_eq!(ctrl.stats().row_misses, 1);
        assert_eq!(dram.stats().acts, 1, "one activation serves both");
    }

    #[test]
    fn conflicting_rows_cause_precharge() {
        let (mut ctrl, mut dram) = setup(RfmPolicy::None);
        ctrl.push_request(read_req(1, B0, 10, 0, 0));
        ctrl.push_request(read_req(2, B0, 20, 0, 0));
        let mut done = Vec::new();
        for now in 0..2000 {
            ctrl.tick(&mut dram, now);
            ctrl.drain_completions(now, &mut done);
            if done.len() == 2 {
                break;
            }
        }
        assert_eq!(done.len(), 2);
        assert_eq!(ctrl.stats().row_conflicts, 1);
        assert_eq!(dram.stats().acts, 2);
        assert!(dram.stats().pres >= 1);
    }

    #[test]
    fn refresh_is_issued_periodically() {
        let (mut ctrl, mut dram) = setup(RfmPolicy::None);
        let refi = dram.timings().refi;
        for now in 0..(refi * 3 + 100) {
            ctrl.tick(&mut dram, now);
        }
        assert!(dram.stats().refs >= 2, "got {}", dram.stats().refs);
    }

    #[test]
    fn writes_drain_in_batches() {
        let (mut ctrl, mut dram) = setup(RfmPolicy::None);
        for i in 0..50u64 {
            let row = (i / 8) as u32;
            let bank = BankId::new(0, (i % 2) as u8, ((i / 2) % 2) as u8);
            assert!(ctrl.push_request(MemRequest {
                id: i,
                kind: ReqKind::Write,
                addr: DramAddr::new(bank, row, (i % 8) as u32),
                core: 0,
                arrived: 0,
            }));
        }
        for now in 0..20_000 {
            ctrl.tick(&mut dram, now);
            if ctrl.pending_requests() == 0 {
                break;
            }
        }
        assert_eq!(ctrl.pending_requests(), 0);
        assert_eq!(ctrl.stats().writes_served, 50);
    }

    #[test]
    fn queue_capacity_is_enforced() {
        let (mut ctrl, dram) = setup(RfmPolicy::None);
        let _ = dram;
        for i in 0..64u64 {
            assert!(ctrl.push_request(read_req(i, B0, i as u32, 0, 0)));
        }
        assert!(!ctrl.can_accept(ReqKind::Read));
        assert!(!ctrl.push_request(read_req(99, B0, 0, 0, 0)));
        assert!(ctrl.can_accept(ReqKind::Write));
    }

    #[test]
    fn wake_cache_memoizes_and_invalidates() {
        let (mut ctrl, mut dram) = setup(RfmPolicy::None);
        // First call computes (idle controller: wake is the refresh due).
        let w1 = ctrl.next_wake(&dram, 0);
        assert_eq!(ctrl.wake_recomputes(), 1);
        assert_eq!(w1, dram.timings().refi);
        // Later calls before the wake are served from the cache.
        let w2 = ctrl.next_wake(&dram, 5);
        assert_eq!(w2, w1);
        assert_eq!(ctrl.wake_recomputes(), 1);
        // An inert tick (no issue, no timer) keeps the cache valid.
        ctrl.tick(&mut dram, 6);
        assert_eq!(ctrl.next_wake(&dram, 6), w1);
        assert_eq!(ctrl.wake_recomputes(), 1);
        // An arrival invalidates.
        assert!(ctrl.push_request(read_req(1, B0, 10, 0, 7)));
        let w3 = ctrl.next_wake(&dram, 7);
        assert_eq!(ctrl.wake_recomputes(), 2);
        assert_eq!(w3, 8, "idle bank: the ACT is issuable next cycle");
        // An issuing tick invalidates.
        ctrl.tick(&mut dram, 8); // issues the ACT
        let w4 = ctrl.next_wake(&dram, 8);
        assert_eq!(ctrl.wake_recomputes(), 3);
        assert_eq!(w4, 8 + dram.timings().rcd, "next action is the RD");
        // And the fresh verdict memoizes again.
        let _ = ctrl.next_wake(&dram, 9);
        assert_eq!(ctrl.wake_recomputes(), 3);
        // Reaching the cached wake forces a recompute even without dirt.
        let _ = ctrl.next_wake(&dram, w4);
        assert_eq!(ctrl.wake_recomputes(), 4);
    }

    #[test]
    fn wake_is_exact_under_load() {
        // The wake must be the exact cycle the next command issues: every
        // cycle before it must be a no-op tick.
        let (mut ctrl, mut dram) = setup(RfmPolicy::None);
        assert!(ctrl.push_request(read_req(1, B0, 10, 0, 0)));
        assert!(ctrl.push_request(read_req(2, B0, 11, 0, 0)));
        let mut now = 0;
        let mut issued = 0;
        while ctrl.pending_requests() > 0 && now < 2_000 {
            let before = {
                let s = dram.stats();
                s.acts + s.pres + s.reads + s.writes + s.refs
            };
            ctrl.tick(&mut dram, now);
            let after = {
                let s = dram.stats();
                s.acts + s.pres + s.reads + s.writes + s.refs
            };
            let wake = ctrl.next_wake(&dram, now);
            assert!(wake > now);
            if after > before {
                issued += 1;
            }
            // Every skipped cycle must be inert in the reference ticking.
            for c in now + 1..wake {
                let pre = {
                    let s = dram.stats();
                    s.acts + s.pres + s.reads + s.writes + s.refs
                };
                ctrl.tick(&mut dram, c);
                let post = {
                    let s = dram.stats();
                    s.acts + s.pres + s.reads + s.writes + s.refs
                };
                assert_eq!(pre, post, "cycle {c} acted before the wake {wake}");
            }
            now = wake;
        }
        assert_eq!(ctrl.pending_requests(), 0);
        // ACT, RD, PRE, ACT, RD at minimum.
        assert!(issued >= 5, "only {issued} commands issued");
    }

    #[test]
    fn obs_probe_is_observational_and_records() {
        let run = |obs: bool| {
            let (mut ctrl, mut dram) = setup(RfmPolicy::None);
            if obs {
                ctrl.enable_obs();
                assert!(ctrl.obs_enabled());
            }
            ctrl.push_request(read_req(1, B0, 10, 3, 0));
            ctrl.push_request(read_req(2, B0, 10, 7, 0));
            ctrl.push_request(read_req(3, B0, 20, 0, 0));
            for now in 0..3_000 {
                ctrl.tick(&mut dram, now);
            }
            let stats = *ctrl.stats();
            let report = ctrl.take_obs_report(3_000);
            (stats, report)
        };
        let (s_off, r_off) = run(false);
        let (s_on, r_on) = run(true);
        assert_eq!(s_off, s_on, "probe must not perturb controller stats");
        assert!(r_off.is_none(), "no report without enable_obs");
        let r = r_on.unwrap();
        assert_eq!(r.read_latency.total, 3);
        assert_eq!(r.per_core_latency[0].total, 3, "all reads from core 0");
        assert_eq!(r.hit_gaps.total, 1, "second read hits the open row");
        assert_eq!(r.conflict_gaps.total, 1, "third read conflicts");
        assert!(r.latency_entropy_bits > 0.0, "latencies differ across rows");
        assert!(
            (r.outcome_entropy_bits - crate::obs::entropy_bits(&[1, 1, 1])).abs() < 1e-12,
            "one hit, one miss, one conflict"
        );
    }

    #[test]
    fn vrr_tombstones_preserve_order_and_counts() {
        let (mut ctrl, _dram) = setup(RfmPolicy::None);
        for i in 0..20u32 {
            ctrl.vrrq.push_back(Some(PendingVrr {
                bank: B0,
                row: i,
                completes_service_of: None,
            }));
        }
        assert_eq!(ctrl.pending_vrrs(), 20);
        // Tombstone a middle run the way issue does.
        for i in 3..9 {
            ctrl.vrrq[i] = None;
            ctrl.vrr_tombstones += 1;
            ctrl.vrr_compact();
        }
        assert_eq!(ctrl.pending_vrrs(), 14);
        let live: Vec<u32> = ctrl.vrrq.iter().flatten().map(|v| v.row).collect();
        let expect: Vec<u32> = (0..3).chain(9..20).collect();
        assert_eq!(live, expect, "issue order preserved across tombstones");
        // Tombstoning the head pops eagerly.
        ctrl.vrrq[0] = None;
        ctrl.vrr_tombstones += 1;
        ctrl.vrr_compact();
        assert!(ctrl.vrrq.front().unwrap().is_some());
        assert_eq!(ctrl.pending_vrrs(), 13);
    }
}
