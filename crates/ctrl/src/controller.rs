//! The memory controller: queues, arbitration, refresh, RFM/back-off.

use std::collections::{BinaryHeap, VecDeque};

use chronus_dram::{BankId, Command, Cycle, DramDevice, RowId};
use serde::{Deserialize, Serialize};

use crate::mapping::AddressMapping;
use crate::mitigation::{CtrlMitigation, CtrlMitigationStats, MitigationAction, NoCtrlMitigation};
use crate::refresh::RefreshEngine;
use crate::request::{Completion, MemRequest, ReqKind, INTERNAL_CORE};
use crate::rfm::{BackOffFsm, RfmPolicy};
use crate::scheduler::{self, Decision, Entry};

/// Controller configuration (Table 2 defaults via [`CtrlConfig::default`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CtrlConfig {
    /// Read-queue capacity.
    pub read_q: usize,
    /// Write-queue capacity.
    pub write_q: usize,
    /// FR-FCFS column-over-row reordering cap.
    pub cap: u32,
    /// Physical-address mapping.
    pub mapping: AddressMapping,
    /// Enter write-drain mode at this write-queue occupancy.
    pub wr_high: usize,
    /// Leave write-drain mode at this occupancy.
    pub wr_low: usize,
    /// Back-off policy (PRAC / Chronus / none).
    pub rfm_policy: RfmPolicy,
    /// PRFM: issue an RFM when a bank accumulates this many activations.
    pub raa_threshold: Option<u32>,
}

impl Default for CtrlConfig {
    fn default() -> Self {
        Self {
            read_q: 64,
            write_q: 64,
            cap: 4,
            mapping: AddressMapping::Mop,
            wr_high: 48,
            wr_low: 16,
            rfm_policy: RfmPolicy::None,
            raa_threshold: None,
        }
    }
}

/// Controller statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CtrlStats {
    /// Reads served from an already-open row.
    pub row_hits: u64,
    /// Reads/writes that required an activation only.
    pub row_misses: u64,
    /// Reads/writes that required closing another row first.
    pub row_conflicts: u64,
    /// Demand reads completed.
    pub reads_served: u64,
    /// Demand writes issued to DRAM.
    pub writes_served: u64,
    /// Sum of read latencies (arrival → data), in memory cycles.
    pub read_latency_sum: u64,
    /// Victim-row refreshes issued (controller-side mechanisms).
    pub vrrs_issued: u64,
    /// RFMs issued by the PRFM RAA counters.
    pub raa_rfms: u64,
    /// Back-offs honoured (PRAC / Chronus policies).
    pub back_offs: u64,
    /// RFMs issued during back-off recovery periods.
    pub recovery_rfms: u64,
}

impl CtrlStats {
    /// Mean demand-read latency in memory cycles.
    pub fn avg_read_latency(&self) -> f64 {
        if self.reads_served == 0 {
            0.0
        } else {
            self.read_latency_sum as f64 / self.reads_served as f64
        }
    }
}

#[derive(PartialEq, Eq)]
struct PendingCompletion(Completion);

impl Ord for PendingCompletion {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Min-heap on completion time.
        other.0.at.cmp(&self.0.at).then(other.0.id.cmp(&self.0.id))
    }
}

impl PartialOrd for PendingCompletion {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// One pending victim-row refresh. When `completes_service_of` is set,
/// issuing this VRR finishes a whole victim group and the controller
/// notifies the device's oracle that the aggressor has been serviced.
#[derive(Debug, Clone, Copy)]
struct PendingVrr {
    bank: BankId,
    row: RowId,
    completes_service_of: Option<RowId>,
}

/// The DDR5 memory controller.
pub struct MemoryController {
    cfg: CtrlConfig,
    reads: Vec<Entry>,
    writes: Vec<Entry>,
    /// Pending victim-row refreshes (strict priority over demand).
    vrrq: VecDeque<PendingVrr>,
    completions: BinaryHeap<PendingCompletion>,
    fsm: Vec<BackOffFsm>,
    refresh: Vec<RefreshEngine>,
    /// PRFM rolling activation counters, per flat bank.
    raa: Vec<u32>,
    /// Ranks whose RAA counters demand an RFM before further activations
    /// (recomputed every tick; blocks demand like a recovery period).
    raa_hot: Vec<bool>,
    hit_streak: Vec<u32>,
    mitigation: Box<dyn CtrlMitigation>,
    drain_mode: bool,
    actions_buf: Vec<MitigationAction>,
    stats: CtrlStats,
}

impl std::fmt::Debug for MemoryController {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MemoryController")
            .field("cfg", &self.cfg)
            .field("reads", &self.reads.len())
            .field("writes", &self.writes.len())
            .field("vrrq", &self.vrrq.len())
            .field("stats", &self.stats)
            .finish()
    }
}

impl MemoryController {
    /// A controller for the given device geometry.
    pub fn new(cfg: CtrlConfig, dram: &DramDevice) -> Self {
        Self::with_mitigation(cfg, dram, Box::new(NoCtrlMitigation))
    }

    /// A controller with a controller-side mitigation mechanism attached.
    pub fn with_mitigation(
        cfg: CtrlConfig,
        dram: &DramDevice,
        mitigation: Box<dyn CtrlMitigation>,
    ) -> Self {
        let geo = dram.geometry();
        let refi = dram.timings().refi;
        Self {
            cfg,
            reads: Vec::with_capacity(cfg.read_q),
            writes: Vec::with_capacity(cfg.write_q),
            vrrq: VecDeque::new(),
            completions: BinaryHeap::new(),
            fsm: (0..geo.ranks)
                .map(|_| BackOffFsm::new(cfg.rfm_policy))
                .collect(),
            refresh: (0..geo.ranks).map(|_| RefreshEngine::new(refi)).collect(),
            raa: vec![0; geo.total_banks()],
            raa_hot: vec![false; geo.ranks],
            hit_streak: vec![0; geo.total_banks()],
            mitigation,
            drain_mode: false,
            actions_buf: Vec::new(),
            stats: CtrlStats::default(),
        }
    }

    /// Whether a new request of `kind` can be accepted this cycle.
    pub fn can_accept(&self, kind: ReqKind) -> bool {
        match kind {
            ReqKind::Read => self.reads.len() < self.cfg.read_q,
            ReqKind::Write => self.writes.len() < self.cfg.write_q,
        }
    }

    /// Enqueues a demand request. Returns `false` (rejecting the request)
    /// when the corresponding queue is full.
    pub fn push_request(&mut self, req: MemRequest) -> bool {
        if !self.can_accept(req.kind) {
            return false;
        }
        match req.kind {
            ReqKind::Read => self.reads.push(Entry::new(req)),
            ReqKind::Write => self.writes.push(Entry::new(req)),
        }
        true
    }

    /// Delivers completions whose data has arrived by `now`.
    pub fn drain_completions(&mut self, now: Cycle, out: &mut Vec<Completion>) {
        while let Some(PendingCompletion(c)) = self.completions.peek() {
            if c.at > now {
                break;
            }
            let c = *c;
            self.completions.pop();
            out.push(c);
        }
    }

    /// Outstanding demand requests (both queues).
    pub fn pending_requests(&self) -> usize {
        self.reads.len() + self.writes.len()
    }

    /// Outstanding victim refreshes.
    pub fn pending_vrrs(&self) -> usize {
        self.vrrq.len()
    }

    /// Reads still waiting for data.
    pub fn pending_reads(&self) -> usize {
        self.reads.len() + self.completions.len()
    }

    /// Controller statistics.
    pub fn stats(&self) -> &CtrlStats {
        &self.stats
    }

    /// Controller-side mechanism statistics.
    pub fn mitigation_stats(&self) -> CtrlMitigationStats {
        self.mitigation.stats()
    }

    /// The attached controller-side mechanism.
    pub fn mitigation(&self) -> &dyn CtrlMitigation {
        self.mitigation.as_ref()
    }

    /// The controller configuration.
    pub fn config(&self) -> &CtrlConfig {
        &self.cfg
    }

    /// Arrival time of the earliest pending read completion, if any. The
    /// event-driven loop uses this to bound fast-forward jumps: completions
    /// are drained outside [`MemoryController::tick`], so they do not
    /// contribute to [`MemoryController::next_wake`].
    pub fn next_completion_at(&self) -> Option<Cycle> {
        self.completions.peek().map(|PendingCompletion(c)| c.at)
    }

    /// The earliest cycle strictly after `now` at which
    /// [`MemoryController::tick`] could change any state, assuming no new
    /// requests arrive in the meantime. Called right after a tick; the
    /// simulation loop may skip every cycle before the returned one.
    ///
    /// The analysis is deliberately conservative: whenever the controller
    /// holds queued work, is mid-back-off, or owes a refresh, it reports
    /// `now + 1` (tick every cycle). Only provably inert states — empty
    /// queues, all FSMs quiescent — fast-forward to the next timed event
    /// (refresh due, back-off window deadline, or alert visibility).
    pub fn next_wake(&self, dram: &DramDevice, now: Cycle) -> Cycle {
        // Queued demand, victim refreshes, or an active recovery: the
        // controller arbitrates every cycle.
        if !self.reads.is_empty() || !self.writes.is_empty() || !self.vrrq.is_empty() {
            return now + 1;
        }
        if self.fsm.iter().any(BackOffFsm::in_recovery) {
            return now + 1;
        }
        // PRFM: a bank at/above the RAA threshold forces RFM service.
        if let Some(th) = self.cfg.raa_threshold {
            if self.raa.iter().any(|&c| c >= th) {
                return now + 1;
            }
        }
        let mut wake = Cycle::MAX;
        for (r, engine) in self.refresh.iter().enumerate() {
            if engine.pending() {
                // A refresh is owed: the next action is a PREab (open
                // banks) or the REFab itself (all idle). Never jump past
                // the first cycle either becomes legal.
                let ready = if dram.rank_all_idle(r) {
                    dram.refresh_ready_at(r)
                } else {
                    dram.preall_ready_at(r)
                };
                wake = wake.min(ready.max(now + 1));
            } else {
                wake = wake.min(engine.next_due());
            }
        }
        for (r, fsm) in self.fsm.iter().enumerate() {
            match fsm.state {
                crate::rfm::BackOffState::Window { deadline } => {
                    wake = wake.min(deadline);
                }
                // A latched alert matters once visible (and honoured).
                crate::rfm::BackOffState::Normal if fsm.policy().honours_alert() => {
                    if let Some(at) = dram.alert_latched_at(r) {
                        wake = wake.min(at);
                    }
                }
                // Recovery is handled above; Delay only advances on demand
                // activations, which cannot happen while queues are empty.
                _ => {}
            }
        }
        wake.max(now + 1)
    }

    /// Advances the controller by one memory cycle, issuing at most one
    /// command to the device.
    pub fn tick(&mut self, dram: &mut DramDevice, now: Cycle) {
        let t = *dram.timings();
        let ranks = dram.geometry().ranks;
        for r in 0..ranks {
            self.refresh[r].tick(now);
            self.fsm[r].tick(now);
            if dram.alert_visible(r, now) && self.fsm[r].on_alert(now, t.aboact) {
                self.stats.back_offs += 1;
                dram.clear_alert(r);
            }
        }

        // 1. Back-off recovery: PREab then RFMab until the period ends.
        for r in 0..ranks {
            if !self.fsm[r].in_recovery() {
                continue;
            }
            if !dram.rank_all_idle(r) {
                let cmd = Command::PreAll { rank: r };
                if dram.can_issue(&cmd, now) {
                    dram.issue(&cmd, now);
                    return;
                }
                // Wait for tRAS etc.; nothing else may touch this rank.
                continue;
            }
            let cmd = Command::RfmAll { rank: r };
            if dram.can_issue(&cmd, now) {
                dram.issue(&cmd, now);
                self.stats.recovery_rfms += 1;
                let still = dram.alert_still_needed(r);
                if self.fsm[r].on_recovery_rfm(still) {
                    dram.clear_alert(r);
                }
                return;
            }
            // RFM blocked (previous RFM/REF in flight): hold the rank.
        }

        // 2. Urgent refresh (postponement limit reached).
        for r in 0..ranks {
            if !self.refresh[r].urgent() || self.fsm[r].in_recovery() {
                continue;
            }
            if self.try_refresh(dram, r, now) {
                return;
            }
        }

        // 3. PRFM: RAA threshold crossed somewhere in the rank. A hot rank
        // blocks further demand (the DDR5 RAA maximum-limit rule) so its
        // banks drain, precharge, and the RFM can issue.
        if let Some(th) = self.cfg.raa_threshold {
            for r in 0..ranks {
                let base = r * dram.geometry().banks_per_rank();
                self.raa_hot[r] =
                    (0..dram.geometry().banks_per_rank()).any(|i| self.raa[base + i] >= th);
            }
            for r in 0..ranks {
                if self.fsm[r].in_recovery() || !self.raa_hot[r] {
                    continue;
                }
                if !dram.rank_all_idle(r) {
                    let cmd = Command::PreAll { rank: r };
                    if dram.can_issue(&cmd, now) {
                        dram.issue(&cmd, now);
                        return;
                    }
                    continue;
                }
                let cmd = Command::RfmAll { rank: r };
                if dram.can_issue(&cmd, now) {
                    dram.issue(&cmd, now);
                    self.stats.raa_rfms += 1;
                    let base = r * dram.geometry().banks_per_rank();
                    for i in 0..dram.geometry().banks_per_rank() {
                        let c = &mut self.raa[base + i];
                        *c = c.saturating_sub(th);
                    }
                    self.raa_hot[r] =
                        (0..dram.geometry().banks_per_rank()).any(|i| self.raa[base + i] >= th);
                    return;
                }
            }
        }

        // 4. Opportunistic refresh: due, and the rank has no demand traffic.
        for r in 0..ranks {
            if !self.refresh[r].pending() || self.fsm[r].in_recovery() {
                continue;
            }
            let rank_busy = self
                .reads
                .iter()
                .chain(self.writes.iter())
                .any(|e| e.req.addr.bank.rank as usize == r);
            if rank_busy {
                continue;
            }
            if self.try_refresh(dram, r, now) {
                return;
            }
        }

        // 5. Victim-row refreshes (strict priority over demand).
        for i in 0..self.vrrq.len().min(8) {
            let PendingVrr {
                bank,
                row,
                completes_service_of,
            } = self.vrrq[i];
            if self.fsm[bank.rank as usize].in_recovery() {
                continue;
            }
            if dram.open_row(bank).is_some() {
                let cmd = Command::Pre { bank };
                if dram.can_issue(&cmd, now) {
                    dram.issue(&cmd, now);
                    self.hit_streak[bank.flat(dram.geometry())] = 0;
                    return;
                }
                continue;
            }
            let cmd = Command::Vrr { bank, row };
            if dram.can_issue(&cmd, now) {
                dram.issue(&cmd, now);
                self.vrrq.remove(i);
                self.stats.vrrs_issued += 1;
                if let Some(aggressor) = completes_service_of {
                    dram.note_aggressor_serviced(bank, aggressor);
                }
                return;
            }
        }

        // 6. Demand traffic under FR-FCFS+Cap with write draining.
        self.update_drain_mode();
        let serve_writes = self.drain_mode || self.reads.is_empty();
        let fsm = &self.fsm;
        let raa_hot = &self.raa_hot;
        let rank_usable = |r: usize| !fsm[r].in_recovery() && !raa_hot[r];
        let queue: &Vec<Entry> = if serve_writes {
            &self.writes
        } else {
            &self.reads
        };
        let decision = scheduler::pick(
            queue,
            dram,
            now,
            self.cfg.cap,
            &self.hit_streak,
            &rank_usable,
        );
        let Some(decision) = decision else {
            // Nothing issuable in the preferred queue; try the other one.
            let other: &Vec<Entry> = if serve_writes {
                &self.reads
            } else {
                &self.writes
            };
            let Some(decision) = scheduler::pick(
                other,
                dram,
                now,
                self.cfg.cap,
                &self.hit_streak,
                &rank_usable,
            ) else {
                return;
            };
            self.apply(decision, !serve_writes, dram, now);
            return;
        };
        self.apply(decision, serve_writes, dram, now);
    }

    fn try_refresh(&mut self, dram: &mut DramDevice, rank: usize, now: Cycle) -> bool {
        if !dram.rank_all_idle(rank) {
            let cmd = Command::PreAll { rank };
            if dram.can_issue(&cmd, now) {
                dram.issue(&cmd, now);
                return true;
            }
            return false;
        }
        let cmd = Command::RefAll { rank };
        if dram.can_issue(&cmd, now) {
            dram.issue(&cmd, now);
            self.refresh[rank].refreshed();
            return true;
        }
        false
    }

    fn update_drain_mode(&mut self) {
        if self.drain_mode {
            if self.writes.len() <= self.cfg.wr_low {
                self.drain_mode = false;
            }
        } else if self.writes.len() >= self.cfg.wr_high {
            self.drain_mode = true;
        }
    }

    fn apply(
        &mut self,
        decision: Decision,
        is_write_queue: bool,
        dram: &mut DramDevice,
        now: Cycle,
    ) {
        let t = *dram.timings();
        let geo = *dram.geometry();
        match decision {
            Decision::Cas(i, bypass) => {
                let queue = if is_write_queue {
                    &mut self.writes
                } else {
                    &mut self.reads
                };
                let entry = queue.remove(i);
                let cmd = entry.cas_command();
                dram.issue(&cmd, now);
                let flat = entry.req.addr.bank.flat(&geo);
                // Row-locality classification at service time.
                if entry.caused_pre {
                    self.stats.row_conflicts += 1;
                } else if entry.caused_act {
                    self.stats.row_misses += 1;
                } else {
                    self.stats.row_hits += 1;
                }
                // Cap bookkeeping: only bypassing hits build the streak.
                if bypass {
                    self.hit_streak[flat] += 1;
                } else {
                    self.hit_streak[flat] = 0;
                }
                match entry.req.kind {
                    ReqKind::Read => {
                        self.stats.reads_served += 1;
                        let at = now + t.cl + t.bl;
                        self.stats.read_latency_sum += at - entry.req.arrived;
                        if entry.req.core != INTERNAL_CORE {
                            self.completions.push(PendingCompletion(Completion {
                                id: entry.req.id,
                                at,
                            }));
                        }
                    }
                    ReqKind::Write => {
                        self.stats.writes_served += 1;
                    }
                }
            }
            Decision::Act(i) => {
                let queue = if is_write_queue {
                    &mut self.writes
                } else {
                    &mut self.reads
                };
                let addr = queue[i].req.addr;
                queue[i].caused_act = true;
                let cmd = Command::Act {
                    bank: addr.bank,
                    row: addr.row,
                };
                dram.issue(&cmd, now);
                let flat = addr.bank.flat(&geo);
                self.hit_streak[flat] = 0;
                self.on_demand_activate(addr, now, dram);
            }
            Decision::Pre(i) => {
                let queue = if is_write_queue {
                    &mut self.writes
                } else {
                    &mut self.reads
                };
                let bank = queue[i].req.addr.bank;
                queue[i].caused_pre = true;
                let cmd = Command::Pre { bank };
                dram.issue(&cmd, now);
                self.hit_streak[bank.flat(&geo)] = 0;
            }
        }
    }

    /// Bookkeeping common to every demand activation: PRFM RAA counters,
    /// delay-period progress, and the controller-side mechanism.
    fn on_demand_activate(
        &mut self,
        addr: chronus_dram::DramAddr,
        now: Cycle,
        dram: &mut DramDevice,
    ) {
        let rank = addr.bank.rank as usize;
        if self.fsm[rank].on_activate() {
            // Delay period over: any alert latched (and masked) during the
            // delay is stale per the PRAC spec; the chip reasserts on the
            // next threshold crossing.
            dram.clear_alert(rank);
        }
        if self.cfg.raa_threshold.is_some() {
            let flat = addr.bank.flat(dram.geometry());
            self.raa[flat] = self.raa[flat].saturating_add(1);
        }
        self.actions_buf.clear();
        self.mitigation
            .on_activate(addr, now, &mut self.actions_buf);
        let blast = dram.config().blast_radius;
        let rows = dram.geometry().rows;
        for a in self.actions_buf.drain(..) {
            match a {
                MitigationAction::RefreshVictims { bank, aggressor } => {
                    let victims = chronus_dram::geometry::victims_of(aggressor, blast, rows);
                    let last = victims.len().saturating_sub(1);
                    for (vi, v) in victims.into_iter().enumerate() {
                        self.vrrq.push_back(PendingVrr {
                            bank,
                            row: v,
                            completes_service_of: (vi == last).then_some(aggressor),
                        });
                    }
                    debug_assert!(self.vrrq.len() < 1 << 20, "runaway VRR queue");
                }
                MitigationAction::RefreshRow { bank, row } => {
                    self.vrrq.push_back(PendingVrr {
                        bank,
                        row,
                        completes_service_of: None,
                    });
                    debug_assert!(self.vrrq.len() < 1 << 20, "runaway VRR queue");
                }
                MitigationAction::AuxRead { addr } => {
                    self.reads.push(Entry::new(MemRequest {
                        id: u64::MAX,
                        kind: ReqKind::Read,
                        addr,
                        core: INTERNAL_CORE,
                        arrived: now,
                    }));
                }
                MitigationAction::AuxWrite { addr } => {
                    self.writes.push(Entry::new(MemRequest {
                        id: u64::MAX,
                        kind: ReqKind::Write,
                        addr,
                        core: INTERNAL_CORE,
                        arrived: now,
                    }));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chronus_dram::{DramAddr, DramConfig};

    fn setup(policy: RfmPolicy) -> (MemoryController, DramDevice) {
        let dram = DramDevice::new(DramConfig::tiny());
        let cfg = CtrlConfig {
            rfm_policy: policy,
            ..CtrlConfig::default()
        };
        let ctrl = MemoryController::new(cfg, &dram);
        (ctrl, dram)
    }

    fn read_req(id: u64, bank: BankId, row: u32, col: u32, now: Cycle) -> MemRequest {
        MemRequest {
            id,
            kind: ReqKind::Read,
            addr: DramAddr::new(bank, row, col),
            core: 0,
            arrived: now,
        }
    }

    const B0: BankId = BankId::new(0, 0, 0);

    #[test]
    fn read_completes_end_to_end() {
        let (mut ctrl, mut dram) = setup(RfmPolicy::None);
        assert!(ctrl.push_request(read_req(1, B0, 10, 3, 0)));
        let mut done = Vec::new();
        for now in 0..500 {
            ctrl.tick(&mut dram, now);
            ctrl.drain_completions(now, &mut done);
            if !done.is_empty() {
                break;
            }
        }
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].id, 1);
        assert_eq!(ctrl.stats().reads_served, 1);
        assert_eq!(ctrl.stats().row_misses, 1);
        assert_eq!(dram.stats().acts, 1);
        assert_eq!(dram.stats().reads, 1);
    }

    #[test]
    fn second_read_same_row_is_a_hit() {
        let (mut ctrl, mut dram) = setup(RfmPolicy::None);
        ctrl.push_request(read_req(1, B0, 10, 3, 0));
        ctrl.push_request(read_req(2, B0, 10, 7, 0));
        let mut done = Vec::new();
        for now in 0..1000 {
            ctrl.tick(&mut dram, now);
            ctrl.drain_completions(now, &mut done);
            if done.len() == 2 {
                break;
            }
        }
        assert_eq!(done.len(), 2);
        assert_eq!(ctrl.stats().row_hits, 1);
        assert_eq!(ctrl.stats().row_misses, 1);
        assert_eq!(dram.stats().acts, 1, "one activation serves both");
    }

    #[test]
    fn conflicting_rows_cause_precharge() {
        let (mut ctrl, mut dram) = setup(RfmPolicy::None);
        ctrl.push_request(read_req(1, B0, 10, 0, 0));
        ctrl.push_request(read_req(2, B0, 20, 0, 0));
        let mut done = Vec::new();
        for now in 0..2000 {
            ctrl.tick(&mut dram, now);
            ctrl.drain_completions(now, &mut done);
            if done.len() == 2 {
                break;
            }
        }
        assert_eq!(done.len(), 2);
        assert_eq!(ctrl.stats().row_conflicts, 1);
        assert_eq!(dram.stats().acts, 2);
        assert!(dram.stats().pres >= 1);
    }

    #[test]
    fn refresh_is_issued_periodically() {
        let (mut ctrl, mut dram) = setup(RfmPolicy::None);
        let refi = dram.timings().refi;
        for now in 0..(refi * 3 + 100) {
            ctrl.tick(&mut dram, now);
        }
        assert!(dram.stats().refs >= 2, "got {}", dram.stats().refs);
    }

    #[test]
    fn writes_drain_in_batches() {
        let (mut ctrl, mut dram) = setup(RfmPolicy::None);
        for i in 0..50u64 {
            let row = (i / 8) as u32;
            let bank = BankId::new(0, (i % 2) as u8, ((i / 2) % 2) as u8);
            assert!(ctrl.push_request(MemRequest {
                id: i,
                kind: ReqKind::Write,
                addr: DramAddr::new(bank, row, (i % 8) as u32),
                core: 0,
                arrived: 0,
            }));
        }
        for now in 0..20_000 {
            ctrl.tick(&mut dram, now);
            if ctrl.pending_requests() == 0 {
                break;
            }
        }
        assert_eq!(ctrl.pending_requests(), 0);
        assert_eq!(ctrl.stats().writes_served, 50);
    }

    #[test]
    fn queue_capacity_is_enforced() {
        let (mut ctrl, dram) = setup(RfmPolicy::None);
        let _ = dram;
        for i in 0..64u64 {
            assert!(ctrl.push_request(read_req(i, B0, i as u32, 0, 0)));
        }
        assert!(!ctrl.can_accept(ReqKind::Read));
        assert!(!ctrl.push_request(read_req(99, B0, 0, 0, 0)));
        assert!(ctrl.can_accept(ReqKind::Write));
    }
}
