//! Physical-address → DRAM-coordinate mappings.
//!
//! Three schemes from the paper:
//!
//! * [`AddressMapping::Mop`] — Minimalist Open Page (the paper's default,
//!   Table 2): four consecutive cache lines stay in one row, then the
//!   stream interleaves across banks, bank groups and ranks.
//! * [`AddressMapping::RoBaRaCoCh`] — row : group : bank : rank : column,
//!   the classical row-major mapping (used by the paper's main evaluation
//!   of Hydra and co.).
//! * [`AddressMapping::AbacusMop`] — MOP with XOR bank-index hashing,
//!   approximating the ABACuS paper's mapping used in Appendix C.

use chronus_dram::{BankId, DramAddr, Geometry};
use serde::{Deserialize, Serialize};

/// Address-mapping scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AddressMapping {
    /// Minimalist Open Page [Kaseridis+, MICRO'11]; MOP width 4.
    Mop,
    /// Row–Group–Bank–Rank–Column.
    RoBaRaCoCh,
    /// MOP with XOR bank hashing (Appendix C).
    AbacusMop,
}

impl AddressMapping {
    /// Decodes a physical byte address into DRAM coordinates.
    ///
    /// Addresses beyond the channel capacity wrap (the simulator's traces
    /// are generated within capacity; wrapping keeps arbitrary inputs
    /// well-formed).
    pub fn decode(&self, phys: u64, geo: &Geometry) -> DramAddr {
        let line = (phys / geo.line_bytes as u64) % (geo.capacity_bytes() / geo.line_bytes as u64);
        let mut x = line;
        let mut take = |n: u32| -> u64 {
            let v = x & ((1u64 << n) - 1);
            x >>= n;
            v
        };
        let col_bits = geo.cols.trailing_zeros();
        let bank_bits = geo.banks_per_group.trailing_zeros();
        let group_bits = geo.bankgroups.trailing_zeros();
        let rank_bits = geo.ranks.trailing_zeros();
        let row_bits = geo.rows.trailing_zeros();
        match self {
            AddressMapping::RoBaRaCoCh => {
                let col = take(col_bits) as u32;
                let rank = take(rank_bits) as u8;
                let bank = take(bank_bits) as u8;
                let group = take(group_bits) as u8;
                let row = take(row_bits) as u32;
                DramAddr::new(BankId::new(rank, group, bank), row, col)
            }
            AddressMapping::Mop => {
                let mop = 2u32.min(col_bits); // 4-line chunks
                let col_lo = take(mop) as u32;
                let bank = take(bank_bits) as u8;
                let group = take(group_bits) as u8;
                let rank = take(rank_bits) as u8;
                let col_hi = take(col_bits - mop) as u32;
                let row = take(row_bits) as u32;
                DramAddr::new(
                    BankId::new(rank, group, bank),
                    row,
                    (col_hi << mop) | col_lo,
                )
            }
            AddressMapping::AbacusMop => {
                let mop = 2u32.min(col_bits);
                let col_lo = take(mop) as u32;
                let bank = take(bank_bits) as u8;
                let group = take(group_bits) as u8;
                let rank = take(rank_bits) as u8;
                let col_hi = take(col_bits - mop) as u32;
                let row = take(row_bits) as u32;
                // XOR bank hashing: permute bank/group with low row bits so
                // row-sequential streams spread across banks.
                let bank = bank ^ ((row as u8) & (geo.banks_per_group as u8 - 1));
                let group = group ^ (((row >> bank_bits) as u8) & (geo.bankgroups as u8 - 1));
                DramAddr::new(
                    BankId::new(rank, group, bank),
                    row,
                    (col_hi << mop) | col_lo,
                )
            }
        }
    }

    /// Encodes DRAM coordinates back into a physical byte address
    /// (inverse of [`AddressMapping::decode`] within channel capacity).
    pub fn encode(&self, addr: &DramAddr, geo: &Geometry) -> u64 {
        let col_bits = geo.cols.trailing_zeros();
        let bank_bits = geo.banks_per_group.trailing_zeros();
        let group_bits = geo.bankgroups.trailing_zeros();
        let rank_bits = geo.ranks.trailing_zeros();
        let mut line = 0u64;
        let mut shift = 0u32;
        let mut put = |v: u64, n: u32| {
            line |= v << shift;
            shift += n;
        };
        match self {
            AddressMapping::RoBaRaCoCh => {
                put(addr.col as u64, col_bits);
                put(addr.bank.rank as u64, rank_bits);
                put(addr.bank.bank as u64, bank_bits);
                put(addr.bank.group as u64, group_bits);
                put(addr.row as u64, geo.rows.trailing_zeros());
            }
            AddressMapping::Mop => {
                let mop = 2u32.min(col_bits);
                put((addr.col & ((1 << mop) - 1)) as u64, mop);
                put(addr.bank.bank as u64, bank_bits);
                put(addr.bank.group as u64, group_bits);
                put(addr.bank.rank as u64, rank_bits);
                put((addr.col >> mop) as u64, col_bits - mop);
                put(addr.row as u64, geo.rows.trailing_zeros());
            }
            AddressMapping::AbacusMop => {
                let mop = 2u32.min(col_bits);
                // Undo the XOR hash before packing.
                let bank = addr.bank.bank ^ ((addr.row as u8) & (geo.banks_per_group as u8 - 1));
                let group = addr.bank.group
                    ^ (((addr.row >> bank_bits) as u8) & (geo.bankgroups as u8 - 1));
                put((addr.col & ((1 << mop) - 1)) as u64, mop);
                put(bank as u64, bank_bits);
                put(group as u64, group_bits);
                put(addr.bank.rank as u64, rank_bits);
                put((addr.col >> mop) as u64, col_bits - mop);
                put(addr.row as u64, geo.rows.trailing_zeros());
            }
        }
        line * geo.line_bytes as u64
    }
}

impl std::fmt::Display for AddressMapping {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            AddressMapping::Mop => "MOP",
            AddressMapping::RoBaRaCoCh => "RoBaRaCoCh",
            AddressMapping::AbacusMop => "ABACuS-MOP",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALL: [AddressMapping; 3] = [
        AddressMapping::Mop,
        AddressMapping::RoBaRaCoCh,
        AddressMapping::AbacusMop,
    ];

    #[test]
    fn decode_encode_roundtrip() {
        let geo = Geometry::ddr5();
        for m in ALL {
            for phys in [
                0u64,
                64,
                4096,
                1 << 20,
                (1 << 30) + 192,
                geo.capacity_bytes() - 64,
            ] {
                let a = m.decode(phys, &geo);
                assert_eq!(
                    m.encode(&a, &geo),
                    phys & !63,
                    "mapping {m}, phys {phys:#x}"
                );
            }
        }
    }

    #[test]
    fn mop_keeps_four_lines_in_one_row() {
        let geo = Geometry::ddr5();
        let m = AddressMapping::Mop;
        let base = m.decode(0, &geo);
        for i in 1..4u64 {
            let a = m.decode(i * 64, &geo);
            assert!(a.same_row(&base), "line {i} left the row");
        }
        // The fifth line moves to another bank.
        let a = m.decode(4 * 64, &geo);
        assert_ne!(a.bank, base.bank);
    }

    #[test]
    fn robaracoch_keeps_whole_row_contiguous() {
        let geo = Geometry::ddr5();
        let m = AddressMapping::RoBaRaCoCh;
        let base = m.decode(0, &geo);
        for i in 1..geo.cols as u64 {
            let a = m.decode(i * 64, &geo);
            assert!(a.same_row(&base));
        }
        let next = m.decode(geo.cols as u64 * 64, &geo);
        assert!(!next.same_row(&base));
    }

    #[test]
    fn abacus_hash_spreads_sequential_rows() {
        let geo = Geometry::ddr5();
        let m = AddressMapping::AbacusMop;
        // Same column/bank bits, consecutive rows → different banks.
        let row_stride = {
            // One full row of one bank under MOP ordering: cols * banks *
            // groups * ranks lines.
            64u64
                * geo.cols as u64
                * geo.banks_per_group as u64
                * geo.bankgroups as u64
                * geo.ranks as u64
        };
        let a0 = m.decode(0, &geo);
        let a1 = m.decode(row_stride, &geo);
        assert_eq!(a1.row, a0.row + 1);
        assert_ne!(a1.bank.bank, a0.bank.bank);
    }

    #[test]
    fn decode_covers_all_banks() {
        let geo = Geometry::ddr5();
        for m in ALL {
            let mut seen = std::collections::HashSet::new();
            // RoBaRaCoCh needs a full column × rank × bank × group span
            // (128 × 2 × 4 × 8 = 8192 lines) before every bank appears.
            for i in 0..16_384u64 {
                seen.insert(m.decode(i * 64, &geo).bank);
            }
            assert_eq!(seen.len(), geo.total_banks(), "mapping {m}");
        }
    }

    #[test]
    fn addresses_wrap_at_capacity() {
        let geo = Geometry::ddr5();
        let m = AddressMapping::Mop;
        assert_eq!(m.decode(geo.capacity_bytes(), &geo), m.decode(0, &geo));
    }
}
