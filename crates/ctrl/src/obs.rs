//! Opt-in timing-observability probe (chronus-scope).
//!
//! The controller computes per-request DRAM timing at cycle resolution;
//! this module keeps the *distributions* instead of only the scalar sums
//! in [`crate::CtrlStats`]: read-latency histograms (aggregate and per
//! core), row-state outcome streams with inter-arrival gaps per bank,
//! mitigation-pause intervals attributed to their cause, and Shannon
//! entropies over all of them — the attacker-visible timing signal the
//! side-channel scenarios rank mechanisms by.
//!
//! The probe is strictly observational: it is attached behind an
//! `Option<Box<_>>` (one branch per issued command when off), records only
//! at command-issue events — which the event-driven and reference loops
//! produce identically — and never feeds back into scheduling, so enabling
//! it cannot change any other report field.

use chronus_dram::Cycle;
use serde::{Deserialize, Serialize};

/// Unit-width buckets for values below this bound.
const LINEAR_BUCKETS: u64 = 32;
/// Sub-buckets per power-of-two octave above the linear range.
const OCTAVE_SPLIT: usize = 4;
/// Upper bound on bucket indices (octaves 5..=63, four sub-buckets each).
pub const MAX_BUCKETS: usize = LINEAR_BUCKETS as usize + (64 - 5) * OCTAVE_SPLIT;

/// The bucket index of a value in the log-linear layout: values below 32
/// get unit buckets; larger values split each power-of-two octave into
/// four equal sub-buckets, keeping ~12% relative resolution at any
/// magnitude with a fixed, deterministic layout.
pub fn bucket_of(v: u64) -> usize {
    if v < LINEAR_BUCKETS {
        v as usize
    } else {
        let e = 63 - v.leading_zeros() as usize;
        let sub = ((v >> (e - 2)) & 3) as usize;
        LINEAR_BUCKETS as usize + (e - 5) * OCTAVE_SPLIT + sub
    }
}

/// The smallest value landing in `bucket` (inverse of [`bucket_of`]).
pub fn bucket_floor(bucket: usize) -> u64 {
    if bucket < LINEAR_BUCKETS as usize {
        bucket as u64
    } else {
        let rel = bucket - LINEAR_BUCKETS as usize;
        let e = (rel / OCTAVE_SPLIT + 5) as u32;
        let sub = (rel % OCTAVE_SPLIT) as u64;
        (1u64 << e) + (sub << (e - 2))
    }
}

/// A log-linear histogram of cycle counts (layout: [`bucket_of`]).
///
/// `counts` is stored dense from bucket 0 up to the highest occupied
/// bucket (trailing zeros trimmed by construction: the vector only grows
/// when a higher bucket is hit), so empty histograms serialize as `[]`.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ObsHistogram {
    /// Per-bucket event counts.
    pub counts: Vec<u64>,
    /// Total events recorded.
    pub total: u64,
    /// Sum of recorded values (mean = `sum / total`).
    pub sum: u64,
    /// Smallest recorded value (0 when empty).
    pub min: u64,
    /// Largest recorded value (0 when empty).
    pub max: u64,
}

impl ObsHistogram {
    /// Records one value.
    pub fn record(&mut self, v: u64) {
        let b = bucket_of(v);
        if self.counts.len() <= b {
            self.counts.resize(b + 1, 0);
        }
        self.counts[b] += 1;
        if self.total == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.total += 1;
        self.sum += v;
    }

    /// Shannon entropy of the bucket distribution, in bits (0 when empty).
    pub fn entropy_bits(&self) -> f64 {
        entropy_bits(&self.counts)
    }

    /// Mean recorded value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }
}

/// Shannon entropy over a count vector, in bits.
pub fn entropy_bits(counts: &[u64]) -> f64 {
    let total: u64 = counts.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let total = total as f64;
    let mut h = 0.0;
    for &c in counts {
        if c > 0 {
            let p = c as f64 / total;
            h -= p * p.log2();
        }
    }
    h
}

/// Why demand issue was blocked when a mitigation window opened.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PauseCause {
    /// Periodic refresh service (urgent or opportunistic `REFab`, and its
    /// `PREab` preamble).
    Refresh,
    /// PRAC/Chronus back-off recovery (`PREab`/`RFMab` until the alert
    /// clears).
    BackOff,
    /// PRFM RAA-threshold RFM (the rank is held hot until the `RFMab`).
    Raa,
    /// Victim-row refresh service (`PRE` + `VRR`, strict priority over
    /// demand).
    Vrr,
}

/// Mitigation-pause visibility: intervals from a non-demand command issued
/// while demand was pending until the next demand command, attributed to
/// the cause that opened them.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct ObsPauses {
    /// Refresh-caused intervals.
    pub refresh_intervals: u64,
    /// Cycles inside refresh-caused intervals.
    pub refresh_cycles: u64,
    /// Back-off-recovery intervals.
    pub backoff_intervals: u64,
    /// Cycles inside back-off intervals.
    pub backoff_cycles: u64,
    /// PRFM RAA intervals.
    pub raa_intervals: u64,
    /// Cycles inside RAA intervals.
    pub raa_cycles: u64,
    /// Victim-row-refresh intervals.
    pub vrr_intervals: u64,
    /// Cycles inside VRR intervals.
    pub vrr_cycles: u64,
}

impl ObsPauses {
    fn note(&mut self, cause: PauseCause, cycles: u64) {
        let (n, c) = match cause {
            PauseCause::Refresh => (&mut self.refresh_intervals, &mut self.refresh_cycles),
            PauseCause::BackOff => (&mut self.backoff_intervals, &mut self.backoff_cycles),
            PauseCause::Raa => (&mut self.raa_intervals, &mut self.raa_cycles),
            PauseCause::Vrr => (&mut self.vrr_intervals, &mut self.vrr_cycles),
        };
        *n += 1;
        *c += cycles;
    }

    /// Total demand-blocked cycles across every cause.
    pub fn total_cycles(&self) -> u64 {
        self.refresh_cycles + self.backoff_cycles + self.raa_cycles + self.vrr_cycles
    }

    /// Total intervals across every cause.
    pub fn total_intervals(&self) -> u64 {
        self.refresh_intervals + self.backoff_intervals + self.raa_intervals + self.vrr_intervals
    }
}

/// Row-locality outcome of one CAS, classified at service time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RowOutcome {
    /// Served from the open row.
    Hit,
    /// Required an activation only.
    Miss,
    /// Required closing another row first.
    Conflict,
}

/// Per-core latency histograms are kept for cores below this bound;
/// controller-internal traffic (`core == u8::MAX`) is aggregate-only.
const MAX_OBS_CORES: usize = 64;

/// The live recording state attached to the controller while observability
/// is enabled. Not serialized; [`ObsProbe::finish`] freezes it into the
/// [`ObsReport`] that lands in the simulation report.
#[derive(Debug)]
pub struct ObsProbe {
    latency: ObsHistogram,
    per_core: Vec<ObsHistogram>,
    hit_gaps: ObsHistogram,
    miss_gaps: ObsHistogram,
    conflict_gaps: ObsHistogram,
    /// Last CAS cycle per flat bank (`Cycle::MAX` = none yet).
    last_cas: Vec<Cycle>,
    hits: u64,
    misses: u64,
    conflicts: u64,
    pauses: ObsPauses,
    pause_durations: ObsHistogram,
    open_pause: Option<(PauseCause, Cycle)>,
}

impl ObsProbe {
    /// A probe for a device with `total_banks` flat banks.
    pub fn new(total_banks: usize) -> Self {
        Self {
            latency: ObsHistogram::default(),
            per_core: Vec::new(),
            hit_gaps: ObsHistogram::default(),
            miss_gaps: ObsHistogram::default(),
            conflict_gaps: ObsHistogram::default(),
            last_cas: vec![Cycle::MAX; total_banks],
            hits: 0,
            misses: 0,
            conflicts: 0,
            pauses: ObsPauses::default(),
            pause_durations: ObsHistogram::default(),
            open_pause: None,
        }
    }

    /// Records a completed demand read: arrival-to-data latency, aggregate
    /// and per issuing core.
    pub fn record_read(&mut self, core: u8, latency: u64) {
        self.latency.record(latency);
        let core = core as usize;
        if core < MAX_OBS_CORES {
            if self.per_core.len() <= core {
                self.per_core.resize_with(core + 1, ObsHistogram::default);
            }
            self.per_core[core].record(latency);
        }
    }

    /// Records one serviced CAS: the row-state outcome and the gap since
    /// the previous CAS on the same bank (first touch records no gap).
    pub fn record_cas(&mut self, flat_bank: usize, outcome: RowOutcome, now: Cycle) {
        let gap = match self.last_cas[flat_bank] {
            Cycle::MAX => None,
            last => Some(now - last),
        };
        self.last_cas[flat_bank] = now;
        let (count, hist) = match outcome {
            RowOutcome::Hit => (&mut self.hits, &mut self.hit_gaps),
            RowOutcome::Miss => (&mut self.misses, &mut self.miss_gaps),
            RowOutcome::Conflict => (&mut self.conflicts, &mut self.conflict_gaps),
        };
        *count += 1;
        if let Some(gap) = gap {
            hist.record(gap);
        }
    }

    /// A non-demand command issued while demand was pending: opens a pause
    /// attributed to `cause`, or re-attributes an open one when the cause
    /// changes (the earlier span is closed at `now`).
    pub fn note_block(&mut self, cause: PauseCause, now: Cycle) {
        match self.open_pause {
            Some((open_cause, _)) if open_cause == cause => {}
            Some((open_cause, start)) => {
                self.close_pause(open_cause, start, now);
                self.open_pause = Some((cause, now));
            }
            None => self.open_pause = Some((cause, now)),
        }
    }

    /// A demand command issued: closes any open pause at `now`.
    pub fn note_demand(&mut self, now: Cycle) {
        if let Some((cause, start)) = self.open_pause.take() {
            self.close_pause(cause, start, now);
        }
    }

    fn close_pause(&mut self, cause: PauseCause, start: Cycle, end: Cycle) {
        let cycles = end - start;
        self.pauses.note(cause, cycles);
        self.pause_durations.record(cycles);
    }

    /// Freezes the probe into a report; an open pause is closed at the
    /// final memory cycle (identical in both simulation loops).
    pub fn finish(mut self, mem_cycles: Cycle) -> ObsReport {
        self.note_demand(mem_cycles);
        let mut merged_gaps = self.hit_gaps.counts.clone();
        for other in [&self.miss_gaps.counts, &self.conflict_gaps.counts] {
            if merged_gaps.len() < other.len() {
                merged_gaps.resize(other.len(), 0);
            }
            for (m, &c) in merged_gaps.iter_mut().zip(other) {
                *m += c;
            }
        }
        ObsReport {
            latency_entropy_bits: self.latency.entropy_bits(),
            gap_entropy_bits: entropy_bits(&merged_gaps),
            outcome_entropy_bits: entropy_bits(&[self.hits, self.misses, self.conflicts]),
            pause_entropy_bits: self.pause_durations.entropy_bits(),
            read_latency: self.latency,
            per_core_latency: self.per_core,
            hit_gaps: self.hit_gaps,
            miss_gaps: self.miss_gaps,
            conflict_gaps: self.conflict_gaps,
            pauses: self.pauses,
            pause_durations: self.pause_durations,
        }
    }
}

/// The frozen observability section of a simulation report.
///
/// Like the rest of the report, `PartialEq` compares every field exactly:
/// the loop-equivalence harness pins the fast and reference loops to
/// bit-identical `ObsReport`s, and the grid store requires byte-identical
/// re-serialization.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ObsReport {
    /// Demand-read latency (arrival → data), aggregate over all cores.
    pub read_latency: ObsHistogram,
    /// Demand-read latency per issuing core (dense up to the highest core
    /// that completed a read; controller-internal traffic is excluded).
    pub per_core_latency: Vec<ObsHistogram>,
    /// Inter-CAS gap per bank for row-hit services.
    pub hit_gaps: ObsHistogram,
    /// Inter-CAS gap per bank for row-miss services.
    pub miss_gaps: ObsHistogram,
    /// Inter-CAS gap per bank for row-conflict services.
    pub conflict_gaps: ObsHistogram,
    /// Mitigation-pause intervals by cause.
    pub pauses: ObsPauses,
    /// Pause-duration distribution across every cause.
    pub pause_durations: ObsHistogram,
    /// Shannon entropy of the read-latency distribution, in bits.
    pub latency_entropy_bits: f64,
    /// Shannon entropy of the merged inter-CAS gap distribution, in bits.
    pub gap_entropy_bits: f64,
    /// Shannon entropy of the hit/miss/conflict outcome mix, in bits
    /// (at most `log2 3`).
    pub outcome_entropy_bits: f64,
    /// Shannon entropy of the pause-duration distribution, in bits.
    pub pause_entropy_bits: f64,
}

impl ObsReport {
    /// The latency histogram the probe core observes (falls back to the
    /// aggregate when that core completed no reads).
    pub fn core_latency(&self, core: usize) -> &ObsHistogram {
        self.per_core_latency
            .get(core)
            .unwrap_or(&self.read_latency)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_monotonic_and_inverse_consistent() {
        let mut prev = 0;
        for v in (0..200u64).chain([1 << 10, (1 << 10) + 1, 1 << 20, u64::MAX]) {
            let b = bucket_of(v);
            assert!(b >= prev || v < 200, "bucket order broke at {v}");
            prev = prev.max(b);
            assert!(b < MAX_BUCKETS, "bucket {b} out of range for {v}");
            assert!(
                bucket_floor(b) <= v,
                "floor({b}) = {} > {v}",
                bucket_floor(b)
            );
            if b + 1 < MAX_BUCKETS {
                assert!(bucket_floor(b + 1) > v, "value {v} beyond bucket {b}");
            }
        }
    }

    #[test]
    fn linear_range_is_exact() {
        for v in 0..32u64 {
            assert_eq!(bucket_of(v), v as usize);
            assert_eq!(bucket_floor(v as usize), v);
        }
    }

    #[test]
    fn histogram_tracks_summary_stats() {
        let mut h = ObsHistogram::default();
        for v in [5u64, 5, 100, 3] {
            h.record(v);
        }
        assert_eq!(h.total, 4);
        assert_eq!(h.sum, 113);
        assert_eq!(h.min, 3);
        assert_eq!(h.max, 100);
        assert_eq!(h.counts[5], 2);
        assert!((h.mean() - 28.25).abs() < 1e-12);
        // Trailing zeros trimmed: vector ends at the highest hit bucket.
        assert_eq!(*h.counts.last().unwrap(), 1);
    }

    #[test]
    fn entropy_matches_closed_forms() {
        assert_eq!(entropy_bits(&[]), 0.0);
        assert_eq!(entropy_bits(&[7]), 0.0, "a point mass carries no bits");
        assert!((entropy_bits(&[1, 1]) - 1.0).abs() < 1e-12);
        assert!((entropy_bits(&[2, 2, 2, 2]) - 2.0).abs() < 1e-12);
        let skewed = entropy_bits(&[30, 1, 1]);
        assert!(skewed > 0.0 && skewed < entropy_bits(&[1, 1, 1]));
    }

    #[test]
    fn gaps_are_per_bank_and_skip_first_touch() {
        let mut p = ObsProbe::new(4);
        p.record_cas(0, RowOutcome::Miss, 100);
        p.record_cas(1, RowOutcome::Miss, 110);
        p.record_cas(0, RowOutcome::Hit, 130); // gap 30 on bank 0
        p.record_cas(1, RowOutcome::Conflict, 170); // gap 60 on bank 1
        let r = p.finish(1_000);
        assert_eq!(r.miss_gaps.total, 0, "first touches record no gap");
        assert_eq!(r.hit_gaps.total, 1);
        assert_eq!(r.hit_gaps.min, 30);
        assert_eq!(r.conflict_gaps.min, 60);
        assert!((r.outcome_entropy_bits - entropy_bits(&[1, 2, 1])).abs() < 1e-12);
    }

    #[test]
    fn pauses_attribute_and_close() {
        let mut p = ObsProbe::new(1);
        p.note_block(PauseCause::Refresh, 100);
        p.note_block(PauseCause::Refresh, 110); // same cause: extends
        p.note_demand(150); // closes 50 cycles of refresh
        p.note_block(PauseCause::Vrr, 200);
        p.note_block(PauseCause::BackOff, 220); // re-attribution closes VRR
        let r = p.finish(260); // open back-off closed at the end
        assert_eq!(r.pauses.refresh_intervals, 1);
        assert_eq!(r.pauses.refresh_cycles, 50);
        assert_eq!(r.pauses.vrr_cycles, 20);
        assert_eq!(r.pauses.backoff_cycles, 40);
        assert_eq!(r.pauses.total_cycles(), 110);
        assert_eq!(r.pauses.total_intervals(), 3);
        assert_eq!(r.pause_durations.total, 3);
    }

    #[test]
    fn per_core_latency_is_dense_and_internal_traffic_aggregate_only() {
        let mut p = ObsProbe::new(1);
        p.record_read(2, 40);
        p.record_read(0, 20);
        p.record_read(u8::MAX, 999); // controller-internal
        let r = p.finish(10);
        assert_eq!(r.read_latency.total, 3);
        assert_eq!(r.per_core_latency.len(), 3);
        assert_eq!(r.per_core_latency[0].total, 1);
        assert_eq!(r.per_core_latency[1].total, 0);
        assert_eq!(r.per_core_latency[2].total, 1);
        assert_eq!(r.core_latency(1).total, 0);
        assert_eq!(r.core_latency(9).total, 3, "missing core falls back");
    }

    #[test]
    fn report_is_deterministic_for_identical_streams() {
        let run = || {
            let mut p = ObsProbe::new(2);
            for i in 0..50u64 {
                p.record_read((i % 3) as u8, 24 + (i * 7) % 90);
                p.record_cas(
                    (i % 2) as usize,
                    match i % 3 {
                        0 => RowOutcome::Hit,
                        1 => RowOutcome::Miss,
                        _ => RowOutcome::Conflict,
                    },
                    i * 13,
                );
            }
            p.note_block(PauseCause::Refresh, 700);
            p.note_demand(730);
            p.finish(1_000)
        };
        assert_eq!(run(), run(), "identical streams must freeze identically");
    }
}
