//! Memory requests and completions.

use chronus_dram::{Cycle, DramAddr};
use serde::{Deserialize, Serialize};

/// Request direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ReqKind {
    /// Cache-line read (LLC miss fill or Hydra RCT read).
    Read,
    /// Cache-line write (LLC writeback or Hydra RCT writeback).
    Write,
}

/// One cache-line request as seen by the memory controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemRequest {
    /// Caller-assigned identifier, echoed in the [`Completion`].
    pub id: u64,
    /// Read or write.
    pub kind: ReqKind,
    /// Decoded DRAM coordinates.
    pub addr: DramAddr,
    /// Issuing core (for per-core statistics; `u8::MAX` = controller
    /// internal, e.g. Hydra counter traffic).
    pub core: u8,
    /// Cycle the request entered the controller queue.
    pub arrived: Cycle,
}

/// Identifier used for controller-internal requests (no completion is
/// delivered to the frontend).
pub const INTERNAL_CORE: u8 = u8::MAX;

/// A finished read: data available at `at`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Completion {
    /// The request id.
    pub id: u64,
    /// Cycle (memory clock) at which data is on the bus.
    pub at: Cycle,
}

#[cfg(test)]
mod tests {
    use super::*;
    use chronus_dram::BankId;

    #[test]
    fn request_is_plain_data() {
        let r = MemRequest {
            id: 7,
            kind: ReqKind::Read,
            addr: DramAddr::new(BankId::new(0, 1, 2), 33, 4),
            core: 1,
            arrived: 99,
        };
        let r2 = r;
        assert_eq!(r, r2);
        assert_eq!(r.addr.bank.group, 1);
    }
}
