//! FR-FCFS scheduling with a cap on column-over-row reordering.
//!
//! The paper's controller uses FR-FCFS+Cap with a cap of four (Table 2,
//! [Mutlu & Moscibroda, MICRO'07]): row-buffer hits may bypass older
//! row-miss requests at most `cap` consecutive times per bank, bounding the
//! starvation FR-FCFS inflicts on conflict-heavy threads.

use chronus_dram::{Command, Cycle, DramDevice};

use crate::request::{MemRequest, ReqKind};

/// A queue entry plus scheduling bookkeeping.
#[derive(Debug, Clone, Copy)]
pub struct Entry {
    /// The request.
    pub req: MemRequest,
    /// This request's service required a precharge (row conflict).
    pub caused_pre: bool,
    /// This request's service required an activation (row miss).
    pub caused_act: bool,
}

impl Entry {
    /// Wraps a fresh request.
    pub fn new(req: MemRequest) -> Self {
        Self {
            req,
            caused_pre: false,
            caused_act: false,
        }
    }

    /// The CAS command that would serve this request.
    pub fn cas_command(&self) -> Command {
        match self.req.kind {
            ReqKind::Read => Command::Rd {
                bank: self.req.addr.bank,
                col: self.req.addr.col,
            },
            ReqKind::Write => Command::Wr {
                bank: self.req.addr.bank,
                col: self.req.addr.col,
            },
        }
    }
}

/// What the scheduler decided to issue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decision {
    /// Serve the request's column access (index into the queue). `bypass`
    /// is true when an older non-hit request to the same bank was
    /// reordered past (counts toward the cap).
    Cas(usize, bool),
    /// Open the request's row.
    Act(usize),
    /// Close the conflicting row for this request.
    Pre(usize),
}

/// Picks the next command for `queue` under FR-FCFS+Cap.
///
/// `hit_streak` holds, per flat bank index, the number of consecutive
/// row-hit bypasses since the last non-hit service; `rank_usable` filters
/// out ranks in recovery. Queue order is age order (oldest first).
///
/// A row hit younger than a non-hit request to the same bank may be
/// served only while the bank's bypass streak is below `cap` — in *both*
/// passes, so timing-blocked precharges cannot be starved by an endless
/// hit stream (the FR-FCFS+Cap guarantee of [Mutlu & Moscibroda,
/// MICRO'07]).
pub fn pick<F: Fn(usize) -> bool>(
    queue: &[Entry],
    dram: &DramDevice,
    now: Cycle,
    cap: u32,
    hit_streak: &[u32],
    rank_usable: &F,
) -> Option<Decision> {
    let geo = *dram.geometry();
    debug_assert!(geo.total_banks() <= 64);
    // Pass 1: oldest issuable row-hit, honouring the cap.
    let mut non_hit_seen = 0u64; // banks with an older non-hit request
    for (i, e) in queue.iter().enumerate() {
        let bank = e.req.addr.bank;
        if !rank_usable(bank.rank as usize) {
            continue;
        }
        let flat = bank.flat(&geo);
        let is_hit = dram.open_row(bank) == Some(e.req.addr.row);
        if !is_hit {
            non_hit_seen |= 1 << flat;
            continue;
        }
        let bypass = non_hit_seen & (1 << flat) != 0;
        if bypass && hit_streak[flat] >= cap {
            continue; // cap reached and an older miss waits
        }
        if dram.can_issue(&e.cas_command(), now) {
            return Some(Decision::Cas(i, bypass));
        }
    }
    // Pass 2: oldest request that can make progress (FCFS), with the same
    // cap discipline on hits.
    let mut non_hit_seen = 0u64;
    for (i, e) in queue.iter().enumerate() {
        let bank = e.req.addr.bank;
        if !rank_usable(bank.rank as usize) {
            continue;
        }
        let flat = bank.flat(&geo);
        match dram.open_row(bank) {
            Some(row) if row == e.req.addr.row => {
                let bypass = non_hit_seen & (1 << flat) != 0;
                if bypass && hit_streak[flat] >= cap {
                    continue;
                }
                let cmd = e.cas_command();
                if dram.can_issue(&cmd, now) {
                    return Some(Decision::Cas(i, bypass));
                }
            }
            Some(_) => {
                non_hit_seen |= 1 << flat;
                let cmd = Command::Pre { bank };
                if dram.can_issue(&cmd, now) {
                    return Some(Decision::Pre(i));
                }
            }
            None => {
                non_hit_seen |= 1 << flat;
                let cmd = Command::Act {
                    bank,
                    row: e.req.addr.row,
                };
                if dram.can_issue(&cmd, now) {
                    return Some(Decision::Act(i));
                }
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use chronus_dram::{BankId, DramAddr, DramConfig, DramDevice};

    fn req(id: u64, bank: BankId, row: u32, col: u32) -> Entry {
        Entry::new(MemRequest {
            id,
            kind: ReqKind::Read,
            addr: DramAddr::new(bank, row, col),
            core: 0,
            arrived: id,
        })
    }

    fn dev() -> DramDevice {
        DramDevice::new(DramConfig::tiny())
    }

    const B0: BankId = BankId::new(0, 0, 0);

    #[test]
    fn prefers_row_hit_over_older_miss_until_cap() {
        let mut d = dev();
        let t = *d.timings();
        d.issue(&Command::Act { bank: B0, row: 5 }, 0);
        let now = t.rcd;
        // Older request conflicts (row 9), younger is a hit (row 5).
        let queue = vec![req(0, B0, 9, 0), req(1, B0, 5, 0)];
        let streak = vec![0u32; d.geometry().total_banks()];
        let pick1 = pick(&queue, &d, now, 4, &streak, &|_| true);
        assert_eq!(pick1, Some(Decision::Cas(1, true)));
        // With the cap exhausted the older conflict wins (precharge).
        let mut capped = streak.clone();
        capped[B0.flat(d.geometry())] = 4;
        let now = t.ras.max(now);
        let pick2 = pick(&queue, &d, now, 4, &capped, &|_| true);
        assert_eq!(pick2, Some(Decision::Pre(0)));
    }

    #[test]
    fn idle_bank_gets_activate_for_oldest() {
        let d = dev();
        let queue = vec![req(0, B0, 9, 0), req(1, B0, 5, 0)];
        let streak = vec![0u32; d.geometry().total_banks()];
        assert_eq!(
            pick(&queue, &d, 0, 4, &streak, &|_| true),
            Some(Decision::Act(0))
        );
    }

    #[test]
    fn recovery_rank_is_skipped() {
        let d = dev();
        let queue = vec![req(0, B0, 9, 0)];
        let streak = vec![0u32; d.geometry().total_banks()];
        assert_eq!(pick(&queue, &d, 0, 4, &streak, &|_| false), None);
    }

    #[test]
    fn blocked_timing_yields_none() {
        let mut d = dev();
        d.issue(&Command::Act { bank: B0, row: 5 }, 0);
        // Row 5 open, but tRCD not yet elapsed and row 9 cannot PRE before
        // tRAS: nothing issuable at cycle 1.
        let queue = vec![req(0, B0, 9, 0), req(1, B0, 5, 0)];
        let streak = vec![0u32; d.geometry().total_banks()];
        assert_eq!(pick(&queue, &d, 1, 4, &streak, &|_| true), None);
    }

    #[test]
    fn empty_queue_yields_none() {
        let d = dev();
        let streak = vec![0u32; d.geometry().total_banks()];
        assert_eq!(pick(&[], &d, 0, 4, &streak, &|_| true), None);
    }
}
