//! FR-FCFS scheduling with a cap on column-over-row reordering.
//!
//! The paper's controller uses FR-FCFS+Cap with a cap of four (Table 2,
//! [Mutlu & Moscibroda, MICRO'07]): row-buffer hits may bypass older
//! row-miss requests at most `cap` consecutive times per bank, bounding the
//! starvation FR-FCFS inflicts on conflict-heavy threads.
//!
//! [`pick`] visits only banks that hold work (via
//! [`RequestQueue::occupied_banks`]) and inspects at most two requests per
//! bank. That suffices because within one bank the scheduler's verdict is
//! decided by its *oldest* hit and *oldest* non-hit alone:
//!
//! * all hits to a bank share the same CAS timing and the same streak
//!   counter, and the oldest hit has the weakest bypass condition, so no
//!   younger hit can be admissible-and-issuable when the oldest is not;
//! * all non-hits to a bank map to the same command (`PRE` if a row is
//!   open, `ACT` — whose timing is row-independent — if idle), so the
//!   oldest non-hit dominates.
//!
//! [`pick_reference`] retains the original two-pass scan over the flat
//! age-ordered queue; a property test pins `pick` to it exactly.

use chronus_dram::{Command, Cycle, DramDevice};

use crate::queue::{BankSet, RequestQueue};
use crate::request::{MemRequest, ReqKind};

/// A queue entry plus scheduling bookkeeping.
#[derive(Debug, Clone, Copy)]
pub struct Entry {
    /// The request.
    pub req: MemRequest,
    /// This request's service required a precharge (row conflict).
    pub caused_pre: bool,
    /// This request's service required an activation (row miss).
    pub caused_act: bool,
    /// Arrival order within the queue (assigned by [`RequestQueue::push`];
    /// lower is older).
    pub seq: u64,
}

impl Entry {
    /// Wraps a fresh request (sequence number 0; [`RequestQueue::push`]
    /// assigns real ones).
    pub fn new(req: MemRequest) -> Self {
        Self {
            req,
            caused_pre: false,
            caused_act: false,
            seq: 0,
        }
    }

    /// The CAS command that would serve this request.
    pub fn cas_command(&self) -> Command {
        match self.req.kind {
            ReqKind::Read => Command::Rd {
                bank: self.req.addr.bank,
                col: self.req.addr.col,
            },
            ReqKind::Write => Command::Wr {
                bank: self.req.addr.bank,
                col: self.req.addr.col,
            },
        }
    }
}

/// What the scheduler decided to issue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decision {
    /// Serve the request's column access (slot id into the queue).
    /// `bypass` is true when an older non-hit request to the same bank was
    /// reordered past (counts toward the cap).
    Cas(u32, bool),
    /// Open the request's row.
    Act(u32),
    /// Close the conflicting row for this request.
    Pre(u32),
}

/// The two per-bank candidates the scheduler's verdict depends on.
struct BankFront {
    /// Oldest row hit: `(seq, slot, bypass)`.
    hit: Option<(u64, u32, bool)>,
    /// Oldest non-hit: `(seq, slot)`.
    other: Option<(u64, u32)>,
}

/// Scans one bank's age-ordered slot list for its oldest hit and oldest
/// non-hit. Stops as soon as both are known.
fn bank_front(queue: &RequestQueue, flat: usize, open: Option<u32>) -> BankFront {
    let mut hit: Option<(u64, u32, bool)> = None;
    let mut other: Option<(u64, u32)> = None;
    for &slot in queue.bank_slots(flat) {
        let e = queue.get(slot);
        if open == Some(e.req.addr.row) {
            if hit.is_none() {
                hit = Some((e.seq, slot, other.is_some()));
            }
        } else if other.is_none() {
            other = Some((e.seq, slot));
        }
        if hit.is_some() && other.is_some() {
            break;
        }
    }
    BankFront { hit, other }
}

/// Picks the next command for `queue` under FR-FCFS+Cap.
///
/// `hit_streak` holds, per flat bank index, the number of consecutive
/// row-hit bypasses since the last non-hit service; `rank_usable` filters
/// out ranks in recovery (or RAA-blocked).
///
/// `queue` must hold requests of a single [`ReqKind`] (the controller
/// keeps reads and writes in separate queues): the per-bank reduction
/// relies on all row hits to a bank sharing one CAS timing frontier,
/// which `Rd` and `Wr` do not.
///
/// A row hit younger than a non-hit request to the same bank may be
/// served only while the bank's bypass streak is below `cap` — in *both*
/// passes, so timing-blocked precharges cannot be starved by an endless
/// hit stream (the FR-FCFS+Cap guarantee of [Mutlu & Moscibroda,
/// MICRO'07]).
pub fn pick<F: Fn(usize) -> bool>(
    queue: &RequestQueue,
    dram: &DramDevice,
    now: Cycle,
    cap: u32,
    hit_streak: &[u32],
    rank_usable: &F,
) -> Option<Decision> {
    let write = match queue.head_kind() {
        Some(k) => k == ReqKind::Write,
        None => return None,
    };
    // Pass 1: oldest issuable row-hit, honouring the cap.
    let mut best_hit: Option<(u64, u32, bool)> = None;
    // Pass 2 fallback: oldest request whose PRE/ACT can make progress. A
    // CAS can never win pass 2 when pass 1 came up empty (identical
    // admissibility and timing checks), so only non-hits are candidates.
    let mut best_other: Option<(u64, Decision)> = None;
    // `occupied_banks` yields ascending flat ids, so banks of one rank are
    // contiguous: the rank-level floors are computed once per rank and
    // prune every candidate check in it to bank/group-level compares.
    let mut cur_rank = usize::MAX;
    let mut usable = false;
    let mut cas_ok = false;
    let mut act_floor = Cycle::MAX;
    for flat in queue.occupied_banks() {
        // Every entry filed under `flat` carries the same `BankId`; reading
        // it back beats re-deriving it from the flat index (divisions).
        let bank = queue.get(queue.bank_slots(flat)[0]).req.addr.bank;
        let rank = bank.rank as usize;
        if rank != cur_rank {
            cur_rank = rank;
            usable = rank_usable(rank);
            if usable {
                cas_ok = dram.rank_cas_floor(rank, write) <= now;
                act_floor = dram.rank_act_floor(rank);
            }
        }
        if !usable {
            continue;
        }
        let group = bank.group as usize;
        let open = dram.open_row(bank);
        let front = bank_front(queue, flat, open);
        if let Some((seq, slot, bypass)) = front.hit {
            let admissible = !bypass || hit_streak[flat] < cap;
            if admissible
                && cas_ok
                && best_hit.is_none_or(|(s, _, _)| seq < s)
                && dram.group_cas_floor(rank, group, write) <= now
                && dram.bank_cas_at(bank, write) <= now
            {
                best_hit = Some((seq, slot, bypass));
            }
        }
        if let Some((seq, slot)) = front.other {
            if best_other.as_ref().is_none_or(|&(s, _)| seq < s) {
                let issuable_as = match open {
                    Some(_) => (dram.bank_pre_at(bank) <= now).then_some(Decision::Pre(slot)),
                    None => (act_floor <= now
                        && dram.group_act_floor(rank, group) <= now
                        && dram.bank_act_at(bank) <= now)
                        .then_some(Decision::Act(slot)),
                };
                if let Some(decision) = issuable_as {
                    best_other = Some((seq, decision));
                }
            }
        }
    }
    if let Some((_, slot, bypass)) = best_hit {
        return Some(Decision::Cas(slot, bypass));
    }
    best_other.map(|(_, d)| d)
}

/// The next demand-scheduling event for `queue`: the exact first cycle
/// `t > now` at which [`pick`] would return `Some` (assuming no issues and
/// no arrivals in the meantime), *and* the exact decision it would return
/// at that cycle. Returns `(Cycle::MAX, None)` when no candidate exists.
///
/// One scan serves both the wake time and the verdict: each candidate's
/// issuable time is its [`DramDevice::earliest_issue_at`] decomposed into
/// rank-floor/group-floor/bank-frontier terms (the rank floor is fetched
/// once per rank — `occupied_banks` yields ranks contiguously), clamped to
/// `now + 1`. The winner at the wake cycle follows FR-FCFS+Cap exactly:
/// the oldest admissible row hit ready by then beats every non-hit, hits
/// beat non-hits that tie on time, and ties within a class go to the
/// lowest sequence number — the same verdict `pick` reaches because at the
/// wake cycle (the min over candidates) the issuable set is precisely the
/// candidates whose clamped time equals it. Candidate admissibility (cap,
/// bypass, rank filters) cannot change without an issue or arrival, which
/// is what bounds the result's validity.
pub fn next_demand_event<F: Fn(usize) -> bool>(
    queue: &RequestQueue,
    dram: &DramDevice,
    now: Cycle,
    cap: u32,
    hit_streak: &[u32],
    rank_usable: &F,
) -> (Cycle, Option<Decision>) {
    let write = match queue.head_kind() {
        Some(k) => k == ReqKind::Write,
        None => return (Cycle::MAX, None),
    };
    let at_least = now + 1;
    // Oldest admissible hit achieving the earliest hit time.
    let mut t_hit = Cycle::MAX;
    let mut hit_best: Option<(u64, u32, bool)> = None;
    // Oldest non-hit achieving the earliest non-hit time.
    let mut t_oth = Cycle::MAX;
    let mut oth_best: Option<(u64, Decision)> = None;
    let mut cur_rank = usize::MAX;
    let mut usable = false;
    let mut cas_floor = 0;
    let mut act_floor = 0;
    for flat in queue.occupied_banks() {
        // Every entry filed under `flat` carries the same `BankId`.
        let bank = queue.get(queue.bank_slots(flat)[0]).req.addr.bank;
        let rank = bank.rank as usize;
        if rank != cur_rank {
            cur_rank = rank;
            usable = rank_usable(rank);
            if usable {
                cas_floor = dram.rank_cas_floor(rank, write);
                act_floor = dram.rank_act_floor(rank);
            }
        }
        if !usable {
            continue;
        }
        let group = bank.group as usize;
        let open = dram.open_row(bank);
        let front = bank_front(queue, flat, open);
        if let Some((seq, slot, bypass)) = front.hit {
            if !bypass || hit_streak[flat] < cap {
                let t = cas_floor
                    .max(dram.group_cas_floor(rank, group, write))
                    .max(dram.bank_cas_at(bank, write))
                    .max(at_least);
                if t < t_hit || (t == t_hit && hit_best.is_some_and(|(s, _, _)| seq < s)) {
                    t_hit = t;
                    hit_best = Some((seq, slot, bypass));
                }
            }
        }
        if let Some((seq, slot)) = front.other {
            let (t, decision) = match open {
                Some(_) => (dram.bank_pre_at(bank).max(at_least), Decision::Pre(slot)),
                None => (
                    act_floor
                        .max(dram.group_act_floor(rank, group))
                        .max(dram.bank_act_at(bank))
                        .max(at_least),
                    Decision::Act(slot),
                ),
            };
            if t < t_oth || (t == t_oth && oth_best.as_ref().is_some_and(|&(s, _)| seq < s)) {
                t_oth = t;
                oth_best = Some((seq, decision));
            }
        }
    }
    // At the wake cycle any ready admissible hit wins pass 1, so hits beat
    // non-hits on ties.
    if t_hit <= t_oth {
        match hit_best {
            Some((_, slot, bypass)) => (t_hit, Some(Decision::Cas(slot, bypass))),
            None => (Cycle::MAX, None),
        }
    } else {
        (t_oth, oth_best.map(|(_, d)| d))
    }
}

/// The original flat two-pass FR-FCFS+Cap scan, kept as the semantic
/// reference for [`pick`] (property-tested against it). Operates on the
/// same [`RequestQueue`] by materializing the age order from `seq`.
pub fn pick_reference<F: Fn(usize) -> bool>(
    queue: &RequestQueue,
    dram: &DramDevice,
    now: Cycle,
    cap: u32,
    hit_streak: &[u32],
    rank_usable: &F,
) -> Option<Decision> {
    let geo = *dram.geometry();
    let mut flat_queue: Vec<(u32, &Entry)> = queue.iter().collect();
    flat_queue.sort_by_key(|(_, e)| e.seq);
    // Pass 1: oldest issuable row-hit, honouring the cap.
    let mut non_hit_seen = BankSet::new(); // banks with an older non-hit
    for &(slot, e) in &flat_queue {
        let bank = e.req.addr.bank;
        if !rank_usable(bank.rank as usize) {
            continue;
        }
        let flat = bank.flat(&geo);
        let is_hit = dram.open_row(bank) == Some(e.req.addr.row);
        if !is_hit {
            non_hit_seen.insert(flat);
            continue;
        }
        let bypass = non_hit_seen.contains(flat);
        if bypass && hit_streak[flat] >= cap {
            continue; // cap reached and an older miss waits
        }
        if dram.can_issue(&e.cas_command(), now) {
            return Some(Decision::Cas(slot, bypass));
        }
    }
    // Pass 2: oldest request that can make progress (FCFS), with the same
    // cap discipline on hits.
    let mut non_hit_seen = BankSet::new();
    for &(slot, e) in &flat_queue {
        let bank = e.req.addr.bank;
        if !rank_usable(bank.rank as usize) {
            continue;
        }
        let flat = bank.flat(&geo);
        match dram.open_row(bank) {
            Some(row) if row == e.req.addr.row => {
                let bypass = non_hit_seen.contains(flat);
                if bypass && hit_streak[flat] >= cap {
                    continue;
                }
                let cmd = e.cas_command();
                if dram.can_issue(&cmd, now) {
                    return Some(Decision::Cas(slot, bypass));
                }
            }
            Some(_) => {
                non_hit_seen.insert(flat);
                let cmd = Command::Pre { bank };
                if dram.can_issue(&cmd, now) {
                    return Some(Decision::Pre(slot));
                }
            }
            None => {
                non_hit_seen.insert(flat);
                let cmd = Command::Act {
                    bank,
                    row: e.req.addr.row,
                };
                if dram.can_issue(&cmd, now) {
                    return Some(Decision::Act(slot));
                }
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use chronus_dram::{BankId, DramAddr, DramConfig, DramDevice};
    use proptest::prelude::*;

    fn req(id: u64, bank: BankId, row: u32, col: u32) -> MemRequest {
        MemRequest {
            id,
            kind: ReqKind::Read,
            addr: DramAddr::new(bank, row, col),
            core: 0,
            arrived: id,
        }
    }

    fn dev() -> DramDevice {
        DramDevice::new(DramConfig::tiny())
    }

    fn queue_of(dram: &DramDevice, reqs: &[MemRequest]) -> RequestQueue {
        let mut q = RequestQueue::new(*dram.geometry());
        for r in reqs {
            q.push(*r);
        }
        q
    }

    const B0: BankId = BankId::new(0, 0, 0);

    #[test]
    fn prefers_row_hit_over_older_miss_until_cap() {
        let mut d = dev();
        let t = *d.timings();
        d.issue(&Command::Act { bank: B0, row: 5 }, 0);
        let now = t.rcd;
        // Older request conflicts (row 9), younger is a hit (row 5).
        let q = queue_of(&d, &[req(0, B0, 9, 0), req(1, B0, 5, 0)]);
        let streak = vec![0u32; d.geometry().total_banks()];
        let pick1 = pick(&q, &d, now, 4, &streak, &|_| true);
        assert_eq!(pick1, Some(Decision::Cas(1, true)));
        // With the cap exhausted the older conflict wins (precharge).
        let mut capped = streak.clone();
        capped[B0.flat(d.geometry())] = 4;
        let now = t.ras.max(now);
        let pick2 = pick(&q, &d, now, 4, &capped, &|_| true);
        assert_eq!(pick2, Some(Decision::Pre(0)));
    }

    #[test]
    fn idle_bank_gets_activate_for_oldest() {
        let d = dev();
        let q = queue_of(&d, &[req(0, B0, 9, 0), req(1, B0, 5, 0)]);
        let streak = vec![0u32; d.geometry().total_banks()];
        assert_eq!(
            pick(&q, &d, 0, 4, &streak, &|_| true),
            Some(Decision::Act(0))
        );
    }

    #[test]
    fn recovery_rank_is_skipped() {
        let d = dev();
        let q = queue_of(&d, &[req(0, B0, 9, 0)]);
        let streak = vec![0u32; d.geometry().total_banks()];
        assert_eq!(pick(&q, &d, 0, 4, &streak, &|_| false), None);
    }

    #[test]
    fn blocked_timing_yields_none() {
        let mut d = dev();
        d.issue(&Command::Act { bank: B0, row: 5 }, 0);
        // Row 5 open, but tRCD not yet elapsed and row 9 cannot PRE before
        // tRAS: nothing issuable at cycle 1.
        let q = queue_of(&d, &[req(0, B0, 9, 0), req(1, B0, 5, 0)]);
        let streak = vec![0u32; d.geometry().total_banks()];
        assert_eq!(pick(&q, &d, 1, 4, &streak, &|_| true), None);
    }

    #[test]
    fn empty_queue_yields_none() {
        let d = dev();
        let q = RequestQueue::new(*d.geometry());
        let streak = vec![0u32; d.geometry().total_banks()];
        assert_eq!(pick(&q, &d, 0, 4, &streak, &|_| true), None);
    }

    #[test]
    fn demand_event_is_the_exact_first_pick_cycle_and_verdict() {
        let mut d = dev();
        d.issue(&Command::Act { bank: B0, row: 5 }, 0);
        // A hit gated by tRCD and a conflict gated by tRAS: the wake is the
        // earlier of the two, and pick flips from None exactly there.
        let q = queue_of(&d, &[req(0, B0, 9, 0), req(1, B0, 5, 0)]);
        let streak = vec![0u32; d.geometry().total_banks()];
        let (wake, predicted) = next_demand_event(&q, &d, 1, 4, &streak, &|_| true);
        assert_eq!(wake, d.timings().rcd);
        for t in 1..wake {
            assert_eq!(pick(&q, &d, t, 4, &streak, &|_| true), None, "t={t}");
        }
        let at_wake = pick(&q, &d, wake, 4, &streak, &|_| true);
        assert!(at_wake.is_some());
        assert_eq!(at_wake, predicted, "fused scan must predict the verdict");
    }

    /// Applies `decision` the way the controller would, keeping the
    /// hit-streak bookkeeping faithful.
    fn apply_decision(
        decision: Decision,
        q: &mut RequestQueue,
        d: &mut DramDevice,
        streak: &mut [u32],
        now: Cycle,
    ) {
        let geo = *d.geometry();
        match decision {
            Decision::Cas(slot, bypass) => {
                let e = q.remove(slot);
                d.issue(&e.cas_command(), now);
                let flat = e.req.addr.bank.flat(&geo);
                if bypass {
                    streak[flat] += 1;
                } else {
                    streak[flat] = 0;
                }
            }
            Decision::Act(slot) => {
                let addr = q.get(slot).req.addr;
                q.get_mut(slot).caused_act = true;
                d.issue(
                    &Command::Act {
                        bank: addr.bank,
                        row: addr.row,
                    },
                    now,
                );
                streak[addr.bank.flat(&geo)] = 0;
            }
            Decision::Pre(slot) => {
                let bank = q.get(slot).req.addr.bank;
                q.get_mut(slot).caused_pre = true;
                d.issue(&Command::Pre { bank }, now);
                streak[bank.flat(&geo)] = 0;
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        // Drives randomized queue/device states and pins the per-bank
        // `pick` to the flat two-pass `pick_reference` at every step —
        // including the cycle-exactness and predicted verdict of
        // `next_demand_event`.
        #[test]
        fn per_bank_pick_matches_flat_reference(seed: u64, cap in 1u32..6) {
            let mut d = DramDevice::new(DramConfig::tiny());
            let geo = *d.geometry();
            let total = geo.total_banks() as u64;
            let mut q = RequestQueue::new(geo);
            let mut streak = vec![0u32; geo.total_banks()];
            let mut now: Cycle = 0;
            let mut state = seed | 1;
            let mut rng = move |m: u64| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (state >> 33) % m
            };
            // One kind per queue, as the controller guarantees (the
            // per-bank reduction assumes a single CAS timing frontier).
            let kind = if rng(2) == 0 { ReqKind::Read } else { ReqKind::Write };
            for step in 0..160u64 {
                if q.len() < 10 && rng(3) > 0 {
                    let flat = rng(total) as usize;
                    q.push(MemRequest {
                        id: step,
                        kind,
                        addr: DramAddr::new(
                            BankId::from_flat(flat, &geo),
                            rng(6) as u32,
                            rng(4) as u32,
                        ),
                        core: 0,
                        arrived: now,
                    });
                }
                let mask = rng(1 << geo.ranks.min(4));
                let rank_usable = |r: usize| mask & (1 << r) != 0;
                let fast = pick(&q, &d, now, cap, &streak, &rank_usable);
                let reference = pick_reference(&q, &d, now, cap, &streak, &rank_usable);
                prop_assert_eq!(fast, reference, "step {} now {}", step, now);
                match fast {
                    Some(decision) => {
                        apply_decision(decision, &mut q, &mut d, &mut streak, now);
                        now += 1 + rng(3);
                    }
                    None => {
                        // Jump to the predicted wake and require that the
                        // verdict was None on every skipped cycle and that
                        // the predicted decision is the one pick takes.
                        let (wake, predicted) =
                            next_demand_event(&q, &d, now, cap, &streak, &rank_usable);
                        if wake == Cycle::MAX {
                            prop_assert!(predicted.is_none());
                            now += 1 + rng(8);
                        } else {
                            for t in now..wake {
                                prop_assert_eq!(
                                    pick(&q, &d, t, cap, &streak, &rank_usable),
                                    None,
                                    "skipped cycle {} acted", t
                                );
                            }
                            now = wake;
                            let at_wake = pick(&q, &d, now, cap, &streak, &rank_usable);
                            prop_assert!(
                                at_wake.is_some(),
                                "wake cycle {} must act", now
                            );
                            prop_assert_eq!(
                                at_wake, predicted,
                                "wake cycle {} verdict must match prediction", now
                            );
                        }
                    }
                }
            }
        }
    }
}
