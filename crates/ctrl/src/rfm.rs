//! RFM issuing policies and the per-rank back-off state machine.

use chronus_dram::Cycle;
use serde::{Deserialize, Serialize};

/// How the controller reacts to `alert_n` / activation counts (§3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RfmPolicy {
    /// Ignore back-offs entirely (baseline and MC-side mechanisms).
    None,
    /// PRAC back-off: serve `n_ref` RFMs per back-off after a `tABOACT`
    /// window, then require `n_delay` activations before honouring a new
    /// back-off.
    PracBackOff {
        /// RFM commands per recovery period.
        n_ref: u32,
        /// Activations required before a new back-off is honoured.
        n_delay: u32,
    },
    /// Chronus back-off (§7.2): keep issuing RFMs while the device holds
    /// `alert_n` asserted; no delay period.
    ChronusBackOff,
}

impl RfmPolicy {
    /// True if this policy reacts to the alert pin.
    pub fn honours_alert(&self) -> bool {
        !matches!(self, RfmPolicy::None)
    }
}

/// Back-off progress of one rank.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackOffState {
    /// No back-off in progress.
    Normal,
    /// Alert received; normal traffic continues until `deadline`.
    Window {
        /// Cycle at which recovery must begin.
        deadline: Cycle,
    },
    /// Issuing recovery RFMs; `remaining` left (PRAC) or until the device
    /// de-asserts (Chronus, where `remaining` is ignored).
    Recovery {
        /// RFMs still owed in this recovery period.
        remaining: u32,
    },
    /// PRAC delay period: `acts_left` activations before new back-offs are
    /// honoured.
    Delay {
        /// Activations still to serve.
        acts_left: u32,
    },
}

/// Per-rank back-off bookkeeping driven by the controller.
#[derive(Debug, Clone)]
pub struct BackOffFsm {
    policy: RfmPolicy,
    /// Current state.
    pub state: BackOffState,
    /// Total back-offs honoured (for reports).
    pub back_offs: u64,
    /// Total recovery RFMs issued.
    pub recovery_rfms: u64,
}

impl BackOffFsm {
    /// A fresh FSM for `policy`.
    pub fn new(policy: RfmPolicy) -> Self {
        Self {
            policy,
            state: BackOffState::Normal,
            back_offs: 0,
            recovery_rfms: 0,
        }
    }

    /// The policy this FSM enforces.
    pub fn policy(&self) -> RfmPolicy {
        self.policy
    }

    /// Reacts to a visible alert. Returns `true` if the alert was honoured
    /// (caller should clear the device latch).
    pub fn on_alert(&mut self, now: Cycle, taboact: Cycle) -> bool {
        if !self.policy.honours_alert() {
            return false;
        }
        match self.state {
            BackOffState::Normal => {
                self.state = BackOffState::Window {
                    deadline: now + taboact,
                };
                self.back_offs += 1;
                true
            }
            // During window/recovery/delay new assertions are masked
            // (PRAC's delay period; Chronus handles continuation through
            // `alert_still_needed`).
            _ => false,
        }
    }

    /// True if the rank is in its recovery period (only PREab/RFMab may be
    /// issued to it).
    pub fn in_recovery(&self) -> bool {
        matches!(self.state, BackOffState::Recovery { .. })
    }

    /// Advances `Window → Recovery` when the deadline passes. Returns
    /// `true` on the transition (a wake-relevant change).
    pub fn tick(&mut self, now: Cycle) -> bool {
        if let BackOffState::Window { deadline } = self.state {
            if now >= deadline {
                let remaining = match self.policy {
                    RfmPolicy::PracBackOff { n_ref, .. } => n_ref,
                    RfmPolicy::ChronusBackOff => 1,
                    RfmPolicy::None => 0,
                };
                self.state = BackOffState::Recovery { remaining };
                return true;
            }
        }
        false
    }

    /// Records a recovery RFM. `still_needed` is the device's report of
    /// whether rows above the threshold remain (Chronus). Returns `true`
    /// when the recovery period has finished.
    pub fn on_recovery_rfm(&mut self, still_needed: bool) -> bool {
        self.recovery_rfms += 1;
        let BackOffState::Recovery { remaining } = self.state else {
            debug_assert!(false, "recovery RFM outside recovery");
            return true;
        };
        match self.policy {
            RfmPolicy::PracBackOff { n_delay, .. } => {
                if remaining > 1 {
                    self.state = BackOffState::Recovery {
                        remaining: remaining - 1,
                    };
                    false
                } else {
                    self.state = if n_delay > 0 {
                        BackOffState::Delay { acts_left: n_delay }
                    } else {
                        BackOffState::Normal
                    };
                    true
                }
            }
            RfmPolicy::ChronusBackOff => {
                if still_needed {
                    self.state = BackOffState::Recovery { remaining: 1 };
                    false
                } else {
                    self.state = BackOffState::Normal;
                    true
                }
            }
            RfmPolicy::None => true,
        }
    }

    /// Records a normal activation to the rank (advances the delay period).
    /// Returns `true` if the delay period just ended (caller should clear
    /// any stale alert latch).
    pub fn on_activate(&mut self) -> bool {
        if let BackOffState::Delay { acts_left } = self.state {
            if acts_left <= 1 {
                self.state = BackOffState::Normal;
                return true;
            }
            self.state = BackOffState::Delay {
                acts_left: acts_left - 1,
            };
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prac_backoff_full_cycle() {
        let mut fsm = BackOffFsm::new(RfmPolicy::PracBackOff {
            n_ref: 2,
            n_delay: 2,
        });
        assert!(fsm.on_alert(100, 288));
        assert_eq!(fsm.state, BackOffState::Window { deadline: 388 });
        // Further alerts are masked.
        assert!(!fsm.on_alert(150, 288));
        fsm.tick(388);
        assert!(fsm.in_recovery());
        assert!(!fsm.on_recovery_rfm(false));
        assert!(fsm.on_recovery_rfm(false));
        assert_eq!(fsm.state, BackOffState::Delay { acts_left: 2 });
        assert!(!fsm.on_alert(500, 288)); // masked during delay
        assert!(!fsm.on_activate());
        assert!(fsm.on_activate()); // delay over
        assert_eq!(fsm.state, BackOffState::Normal);
        assert!(fsm.on_alert(600, 288));
        assert_eq!(fsm.back_offs, 2);
    }

    #[test]
    fn chronus_backoff_continues_until_deasserted() {
        let mut fsm = BackOffFsm::new(RfmPolicy::ChronusBackOff);
        assert!(fsm.on_alert(0, 288));
        fsm.tick(288);
        assert!(fsm.in_recovery());
        // Device still has hot rows: keep going.
        assert!(!fsm.on_recovery_rfm(true));
        assert!(fsm.in_recovery());
        assert!(!fsm.on_recovery_rfm(true));
        assert!(fsm.on_recovery_rfm(false));
        assert_eq!(fsm.state, BackOffState::Normal);
        assert_eq!(fsm.recovery_rfms, 3);
        // No delay period: an immediate new alert is honoured.
        assert!(fsm.on_alert(2000, 288));
    }

    #[test]
    fn none_policy_ignores_alerts() {
        let mut fsm = BackOffFsm::new(RfmPolicy::None);
        assert!(!fsm.on_alert(0, 288));
        assert_eq!(fsm.state, BackOffState::Normal);
    }

    #[test]
    fn window_does_not_advance_before_deadline() {
        let mut fsm = BackOffFsm::new(RfmPolicy::PracBackOff {
            n_ref: 1,
            n_delay: 1,
        });
        fsm.on_alert(0, 288);
        fsm.tick(287);
        assert!(!fsm.in_recovery());
        fsm.tick(288);
        assert!(fsm.in_recovery());
    }
}
