//! Cache-key property tests: identical resolved configurations collide;
//! any change to a field that can alter the simulation changes the key.

use chronus_core::MechanismKind;
use chronus_ctrl::AddressMapping;
use chronus_dram::TimingMode;
use chronus_grid::{cell_hash, AppTrace, CellSpec, WorkloadSpec};
use chronus_sim::SimConfig;
use proptest::prelude::*;

const MECHS: [MechanismKind; 12] = [
    MechanismKind::None,
    MechanismKind::Prfm,
    MechanismKind::Prac1,
    MechanismKind::Prac2,
    MechanismKind::Prac4,
    MechanismKind::PracPrfm,
    MechanismKind::Chronus,
    MechanismKind::ChronusPb,
    MechanismKind::Graphene,
    MechanismKind::Hydra,
    MechanismKind::Para,
    MechanismKind::Abacus,
];

fn cell(mech_idx: usize, nrh: u32, instructions: u64, seed: u64) -> CellSpec {
    let mut cfg = SimConfig::four_core();
    cfg.mechanism = MECHS[mech_idx % MECHS.len()];
    cfg.nrh = nrh;
    cfg.instructions_per_core = instructions;
    cfg.seed = seed;
    let workload = WorkloadSpec::Apps {
        apps: (0..4)
            .map(|i| AppTrace::new("470.lbm", i, seed ^ (i << 8)))
            .collect(),
        trace_instructions: instructions + instructions / 10,
    };
    CellSpec::new("prop", workload, cfg)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn identical_configs_collide(
        mech in 0usize..12,
        nrh in 16u32..2048,
        instructions in 1_000u64..1_000_000,
        seed in 0u64..1_000_000,
    ) {
        let a = cell(mech, nrh, instructions, seed);
        let b = cell(mech, nrh, instructions, seed);
        prop_assert_eq!(cell_hash(&a), cell_hash(&b));
    }

    #[test]
    fn each_field_changes_the_key(
        mech in 0usize..12,
        nrh in 16u32..2048,
        instructions in 1_000u64..1_000_000,
        seed in 0u64..1_000_000,
    ) {
        let base = cell(mech, nrh, instructions, seed);
        let h = cell_hash(&base);

        // Mechanism.
        let other = cell(mech + 1, nrh, instructions, seed);
        prop_assert_ne!(&h, &cell_hash(&other));

        // RowHammer threshold.
        let other = cell(mech, nrh + 1, instructions, seed);
        prop_assert_ne!(&h, &cell_hash(&other));

        // Instruction budget (also perturbs the generated trace length).
        let other = cell(mech, nrh, instructions + 1, seed);
        prop_assert_ne!(&h, &cell_hash(&other));

        // Seed (flows into config and workload identity).
        let other = cell(mech, nrh, instructions, seed + 1);
        prop_assert_ne!(&h, &cell_hash(&other));
    }

    #[test]
    fn config_overrides_change_the_key(
        mech in 0usize..12,
        nrh in 16u32..2048,
    ) {
        let base = cell(mech, nrh, 10_000, 7);
        let h = cell_hash(&base);

        let mut c = base.clone();
        c.config.threshold_override = Some(4);
        prop_assert_ne!(&h, &cell_hash(&c));

        let mut c = base.clone();
        c.config.mapping = Some(AddressMapping::AbacusMop);
        prop_assert_ne!(&h, &cell_hash(&c));

        let mut c = base.clone();
        c.config.timing_override = Some(TimingMode::PracBuggy);
        prop_assert_ne!(&h, &cell_hash(&c));

        let mut c = base.clone();
        c.config.oracle = true;
        prop_assert_ne!(&h, &cell_hash(&c));

        let mut c = base.clone();
        c.config.max_mem_cycles += 1;
        prop_assert_ne!(&h, &cell_hash(&c));
    }

    #[test]
    fn workload_identity_changes_the_key(
        nrh in 16u32..2048,
        slot in 0u64..64,
    ) {
        let base = cell(0, nrh, 10_000, 7);
        let h = cell_hash(&base);

        // A different app profile.
        let mut c = base.clone();
        if let WorkloadSpec::Apps { apps, .. } = &mut c.workload {
            apps[0].app = "429.mcf".into();
        }
        prop_assert_ne!(&h, &cell_hash(&c));

        // A different placement slot.
        let mut c = base.clone();
        if let WorkloadSpec::Apps { apps, .. } = &mut c.workload {
            apps[0].slot = slot + 100;
        }
        prop_assert_ne!(&h, &cell_hash(&c));

        // A different trace length.
        let mut c = base.clone();
        if let WorkloadSpec::Apps { trace_instructions, .. } = &mut c.workload {
            *trace_instructions += 1;
        }
        prop_assert_ne!(&h, &cell_hash(&c));
    }
}
