//! Regression tests for failure-manifest healing:
//!
//! * a clean **sharded** rerun clears the failures it healed — previously
//!   only a full (1/1) run ever cleared the manifest;
//! * `merge` heals a manifest whose recorded failures all verify in the
//!   store (and leaves one that does not);
//! * a corrupt manifest is reported (not silently swallowed as "no
//!   failures") and `fsck` quarantines it.

use std::path::PathBuf;

use chronus_core::MechanismKind;
use chronus_grid::{
    merge, run_grid, AppTrace, CellFailure, CellSpec, ExecOpts, FailureKind, FailureManifest,
    FaultPlan, GridSpec, ManifestState, ResultStore, RetryPolicy, Shard, WorkloadSpec,
};
use chronus_sim::SimConfig;

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("chronus-grid-man-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn sample_grid() -> GridSpec {
    let mut spec = GridSpec::new("man-sample");
    for (slot, app) in ["511.povray", "429.mcf"].iter().enumerate() {
        for nrh in [1024u32, 32] {
            let mut cfg = SimConfig::single_core();
            cfg.instructions_per_core = 2_000;
            cfg.mechanism = MechanismKind::Chronus;
            cfg.nrh = nrh;
            cfg.seed = 42;
            cfg.max_mem_cycles = 1 << 22;
            let workload = WorkloadSpec::Apps {
                apps: vec![AppTrace::new(*app, slot as u64, 42 ^ ((slot as u64) << 8))],
                trace_instructions: 2_400,
            };
            spec.push(CellSpec::new(format!("{app}@{nrh}"), workload, cfg));
        }
    }
    spec
}

fn opts(shard: Shard) -> ExecOpts {
    ExecOpts {
        threads: 2,
        shard,
        progress: false,
        ..ExecOpts::default()
    }
}

#[test]
fn clean_sharded_rerun_clears_the_failures_it_healed() {
    let spec = sample_grid();
    let dir = scratch("shard-heal");
    let store = ResultStore::open(&dir).unwrap();

    // Shard 1/2 under unhealable panics: its cells fail permanently and
    // land in the failure manifest.
    let plan = FaultPlan::parse("panic:1.0,seed:5,attempts:99").unwrap();
    let broken = ExecOpts {
        retry: RetryPolicy {
            base_ms: 1,
            cap_ms: 4,
            ..RetryPolicy::with_retries(1)
        },
        faults: Some(plan.injector()),
        ..opts("1/2".parse().unwrap())
    };
    let out = run_grid(&spec, Some(&store), &broken);
    assert!(out.is_degraded());
    let manifest = store
        .load_manifest("man-sample")
        .expect("failures recorded");
    assert_eq!(manifest.failures.len(), 2, "shard 1/2 owns two cells");

    // A clean rerun of the SAME shard — still not a full (1/1) run — must
    // heal the manifest: every recorded failure now verifies in the store.
    let healed = run_grid(&spec, Some(&store), &opts("1/2".parse().unwrap()));
    assert!(!healed.is_degraded());
    assert_eq!(healed.stats.simulated, 2);
    assert!(
        store.load_manifest("man-sample").is_none(),
        "clean sharded rerun must clear the failures it healed"
    );

    // The other shard completes the grid.
    let two = run_grid(&spec, Some(&store), &opts("2/2".parse().unwrap()));
    assert!(!two.is_degraded());
    assert!(merge(&spec, &store).is_ok());

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn merge_heals_a_manifest_whose_failures_now_verify() {
    let spec = sample_grid();
    let dir = scratch("merge-heal");
    let store = ResultStore::open(&dir).unwrap();
    let out = run_grid(&spec, Some(&store), &opts(Shard::full()));
    assert!(out.is_complete());
    let hashes = spec.hashes();

    let failure = |hash: &str| CellFailure {
        index: 1,
        label: "stale-record".into(),
        hash: hash.to_string(),
        kind: FailureKind::Panic,
        attempts: 3,
        error: "panic from an earlier degraded run".into(),
    };

    // A stale manifest whose failed cell has since been re-simulated:
    // merge heals it away.
    store
        .save_manifest(&FailureManifest {
            grid: "man-sample".into(),
            shard: "1/1".into(),
            failures: vec![failure(&hashes[1])],
        })
        .unwrap();
    assert!(merge(&spec, &store).is_ok());
    assert!(
        store.load_manifest("man-sample").is_none(),
        "merge must heal a manifest whose failures all verify"
    );

    // A manifest recording a failure that does NOT verify stays put.
    store
        .save_manifest(&FailureManifest {
            grid: "man-sample".into(),
            shard: "1/1".into(),
            failures: vec![failure("00000000000000000000000000000000")],
        })
        .unwrap();
    assert!(merge(&spec, &store).is_ok());
    assert!(
        store.load_manifest("man-sample").is_some(),
        "an unhealed failure must survive merge"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_manifest_is_reported_and_quarantined() {
    let dir = scratch("corrupt");
    let store = ResultStore::open(&dir).unwrap();
    std::fs::create_dir_all(dir.join("failures")).unwrap();
    std::fs::write(dir.join("failures/man-sample.json"), b"]] not json").unwrap();

    // The corrupt manifest is surfaced as Bad, not swallowed as "none".
    assert!(matches!(
        store.manifest_state("man-sample"),
        ManifestState::Bad(_)
    ));
    // load_manifest still behaves as absent (callers can't use garbage)…
    assert!(store.load_manifest("man-sample").is_none());
    assert!(dir.join("failures/man-sample.json").exists());

    // …and fsck quarantines it so the history is preserved for forensics.
    let report = store.fsck().unwrap();
    assert_eq!(report.quarantined_manifests.len(), 1);
    assert!(!report.is_clean());
    assert!(!dir.join("failures/man-sample.json").exists());
    assert!(dir.join("quarantine/failures/man-sample.json").exists());
    assert!(matches!(
        store.manifest_state("man-sample"),
        ManifestState::Missing
    ));

    let _ = std::fs::remove_dir_all(&dir);
}
