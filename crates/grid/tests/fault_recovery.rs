//! Fault-tolerance acceptance tests: for every fault class (panic, stall/
//! timeout, injected I/O error) the grid run COMPLETES, records the
//! permanently failed cells in the failure manifest, and a later clean run
//! heals — re-simulating exactly the failed cells and clearing the
//! manifest.

use std::path::PathBuf;
use std::time::Duration;

use chronus_core::MechanismKind;
use chronus_grid::{
    run_grid, AppTrace, CellSpec, ExecOpts, FailureKind, FaultPlan, GridSpec, ResultStore,
    RetryPolicy, Shard, WorkloadSpec,
};
use chronus_sim::SimConfig;

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("chronus-grid-fr-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A 3-cell single-core grid, cheap enough for sub-second cells.
fn small_grid() -> GridSpec {
    let mut spec = GridSpec::new("fault-recovery");
    for (i, nrh) in [1024u32, 64, 32].iter().enumerate() {
        let mut cfg = SimConfig::single_core();
        cfg.instructions_per_core = 2_000;
        cfg.mechanism = MechanismKind::Chronus;
        cfg.nrh = *nrh;
        cfg.seed = 42;
        cfg.max_mem_cycles = 1 << 22;
        let workload = WorkloadSpec::Apps {
            apps: vec![AppTrace::new("429.mcf", 0, 42 ^ (i as u64))],
            trace_instructions: 2_400,
        };
        spec.push(CellSpec::new(format!("cell-{i}@{nrh}"), workload, cfg));
    }
    spec
}

fn fast_retry(max_retries: u32) -> RetryPolicy {
    RetryPolicy {
        max_retries,
        base_ms: 1,
        cap_ms: 4,
        jitter: 0.25,
    }
}

fn opts(retry: RetryPolicy, faults: Option<FaultPlan>) -> ExecOpts {
    ExecOpts {
        threads: 2,
        shard: Shard::full(),
        progress: false,
        retry,
        cell_timeout: None,
        faults: faults.map(FaultPlan::injector),
    }
}

#[test]
fn gated_panics_heal_within_the_retry_budget() {
    let dir = scratch("gated-panic");
    let store = ResultStore::open(&dir).unwrap();
    let spec = small_grid();
    // Every cell's first attempt panics; attempt 1 is clean.
    let plan = FaultPlan::parse("panic:1.0,attempts:1,seed:3").unwrap();
    let out = run_grid(&spec, Some(&store), &opts(fast_retry(2), Some(plan)));
    assert!(
        out.is_complete(),
        "retries must absorb first-attempt panics"
    );
    assert!(!out.is_degraded());
    assert_eq!(out.stats.simulated, 3);
    assert!(store.load_manifest(&spec.name).is_none());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn permanent_panics_degrade_the_run_and_a_clean_rerun_heals() {
    let dir = scratch("permanent-panic");
    let store = ResultStore::open(&dir).unwrap();
    let spec = small_grid();

    // Unconditional panics: every attempt of every cell fails.
    let plan = FaultPlan::parse("panic:1.0,seed:3").unwrap();
    let out = run_grid(&spec, Some(&store), &opts(fast_retry(1), Some(plan)));
    assert!(!out.is_complete());
    assert!(out.is_degraded());
    assert_eq!(out.stats.failed, 3);
    assert_eq!(out.failures.len(), 3);
    for (i, f) in out.failures.iter().enumerate() {
        assert_eq!(f.index, i);
        assert_eq!(f.kind, FailureKind::Panic);
        assert_eq!(f.attempts, 2, "1 retry = 2 attempts");
        assert!(f.error.contains("injected fault"), "got: {}", f.error);
    }

    // The manifest survives on disk and lists every cell.
    let manifest = store.load_manifest(&spec.name).expect("manifest written");
    assert_eq!(manifest.grid, spec.name);
    assert_eq!(manifest.shard, "1/1");
    assert_eq!(manifest.failures, out.failures);

    // A clean rerun re-simulates exactly the failed cells, completes, and
    // clears the manifest.
    let healed = run_grid(&spec, Some(&store), &opts(fast_retry(1), None));
    assert!(healed.is_complete());
    assert!(!healed.is_degraded());
    assert_eq!(healed.stats.simulated, 3, "all three were missing");
    assert_eq!(healed.stats.cached, 0);
    assert!(
        store.load_manifest(&spec.name).is_none(),
        "clean complete run must clear the manifest"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn stalls_trip_the_watchdog_and_gated_retries_recover() {
    let dir = scratch("stall");
    let store = ResultStore::open(&dir).unwrap();
    let spec = small_grid();
    // First attempt of every cell stalls far beyond the watchdog; the
    // retry is clean. The deadline is generous against a loaded machine
    // (tests run concurrently) while staying well under the stall.
    let plan = FaultPlan::parse("stall:1.0,stall_ms:60000,attempts:1,seed:5").unwrap();
    let exec = ExecOpts {
        cell_timeout: Some(Duration::from_secs(5)),
        ..opts(fast_retry(2), Some(plan))
    };
    let out = run_grid(&spec, Some(&store), &exec);
    assert!(out.is_complete(), "watchdog + retry must recover stalls");
    assert!(!out.is_degraded());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn permanent_stalls_are_reported_as_timeouts() {
    let dir = scratch("stall-permanent");
    let store = ResultStore::open(&dir).unwrap();
    let mut spec = GridSpec::new("fault-recovery-stall");
    // One cell keeps the test cheap: every attempt stalls and times out.
    spec.push(small_grid().cells.remove(0));
    let plan = FaultPlan::parse("stall:1.0,stall_ms:60000,seed:5").unwrap();
    let exec = ExecOpts {
        cell_timeout: Some(Duration::from_millis(100)),
        ..opts(fast_retry(1), Some(plan))
    };
    let out = run_grid(&spec, Some(&store), &exec);
    assert!(out.is_degraded());
    assert_eq!(out.failures.len(), 1);
    assert_eq!(out.failures[0].kind, FailureKind::Timeout);
    assert!(out.failures[0].error.contains("watchdog"));
    let manifest = store.load_manifest(&spec.name).expect("manifest written");
    assert_eq!(manifest.failures[0].kind, FailureKind::Timeout);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn gated_io_faults_on_put_heal_via_write_retries() {
    let dir = scratch("io-gated");
    let spec = small_grid();
    // Every store operation's first call fails; the retry succeeds.
    let plan = FaultPlan::parse("io:1.0,attempts:1,seed:7").unwrap();
    let store = ResultStore::open(&dir)
        .unwrap()
        .with_faults(Some(plan.injector()));
    let out = run_grid(&spec, Some(&store), &opts(fast_retry(2), None));
    assert!(out.is_complete());
    assert!(
        !out.is_degraded(),
        "put retries must absorb gated I/O faults"
    );
    // Every entry really landed on disk.
    let clean = ResultStore::open(&dir).unwrap();
    assert_eq!(clean.list().unwrap().len(), 3);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn permanent_io_faults_surface_as_store_write_failures_with_reports() {
    let dir = scratch("io-permanent");
    let spec = small_grid();
    let plan = FaultPlan::parse("io:1.0,seed:7").unwrap();
    let store = ResultStore::open(&dir)
        .unwrap()
        .with_faults(Some(plan.injector()));
    let out = run_grid(&spec, Some(&store), &opts(fast_retry(1), None));
    // The simulations themselves succeeded: every report is present even
    // though nothing could be persisted.
    assert!(out.is_complete(), "reports survive store-write failures");
    assert!(out.is_degraded());
    assert_eq!(out.stats.failed, 0, "no simulation failed");
    assert_eq!(out.failures.len(), 3);
    for f in &out.failures {
        assert_eq!(f.kind, FailureKind::StoreWrite);
        assert!(f.error.contains("injected I/O fault"), "got: {}", f.error);
    }
    let _ = std::fs::remove_dir_all(&dir);
}
