//! Acceptance tests for the `doctor` recovery pass: a store wrecked by a
//! crashed executor (stale lease, orphan temp file, corrupt entry, corrupt
//! manifest, journal claim with no outcome) is fully reconciled, and the
//! next run completes clean. Divergence — a verified entry contradicting
//! its journaled checksum — is the one unhealable state and must be
//! flagged.

use std::path::PathBuf;
use std::time::Duration;

use chronus_core::MechanismKind;
use chronus_grid::{
    run_doctor, run_grid_coordinated, AppTrace, CellSpec, CoordOpts, EventKind, ExecOpts, GridSpec,
    Journal, LeaseInfo, ResultStore, WorkloadSpec,
};
use chronus_sim::SimConfig;

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("chronus-grid-doc-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn sample_grid() -> GridSpec {
    let mut spec = GridSpec::new("doc-sample");
    for (slot, app) in ["511.povray", "429.mcf"].iter().enumerate() {
        for nrh in [1024u32, 32] {
            let mut cfg = SimConfig::single_core();
            cfg.instructions_per_core = 2_000;
            cfg.mechanism = MechanismKind::Chronus;
            cfg.nrh = nrh;
            cfg.seed = 42;
            cfg.max_mem_cycles = 1 << 22;
            let workload = WorkloadSpec::Apps {
                apps: vec![AppTrace::new(*app, slot as u64, 42 ^ ((slot as u64) << 8))],
                trace_instructions: 2_400,
            };
            spec.push(CellSpec::new(format!("{app}@{nrh}"), workload, cfg));
        }
    }
    spec
}

fn opts() -> ExecOpts {
    ExecOpts {
        threads: 2,
        progress: false,
        ..ExecOpts::default()
    }
}

/// Plants an expired lease from a foreign (unverifiable) holder.
fn plant_stale_lease(dir: &std::path::Path, hash: &str) {
    let leases = dir.join("leases");
    std::fs::create_dir_all(&leases).unwrap();
    let info = LeaseInfo {
        holder: "elsewhere-424242-7".into(),
        deadline_ms: 1, // 1970 — expired by any clock
        refreshes: 0,
    };
    std::fs::write(
        leases.join(format!("{hash}.lease")),
        serde_json::to_string(&info).unwrap(),
    )
    .unwrap();
}

#[test]
fn doctor_heals_a_crashed_store_and_the_rerun_completes() {
    let spec = sample_grid();
    let dir = scratch("heal");
    let store = ResultStore::open(&dir).unwrap();

    // A healthy first run populates the store and journal.
    let first = run_grid_coordinated(&spec, Some(&store), &opts(), &CoordOpts::default());
    assert!(first.is_complete() && !first.is_degraded());

    // Fabricate the debris a kill -9 leaves behind.
    let hashes = spec.hashes();
    // 1. A stale lease from a crashed foreign holder.
    plant_stale_lease(&dir, &hashes[0]);
    // 2. An orphan temp file from an interrupted atomic write.
    let orphan_hash = "fadedfacefadedfacefadedfacefaded";
    std::fs::write(dir.join(format!(".{orphan_hash}.12345.tmp")), b"partial").unwrap();
    // 3. A corrupt entry (truncated mid-write; not one of the grid's).
    let corrupt_hash = "deadbeefdeadbeefdeadbeefdeadbeef";
    std::fs::write(dir.join(format!("{corrupt_hash}.json")), b"{\"trunca").unwrap();
    // 4. A corrupt failure manifest.
    std::fs::create_dir_all(dir.join("failures")).unwrap();
    std::fs::write(dir.join("failures/doc-sample.json"), b"not json {").unwrap();
    // 5. A journal Claim with no outcome: a holder that died mid-cell.
    let claimed_hash = "0123456789abcdef0123456789abcdef";
    let crashed = Journal::open(&dir, "elsewhere-424242-7");
    crashed
        .append(EventKind::Claim, "doc-sample", claimed_hash, 1, 0.0, "", "")
        .unwrap();

    let report = run_doctor(&store).expect("doctor pass");
    assert!(report.is_healthy(), "all debris is healable: {report:?}");
    assert_eq!(
        report.reclaimed_leases,
        vec![(hashes[0].clone(), "elsewhere-424242-7".to_string())]
    );
    assert!(report.fsck.reaped_tmp >= 1, "orphan tmp reaped: {report:?}");
    assert_eq!(
        report.fsck.quarantined.len(),
        1,
        "corrupt entry quarantined"
    );
    assert_eq!(
        report.fsck.quarantined_manifests.len(),
        1,
        "corrupt manifest quarantined: {report:?}"
    );
    assert_eq!(report.interrupted, vec![claimed_hash.to_string()]);
    assert!(report.diverged.is_empty());

    // The debris is gone from the store proper.
    assert!(!dir.join(format!("leases/{}.lease", hashes[0])).exists());
    assert!(!dir.join(format!("{corrupt_hash}.json")).exists());
    assert!(!dir.join("failures/doc-sample.json").exists());
    assert!(dir.join(format!("quarantine/{corrupt_hash}.json")).exists());
    assert!(dir.join("quarantine/failures/doc-sample.json").exists());

    // The rerun completes 100% clean from the cache.
    let rerun = run_grid_coordinated(&spec, Some(&store), &opts(), &CoordOpts::default());
    assert!(rerun.is_complete() && !rerun.is_degraded());
    assert_eq!(rerun.stats.cached, 4);
    assert_eq!(rerun.stats.simulated, 0);

    // A second doctor pass finds nothing new to do.
    let again = run_doctor(&store).expect("second doctor pass");
    assert!(again.is_healthy());
    assert!(again.reclaimed_leases.is_empty());
    assert_eq!(again.fsck.quarantined.len(), 0);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn doctor_flags_a_diverged_entry_as_unhealable() {
    let spec = sample_grid();
    let dir = scratch("diverge");
    let store = ResultStore::open(&dir).unwrap();
    let out = run_grid_coordinated(&spec, Some(&store), &opts(), &CoordOpts::default());
    assert!(out.is_complete());

    // Journal a Complete whose checksum contradicts the verified entry —
    // as if the store file were swapped after the fact.
    let hash = &spec.hashes()[0];
    let liar = Journal::open(&dir, "liar-1-1");
    liar.append(
        EventKind::Complete,
        "doc-sample",
        hash,
        1,
        0.01,
        "0000000000000000",
        "",
    )
    .unwrap();

    let report = run_doctor(&store).expect("doctor pass");
    assert!(!report.is_healthy());
    assert_eq!(report.diverged, vec![hash.clone()]);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn executor_reclaims_stale_leases_on_open() {
    let spec = sample_grid();
    let dir = scratch("reclaim");
    std::fs::create_dir_all(&dir).unwrap();

    // A crashed foreign holder left an expired lease on a grid cell.
    let hash = spec.hashes()[0].clone();
    plant_stale_lease(&dir, &hash);

    let store = ResultStore::open(&dir).unwrap();
    let coord = CoordOpts {
        lease_ttl: Some(Duration::from_secs(30)),
        ..CoordOpts::default()
    };
    let out = run_grid_coordinated(&spec, Some(&store), &opts(), &coord);
    assert!(out.is_complete() && !out.is_degraded());
    assert_eq!(out.stats.simulated, 4, "the stale lease must not block");
    assert!(
        !dir.join(format!("leases/{hash}.lease")).exists(),
        "stale lease reclaimed and released"
    );

    let _ = std::fs::remove_dir_all(&dir);
}
