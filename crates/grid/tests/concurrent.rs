//! Acceptance test for cross-process coordination: two executors racing
//! on one store complete the grid with **zero duplicated simulations**
//! (journal-verified) and leave the store byte-identical to a solo run.
//!
//! The two executors run as threads, but each opens its own `ResultStore`
//! and `CoordOpts` holder — exactly the state two separate processes
//! would hold; leases and the journal are the only coordination channel.

use std::path::PathBuf;
use std::sync::Barrier;
use std::time::Duration;

use chronus_core::MechanismKind;
use chronus_grid::{
    run_grid_coordinated, AppTrace, CellSpec, CoordOpts, EventKind, ExecOpts, GridSpec,
    ResultStore, WorkloadSpec,
};
use chronus_sim::SimConfig;

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("chronus-grid-conc-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The same 4-cell grid the shard-merge acceptance tests use.
fn sample_grid() -> GridSpec {
    let mut spec = GridSpec::new("conc-sample");
    for (slot, app) in ["511.povray", "429.mcf"].iter().enumerate() {
        for nrh in [1024u32, 32] {
            let mut cfg = SimConfig::single_core();
            cfg.instructions_per_core = 2_000;
            cfg.mechanism = MechanismKind::Chronus;
            cfg.nrh = nrh;
            cfg.seed = 42;
            cfg.max_mem_cycles = 1 << 22;
            let workload = WorkloadSpec::Apps {
                apps: vec![AppTrace::new(*app, slot as u64, 42 ^ ((slot as u64) << 8))],
                trace_instructions: 2_400,
            };
            spec.push(CellSpec::new(format!("{app}@{nrh}"), workload, cfg));
        }
    }
    spec
}

fn opts() -> ExecOpts {
    ExecOpts {
        threads: 2,
        progress: false,
        ..ExecOpts::default()
    }
}

fn coord(holder: &str) -> CoordOpts {
    CoordOpts {
        holder: Some(holder.to_string()),
        lease_ttl: Some(Duration::from_secs(30)),
        ..CoordOpts::default()
    }
}

#[test]
fn racing_executors_never_duplicate_work() {
    let spec = sample_grid();

    // Solo reference run for byte-identity.
    let dir_solo = scratch("solo");
    let store_solo = ResultStore::open(&dir_solo).unwrap();
    let solo = run_grid_coordinated(&spec, Some(&store_solo), &opts(), &coord("solo-1-1"));
    assert!(solo.is_complete() && !solo.is_degraded());
    assert_eq!(solo.stats.simulated, 4);

    // Two executors racing on one shared store.
    let dir = scratch("race");
    let start = Barrier::new(2);
    let (a, b) = std::thread::scope(|scope| {
        let run = |holder: &'static str| {
            let spec = &spec;
            let dir = &dir;
            let start = &start;
            scope.spawn(move || {
                let store = ResultStore::open(dir).unwrap();
                start.wait();
                run_grid_coordinated(spec, Some(&store), &opts(), &coord(holder))
            })
        };
        let a = run("host-1-a");
        let b = run("host-2-b");
        (a.join().unwrap(), b.join().unwrap())
    });

    // Both executors end with every cell resolved...
    assert!(a.is_complete() && !a.is_degraded(), "{:?}", a.stats);
    assert!(b.is_complete() && !b.is_degraded(), "{:?}", b.stats);
    assert_eq!(a.reports, solo.reports);
    assert_eq!(b.reports, solo.reports);

    // ...and every simulation ran exactly once across the pair: the rest
    // resolved from the cache or by waiting on the other holder's lease.
    assert_eq!(
        a.stats.simulated + b.stats.simulated,
        4,
        "duplicated or lost work: a={:?} b={:?}",
        a.stats,
        b.stats
    );
    for stats in [&a.stats, &b.stats] {
        assert_eq!(
            stats.cached + stats.waited + stats.simulated,
            4,
            "{stats:?}"
        );
        assert_eq!(stats.failed, 0);
    }

    // The journal agrees: exactly one Complete per cell, no more.
    let scan = chronus_grid::journal::read_events(&dir).unwrap();
    assert_eq!(scan.torn_lines, 0);
    let completes: Vec<&str> = scan
        .events
        .iter()
        .filter(|e| e.kind == EventKind::Complete)
        .map(|e| e.hash.as_str())
        .collect();
    assert_eq!(completes.len(), 4, "one Complete per distinct simulation");
    let mut unique = completes.clone();
    unique.sort_unstable();
    unique.dedup();
    assert_eq!(unique.len(), 4, "no hash completed twice");

    // The racing store's entries are byte-identical to the solo run's.
    let store = ResultStore::open(&dir).unwrap();
    let hashes = store_solo.list().unwrap();
    assert_eq!(hashes, store.list().unwrap());
    for h in &hashes {
        let solo_bytes = std::fs::read(store_solo.path_of(h)).unwrap();
        let race_bytes = std::fs::read(store.path_of(h)).unwrap();
        assert_eq!(solo_bytes, race_bytes, "entry {h} differs from solo run");
    }

    // No lease survives a clean finish.
    let leases = std::fs::read_dir(dir.join("leases"))
        .map(|d| d.count())
        .unwrap_or(0);
    assert_eq!(leases, 0, "all leases must be released");

    let _ = std::fs::remove_dir_all(&dir_solo);
    let _ = std::fs::remove_dir_all(&dir);
}
