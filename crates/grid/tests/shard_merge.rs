//! Acceptance tests for the grid engine:
//!
//! * running `--shard 1/2` then `--shard 2/2` and merging is byte-identical
//!   to one unsharded run;
//! * a repeated run completes entirely from the result store with zero
//!   simulations.

use std::path::PathBuf;

use chronus_core::MechanismKind;
use chronus_grid::{
    merge, run_grid, AppTrace, CellSpec, ExecOpts, FaultPlan, GridSpec, ResultStore, RetryPolicy,
    Shard, WorkloadSpec,
};
use chronus_sim::SimConfig;

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("chronus-grid-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A 4-cell grid: 2 apps × 2 N_RH under Chronus, small enough to simulate
/// in well under a second per cell.
fn sample_grid() -> GridSpec {
    let mut spec = GridSpec::new("it-sample");
    for (slot, app) in ["511.povray", "429.mcf"].iter().enumerate() {
        for nrh in [1024u32, 32] {
            let mut cfg = SimConfig::single_core();
            cfg.instructions_per_core = 2_000;
            cfg.mechanism = MechanismKind::Chronus;
            cfg.nrh = nrh;
            cfg.seed = 42;
            cfg.max_mem_cycles = 1 << 22;
            let workload = WorkloadSpec::Apps {
                apps: vec![AppTrace::new(*app, slot as u64, 42 ^ ((slot as u64) << 8))],
                trace_instructions: 2_400,
            };
            spec.push(CellSpec::new(format!("{app}@{nrh}"), workload, cfg));
        }
    }
    spec
}

fn opts(shard: Shard) -> ExecOpts {
    ExecOpts {
        threads: 2,
        shard,
        progress: false,
        ..ExecOpts::default()
    }
}

/// Merged reports rendered exactly as `chronus-sweep merge` writes them.
fn merged_bytes(spec: &GridSpec, store: &ResultStore) -> String {
    let reports = merge(spec, store).expect("grid complete");
    serde_json::to_string_pretty(&reports).unwrap()
}

#[test]
fn sharded_runs_merge_byte_identical_to_unsharded() {
    let spec = sample_grid();

    // Unsharded reference run.
    let dir_a = scratch("unsharded");
    let store_a = ResultStore::open(&dir_a).unwrap();
    let out = run_grid(&spec, Some(&store_a), &opts(Shard::full()));
    assert!(out.is_complete());
    assert_eq!(out.stats.simulated, 4);
    let reference = merged_bytes(&spec, &store_a);

    // Two shards into a second, independent store.
    let dir_b = scratch("sharded");
    let store_b = ResultStore::open(&dir_b).unwrap();
    let one = run_grid(&spec, Some(&store_b), &opts("1/2".parse().unwrap()));
    assert!(
        !one.is_complete(),
        "shard 1/2 must leave cells to shard 2/2"
    );
    assert_eq!(one.stats.simulated + one.stats.skipped, 4);
    let two = run_grid(&spec, Some(&store_b), &opts("2/2".parse().unwrap()));
    assert_eq!(one.stats.simulated + two.stats.simulated, 4);
    assert_eq!(two.stats.cached, one.stats.simulated);

    // Merge after sharding is byte-identical to the unsharded run.
    assert_eq!(merged_bytes(&spec, &store_b), reference);

    // The stores themselves hold byte-identical entries.
    let hashes = store_a.list().unwrap();
    assert_eq!(hashes, store_b.list().unwrap());
    for h in &hashes {
        let a = std::fs::read(store_a.path_of(h)).unwrap();
        let b = std::fs::read(store_b.path_of(h)).unwrap();
        assert_eq!(a, b, "stored entry {h} differs between stores");
    }

    let _ = std::fs::remove_dir_all(&dir_a);
    let _ = std::fs::remove_dir_all(&dir_b);
}

#[test]
fn second_run_is_pure_cache_hits() {
    let spec = sample_grid();
    let dir = scratch("rerun");
    let store = ResultStore::open(&dir).unwrap();

    let first = run_grid(&spec, Some(&store), &opts(Shard::full()));
    assert_eq!(first.stats.simulated, 4);
    assert_eq!(first.stats.cached, 0);

    let second = run_grid(&spec, Some(&store), &opts(Shard::full()));
    assert_eq!(second.stats.simulated, 0, "second run must not simulate");
    assert_eq!(second.stats.cached, 4, "second run must be 100% cache hits");
    assert_eq!(second.reports, first.reports);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn faulted_sharded_run_merges_byte_identical_to_clean_unsharded() {
    let spec = sample_grid();

    // Clean unsharded reference.
    let dir_a = scratch("fault-ref");
    let store_a = ResultStore::open(&dir_a).unwrap();
    let clean = run_grid(&spec, Some(&store_a), &opts(Shard::full()));
    assert!(clean.is_complete() && !clean.is_degraded());
    let reference = merged_bytes(&spec, &store_a);

    // Sharded run under injected panics and I/O faults that retries heal:
    // every site fails its first attempt and succeeds on the retry.
    let dir_b = scratch("fault-sharded");
    let store_b = ResultStore::open(&dir_b).unwrap();
    let plan = FaultPlan::parse("panic:1.0,io:1.0,seed:11,attempts:1").unwrap();
    let faulty = |shard: Shard| ExecOpts {
        retry: RetryPolicy {
            base_ms: 1,
            cap_ms: 4,
            ..RetryPolicy::default()
        },
        faults: Some(plan.clone().injector()),
        ..opts(shard)
    };
    let one = run_grid(
        &spec,
        Some(&store_b.clone().with_faults(Some(plan.clone().injector()))),
        &faulty("1/2".parse().unwrap()),
    );
    assert!(!one.is_degraded(), "gated faults must heal via retries");
    let two = run_grid(
        &spec,
        Some(&store_b.clone().with_faults(Some(plan.clone().injector()))),
        &faulty("2/2".parse().unwrap()),
    );
    assert!(!two.is_degraded());
    assert_eq!(one.stats.simulated + two.stats.simulated, 4);

    // Despite every first attempt failing, the merged output and the raw
    // store entries are byte-identical to the clean run.
    assert_eq!(merged_bytes(&spec, &store_b), reference);
    let hashes = store_a.list().unwrap();
    assert_eq!(hashes, store_b.list().unwrap());
    for h in &hashes {
        let a = std::fs::read(store_a.path_of(h)).unwrap();
        let b = std::fs::read(store_b.path_of(h)).unwrap();
        assert_eq!(a, b, "stored entry {h} differs after faulted sharding");
    }

    let _ = std::fs::remove_dir_all(&dir_a);
    let _ = std::fs::remove_dir_all(&dir_b);
}

#[test]
fn merge_reports_missing_cells() {
    let spec = sample_grid();
    let dir = scratch("missing");
    let store = ResultStore::open(&dir).unwrap();
    run_grid(&spec, Some(&store), &opts("1/2".parse().unwrap()));
    let missing = merge(&spec, &store).expect_err("half the grid is missing");
    assert_eq!(missing, vec![1, 3], "shard 1/2 owns cells 0 and 2");
}
