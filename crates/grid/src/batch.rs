//! Batched Monte-Carlo grid execution.
//!
//! [`run_grid_batched`] is a drop-in alternative to
//! [`run_grid`](crate::exec::run_grid) for sweeps whose cells share a
//! workload: instead of regenerating traces and stepping one `System` per
//! cell, pending cells are grouped by `(workload, geometry)`, the traces
//! are generated **once** per group, and every member steps through
//! [`System::run_batch`] — variants that are timing-identical (differing
//! only in oracle parameters: `nrh` under no mechanism, VRD spec, or an
//! unused seed) collapse into one lockstep simulation judged by a
//! multi-lane oracle.
//!
//! Batching is a pure cache-fill accelerator: every member cell keeps its
//! own unchanged content hash and its own store entry, and the entry bytes
//! are identical to what a solo [`run_grid`] would have written (the store
//! entry is a pure function of `(CellKey, SimReport)` and `run_batch` is
//! bit-identical to solo `run`). A store filled by the batched path is
//! indistinguishable from one filled solo — so the two paths can be mixed
//! freely across runs, shards and machines. Because batched fills are
//! short-lived and single-process per group, this path skips the
//! lease/journal coordination plane; concurrent processes sharing a store
//! at worst duplicate compute, never corrupt (writes stay atomic).

use std::collections::HashMap;
use std::time::Instant;

use chronus_sim::{try_run_parallel, SimConfig, System};

use crate::cell::{CellSpec, WorkloadSpec};
use crate::exec::{update_manifest, CellFailure, ExecOpts, ExecStats, FailureKind, GridOutcome};
use crate::progress::Progress;
use crate::spec::GridSpec;
use crate::store::ResultStore;

/// A Monte-Carlo batch: one shared workload, many simulator configurations
/// (mechanism / `N_RH` / seed / VRD variants). Expands to ordinary
/// [`CellSpec`]s — one per member, each hashed and stored exactly as if it
/// had been declared individually — so a batch changes *how* cells are
/// filled, never *what* they are.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchSpec {
    /// Display-label prefix; member `i` is labelled `<label>#<i>`.
    pub label: String,
    /// The workload every member shares (identical traces).
    pub workload: WorkloadSpec,
    /// One fully resolved configuration per member.
    pub configs: Vec<SimConfig>,
}

impl BatchSpec {
    /// A batch over `workload` with one member per configuration.
    pub fn new(label: impl Into<String>, workload: WorkloadSpec, configs: Vec<SimConfig>) -> Self {
        Self {
            label: label.into(),
            workload,
            configs,
        }
    }

    /// The member cells, in configuration order. Hashes (and therefore
    /// store entries) are identical to declaring each cell by hand.
    pub fn member_cells(&self) -> Vec<CellSpec> {
        self.configs
            .iter()
            .enumerate()
            .map(|(i, cfg)| {
                CellSpec::new(
                    format!("{}#{i}", self.label),
                    self.workload.clone(),
                    cfg.clone(),
                )
            })
            .collect()
    }

    /// Appends every member cell onto `spec`.
    pub fn push_onto(&self, spec: &mut GridSpec) {
        for cell in self.member_cells() {
            spec.push(cell);
        }
    }
}

/// The stable grouping key: cells batch together exactly when their traces
/// are guaranteed identical (same workload spec, same geometry).
fn group_key(cell: &CellSpec) -> String {
    serde_json::to_string(&(&cell.workload, &cell.config.geometry))
        .expect("workload/geometry serialize")
}

/// Executes a grid through the batched lockstep engine: cache pass and
/// shard filter identical to [`run_grid`](crate::exec::run_grid), then the
/// owned misses are grouped by `(workload, geometry)` and each group runs
/// as one [`System::run_batch`] call over once-generated traces. Groups
/// run in parallel across `opts.threads`; a panicking group fails all of
/// its members (recorded per cell in the failure manifest) without
/// aborting the run.
///
/// Per-member store entries are byte-identical to a solo run's, so this is
/// safe to point at any existing store.
pub fn run_grid_batched(
    spec: &GridSpec,
    store: Option<&ResultStore>,
    opts: &ExecOpts,
) -> GridOutcome {
    let started = Instant::now();
    let hashes = spec.hashes();
    let mut reports: Vec<Option<chronus_sim::SimReport>> = vec![None; spec.cells.len()];
    let mut stats = ExecStats {
        total: spec.cells.len(),
        ..ExecStats::default()
    };

    // Cache pass, deduplicated by hash (same as the solo executor).
    let mut by_hash: HashMap<&str, Vec<usize>> = HashMap::new();
    for (i, h) in hashes.iter().enumerate() {
        by_hash.entry(h.as_str()).or_default().push(i);
    }
    let mut pending: Vec<usize> = Vec::new(); // representative indices
    for (hash, indices) in &by_hash {
        match store.and_then(|s| s.get(hash)) {
            Some(report) => {
                stats.cached += indices.len();
                for &i in indices {
                    reports[i] = Some(report.clone());
                }
            }
            None => pending.push(indices[0]),
        }
    }

    // Shard filter: a duplicated hash is owned by the shard owning its
    // first (representative) position.
    pending.sort_unstable();
    let (owned, foreign): (Vec<usize>, Vec<usize>) =
        pending.into_iter().partition(|&i| opts.shard.owns(i));
    for i in &foreign {
        stats.skipped += by_hash[hashes[*i].as_str()].len();
    }

    // Group the owned misses by (workload, geometry): equal keys guarantee
    // identical traces, so one generation serves the whole group. First-
    // seen order over the sorted indices keeps grouping deterministic.
    let mut group_of: HashMap<String, usize> = HashMap::new();
    let mut groups: Vec<Vec<usize>> = Vec::new();
    for &i in &owned {
        let key = group_key(&spec.cells[i]);
        match group_of.get(&key) {
            Some(&g) => groups[g].push(i),
            None => {
                group_of.insert(key, groups.len());
                groups.push(vec![i]);
            }
        }
    }

    let progress = Progress::new(&spec.name, owned.len(), opts.progress);
    let progress_ref = &progress;
    let cells_ref = &spec.cells;
    let groups_ref = &groups;
    let group_ids: Vec<usize> = (0..groups.len()).collect();
    let group_results = try_run_parallel(group_ids, opts.threads, move |g| {
        let members = &groups_ref[g];
        let rep = &cells_ref[members[0]];
        let t0 = Instant::now();
        let traces = rep.workload.traces(&rep.config.geometry);
        let cfgs: Vec<SimConfig> = members
            .iter()
            .map(|&i| cells_ref[i].config.clone())
            .collect();
        let batch = System::run_batch(&cfgs, &traces);
        for &i in members.iter() {
            progress_ref.cell_done(&cells_ref[i].label);
        }
        (batch, t0.elapsed().as_secs_f64())
    });

    // Fan-out, persistence and accounting. A panicked group fails every
    // member; a store-write failure keeps the in-memory report.
    let mut failures: Vec<CellFailure> = Vec::new();
    for (members, result) in groups.iter().zip(group_results) {
        match result {
            Ok((batch, wall)) => {
                let member_wall = wall / members.len() as f64;
                for (slot, &i) in members.iter().enumerate() {
                    let hash = hashes[i].as_str();
                    let report = &batch[slot];
                    if let Some(store) = store {
                        match store.put(hash, &spec.cells[i], report) {
                            Ok(_) => store.record_wall(hash, member_wall),
                            Err(e) => failures.push(CellFailure {
                                index: i,
                                label: spec.cells[i].label.clone(),
                                hash: hash.to_string(),
                                kind: FailureKind::StoreWrite,
                                attempts: 1,
                                error: e.to_string(),
                            }),
                        }
                    }
                    let indices = &by_hash[hash];
                    stats.simulated += indices.len();
                    for &j in indices {
                        reports[j] = Some(report.clone());
                    }
                }
            }
            Err(panic_msg) => {
                for &i in members {
                    let hash = hashes[i].as_str();
                    stats.failed += by_hash[hash].len();
                    failures.push(CellFailure {
                        index: i,
                        label: spec.cells[i].label.clone(),
                        hash: hash.to_string(),
                        kind: FailureKind::Panic,
                        attempts: 1,
                        error: format!("batched group panicked: {panic_msg}"),
                    });
                }
            }
        }
    }
    failures.sort_by_key(|f| f.index);

    if let Some(store) = store {
        update_manifest(
            store,
            spec,
            &opts.shard,
            &failures,
            reports.iter().all(Option::is_some),
        );
    }

    GridOutcome {
        reports,
        stats,
        failures,
        wall_seconds: started.elapsed().as_secs_f64(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::AppTrace;
    use crate::exec::run_grid;
    use chronus_sim::VrdSpec;

    fn batch_grid(name: &str) -> GridSpec {
        let workload = WorkloadSpec::Apps {
            apps: vec![AppTrace::new("429.mcf", 0, 42)],
            trace_instructions: 3_000,
        };
        let mut configs = Vec::new();
        for (nrh, vrd_seed) in [(1024u32, 1u64), (1024, 2), (512, 1), (256, 3)] {
            let mut cfg = SimConfig::single_core();
            cfg.instructions_per_core = 2_000;
            cfg.nrh = nrh;
            cfg.oracle = true;
            cfg.vrd = Some(VrdSpec {
                min_pct: 50,
                seed: vrd_seed,
            });
            configs.push(cfg);
        }
        let mut spec = GridSpec::new(name);
        BatchSpec::new("mc", workload, configs).push_onto(&mut spec);
        spec
    }

    fn scratch(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("chronus-grid-batch-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    /// Lists `(file name, bytes)` of the store's top-level entries — the
    /// authoritative byte-identity surface (sidecars and journals are not
    /// part of it).
    fn entry_bytes(dir: &std::path::Path) -> Vec<(String, Vec<u8>)> {
        let mut out: Vec<(String, Vec<u8>)> = std::fs::read_dir(dir)
            .unwrap()
            .filter_map(|e| {
                let e = e.unwrap();
                let name = e.file_name().into_string().unwrap();
                if e.file_type().unwrap().is_file() && name.ends_with(".json") {
                    Some((name, std::fs::read(e.path()).unwrap()))
                } else {
                    None
                }
            })
            .collect();
        out.sort();
        out
    }

    #[test]
    fn batched_fill_is_byte_identical_to_solo() {
        let solo_dir = scratch("solo");
        let batch_dir = scratch("batched");
        let opts = ExecOpts {
            threads: 2,
            progress: false,
            ..ExecOpts::default()
        };

        let spec = batch_grid("byte-identity");
        let solo_store = ResultStore::open(&solo_dir).unwrap();
        let solo = run_grid(&spec, Some(&solo_store), &opts);
        let batch_store = ResultStore::open(&batch_dir).unwrap();
        let batched = run_grid_batched(&spec, Some(&batch_store), &opts);

        assert!(solo.is_complete() && batched.is_complete());
        assert_eq!(batched.stats.simulated, 4);
        let solo_entries = entry_bytes(&solo_dir);
        let batch_entries = entry_bytes(&batch_dir);
        assert_eq!(solo_entries.len(), 4);
        assert_eq!(
            solo_entries, batch_entries,
            "batched store entries must be byte-identical to solo"
        );

        // Reports come back in spec order and match the solo run exactly.
        for (a, b) in solo.reports.iter().zip(&batched.reports) {
            assert_eq!(a, b);
        }
        let _ = std::fs::remove_dir_all(&solo_dir);
        let _ = std::fs::remove_dir_all(&batch_dir);
    }

    #[test]
    fn second_batched_pass_is_fully_cached() {
        let dir = scratch("cached");
        let opts = ExecOpts {
            threads: 2,
            progress: false,
            ..ExecOpts::default()
        };
        let spec = batch_grid("cached");
        let store = ResultStore::open(&dir).unwrap();
        let first = run_grid_batched(&spec, Some(&store), &opts);
        assert_eq!(first.stats.simulated, 4);
        let second = run_grid_batched(&spec, Some(&store), &opts);
        assert_eq!(second.stats.cached, 4);
        assert_eq!(second.stats.simulated, 0);
        assert_eq!(second.reports, first.reports);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn mixed_workloads_split_into_groups() {
        // Two different workloads in one grid: the batched path must still
        // complete every cell (two groups, traces generated once each).
        let mut spec = batch_grid("mixed");
        let other = WorkloadSpec::Apps {
            apps: vec![AppTrace::new("511.povray", 0, 7)],
            trace_instructions: 3_000,
        };
        let mut cfg = SimConfig::single_core();
        cfg.instructions_per_core = 2_000;
        spec.push(CellSpec::new("povray", other, cfg));

        let opts = ExecOpts {
            threads: 2,
            progress: false,
            ..ExecOpts::default()
        };
        let out = run_grid_batched(&spec, None, &opts);
        assert!(out.is_complete());
        assert_eq!(out.stats.simulated, 5);
    }

    #[test]
    fn member_cells_match_hand_declared_cells() {
        let spec = batch_grid("hashes");
        let workload = WorkloadSpec::Apps {
            apps: vec![AppTrace::new("429.mcf", 0, 42)],
            trace_instructions: 3_000,
        };
        let mut cfg = SimConfig::single_core();
        cfg.instructions_per_core = 2_000;
        cfg.nrh = 1024;
        cfg.oracle = true;
        cfg.vrd = Some(VrdSpec {
            min_pct: 50,
            seed: 1,
        });
        let hand = CellSpec::new("whatever", workload, cfg);
        // Labels are not part of the hash, so member 0 hashes identically
        // to the hand-declared equivalent.
        assert_eq!(spec.hashes()[0], crate::hash::cell_hash(&hand));
    }
}
