//! The `doctor` recovery pass: reconcile journal against store contents.
//!
//! After a crash (`kill -9` mid-grid, power loss, a wedged NFS client)
//! the store can hold abandoned leases, orphan temp files, corrupt
//! entries/manifests, and journal claims with no outcome. `doctor` heals
//! everything that is healable, under the advisory store lock:
//!
//! 1. **stale leases** are reclaimed (deadline passed, holder dead on this
//!    host, or unparsable) and journaled as failures;
//! 2. **orphan temp files**, **corrupt entries** and **corrupt failure
//!    manifests** go through the `fsck` machinery (reap + quarantine) —
//!    cells protected by a live lease are left alone;
//! 3. the **journal is replayed** against the store: a `Claim` whose
//!    holder produced no outcome and holds no live lease is reported as
//!    *interrupted* (the next run re-simulates it); a `Complete` whose
//!    entry has vanished without a `Gc`/`Quarantine` record is reported as
//!    *missing* (likewise re-simulated); a verified entry whose checksum
//!    disagrees with its last journaled `Complete` is ***diverged*** — the
//!    one condition `doctor` cannot heal (the entry verifies, so no rerun
//!    will replace it) and the reason [`DoctorReport::is_healthy`] goes
//!    false and `chronus-sweep doctor` exits 3.
//!
//! Interrupted and missing cells are healthy-by-rerun: store entries are
//! byte-deterministic, so re-simulation reproduces exactly what was lost.

use std::collections::HashMap;
use std::io;
use std::sync::Arc;

use crate::journal::{self, EventKind, Journal, JournalEvent};
use crate::lease::{self, LeaseManager};
use crate::store::{FsckReport, ResultStore};

/// What one [`run_doctor`] pass found and did.
#[derive(Debug, Default)]
pub struct DoctorReport {
    /// `(hash, holder)` of every stale lease reclaimed.
    pub reclaimed_leases: Vec<(String, String)>,
    /// The embedded fsck pass (quarantines, reaped temp files/sidecars).
    pub fsck: FsckReport,
    /// Hashes claimed in the journal with no outcome, no live lease, and
    /// no verified entry — a crashed holder's in-flight work. Healed by
    /// the next run (it re-simulates them).
    pub interrupted: Vec<String>,
    /// Hashes journaled as `Complete` whose entry has since vanished
    /// without a `Gc`/`Quarantine` record. Healed by the next run.
    pub missing_completed: Vec<String>,
    /// Hashes whose *verified* entry checksum disagrees with the last
    /// journaled `Complete` — unhealable (no rerun will replace a
    /// verifying entry); investigate by hand.
    pub diverged: Vec<String>,
    /// Unparsable journal lines skipped (torn by a crash mid-append).
    pub torn_journal_lines: usize,
    /// Journal events replayed.
    pub journal_events: usize,
}

impl DoctorReport {
    /// Whether the store is fully reconciled: everything remaining either
    /// matches the journal or heals on the next run. Only divergence —
    /// a verified entry contradicting its journaled checksum — is
    /// unhealable.
    pub fn is_healthy(&self) -> bool {
        self.diverged.is_empty()
    }

    /// One machine-greppable line.
    pub fn summary(&self) -> String {
        format!(
            "reclaimed_leases={} quarantined={} quarantined_manifests={} reaped_tmp={} \
             interrupted={} missing_completed={} diverged={} torn_journal={} events={}",
            self.reclaimed_leases.len(),
            self.fsck.quarantined.len(),
            self.fsck.quarantined_manifests.len(),
            self.fsck.reaped_tmp,
            self.interrupted.len(),
            self.missing_completed.len(),
            self.diverged.len(),
            self.torn_journal_lines,
            self.journal_events
        )
    }
}

/// Runs the full recovery pass on `store` (see the module docs), holding
/// the advisory store lock throughout.
///
/// # Errors
///
/// Propagates lock acquisition, lease-sweep, fsck, and journal-read I/O
/// failures.
pub fn run_doctor(store: &ResultStore) -> io::Result<DoctorReport> {
    let holder = format!("{}-doctor", lease::unique_holder());
    let journal = match store.journal() {
        Some(journal) => Arc::clone(journal),
        None => Arc::new(Journal::open(store.dir(), holder.clone())),
    };
    let store = store.clone().with_journal(Arc::clone(&journal));
    let _lock = store.lock()?;
    let mut report = DoctorReport::default();

    // 1. Reclaim leases abandoned by crashed holders.
    let leases = LeaseManager::open(store.dir(), holder)?;
    report.reclaimed_leases = leases.reclaim_stale()?;
    for (hash, lost_holder) in &report.reclaimed_leases {
        journal.record(
            EventKind::Fail,
            "-",
            hash,
            0,
            0.0,
            "",
            &format!("doctor: reclaimed stale lease from {lost_holder}"),
        );
    }

    // 2. Reap orphan temp files, quarantine corrupt entries and manifests
    // (the quarantines are journaled, so step 3 sees them).
    report.fsck = store.fsck_inner()?;

    // 3. Replay the journal against the store.
    let scan = journal::read_events(store.dir())?;
    report.torn_journal_lines = scan.torn_lines;
    report.journal_events = scan.events.len();
    let live = lease::live_hashes(store.dir());

    let mut per_hash: HashMap<&str, Vec<&JournalEvent>> = HashMap::new();
    for event in &scan.events {
        if is_hash(&event.hash) {
            per_hash.entry(event.hash.as_str()).or_default().push(event);
        }
    }
    for (hash, events) in &per_hash {
        // Expectation: the last journaled Complete stands unless a later
        // Gc/Quarantine/Demote voided it.
        let mut expected: Option<&str> = None;
        for event in events {
            match event.kind {
                EventKind::Complete => expected = Some(event.checksum.as_str()),
                EventKind::Gc | EventKind::Quarantine | EventKind::Demote => expected = None,
                EventKind::Claim | EventKind::Fail => {}
            }
        }
        let digest = store.verified_digest(hash);
        if let Some(checksum) = expected {
            match &digest {
                Some(found) if found == checksum => {}
                Some(_) => report.diverged.push((*hash).to_string()),
                None => report.missing_completed.push((*hash).to_string()),
            }
        }
        // Open claims: a holder whose last word on this cell was Claim.
        let mut last_by_holder: HashMap<&str, EventKind> = HashMap::new();
        for event in events {
            if matches!(
                event.kind,
                EventKind::Claim | EventKind::Complete | EventKind::Fail
            ) {
                last_by_holder.insert(event.holder.as_str(), event.kind);
            }
        }
        let open = last_by_holder.values().any(|k| *k == EventKind::Claim);
        if open && !live.contains(*hash) && digest.is_none() {
            report.interrupted.push((*hash).to_string());
        }
    }
    report.interrupted.sort();
    report.missing_completed.sort();
    report.diverged.sort();
    Ok(report)
}

/// Whether `s` looks like a store hash (32 hex chars) — journal events
/// about manifests and other non-cell targets are skipped in replay.
fn is_hash(s: &str) -> bool {
    s.len() == 32 && s.bytes().all(|b| b.is_ascii_hexdigit())
}
