//! The grid executor: cache lookup, shard filtering, parallel simulation,
//! store write-back, and the order-preserving merge.

use std::collections::HashMap;
use std::time::Instant;

use chronus_sim::{run_parallel, SimReport, System};

use crate::cell::CellSpec;
use crate::progress::Progress;
use crate::shard::Shard;
use crate::spec::GridSpec;
use crate::store::ResultStore;

/// Execution options.
#[derive(Debug, Clone)]
pub struct ExecOpts {
    /// Worker threads for cell simulation.
    pub threads: usize,
    /// The shard this process owns (default: the full grid).
    pub shard: Shard,
    /// Progress/ETA lines on stderr.
    pub progress: bool,
}

impl Default for ExecOpts {
    fn default() -> Self {
        Self {
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(8),
            shard: Shard::full(),
            progress: true,
        }
    }
}

/// What one [`run_grid`] call did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Cells in the spec.
    pub total: usize,
    /// Cells satisfied from the result store.
    pub cached: usize,
    /// Cells simulated by this process.
    pub simulated: usize,
    /// Cells owned by other shards and not yet in the store.
    pub skipped: usize,
}

impl ExecStats {
    /// `cells=N cached=C simulated=S skipped=K` — the machine-readable form
    /// the CI smoke job greps.
    pub fn summary(&self) -> String {
        format!(
            "cells={} cached={} simulated={} skipped={}",
            self.total, self.cached, self.simulated, self.skipped
        )
    }
}

/// The result of one grid execution.
#[derive(Debug)]
pub struct GridOutcome {
    /// One slot per spec cell, in spec order; `None` means the cell belongs
    /// to another shard and was not in the store.
    pub reports: Vec<Option<SimReport>>,
    /// Cache/shard accounting.
    pub stats: ExecStats,
    /// Wall-clock of the whole call in seconds.
    pub wall_seconds: f64,
}

impl GridOutcome {
    /// Whether every cell has a report.
    pub fn is_complete(&self) -> bool {
        self.reports.iter().all(Option::is_some)
    }
}

/// Simulates one cell (trace regeneration + full system run).
pub fn simulate_cell(cell: &CellSpec) -> SimReport {
    let traces = cell.workload.traces(&cell.config.geometry);
    System::build(&cell.config).run(traces)
}

/// Executes a grid: serves cached cells from `store`, simulates the misses
/// this shard owns (in parallel), and persists every fresh result.
/// `store: None` disables caching entirely — every owned cell re-simulates
/// and nothing touches the filesystem.
///
/// Identical cells (same content hash) appearing at several spec positions
/// are simulated once and fanned out to all positions.
pub fn run_grid(spec: &GridSpec, store: Option<&ResultStore>, opts: &ExecOpts) -> GridOutcome {
    let started = Instant::now();
    let hashes = spec.hashes();
    let mut reports: Vec<Option<SimReport>> = vec![None; spec.cells.len()];
    let mut stats = ExecStats {
        total: spec.cells.len(),
        ..ExecStats::default()
    };

    // Cache pass. Deduplicate lookups so a hash shared by many cells is
    // read once.
    let mut by_hash: HashMap<&str, Vec<usize>> = HashMap::new();
    for (i, h) in hashes.iter().enumerate() {
        by_hash.entry(h.as_str()).or_default().push(i);
    }
    let mut pending: Vec<(&str, usize)> = Vec::new(); // (hash, representative index)
    for (hash, indices) in &by_hash {
        match store.and_then(|s| s.get(hash)) {
            Some(report) => {
                stats.cached += indices.len();
                for &i in indices {
                    reports[i] = Some(report.clone());
                }
            }
            None => pending.push((hash, indices[0])),
        }
    }

    // Shard filter: a duplicated hash is owned by the shard owning its
    // first (representative) position.
    pending.sort_by_key(|&(_, i)| i);
    let (owned, foreign): (Vec<_>, Vec<_>) =
        pending.into_iter().partition(|&(_, i)| opts.shard.owns(i));
    for (_, i) in &foreign {
        stats.skipped += by_hash[hashes[*i].as_str()].len();
    }

    // Simulate the owned misses.
    let progress = Progress::new(&spec.name, owned.len(), opts.progress);
    let progress_ref = &progress;
    let cells_ref = &spec.cells;
    let results: Vec<(usize, SimReport)> = run_parallel(
        owned.iter().map(|&(_, i)| i).collect(),
        opts.threads,
        move |i| {
            let cell = &cells_ref[i];
            let report = simulate_cell(cell);
            progress_ref.cell_done(&cell.label);
            (i, report)
        },
    );
    for (i, report) in results {
        let hash = hashes[i].as_str();
        if let Some(store) = store {
            if let Err(e) = store.put(hash, &spec.cells[i], &report) {
                eprintln!(
                    "chronus-grid: failed to persist cell {hash} to {}: {e}",
                    store.dir().display()
                );
            }
        }
        let indices = &by_hash[hash];
        stats.simulated += indices.len();
        for &j in indices {
            reports[j] = Some(report.clone());
        }
    }

    GridOutcome {
        reports,
        stats,
        wall_seconds: started.elapsed().as_secs_f64(),
    }
}

/// Collects a complete grid from the store alone, in spec order — the merge
/// step after sharded runs. The output depends only on the spec and the
/// store contents, so merging after `--shard 1/2` + `--shard 2/2` is
/// byte-identical to merging after one unsharded run.
///
/// # Errors
///
/// Returns the indices of cells missing from the store.
pub fn merge(spec: &GridSpec, store: &ResultStore) -> Result<Vec<SimReport>, Vec<usize>> {
    let mut out = Vec::with_capacity(spec.cells.len());
    let mut missing = Vec::new();
    for (i, hash) in spec.hashes().iter().enumerate() {
        match store.get(hash) {
            Some(r) => out.push(r),
            None => missing.push(i),
        }
    }
    if missing.is_empty() {
        Ok(out)
    } else {
        Err(missing)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::{AppTrace, WorkloadSpec};
    use chronus_sim::SimConfig;

    fn tiny_spec() -> GridSpec {
        let mut spec = GridSpec::new("exec-test");
        for (i, nrh) in [64u32, 64, 32].iter().enumerate() {
            // Cells 0 and 1 are identical on purpose (dedup path).
            let mut cfg = SimConfig::single_core();
            cfg.instructions_per_core = 1_000;
            cfg.nrh = *nrh;
            cfg.mechanism = chronus_core::MechanismKind::Chronus;
            let w = WorkloadSpec::Apps {
                apps: vec![AppTrace::new("511.povray", 0, 2)],
                trace_instructions: 1_500,
            };
            spec.push(CellSpec::new(format!("c{i}"), w, cfg));
        }
        spec
    }

    fn scratch(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("chronus-grid-exec-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn duplicate_cells_simulate_once() {
        let dir = scratch("dedup");
        let store = ResultStore::open(&dir).unwrap();
        let spec = tiny_spec();
        let opts = ExecOpts {
            threads: 2,
            progress: false,
            ..ExecOpts::default()
        };
        let out = run_grid(&spec, Some(&store), &opts);
        assert!(out.is_complete());
        // 3 slots filled but only 2 distinct simulations persisted.
        assert_eq!(out.stats.simulated, 3);
        assert_eq!(store.list().unwrap().len(), 2);
        assert_eq!(out.reports[0], out.reports[1]);
        assert_ne!(out.reports[0], out.reports[2]);

        // Second run: everything cached, nothing simulated.
        let again = run_grid(&spec, Some(&store), &opts);
        assert_eq!(again.stats.cached, 3);
        assert_eq!(again.stats.simulated, 0);
        assert_eq!(again.reports, out.reports);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn no_store_never_touches_the_filesystem() {
        let dir = scratch("nocache");
        let spec = tiny_spec();
        let opts = ExecOpts {
            threads: 1,
            progress: false,
            ..ExecOpts::default()
        };
        let out = run_grid(&spec, None, &opts);
        assert!(out.is_complete());
        assert_eq!(out.stats.simulated, 3);
        assert!(!dir.exists(), "cache-less run must not create directories");
    }
}
