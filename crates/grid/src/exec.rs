//! The grid executor: cache lookup, shard filtering, fault-isolated
//! parallel simulation, store write-back, and the order-preserving merge.
//!
//! Cell execution is *fault-isolated*: every attempt runs in its own
//! watchdog-guarded thread behind `catch_unwind`, failures (panics,
//! deadline overruns, store write errors) are retried under a capped
//! exponential backoff, and cells that exhaust their retries are recorded
//! in a [`FailureManifest`] instead of aborting the run. A degraded grid
//! still completes every healthy cell, persists everything it computed,
//! and reports the casualties — the contract multi-hour, multi-machine
//! sweeps depend on.
//!
//! Store-backed runs are additionally *coordinated* (see [`CoordOpts`]):
//! each miss is claimed through a heartbeat-refreshed lease before
//! simulating, so N concurrent processes sharing one store partition the
//! grid dynamically with zero duplicate simulation — a cell leased by a
//! live holder is waited on, not recomputed. Every claim, completion and
//! failure is appended to the store's operations journal, and the failure
//! manifest is merged under the advisory store lock instead of
//! last-writer-wins. Coordination failures (lease I/O errors) degrade to
//! uncoordinated execution: store entries are byte-deterministic and
//! written atomically, so the worst case is duplicate compute, never
//! corruption.

use std::collections::{HashMap, HashSet};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

use chronus_sim::{try_run_parallel, SimReport, System};
use serde::{Deserialize, Serialize};

use crate::cell::CellSpec;
use crate::faults::{ExecFault, FaultInjector};
use crate::hash::mix64;
use crate::journal::{EventKind, Journal};
use crate::lease::{self, ClaimOutcome, LeaseManager};
use crate::progress::Progress;
use crate::retry::RetryPolicy;
use crate::shard::Shard;
use crate::spec::GridSpec;
use crate::store::{ManifestState, ResultStore};

/// Process exit code of a run that completed in degraded mode (some cells
/// failed permanently and are listed in the failure manifest). Distinct
/// from `2` (usage errors) so scripts can tell "rerun me" from "fix the
/// invocation".
pub const DEGRADED_EXIT: i32 = 3;

/// Smallest lease TTL the executor will stamp. Short grids heartbeat well
/// under this; the watchdog deadline raises it once armed.
const LEASE_TTL_FLOOR: Duration = Duration::from_secs(15);

/// How long a waiter sleeps between polls of a cell leased elsewhere.
const LEASE_WAIT_POLL: Duration = Duration::from_millis(150);

/// Inter-process coordination options for store-backed runs. Defaults are
/// what every CLI entry point uses; tests shrink `lease_ttl` to exercise
/// stale-lease reclamation quickly.
#[derive(Debug, Clone)]
pub struct CoordOpts {
    /// Lease claims + operations journal (on by default when a store is
    /// present; irrelevant without one).
    pub enabled: bool,
    /// Override the lease time-to-live. `None` derives it from the
    /// watchdog deadline estimator (20× observed mean wall-clock), floored
    /// at 15 s — a lease always outlives its heartbeat interval by 4×.
    pub lease_ttl: Option<Duration>,
    /// Override the holder identity recorded in leases and the journal.
    /// `None` mints a process-unique `host-pid-instance` id.
    pub holder: Option<String>,
}

impl Default for CoordOpts {
    fn default() -> Self {
        Self {
            enabled: true,
            lease_ttl: None,
            holder: None,
        }
    }
}

/// Execution options.
#[derive(Debug, Clone)]
pub struct ExecOpts {
    /// Worker threads for cell simulation.
    pub threads: usize,
    /// The shard this process owns (default: the full grid).
    pub shard: Shard,
    /// Progress/ETA lines on stderr.
    pub progress: bool,
    /// Retry policy for failed cell attempts and store writes.
    pub retry: RetryPolicy,
    /// Hard per-cell watchdog deadline. `None` derives one adaptively from
    /// the wall-clock of cells recorded so far (20× the observed mean,
    /// floored at 30 s, armed only once three samples exist).
    pub cell_timeout: Option<Duration>,
    /// Deterministic fault injection at the executor boundary (see
    /// [`crate::faults`]); `None` (the default) costs nothing.
    pub faults: Option<FaultInjector>,
}

impl Default for ExecOpts {
    fn default() -> Self {
        Self {
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(8),
            shard: Shard::full(),
            progress: true,
            retry: RetryPolicy::default(),
            cell_timeout: None,
            faults: None,
        }
    }
}

/// What one [`run_grid`] call did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Cells in the spec.
    pub total: usize,
    /// Cells satisfied from the result store.
    pub cached: usize,
    /// Cells simulated by this process.
    pub simulated: usize,
    /// Cells owned by other shards and not yet in the store.
    pub skipped: usize,
    /// Cells that failed permanently (retries exhausted) and have no
    /// report.
    pub failed: usize,
    /// Cells resolved by waiting on another process's lease (its result
    /// was read back instead of recomputed).
    pub waited: usize,
}

impl ExecStats {
    /// `cells=N cached=C simulated=S skipped=K failed=F waited=W` — the
    /// machine-readable form the CI smoke jobs grep.
    pub fn summary(&self) -> String {
        format!(
            "cells={} cached={} simulated={} skipped={} failed={} waited={}",
            self.total, self.cached, self.simulated, self.skipped, self.failed, self.waited
        )
    }
}

/// How a cell (or its persistence) failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FailureKind {
    /// The simulation panicked on every attempt.
    Panic,
    /// The simulation overran its watchdog deadline on every attempt.
    Timeout,
    /// The simulation succeeded but the result could not be persisted;
    /// the in-memory report was still returned.
    StoreWrite,
}

/// One permanently failed cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellFailure {
    /// Position of the (representative) cell in the spec.
    pub index: usize,
    /// The cell's display label.
    pub label: String,
    /// The cell's content hash.
    pub hash: String,
    /// Failure class.
    pub kind: FailureKind,
    /// Attempts consumed (first try + retries).
    pub attempts: u32,
    /// The last error observed (panic payload, timeout note, or I/O
    /// error).
    pub error: String,
}

/// The persisted record of a degraded run: which cells failed, how, and
/// under which shard. Written to `<store>/failures/<grid>.json` whenever a
/// run ends with failures. Updates merge under the store lock: a later run
/// (any shard) drops every recorded failure whose cell now verifies in the
/// store and the manifest disappears once nothing is left — so sharded
/// reruns and [`merge`] heal it exactly like unsharded ones. `shard`
/// records the last writer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FailureManifest {
    /// Grid name.
    pub grid: String,
    /// The shard that produced this manifest (`"1/1"` when unsharded).
    pub shard: String,
    /// The failures, in spec order.
    pub failures: Vec<CellFailure>,
}

impl FailureManifest {
    /// Whether the manifest records no failures.
    pub fn is_empty(&self) -> bool {
        self.failures.is_empty()
    }
}

/// The result of one grid execution.
#[derive(Debug)]
pub struct GridOutcome {
    /// One slot per spec cell, in spec order; `None` means the cell belongs
    /// to another shard and was not in the store, or failed permanently
    /// (see [`Self::failures`]).
    pub reports: Vec<Option<SimReport>>,
    /// Cache/shard accounting.
    pub stats: ExecStats,
    /// Cells that failed permanently in this run (simulation failures
    /// leave their report slots empty; store-write failures do not).
    pub failures: Vec<CellFailure>,
    /// Wall-clock of the whole call in seconds.
    pub wall_seconds: f64,
}

impl GridOutcome {
    /// Whether every cell has a report.
    pub fn is_complete(&self) -> bool {
        self.reports.iter().all(Option::is_some)
    }

    /// Whether this run should exit with [`DEGRADED_EXIT`].
    pub fn is_degraded(&self) -> bool {
        !self.failures.is_empty()
    }
}

/// Simulates one cell (trace regeneration + full system run).
pub fn simulate_cell(cell: &CellSpec) -> SimReport {
    let traces = cell.workload.traces(&cell.config.geometry);
    System::build(&cell.config).run(traces)
}

/// Derives watchdog deadlines from observed per-cell wall-clocks: once
/// three samples exist, a cell gets `max(30 s, 20× mean)`. Seeded from the
/// store's recorded wall sidecars so a resumed run is armed immediately.
struct DeadlineEstimator {
    explicit: Option<Duration>,
    /// `(samples, total seconds)`.
    state: Mutex<(u32, f64)>,
}

const DEADLINE_FLOOR: Duration = Duration::from_secs(30);
const DEADLINE_FACTOR: f64 = 20.0;
const DEADLINE_MIN_SAMPLES: u32 = 3;

impl DeadlineEstimator {
    fn new(explicit: Option<Duration>) -> Self {
        Self {
            explicit,
            state: Mutex::new((0, 0.0)),
        }
    }

    fn record(&self, seconds: f64) {
        let mut state = self.state.lock().expect("estimator lock");
        state.0 += 1;
        state.1 += seconds;
    }

    fn deadline(&self) -> Option<Duration> {
        if let Some(t) = self.explicit {
            return Some(t);
        }
        let state = self.state.lock().expect("estimator lock");
        if state.0 < DEADLINE_MIN_SAMPLES {
            return None;
        }
        let mean = state.1 / f64::from(state.0);
        Some(DEADLINE_FLOOR.max(Duration::from_secs_f64(mean * DEADLINE_FACTOR)))
    }
}

/// Renders a panic payload for the failure record.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_string()
    }
}

/// Runs one attempt of one cell in a dedicated watchdog-guarded thread.
///
/// The simulation runs behind `catch_unwind` in a freshly spawned thread
/// while this (worker) thread waits on a channel with the deadline. A
/// panic comes back as [`FailureKind::Panic`]; a deadline overrun as
/// [`FailureKind::Timeout`] — the stuck thread is abandoned (it holds only
/// cloned data and its late result is dropped with the channel).
fn run_cell_guarded(
    cell: CellSpec,
    hash: String,
    attempt: u32,
    faults: Option<FaultInjector>,
    deadline: Option<Duration>,
) -> Result<SimReport, (FailureKind, String)> {
    let (tx, rx) = mpsc::sync_channel::<Result<SimReport, String>>(1);
    let spawned = std::thread::Builder::new()
        .name(format!("cell-{}", &hash[..8.min(hash.len())]))
        .spawn(move || {
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                if let Some(injector) = &faults {
                    match injector.exec_fault(&hash, attempt) {
                        Some(ExecFault::Panic) => {
                            panic!("injected fault: panic (cell {hash}, attempt {attempt})")
                        }
                        Some(ExecFault::Stall(pause)) => std::thread::sleep(pause),
                        None => {}
                    }
                }
                simulate_cell(&cell)
            }));
            let _ = tx.send(outcome.map_err(panic_message));
        });
    if let Err(e) = spawned {
        return Err((FailureKind::Panic, format!("spawning cell thread: {e}")));
    }
    let received = match deadline {
        Some(limit) => rx.recv_timeout(limit).map_err(|_| {
            (
                FailureKind::Timeout,
                format!("watchdog deadline {limit:.1?} exceeded"),
            )
        })?,
        None => rx
            .recv()
            .map_err(|_| (FailureKind::Panic, "cell thread died silently".to_string()))?,
    };
    received.map_err(|msg| (FailureKind::Panic, msg))
}

/// The per-run coordination plane: lease manager + journal + the set of
/// hashes this run currently holds leases on (kept fresh by the heartbeat
/// thread).
struct CoordPlane {
    leases: LeaseManager,
    journal: Arc<Journal>,
    grid: String,
    ttl_override: Option<Duration>,
    active: Mutex<HashSet<String>>,
}

impl CoordPlane {
    fn open(
        store: &ResultStore,
        grid: &str,
        coord: &CoordOpts,
        faults: Option<FaultInjector>,
    ) -> std::io::Result<Self> {
        let holder = coord.holder.clone().unwrap_or_else(lease::unique_holder);
        let leases = LeaseManager::open(store.dir(), holder.clone())?.with_faults(faults.clone());
        let journal = Arc::new(Journal::open(store.dir(), holder).with_faults(faults));
        Ok(Self {
            leases,
            journal,
            grid: grid.to_string(),
            ttl_override: coord.lease_ttl,
            active: Mutex::new(HashSet::new()),
        })
    }

    /// The TTL to stamp into (and refresh onto) leases right now.
    fn ttl(&self, estimator: &DeadlineEstimator) -> Duration {
        self.ttl_override.unwrap_or_else(|| {
            estimator
                .deadline()
                .map_or(LEASE_TTL_FLOOR, |d| d.max(LEASE_TTL_FLOOR))
        })
    }

    /// Heartbeat period: a quarter of the TTL, clamped to [50 ms, 2 s].
    fn heartbeat_interval(&self, estimator: &DeadlineEstimator) -> Duration {
        (self.ttl(estimator) / 4).clamp(Duration::from_millis(50), Duration::from_secs(2))
    }

    fn register(&self, hash: &str) {
        self.active
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .insert(hash.to_string());
    }

    fn release(&self, hash: &str) {
        self.active
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .remove(hash);
        self.leases.release(hash);
    }

    /// Refreshes every lease this run holds (heartbeat-thread body).
    fn refresh_active(&self, estimator: &DeadlineEstimator) {
        let held: Vec<String> = self
            .active
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .cloned()
            .collect();
        let ttl = self.ttl(estimator);
        for hash in held {
            match self.leases.refresh(&hash, ttl) {
                Ok(true) => {}
                Ok(false) => eprintln!(
                    "chronus-grid: lease on cell {hash} was lost (reclaimed as stale); \
                     continuing — a duplicate computation is possible but harmless"
                ),
                Err(e) => eprintln!("chronus-grid: lease heartbeat for {hash} failed: {e}"),
            }
        }
    }

    /// Executor-open hook: sweep leases abandoned by crashed holders so no
    /// cell stays blocked longer than one TTL (and, on this host, no
    /// longer than the next open).
    fn reclaim_stale_on_open(&self) {
        match self.leases.reclaim_stale() {
            Ok(reclaimed) if !reclaimed.is_empty() => {
                eprintln!(
                    "chronus-grid: reclaimed {} stale lease(s) left by crashed holder(s)",
                    reclaimed.len()
                );
                for (hash, holder) in reclaimed {
                    self.journal.record(
                        EventKind::Fail,
                        &self.grid,
                        &hash,
                        0,
                        0.0,
                        "",
                        &format!("reclaimed stale lease from {holder}"),
                    );
                }
            }
            Ok(_) => {}
            Err(e) => eprintln!("chronus-grid: stale-lease sweep failed: {e}"),
        }
    }
}

/// How a worker obtained the right to produce a cell's report.
enum ClaimResult {
    /// We hold the lease; simulate.
    Claimed,
    /// Another process completed the cell while we waited; here is its
    /// verified result (boxed: a report dwarfs the other variants).
    Resolved(Box<SimReport>),
    /// Lease I/O failed; proceed without coordination (duplicate compute
    /// possible, corruption not).
    Uncoordinated,
}

/// Claims `hash` or waits out the live holder. Stale leases (crashed
/// holders) are reclaimed inside `try_claim`, so a waiter never blocks
/// longer than one TTL past the holder's death.
fn claim_or_wait(
    plane: &CoordPlane,
    store: &ResultStore,
    hash: &str,
    ttl: Duration,
) -> ClaimResult {
    loop {
        match plane.leases.try_claim(hash, ttl) {
            Ok(ClaimOutcome::Claimed) => {
                // Double-check under the lease: the entry may have landed
                // between the cache pass and this claim.
                if let Some(report) = store.get(hash) {
                    plane.leases.release(hash);
                    return ClaimResult::Resolved(Box::new(report));
                }
                plane.register(hash);
                return ClaimResult::Claimed;
            }
            Ok(ClaimOutcome::Held(_)) => {
                std::thread::sleep(LEASE_WAIT_POLL);
                if let Some(report) = store.get(hash) {
                    return ClaimResult::Resolved(Box::new(report));
                }
                // Not there yet: the holder is still computing (wait more)
                // or failed/died (the next try_claim reclaims or surfaces
                // its release).
            }
            Err(e) => {
                eprintln!(
                    "chronus-grid: lease claim for cell {hash} failed ({e}); continuing \
                     uncoordinated (worst case: duplicate compute)"
                );
                return ClaimResult::Uncoordinated;
            }
        }
    }
}

/// What one worker produced for one owned cell.
struct CellDone {
    report: SimReport,
    /// Persistence failed (the report itself is still good).
    store_failure: Option<CellFailure>,
    /// The report came from another process's computation.
    waited: bool,
}

/// Executes a grid: serves cached cells from `store`, simulates the misses
/// this shard owns (in parallel, each attempt fault-isolated), and
/// persists every fresh result. `store: None` disables caching entirely —
/// every owned cell re-simulates and nothing touches the filesystem.
///
/// Identical cells (same content hash) appearing at several spec positions
/// are simulated once and fanned out to all positions.
///
/// A failing cell never aborts the run: attempts are retried under
/// `opts.retry`, and cells that exhaust their budget are recorded in
/// [`GridOutcome::failures`] (and, when a store is present, persisted as a
/// [`FailureManifest`]) while every other cell completes normally.
///
/// Store-backed runs coordinate through leases and the operations journal
/// with default [`CoordOpts`]; see [`run_grid_coordinated`].
pub fn run_grid(spec: &GridSpec, store: Option<&ResultStore>, opts: &ExecOpts) -> GridOutcome {
    run_grid_coordinated(spec, store, opts, &CoordOpts::default())
}

/// [`run_grid`] with explicit inter-process coordination options.
pub fn run_grid_coordinated(
    spec: &GridSpec,
    store: Option<&ResultStore>,
    opts: &ExecOpts,
    coord: &CoordOpts,
) -> GridOutcome {
    let started = Instant::now();
    let hashes = spec.hashes();
    let mut reports: Vec<Option<SimReport>> = vec![None; spec.cells.len()];
    let mut stats = ExecStats {
        total: spec.cells.len(),
        ..ExecStats::default()
    };
    let estimator = Arc::new(DeadlineEstimator::new(opts.cell_timeout));

    // Coordination plane (leases + journal) for store-backed runs; lease
    // I/O failure at open degrades to uncoordinated execution.
    let plane: Option<Arc<CoordPlane>> = match store {
        Some(s) if coord.enabled => {
            match CoordPlane::open(s, &spec.name, coord, opts.faults.clone()) {
                Ok(plane) => Some(Arc::new(plane)),
                Err(e) => {
                    eprintln!(
                        "chronus-grid: could not open lease/journal plane ({e}); running \
                         uncoordinated"
                    );
                    None
                }
            }
        }
        _ => None,
    };
    // Route store-level events (demotes) through this run's journal unless
    // the store already carries one.
    let journaled_store: Option<ResultStore> = match (store, &plane) {
        (Some(s), Some(p)) if s.journal().is_none() => {
            Some(s.clone().with_journal(p.journal.clone()))
        }
        (Some(s), _) => Some(s.clone()),
        (None, _) => None,
    };
    let store = journaled_store.as_ref();
    if let Some(p) = &plane {
        p.reclaim_stale_on_open();
    }

    // Cache pass. Deduplicate lookups so a hash shared by many cells is
    // read once.
    let mut by_hash: HashMap<&str, Vec<usize>> = HashMap::new();
    for (i, h) in hashes.iter().enumerate() {
        by_hash.entry(h.as_str()).or_default().push(i);
    }
    let mut pending: Vec<(&str, usize)> = Vec::new(); // (hash, representative index)
    for (hash, indices) in &by_hash {
        match store.and_then(|s| s.get(hash)) {
            Some(report) => {
                stats.cached += indices.len();
                if let Some(s) = store {
                    if let Some(wall) = s.recorded_wall(hash) {
                        estimator.record(wall);
                    }
                }
                for &i in indices {
                    reports[i] = Some(report.clone());
                }
            }
            None => pending.push((hash, indices[0])),
        }
    }

    // Shard filter: a duplicated hash is owned by the shard owning its
    // first (representative) position.
    pending.sort_by_key(|&(_, i)| i);
    let (owned, foreign): (Vec<_>, Vec<_>) =
        pending.into_iter().partition(|&(_, i)| opts.shard.owns(i));
    for (_, i) in &foreign {
        stats.skipped += by_hash[hashes[*i].as_str()].len();
    }

    // Heartbeat thread: keeps every held lease's deadline ahead of the
    // clock while cells compute. Stopped (and joined) before returning.
    let hb_stop = Arc::new(AtomicBool::new(false));
    let heartbeat = plane.as_ref().map(|p| {
        let plane = Arc::clone(p);
        let estimator = Arc::clone(&estimator);
        let stop = Arc::clone(&hb_stop);
        std::thread::Builder::new()
            .name("lease-heartbeat".into())
            .spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    let interval = plane.heartbeat_interval(&estimator);
                    let mut slept = Duration::ZERO;
                    while slept < interval && !stop.load(Ordering::Relaxed) {
                        let step = Duration::from_millis(25).min(interval - slept);
                        std::thread::sleep(step);
                        slept += step;
                    }
                    if stop.load(Ordering::Relaxed) {
                        return;
                    }
                    plane.refresh_active(&estimator);
                }
            })
            .expect("spawn heartbeat thread")
    });

    // Simulate the owned misses, each cell isolated and retried. Claims,
    // store writes and journal events all happen inside the worker, so a
    // cell's lease is released the moment its entry lands — not at the
    // end-of-grid barrier.
    let progress = Progress::new(&spec.name, owned.len(), opts.progress);
    let progress_ref = &progress;
    let cells_ref = &spec.cells;
    let hashes_ref = &hashes;
    let estimator_ref = &estimator;
    let plane_ref = plane.as_deref();
    let owned_indices: Vec<usize> = owned.iter().map(|&(_, i)| i).collect();
    let worker_results = try_run_parallel(owned_indices.clone(), opts.threads, move |i| {
        let cell = &cells_ref[i];
        let hash = hashes_ref[i].as_str();

        // Claim the cell (or wait out a live holder, or degrade to
        // uncoordinated on lease I/O failure).
        let mut holds_lease = false;
        if let (Some(store), Some(plane)) = (store, plane_ref) {
            match claim_or_wait(plane, store, hash, plane.ttl(estimator_ref)) {
                ClaimResult::Resolved(report) => {
                    progress_ref.cell_done(&cell.label);
                    return Ok(CellDone {
                        report: *report,
                        store_failure: None,
                        waited: true,
                    });
                }
                ClaimResult::Claimed => holds_lease = true,
                ClaimResult::Uncoordinated => {}
            }
            plane.journal.record(
                EventKind::Claim,
                &plane.grid,
                hash,
                0,
                0.0,
                "",
                if holds_lease { "" } else { "uncoordinated" },
            );
        }

        let token = mix64(hash.as_bytes());
        let mut attempt: u32 = 0;
        let simulated = loop {
            let attempt_started = Instant::now();
            let outcome = run_cell_guarded(
                cell.clone(),
                hash.to_string(),
                attempt,
                opts.faults.clone(),
                estimator_ref.deadline(),
            );
            match outcome {
                Ok(report) => {
                    let wall = attempt_started.elapsed().as_secs_f64();
                    estimator_ref.record(wall);
                    progress_ref.cell_done(&cell.label);
                    break Ok((report, wall));
                }
                Err((kind, error)) => {
                    progress_ref.cell_failed(&cell.label, attempt, &error);
                    if attempt >= opts.retry.max_retries {
                        break Err(CellFailure {
                            index: i,
                            label: cell.label.clone(),
                            hash: hash.to_string(),
                            kind,
                            attempts: attempt + 1,
                            error,
                        });
                    }
                    opts.retry.sleep_before_retry(attempt, token);
                    attempt += 1;
                }
            }
        };

        let out = match simulated {
            Ok((report, wall)) => {
                let mut store_failure = None;
                if let Some(store) = store {
                    match put_with_retry(store, hash, cell, &report, &opts.retry) {
                        Ok(checksum) => {
                            store.record_wall(hash, wall);
                            if let Some(plane) = plane_ref {
                                plane.journal.record(
                                    EventKind::Complete,
                                    &plane.grid,
                                    hash,
                                    attempt,
                                    wall,
                                    &checksum,
                                    "",
                                );
                            }
                        }
                        Err(e) => {
                            eprintln!(
                                "chronus-grid: failed to persist cell {hash} to {}: {e}",
                                store.dir().display()
                            );
                            if let Some(plane) = plane_ref {
                                plane.journal.record(
                                    EventKind::Fail,
                                    &plane.grid,
                                    hash,
                                    attempt,
                                    wall,
                                    "",
                                    &format!("store-write: {e}"),
                                );
                            }
                            store_failure = Some(CellFailure {
                                index: i,
                                label: cell.label.clone(),
                                hash: hash.to_string(),
                                kind: FailureKind::StoreWrite,
                                attempts: opts.retry.attempts(),
                                error: e.to_string(),
                            });
                        }
                    }
                }
                Ok(CellDone {
                    report,
                    store_failure,
                    waited: false,
                })
            }
            Err(failure) => {
                if let Some(plane) = plane_ref {
                    plane.journal.record(
                        EventKind::Fail,
                        &plane.grid,
                        hash,
                        failure.attempts,
                        0.0,
                        "",
                        &format!("{:?}: {}", failure.kind, failure.error),
                    );
                }
                Err(failure)
            }
        };
        if holds_lease {
            if let Some(plane) = plane_ref {
                plane.release(hash);
            }
        }
        out
    });

    if let Some(handle) = heartbeat {
        hb_stop.store(true, Ordering::Relaxed);
        let _ = handle.join();
    }

    // Fan-out and accounting. Worker-level panics (outside the per-cell
    // guard) are demoted to cell failures too: one bad worker must never
    // take the grid down.
    let mut failures: Vec<CellFailure> = Vec::new();
    for (&i, result) in owned_indices.iter().zip(worker_results) {
        let hash = hashes[i].as_str();
        let indices = &by_hash[hash];
        let flattened = match result {
            Ok(done) => done,
            Err(panic_msg) => Err(CellFailure {
                index: i,
                label: spec.cells[i].label.clone(),
                hash: hash.to_string(),
                kind: FailureKind::Panic,
                attempts: 1,
                error: format!("worker thread panicked: {panic_msg}"),
            }),
        };
        match flattened {
            Ok(done) => {
                if done.waited {
                    stats.waited += indices.len();
                } else {
                    stats.simulated += indices.len();
                }
                if let Some(failure) = done.store_failure {
                    failures.push(failure);
                }
                for &j in indices {
                    reports[j] = Some(done.report.clone());
                }
            }
            Err(failure) => {
                stats.failed += indices.len();
                failures.push(failure);
            }
        }
    }
    failures.sort_by_key(|f| f.index);

    // Persist (or heal) the failure manifest so `chronus-sweep status` and
    // later runs see what degraded.
    if let Some(store) = store {
        update_manifest(
            store,
            spec,
            &opts.shard,
            &failures,
            reports.iter().all(Option::is_some),
        );
    }

    GridOutcome {
        reports,
        stats,
        failures,
        wall_seconds: started.elapsed().as_secs_f64(),
    }
}

/// Merges this run's failures into the grid's persisted manifest under the
/// store lock. Prior failures whose cells now verify in the store are
/// dropped (any shard's rerun heals them); failures re-observed this run
/// replace their prior record; an empty result removes the manifest.
pub(crate) fn update_manifest(
    store: &ResultStore,
    spec: &GridSpec,
    shard: &Shard,
    failures: &[CellFailure],
    complete: bool,
) {
    let lock = store.lock();
    if let Err(e) = &lock {
        eprintln!("chronus-grid: store lock for manifest update failed ({e}); proceeding");
    }
    // A fully clean, complete, unsharded run owns the whole grid: clear
    // unconditionally (even records from stale specs).
    if failures.is_empty() && shard.is_full() && complete {
        store.clear_manifest(&spec.name);
        return;
    }
    let mut merged: Vec<CellFailure> = Vec::new();
    if let ManifestState::Ok(prior) = store.manifest_state(&spec.name) {
        for f in prior.failures {
            if failures.iter().any(|g| g.hash == f.hash) {
                continue; // superseded by this run's record
            }
            if store.verify(&f.hash).is_ok() {
                continue; // healed since (by any shard or process)
            }
            merged.push(f);
        }
    }
    merged.extend_from_slice(failures);
    merged.sort_by(|a, b| (a.index, &a.hash).cmp(&(b.index, &b.hash)));
    merged.dedup_by(|a, b| a.hash == b.hash);
    if merged.is_empty() {
        store.clear_manifest(&spec.name);
    } else {
        let manifest = FailureManifest {
            grid: spec.name.clone(),
            shard: shard.to_string(),
            failures: merged,
        };
        if let Err(e) = store.save_manifest(&manifest) {
            eprintln!("chronus-grid: failed to write failure manifest: {e}");
        }
    }
}

/// Persists one cell, retrying transient write failures under `retry`.
/// Returns the entry's footer digest.
fn put_with_retry(
    store: &ResultStore,
    hash: &str,
    cell: &CellSpec,
    report: &SimReport,
    retry: &RetryPolicy,
) -> std::io::Result<String> {
    let token = mix64(format!("put|{hash}").as_bytes());
    let mut attempt: u32 = 0;
    loop {
        match store.put(hash, cell, report) {
            Ok(checksum) => return Ok(checksum),
            Err(e) if attempt >= retry.max_retries => return Err(e),
            Err(_) => {
                retry.sleep_before_retry(attempt, token);
                attempt += 1;
            }
        }
    }
}

/// Collects a complete grid from the store alone, in spec order — the merge
/// step after sharded runs. The output depends only on the spec and the
/// store contents, so merging after `--shard 1/2` + `--shard 2/2` is
/// byte-identical to merging after one unsharded run. Entries failing
/// integrity verification count as missing (they re-simulate on the next
/// run) rather than erroring the merge.
///
/// As a side effect, the grid's failure manifest is healed (removed, under
/// the store lock) when every cell it records now verifies in the store —
/// so a manifest left by a degraded shard does not outlive its recovery.
///
/// # Errors
///
/// Returns the indices of cells missing from the store.
pub fn merge(spec: &GridSpec, store: &ResultStore) -> Result<Vec<SimReport>, Vec<usize>> {
    let mut out = Vec::with_capacity(spec.cells.len());
    let mut missing = Vec::new();
    for (i, hash) in spec.hashes().iter().enumerate() {
        match store.get(hash) {
            Some(r) => out.push(r),
            None => missing.push(i),
        }
    }
    heal_manifest(spec, store);
    if missing.is_empty() {
        Ok(out)
    } else {
        Err(missing)
    }
}

/// Removes the grid's failure manifest when every failure it records now
/// verifies in the store (under the store lock, so a concurrent writer is
/// not clobbered).
fn heal_manifest(spec: &GridSpec, store: &ResultStore) {
    let Ok(_lock) = store.lock() else {
        return;
    };
    let ManifestState::Ok(manifest) = store.manifest_state(&spec.name) else {
        return;
    };
    if manifest.failures.is_empty()
        || manifest
            .failures
            .iter()
            .all(|f| store.verify(&f.hash).is_ok())
    {
        store.clear_manifest(&spec.name);
        eprintln!(
            "chronus-grid: failure manifest for '{}' healed (every recorded cell now verifies)",
            spec.name
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::{AppTrace, WorkloadSpec};
    use chronus_sim::SimConfig;

    fn tiny_spec() -> GridSpec {
        let mut spec = GridSpec::new("exec-test");
        for (i, nrh) in [64u32, 64, 32].iter().enumerate() {
            // Cells 0 and 1 are identical on purpose (dedup path).
            let mut cfg = SimConfig::single_core();
            cfg.instructions_per_core = 1_000;
            cfg.nrh = *nrh;
            cfg.mechanism = chronus_core::MechanismKind::Chronus;
            let w = WorkloadSpec::Apps {
                apps: vec![AppTrace::new("511.povray", 0, 2)],
                trace_instructions: 1_500,
            };
            spec.push(CellSpec::new(format!("c{i}"), w, cfg));
        }
        spec
    }

    fn scratch(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("chronus-grid-exec-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn duplicate_cells_simulate_once() {
        let dir = scratch("dedup");
        let store = ResultStore::open(&dir).unwrap();
        let spec = tiny_spec();
        let opts = ExecOpts {
            threads: 2,
            progress: false,
            ..ExecOpts::default()
        };
        let out = run_grid(&spec, Some(&store), &opts);
        assert!(out.is_complete());
        assert!(!out.is_degraded());
        // 3 slots filled but only 2 distinct simulations persisted.
        assert_eq!(out.stats.simulated, 3);
        assert_eq!(store.list().unwrap().len(), 2);
        assert_eq!(out.reports[0], out.reports[1]);
        assert_ne!(out.reports[0], out.reports[2]);

        // Second run: everything cached, nothing simulated.
        let again = run_grid(&spec, Some(&store), &opts);
        assert_eq!(again.stats.cached, 3);
        assert_eq!(again.stats.simulated, 0);
        assert_eq!(again.reports, out.reports);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn no_store_never_touches_the_filesystem() {
        let dir = scratch("nocache");
        let spec = tiny_spec();
        let opts = ExecOpts {
            threads: 1,
            progress: false,
            ..ExecOpts::default()
        };
        let out = run_grid(&spec, None, &opts);
        assert!(out.is_complete());
        assert_eq!(out.stats.simulated, 3);
        assert!(!dir.exists(), "cache-less run must not create directories");
    }

    #[test]
    fn summary_includes_failure_accounting() {
        let stats = ExecStats {
            total: 4,
            cached: 1,
            simulated: 2,
            skipped: 0,
            failed: 1,
            waited: 0,
        };
        assert_eq!(
            stats.summary(),
            "cells=4 cached=1 simulated=2 skipped=0 failed=1 waited=0"
        );
    }

    #[test]
    fn manifest_roundtrips_through_the_store() {
        let dir = scratch("manifest");
        let store = ResultStore::open(&dir).unwrap();
        assert!(store.load_manifest("g").is_none());
        let manifest = FailureManifest {
            grid: "g".into(),
            shard: "1/1".into(),
            failures: vec![CellFailure {
                index: 3,
                label: "cell-3".into(),
                hash: "f".repeat(32),
                kind: FailureKind::Timeout,
                attempts: 4,
                error: "watchdog deadline 1.0s exceeded".into(),
            }],
        };
        store.save_manifest(&manifest).unwrap();
        assert_eq!(store.load_manifest("g").unwrap(), manifest);
        store.clear_manifest("g");
        assert!(store.load_manifest("g").is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn deadline_estimator_arms_after_three_samples() {
        let est = DeadlineEstimator::new(None);
        assert_eq!(est.deadline(), None);
        est.record(0.5);
        est.record(0.5);
        assert_eq!(est.deadline(), None, "two samples must not arm");
        est.record(0.5);
        // 20 × 0.5 s = 10 s is below the 30 s floor.
        assert_eq!(est.deadline(), Some(Duration::from_secs(30)));
        est.record(17.5); // mean now 4.75 s → 95 s
        assert_eq!(est.deadline(), Some(Duration::from_secs_f64(95.0)));

        let explicit = DeadlineEstimator::new(Some(Duration::from_millis(250)));
        assert_eq!(explicit.deadline(), Some(Duration::from_millis(250)));
    }
}
