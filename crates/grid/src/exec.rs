//! The grid executor: cache lookup, shard filtering, fault-isolated
//! parallel simulation, store write-back, and the order-preserving merge.
//!
//! Cell execution is *fault-isolated*: every attempt runs in its own
//! watchdog-guarded thread behind `catch_unwind`, failures (panics,
//! deadline overruns, store write errors) are retried under a capped
//! exponential backoff, and cells that exhaust their retries are recorded
//! in a [`FailureManifest`] instead of aborting the run. A degraded grid
//! still completes every healthy cell, persists everything it computed,
//! and reports the casualties — the contract multi-hour, multi-machine
//! sweeps depend on.

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc;
use std::sync::Mutex;
use std::time::{Duration, Instant};

use chronus_sim::{try_run_parallel, SimReport, System};
use serde::{Deserialize, Serialize};

use crate::cell::CellSpec;
use crate::faults::{ExecFault, FaultInjector};
use crate::hash::mix64;
use crate::progress::Progress;
use crate::retry::RetryPolicy;
use crate::shard::Shard;
use crate::spec::GridSpec;
use crate::store::ResultStore;

/// Process exit code of a run that completed in degraded mode (some cells
/// failed permanently and are listed in the failure manifest). Distinct
/// from `2` (usage errors) so scripts can tell "rerun me" from "fix the
/// invocation".
pub const DEGRADED_EXIT: i32 = 3;

/// Execution options.
#[derive(Debug, Clone)]
pub struct ExecOpts {
    /// Worker threads for cell simulation.
    pub threads: usize,
    /// The shard this process owns (default: the full grid).
    pub shard: Shard,
    /// Progress/ETA lines on stderr.
    pub progress: bool,
    /// Retry policy for failed cell attempts and store writes.
    pub retry: RetryPolicy,
    /// Hard per-cell watchdog deadline. `None` derives one adaptively from
    /// the wall-clock of cells recorded so far (20× the observed mean,
    /// floored at 30 s, armed only once three samples exist).
    pub cell_timeout: Option<Duration>,
    /// Deterministic fault injection at the executor boundary (see
    /// [`crate::faults`]); `None` (the default) costs nothing.
    pub faults: Option<FaultInjector>,
}

impl Default for ExecOpts {
    fn default() -> Self {
        Self {
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(8),
            shard: Shard::full(),
            progress: true,
            retry: RetryPolicy::default(),
            cell_timeout: None,
            faults: None,
        }
    }
}

/// What one [`run_grid`] call did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Cells in the spec.
    pub total: usize,
    /// Cells satisfied from the result store.
    pub cached: usize,
    /// Cells simulated by this process.
    pub simulated: usize,
    /// Cells owned by other shards and not yet in the store.
    pub skipped: usize,
    /// Cells that failed permanently (retries exhausted) and have no
    /// report.
    pub failed: usize,
}

impl ExecStats {
    /// `cells=N cached=C simulated=S skipped=K failed=F` — the
    /// machine-readable form the CI smoke jobs grep.
    pub fn summary(&self) -> String {
        format!(
            "cells={} cached={} simulated={} skipped={} failed={}",
            self.total, self.cached, self.simulated, self.skipped, self.failed
        )
    }
}

/// How a cell (or its persistence) failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FailureKind {
    /// The simulation panicked on every attempt.
    Panic,
    /// The simulation overran its watchdog deadline on every attempt.
    Timeout,
    /// The simulation succeeded but the result could not be persisted;
    /// the in-memory report was still returned.
    StoreWrite,
}

/// One permanently failed cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellFailure {
    /// Position of the (representative) cell in the spec.
    pub index: usize,
    /// The cell's display label.
    pub label: String,
    /// The cell's content hash.
    pub hash: String,
    /// Failure class.
    pub kind: FailureKind,
    /// Attempts consumed (first try + retries).
    pub attempts: u32,
    /// The last error observed (panic payload, timeout note, or I/O
    /// error).
    pub error: String,
}

/// The persisted record of a degraded run: which cells failed, how, and
/// under which shard. Written to `<store>/failures/<grid>.json` whenever a
/// run ends with failures; removed by the next fully clean unsharded run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FailureManifest {
    /// Grid name.
    pub grid: String,
    /// The shard that produced this manifest (`"1/1"` when unsharded).
    pub shard: String,
    /// The failures, in spec order.
    pub failures: Vec<CellFailure>,
}

impl FailureManifest {
    /// Whether the manifest records no failures.
    pub fn is_empty(&self) -> bool {
        self.failures.is_empty()
    }
}

/// The result of one grid execution.
#[derive(Debug)]
pub struct GridOutcome {
    /// One slot per spec cell, in spec order; `None` means the cell belongs
    /// to another shard and was not in the store, or failed permanently
    /// (see [`Self::failures`]).
    pub reports: Vec<Option<SimReport>>,
    /// Cache/shard accounting.
    pub stats: ExecStats,
    /// Cells that failed permanently in this run (simulation failures
    /// leave their report slots empty; store-write failures do not).
    pub failures: Vec<CellFailure>,
    /// Wall-clock of the whole call in seconds.
    pub wall_seconds: f64,
}

impl GridOutcome {
    /// Whether every cell has a report.
    pub fn is_complete(&self) -> bool {
        self.reports.iter().all(Option::is_some)
    }

    /// Whether this run should exit with [`DEGRADED_EXIT`].
    pub fn is_degraded(&self) -> bool {
        !self.failures.is_empty()
    }
}

/// Simulates one cell (trace regeneration + full system run).
pub fn simulate_cell(cell: &CellSpec) -> SimReport {
    let traces = cell.workload.traces(&cell.config.geometry);
    System::build(&cell.config).run(traces)
}

/// Derives watchdog deadlines from observed per-cell wall-clocks: once
/// three samples exist, a cell gets `max(30 s, 20× mean)`. Seeded from the
/// store's recorded wall sidecars so a resumed run is armed immediately.
struct DeadlineEstimator {
    explicit: Option<Duration>,
    /// `(samples, total seconds)`.
    state: Mutex<(u32, f64)>,
}

const DEADLINE_FLOOR: Duration = Duration::from_secs(30);
const DEADLINE_FACTOR: f64 = 20.0;
const DEADLINE_MIN_SAMPLES: u32 = 3;

impl DeadlineEstimator {
    fn new(explicit: Option<Duration>) -> Self {
        Self {
            explicit,
            state: Mutex::new((0, 0.0)),
        }
    }

    fn record(&self, seconds: f64) {
        let mut state = self.state.lock().expect("estimator lock");
        state.0 += 1;
        state.1 += seconds;
    }

    fn deadline(&self) -> Option<Duration> {
        if let Some(t) = self.explicit {
            return Some(t);
        }
        let state = self.state.lock().expect("estimator lock");
        if state.0 < DEADLINE_MIN_SAMPLES {
            return None;
        }
        let mean = state.1 / f64::from(state.0);
        Some(DEADLINE_FLOOR.max(Duration::from_secs_f64(mean * DEADLINE_FACTOR)))
    }
}

/// Renders a panic payload for the failure record.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_string()
    }
}

/// Runs one attempt of one cell in a dedicated watchdog-guarded thread.
///
/// The simulation runs behind `catch_unwind` in a freshly spawned thread
/// while this (worker) thread waits on a channel with the deadline. A
/// panic comes back as [`FailureKind::Panic`]; a deadline overrun as
/// [`FailureKind::Timeout`] — the stuck thread is abandoned (it holds only
/// cloned data and its late result is dropped with the channel).
fn run_cell_guarded(
    cell: CellSpec,
    hash: String,
    attempt: u32,
    faults: Option<FaultInjector>,
    deadline: Option<Duration>,
) -> Result<SimReport, (FailureKind, String)> {
    let (tx, rx) = mpsc::sync_channel::<Result<SimReport, String>>(1);
    let spawned = std::thread::Builder::new()
        .name(format!("cell-{}", &hash[..8.min(hash.len())]))
        .spawn(move || {
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                if let Some(injector) = &faults {
                    match injector.exec_fault(&hash, attempt) {
                        Some(ExecFault::Panic) => {
                            panic!("injected fault: panic (cell {hash}, attempt {attempt})")
                        }
                        Some(ExecFault::Stall(pause)) => std::thread::sleep(pause),
                        None => {}
                    }
                }
                simulate_cell(&cell)
            }));
            let _ = tx.send(outcome.map_err(panic_message));
        });
    if let Err(e) = spawned {
        return Err((FailureKind::Panic, format!("spawning cell thread: {e}")));
    }
    let received = match deadline {
        Some(limit) => rx.recv_timeout(limit).map_err(|_| {
            (
                FailureKind::Timeout,
                format!("watchdog deadline {limit:.1?} exceeded"),
            )
        })?,
        None => rx
            .recv()
            .map_err(|_| (FailureKind::Panic, "cell thread died silently".to_string()))?,
    };
    received.map_err(|msg| (FailureKind::Panic, msg))
}

/// Executes a grid: serves cached cells from `store`, simulates the misses
/// this shard owns (in parallel, each attempt fault-isolated), and
/// persists every fresh result. `store: None` disables caching entirely —
/// every owned cell re-simulates and nothing touches the filesystem.
///
/// Identical cells (same content hash) appearing at several spec positions
/// are simulated once and fanned out to all positions.
///
/// A failing cell never aborts the run: attempts are retried under
/// `opts.retry`, and cells that exhaust their budget are recorded in
/// [`GridOutcome::failures`] (and, when a store is present, persisted as a
/// [`FailureManifest`]) while every other cell completes normally.
pub fn run_grid(spec: &GridSpec, store: Option<&ResultStore>, opts: &ExecOpts) -> GridOutcome {
    let started = Instant::now();
    let hashes = spec.hashes();
    let mut reports: Vec<Option<SimReport>> = vec![None; spec.cells.len()];
    let mut stats = ExecStats {
        total: spec.cells.len(),
        ..ExecStats::default()
    };
    let estimator = DeadlineEstimator::new(opts.cell_timeout);

    // Cache pass. Deduplicate lookups so a hash shared by many cells is
    // read once.
    let mut by_hash: HashMap<&str, Vec<usize>> = HashMap::new();
    for (i, h) in hashes.iter().enumerate() {
        by_hash.entry(h.as_str()).or_default().push(i);
    }
    let mut pending: Vec<(&str, usize)> = Vec::new(); // (hash, representative index)
    for (hash, indices) in &by_hash {
        match store.and_then(|s| s.get(hash)) {
            Some(report) => {
                stats.cached += indices.len();
                if let Some(s) = store {
                    if let Some(wall) = s.recorded_wall(hash) {
                        estimator.record(wall);
                    }
                }
                for &i in indices {
                    reports[i] = Some(report.clone());
                }
            }
            None => pending.push((hash, indices[0])),
        }
    }

    // Shard filter: a duplicated hash is owned by the shard owning its
    // first (representative) position.
    pending.sort_by_key(|&(_, i)| i);
    let (owned, foreign): (Vec<_>, Vec<_>) =
        pending.into_iter().partition(|&(_, i)| opts.shard.owns(i));
    for (_, i) in &foreign {
        stats.skipped += by_hash[hashes[*i].as_str()].len();
    }

    // Simulate the owned misses, each cell isolated and retried.
    let progress = Progress::new(&spec.name, owned.len(), opts.progress);
    let progress_ref = &progress;
    let cells_ref = &spec.cells;
    let hashes_ref = &hashes;
    let estimator_ref = &estimator;
    let owned_indices: Vec<usize> = owned.iter().map(|&(_, i)| i).collect();
    let worker_results = try_run_parallel(owned_indices.clone(), opts.threads, move |i| {
        let cell = &cells_ref[i];
        let hash = hashes_ref[i].as_str();
        let token = mix64(hash.as_bytes());
        let mut attempt: u32 = 0;
        loop {
            let attempt_started = Instant::now();
            let outcome = run_cell_guarded(
                cell.clone(),
                hash.to_string(),
                attempt,
                opts.faults.clone(),
                estimator_ref.deadline(),
            );
            match outcome {
                Ok(report) => {
                    let wall = attempt_started.elapsed().as_secs_f64();
                    estimator_ref.record(wall);
                    progress_ref.cell_done(&cell.label);
                    return Ok((report, wall));
                }
                Err((kind, error)) => {
                    progress_ref.cell_failed(&cell.label, attempt, &error);
                    if attempt >= opts.retry.max_retries {
                        return Err(CellFailure {
                            index: i,
                            label: cell.label.clone(),
                            hash: hash.to_string(),
                            kind,
                            attempts: attempt + 1,
                            error,
                        });
                    }
                    opts.retry.sleep_before_retry(attempt, token);
                    attempt += 1;
                }
            }
        }
    });

    // Write-back and fan-out. Worker-level panics (outside the per-cell
    // guard) are demoted to cell failures too: one bad worker must never
    // take the grid down.
    let mut failures: Vec<CellFailure> = Vec::new();
    for (&i, result) in owned_indices.iter().zip(worker_results) {
        let hash = hashes[i].as_str();
        let indices = &by_hash[hash];
        let flattened = match result {
            Ok(Ok((report, wall))) => Ok((report, wall)),
            Ok(Err(failure)) => Err(failure),
            Err(panic_msg) => Err(CellFailure {
                index: i,
                label: spec.cells[i].label.clone(),
                hash: hash.to_string(),
                kind: FailureKind::Panic,
                attempts: 1,
                error: format!("worker thread panicked: {panic_msg}"),
            }),
        };
        match flattened {
            Ok((report, wall)) => {
                if let Some(store) = store {
                    match put_with_retry(store, hash, &spec.cells[i], &report, &opts.retry) {
                        Ok(()) => store.record_wall(hash, wall),
                        Err(e) => {
                            eprintln!(
                                "chronus-grid: failed to persist cell {hash} to {}: {e}",
                                store.dir().display()
                            );
                            failures.push(CellFailure {
                                index: i,
                                label: spec.cells[i].label.clone(),
                                hash: hash.to_string(),
                                kind: FailureKind::StoreWrite,
                                attempts: opts.retry.attempts(),
                                error: e.to_string(),
                            });
                        }
                    }
                }
                stats.simulated += indices.len();
                for &j in indices {
                    reports[j] = Some(report.clone());
                }
            }
            Err(failure) => {
                stats.failed += indices.len();
                failures.push(failure);
            }
        }
    }
    failures.sort_by_key(|f| f.index);

    // Persist (or heal) the failure manifest so `chronus-sweep status` and
    // later runs see what degraded.
    if let Some(store) = store {
        if !failures.is_empty() {
            let manifest = FailureManifest {
                grid: spec.name.clone(),
                shard: opts.shard.to_string(),
                failures: failures.clone(),
            };
            if let Err(e) = store.save_manifest(&manifest) {
                eprintln!("chronus-grid: failed to write failure manifest: {e}");
            }
        } else if opts.shard.is_full() && reports.iter().all(Option::is_some) {
            store.clear_manifest(&spec.name);
        }
    }

    GridOutcome {
        reports,
        stats,
        failures,
        wall_seconds: started.elapsed().as_secs_f64(),
    }
}

/// Persists one cell, retrying transient write failures under `retry`.
fn put_with_retry(
    store: &ResultStore,
    hash: &str,
    cell: &CellSpec,
    report: &SimReport,
    retry: &RetryPolicy,
) -> std::io::Result<()> {
    let token = mix64(format!("put|{hash}").as_bytes());
    let mut attempt: u32 = 0;
    loop {
        match store.put(hash, cell, report) {
            Ok(()) => return Ok(()),
            Err(e) if attempt >= retry.max_retries => return Err(e),
            Err(_) => {
                retry.sleep_before_retry(attempt, token);
                attempt += 1;
            }
        }
    }
}

/// Collects a complete grid from the store alone, in spec order — the merge
/// step after sharded runs. The output depends only on the spec and the
/// store contents, so merging after `--shard 1/2` + `--shard 2/2` is
/// byte-identical to merging after one unsharded run. Entries failing
/// integrity verification count as missing (they re-simulate on the next
/// run) rather than erroring the merge.
///
/// # Errors
///
/// Returns the indices of cells missing from the store.
pub fn merge(spec: &GridSpec, store: &ResultStore) -> Result<Vec<SimReport>, Vec<usize>> {
    let mut out = Vec::with_capacity(spec.cells.len());
    let mut missing = Vec::new();
    for (i, hash) in spec.hashes().iter().enumerate() {
        match store.get(hash) {
            Some(r) => out.push(r),
            None => missing.push(i),
        }
    }
    if missing.is_empty() {
        Ok(out)
    } else {
        Err(missing)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::{AppTrace, WorkloadSpec};
    use chronus_sim::SimConfig;

    fn tiny_spec() -> GridSpec {
        let mut spec = GridSpec::new("exec-test");
        for (i, nrh) in [64u32, 64, 32].iter().enumerate() {
            // Cells 0 and 1 are identical on purpose (dedup path).
            let mut cfg = SimConfig::single_core();
            cfg.instructions_per_core = 1_000;
            cfg.nrh = *nrh;
            cfg.mechanism = chronus_core::MechanismKind::Chronus;
            let w = WorkloadSpec::Apps {
                apps: vec![AppTrace::new("511.povray", 0, 2)],
                trace_instructions: 1_500,
            };
            spec.push(CellSpec::new(format!("c{i}"), w, cfg));
        }
        spec
    }

    fn scratch(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("chronus-grid-exec-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn duplicate_cells_simulate_once() {
        let dir = scratch("dedup");
        let store = ResultStore::open(&dir).unwrap();
        let spec = tiny_spec();
        let opts = ExecOpts {
            threads: 2,
            progress: false,
            ..ExecOpts::default()
        };
        let out = run_grid(&spec, Some(&store), &opts);
        assert!(out.is_complete());
        assert!(!out.is_degraded());
        // 3 slots filled but only 2 distinct simulations persisted.
        assert_eq!(out.stats.simulated, 3);
        assert_eq!(store.list().unwrap().len(), 2);
        assert_eq!(out.reports[0], out.reports[1]);
        assert_ne!(out.reports[0], out.reports[2]);

        // Second run: everything cached, nothing simulated.
        let again = run_grid(&spec, Some(&store), &opts);
        assert_eq!(again.stats.cached, 3);
        assert_eq!(again.stats.simulated, 0);
        assert_eq!(again.reports, out.reports);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn no_store_never_touches_the_filesystem() {
        let dir = scratch("nocache");
        let spec = tiny_spec();
        let opts = ExecOpts {
            threads: 1,
            progress: false,
            ..ExecOpts::default()
        };
        let out = run_grid(&spec, None, &opts);
        assert!(out.is_complete());
        assert_eq!(out.stats.simulated, 3);
        assert!(!dir.exists(), "cache-less run must not create directories");
    }

    #[test]
    fn summary_includes_failure_accounting() {
        let stats = ExecStats {
            total: 4,
            cached: 1,
            simulated: 2,
            skipped: 0,
            failed: 1,
        };
        assert_eq!(
            stats.summary(),
            "cells=4 cached=1 simulated=2 skipped=0 failed=1"
        );
    }

    #[test]
    fn manifest_roundtrips_through_the_store() {
        let dir = scratch("manifest");
        let store = ResultStore::open(&dir).unwrap();
        assert!(store.load_manifest("g").is_none());
        let manifest = FailureManifest {
            grid: "g".into(),
            shard: "1/1".into(),
            failures: vec![CellFailure {
                index: 3,
                label: "cell-3".into(),
                hash: "f".repeat(32),
                kind: FailureKind::Timeout,
                attempts: 4,
                error: "watchdog deadline 1.0s exceeded".into(),
            }],
        };
        store.save_manifest(&manifest).unwrap();
        assert_eq!(store.load_manifest("g").unwrap(), manifest);
        store.clear_manifest("g");
        assert!(store.load_manifest("g").is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn deadline_estimator_arms_after_three_samples() {
        let est = DeadlineEstimator::new(None);
        assert_eq!(est.deadline(), None);
        est.record(0.5);
        est.record(0.5);
        assert_eq!(est.deadline(), None, "two samples must not arm");
        est.record(0.5);
        // 20 × 0.5 s = 10 s is below the 30 s floor.
        assert_eq!(est.deadline(), Some(Duration::from_secs(30)));
        est.record(17.5); // mean now 4.75 s → 95 s
        assert_eq!(est.deadline(), Some(Duration::from_secs_f64(95.0)));

        let explicit = DeadlineEstimator::new(Some(Duration::from_millis(250)));
        assert_eq!(explicit.deadline(), Some(Duration::from_millis(250)));
    }
}
