//! Deterministic fault injection at the executor and store boundaries.
//!
//! Compiled in, off by default. `CHRONUS_FAULTS` turns it on for the CLI
//! harnesses:
//!
//! ```text
//! CHRONUS_FAULTS=panic:0.1,io:0.05,stall:0.02,stall_ms:2000,seed:7,attempts:1
//! ```
//!
//! * `panic:P` — a cell simulation panics with probability `P`;
//! * `io:P` — a store read/write fails with an injected `io::Error`;
//! * `stall:P` — a cell simulation sleeps `stall_ms` (default 120 000 ms)
//!   before starting, long enough to trip the watchdog deadline;
//! * `lease:P` — a lease claim/refresh fails with an injected `io::Error`
//!   (the executor degrades to uncoordinated mode: duplicate compute is
//!   possible, corruption is not);
//! * `journal:P` — a journal append fails (the run continues with an
//!   incomplete audit trail);
//! * `seed:N` — decorrelates runs; every decision is a pure function of
//!   `(seed, site, key, attempt)`, so one seed replays identically on every
//!   machine — which is what lets integration tests and CI assert exact
//!   recovery behaviour instead of trusting it;
//! * `attempts:N` — only inject on the first `N` attempts of each site, so
//!   retries deterministically heal (the retry-success path is testable).
//!
//! The library never reads the environment itself: executors and stores
//! take an explicit [`FaultInjector`] (see `ExecOpts::faults` and
//! `ResultStore::with_faults`), and the bench layer wires the variable
//! through. Tests construct plans directly and stay immune to env races.

use std::collections::HashMap;
use std::io;
use std::sync::{Arc, Mutex};
use std::time::Duration;

use crate::hash::unit01;

/// Environment variable the CLI harnesses read fault plans from.
pub const FAULTS_ENV: &str = "CHRONUS_FAULTS";

/// A parsed fault plan: which faults fire, how often, and with what seed.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Probability a cell simulation panics.
    pub panic_p: f64,
    /// Probability a store operation returns an injected I/O error.
    pub io_p: f64,
    /// Probability a cell simulation stalls before starting.
    pub stall_p: f64,
    /// Probability a lease operation fails with an injected I/O error.
    pub lease_p: f64,
    /// Probability a journal append fails with an injected I/O error.
    pub journal_p: f64,
    /// How long an injected stall sleeps.
    pub stall_ms: u64,
    /// Decision seed; every draw is pure in `(seed, site, key, attempt)`.
    pub seed: u64,
    /// Inject only on attempts `< N` of each site (`None` = every attempt).
    pub max_attempt: Option<u32>,
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self {
            panic_p: 0.0,
            io_p: 0.0,
            stall_p: 0.0,
            lease_p: 0.0,
            journal_p: 0.0,
            stall_ms: 120_000,
            seed: 0,
            max_attempt: None,
        }
    }
}

impl FaultPlan {
    /// Parses the `CHRONUS_FAULTS` syntax (`key:value` pairs, comma
    /// separated).
    ///
    /// # Errors
    ///
    /// Names the offending pair on unknown keys, unparsable numbers, and
    /// probabilities outside `[0, 1]`.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut plan = Self::default();
        for pair in text.split(',') {
            let pair = pair.trim();
            if pair.is_empty() {
                continue;
            }
            let (key, value) = pair
                .split_once(':')
                .ok_or_else(|| format!("fault spec '{pair}' is not key:value"))?;
            let prob = |v: &str| -> Result<f64, String> {
                let p: f64 = v
                    .trim()
                    .parse()
                    .map_err(|_| format!("fault '{key}': invalid probability '{v}'"))?;
                if !(0.0..=1.0).contains(&p) {
                    return Err(format!("fault '{key}': probability {p} outside [0, 1]"));
                }
                Ok(p)
            };
            let int = |v: &str| -> Result<u64, String> {
                v.trim()
                    .parse()
                    .map_err(|_| format!("fault '{key}': invalid integer '{v}'"))
            };
            match key.trim() {
                "panic" => plan.panic_p = prob(value)?,
                "io" => plan.io_p = prob(value)?,
                "stall" => plan.stall_p = prob(value)?,
                "lease" => plan.lease_p = prob(value)?,
                "journal" => plan.journal_p = prob(value)?,
                "stall_ms" => plan.stall_ms = int(value)?,
                "seed" => plan.seed = int(value)?,
                "attempts" => plan.max_attempt = Some(int(value)? as u32),
                other => {
                    return Err(format!(
                        "unknown fault key '{other}' (known: panic, io, stall, lease, \
                         journal, stall_ms, seed, attempts)"
                    ))
                }
            }
        }
        Ok(plan)
    }

    /// Reads and parses [`FAULTS_ENV`]; `Ok(None)` when unset or empty.
    ///
    /// # Errors
    ///
    /// Propagates [`Self::parse`] diagnostics.
    pub fn from_env() -> Result<Option<Self>, String> {
        match std::env::var(FAULTS_ENV) {
            Ok(text) if !text.trim().is_empty() => Self::parse(&text).map(Some),
            _ => Ok(None),
        }
    }

    /// Whether any fault can ever fire under this plan.
    pub fn is_active(&self) -> bool {
        self.panic_p > 0.0
            || self.io_p > 0.0
            || self.stall_p > 0.0
            || self.lease_p > 0.0
            || self.journal_p > 0.0
    }

    /// Builds the injector for this plan.
    pub fn injector(self) -> FaultInjector {
        FaultInjector {
            plan: self,
            io_attempts: Arc::new(Mutex::new(HashMap::new())),
        }
    }
}

/// What an injected executor-boundary fault does to a cell attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecFault {
    /// The simulation panics.
    Panic,
    /// The simulation sleeps this long before starting (tripping the
    /// watchdog when the deadline is shorter).
    Stall(Duration),
}

/// Draws deterministic fault decisions for executor and store sites.
///
/// Cloning shares the per-key I/O attempt counters, so a store and the
/// executor driving it observe one consistent schedule.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    plan: FaultPlan,
    /// Store operations carry no explicit attempt number, so retries are
    /// distinguished by counting calls per `(op, key)`.
    io_attempts: Arc<Mutex<HashMap<String, u32>>>,
}

impl FaultInjector {
    /// The plan behind this injector.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    fn gated(&self, attempt: u32) -> bool {
        self.plan.max_attempt.is_none_or(|n| attempt < n)
    }

    fn draw(&self, site: &str, key: &str, attempt: u32) -> f64 {
        unit01(format!("{}|{site}|{key}|{attempt}", self.plan.seed).as_bytes())
    }

    /// The fault (if any) for attempt `attempt` of simulating cell `key`.
    /// Panic takes precedence over stall when both fire.
    pub fn exec_fault(&self, key: &str, attempt: u32) -> Option<ExecFault> {
        if !self.gated(attempt) {
            return None;
        }
        if self.draw("panic", key, attempt) < self.plan.panic_p {
            return Some(ExecFault::Panic);
        }
        if self.draw("stall", key, attempt) < self.plan.stall_p {
            return Some(ExecFault::Stall(Duration::from_millis(self.plan.stall_ms)));
        }
        None
    }

    /// The injected error (if any) for the next `op` (`"put"`, `"get"`) on
    /// entry `key`. Each call advances that site's attempt counter, so a
    /// retried operation sees a fresh (attempt-gated) draw.
    pub fn io_fault(&self, op: &str, key: &str) -> Option<io::Error> {
        let attempt = {
            let mut counts = self.io_attempts.lock().expect("io counter lock");
            let slot = counts.entry(format!("{op}|{key}")).or_insert(0);
            let attempt = *slot;
            *slot += 1;
            attempt
        };
        if self.gated(attempt) && self.draw("io", &format!("{op}|{key}"), attempt) < self.plan.io_p
        {
            return Some(io::Error::other(format!(
                "injected I/O fault ({op} {key}, attempt {attempt})"
            )));
        }
        None
    }

    /// The injected error (if any) for the next lease `op` (`"claim"`,
    /// `"refresh"`) on cell `key`. Counted per `(op, key)` like store I/O,
    /// so `attempts:N` gating heals retries deterministically.
    pub fn lease_fault(&self, op: &str, key: &str) -> Option<io::Error> {
        let site = format!("lease-{op}|{key}");
        let attempt = {
            let mut counts = self.io_attempts.lock().expect("io counter lock");
            let slot = counts.entry(site.clone()).or_insert(0);
            let attempt = *slot;
            *slot += 1;
            attempt
        };
        if self.gated(attempt) && self.draw("lease", &site, attempt) < self.plan.lease_p {
            return Some(io::Error::other(format!(
                "injected lease fault ({op} {key}, attempt {attempt})"
            )));
        }
        None
    }

    /// The injected error (if any) for the next journal append about `key`.
    pub fn journal_fault(&self, key: &str) -> Option<io::Error> {
        let site = format!("journal|{key}");
        let attempt = {
            let mut counts = self.io_attempts.lock().expect("io counter lock");
            let slot = counts.entry(site.clone()).or_insert(0);
            let attempt = *slot;
            *slot += 1;
            attempt
        };
        if self.gated(attempt) && self.draw("journal", &site, attempt) < self.plan.journal_p {
            return Some(io::Error::other(format!(
                "injected journal fault ({key}, attempt {attempt})"
            )));
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_full_syntax() {
        let plan = FaultPlan::parse(
            "panic:0.5, io:0.25,stall:0.1,lease:0.2,journal:0.15,stall_ms:50,seed:9,attempts:2",
        )
        .unwrap();
        assert_eq!(
            plan,
            FaultPlan {
                panic_p: 0.5,
                io_p: 0.25,
                stall_p: 0.1,
                lease_p: 0.2,
                journal_p: 0.15,
                stall_ms: 50,
                seed: 9,
                max_attempt: Some(2),
            }
        );
        assert!(plan.is_active());
        assert!(!FaultPlan::default().is_active());
        assert_eq!(FaultPlan::parse("").unwrap(), FaultPlan::default());
    }

    #[test]
    fn rejects_malformed_specs() {
        for bad in [
            "panic",
            "panic:1.5",
            "panic:-0.1",
            "panic:zap",
            "warp:0.5",
            "seed:x",
            "stall_ms:ten",
        ] {
            let err = FaultPlan::parse(bad).unwrap_err();
            assert!(!err.is_empty(), "{bad} should fail");
        }
    }

    #[test]
    fn decisions_are_deterministic_and_seeded() {
        let a = FaultPlan {
            panic_p: 0.5,
            seed: 1,
            ..FaultPlan::default()
        }
        .injector();
        let b = FaultPlan {
            panic_p: 0.5,
            seed: 1,
            ..FaultPlan::default()
        }
        .injector();
        let c = FaultPlan {
            panic_p: 0.5,
            seed: 2,
            ..FaultPlan::default()
        }
        .injector();
        let keys: Vec<String> = (0..64).map(|i| format!("cell{i}")).collect();
        let fire = |inj: &FaultInjector| -> Vec<bool> {
            keys.iter()
                .map(|k| inj.exec_fault(k, 0).is_some())
                .collect()
        };
        assert_eq!(fire(&a), fire(&b), "same seed must replay identically");
        assert_ne!(fire(&a), fire(&c), "seeds must decorrelate");
        // p = 0.5 over 64 keys: both outcomes must appear.
        assert!(fire(&a).iter().any(|&f| f));
        assert!(fire(&a).iter().any(|&f| !f));
    }

    #[test]
    fn certainties_behave() {
        let always = FaultPlan {
            panic_p: 1.0,
            ..FaultPlan::default()
        }
        .injector();
        let never = FaultPlan::default().injector();
        for attempt in 0..4 {
            assert_eq!(always.exec_fault("k", attempt), Some(ExecFault::Panic));
            assert_eq!(never.exec_fault("k", attempt), None);
        }
    }

    #[test]
    fn attempt_gating_heals_retries() {
        let inj = FaultPlan {
            panic_p: 1.0,
            stall_p: 1.0,
            max_attempt: Some(1),
            ..FaultPlan::default()
        }
        .injector();
        assert_eq!(inj.exec_fault("k", 0), Some(ExecFault::Panic));
        assert_eq!(inj.exec_fault("k", 1), None, "attempt 1 must be clean");
    }

    #[test]
    fn stall_carries_the_configured_duration() {
        let inj = FaultPlan {
            stall_p: 1.0,
            stall_ms: 321,
            ..FaultPlan::default()
        }
        .injector();
        assert_eq!(
            inj.exec_fault("k", 0),
            Some(ExecFault::Stall(Duration::from_millis(321)))
        );
    }

    #[test]
    fn io_faults_count_attempts_per_site() {
        let inj = FaultPlan {
            io_p: 1.0,
            max_attempt: Some(1),
            ..FaultPlan::default()
        }
        .injector();
        assert!(inj.io_fault("put", "h1").is_some(), "first call injects");
        assert!(inj.io_fault("put", "h1").is_none(), "retry is gated clean");
        assert!(inj.io_fault("put", "h2").is_some(), "fresh key starts over");
        assert!(inj.io_fault("get", "h1").is_some(), "ops count separately");
    }

    #[test]
    fn lease_and_journal_faults_count_attempts_per_site() {
        let inj = FaultPlan {
            lease_p: 1.0,
            journal_p: 1.0,
            max_attempt: Some(1),
            ..FaultPlan::default()
        }
        .injector();
        assert!(
            inj.lease_fault("claim", "h1").is_some(),
            "first claim injects"
        );
        assert!(inj.lease_fault("claim", "h1").is_none(), "retry is clean");
        assert!(inj.lease_fault("refresh", "h1").is_some(), "ops separate");
        assert!(inj.journal_fault("h1").is_some(), "first append injects");
        assert!(inj.journal_fault("h1").is_none(), "second append is clean");
        // Inactive plans never fire.
        let off = FaultPlan::default().injector();
        assert!(off.lease_fault("claim", "h1").is_none());
        assert!(off.journal_fault("h1").is_none());
    }
}
