//! Thread-safe progress and ETA reporting on stderr.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::Instant;

/// Tracks completions across worker threads and prints one stderr line per
/// finished cell: count, elapsed wall-clock and a naive ETA extrapolated
/// from the mean cell cost so far (cells vary wildly — memory-bound mixes
/// cost orders of magnitude more than idle-heavy ones — so the ETA is an
/// order-of-magnitude aid, not a promise).
pub struct Progress {
    tag: String,
    total: usize,
    done: AtomicUsize,
    started: Instant,
    enabled: bool,
    /// Last-printed whole-second mark, for throttling.
    last_tick: AtomicU64,
}

impl Progress {
    /// A reporter for `total` pending cells; `enabled = false` silences it.
    pub fn new(tag: &str, total: usize, enabled: bool) -> Self {
        Self {
            tag: tag.to_string(),
            total,
            done: AtomicUsize::new(0),
            started: Instant::now(),
            enabled,
            last_tick: AtomicU64::new(u64::MAX),
        }
    }

    /// Records one finished cell (thread-safe) and maybe prints.
    pub fn cell_done(&self, label: &str) {
        let done = self.done.fetch_add(1, Ordering::Relaxed) + 1;
        if !self.enabled {
            return;
        }
        let elapsed = self.started.elapsed().as_secs_f64();
        // Print at most once per second, but always print the final cell.
        let tick = elapsed as u64;
        let last = self.last_tick.swap(tick, Ordering::Relaxed);
        if tick == last && done != self.total {
            return;
        }
        let per_cell = elapsed / done as f64;
        let remaining = self.total.saturating_sub(done);
        let eta = per_cell * remaining as f64;
        eprintln!(
            "[{}] {done}/{} cells simulated, elapsed {elapsed:.1}s, eta {eta:.1}s ({label})",
            self.tag, self.total
        );
    }

    /// Reports a failed cell attempt. Failures always print — even with
    /// progress disabled, a degraded run must leave a trace on stderr.
    pub fn cell_failed(&self, label: &str, attempt: u32, error: &str) {
        eprintln!(
            "[{}] cell '{label}' attempt {} failed: {error}",
            self.tag,
            attempt + 1
        );
    }

    /// Completions so far.
    pub fn completed(&self) -> usize {
        self.done.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_without_printing() {
        let p = Progress::new("test", 3, false);
        p.cell_done("a");
        p.cell_done("b");
        assert_eq!(p.completed(), 2);
    }
}
