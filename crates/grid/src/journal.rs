//! Append-only operations journal: every store mutation, auditable.
//!
//! Each holder (one executor, `doctor` pass, `gc`, …) appends to its own
//! `<store>/journal/<holder>.jsonl` — one compact JSON object per line,
//! fsync'd per event, never rewritten. Single-writer-per-file means no
//! append interleaving between processes; readers merge all files and sort
//! by `(at_ms, holder, seq)` to reconstruct the global order.
//!
//! Six event kinds cover the store's whole mutation surface:
//!
//! | kind       | meaning                                                  |
//! |------------|----------------------------------------------------------|
//! | Claim      | holder leased a cell and is about to simulate it          |
//! | Complete   | entry persisted; `checksum` = its footer digest, `wall` s |
//! | Fail       | cell permanently failed (kind + error in `detail`)        |
//! | Demote     | corrupt entry/manifest demoted to a reported miss         |
//! | Quarantine | `fsck` moved a corrupt file into `quarantine/`            |
//! | Gc         | `gc` removed an entry not in the keep-set                 |
//!
//! Journal writes are *audit*, not *control*: an append failure is reported
//! and swallowed by the higher layers (a broken audit trail must never take
//! down a simulation run), and `doctor` treats a missing Complete event for
//! an existing, verified entry as benign for exactly that reason. A torn
//! trailing line (crash mid-append) is counted and skipped by the reader.

use std::fs::{File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use serde::{Deserialize, Serialize};

use crate::faults::FaultInjector;

/// Subdirectory of the store that holds journal files.
pub const JOURNAL_SUBDIR: &str = "journal";

/// What happened to a cell (or store file).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EventKind {
    /// A holder leased the cell and is about to simulate it.
    Claim,
    /// The entry was persisted; `checksum` carries its footer digest.
    Complete,
    /// The cell permanently failed; `detail` carries kind + error.
    Fail,
    /// A corrupt entry or manifest was demoted to a reported miss.
    Demote,
    /// `fsck` quarantined a corrupt file.
    Quarantine,
    /// `gc` removed an entry outside the keep-set.
    Gc,
}

/// One journal line.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JournalEvent {
    /// Per-holder monotonic sequence number (tie-break within one file).
    pub seq: u64,
    /// Wall-clock epoch milliseconds at append time.
    pub at_ms: u64,
    /// Holder identity that appended the event.
    pub holder: String,
    /// Grid name, or `"-"` for store-level maintenance events.
    pub grid: String,
    /// Event kind.
    pub kind: EventKind,
    /// Cell hash (or quarantined file name for non-cell targets).
    pub hash: String,
    /// Attempt number the event refers to (0-based; 0 when n/a).
    pub attempt: u32,
    /// Wall-clock seconds of the simulation (0 when n/a).
    pub wall: f64,
    /// Entry footer digest for `Complete`; empty otherwise.
    pub checksum: String,
    /// Free-form context (failure kind+error, reclaim reason, …).
    pub detail: String,
}

struct JournalState {
    file: Option<File>,
    seq: u64,
}

/// One holder's append-only journal under `<store>/journal/`.
///
/// The file (and the directory) are created lazily on first append, so
/// read-only store usage never litters the store.
pub struct Journal {
    dir: PathBuf,
    holder: String,
    faults: Option<FaultInjector>,
    state: Mutex<JournalState>,
}

impl std::fmt::Debug for Journal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Journal")
            .field("dir", &self.dir)
            .field("holder", &self.holder)
            .finish()
    }
}

impl Journal {
    /// A journal for `holder` under `<store_dir>/journal/`.
    pub fn open(store_dir: &Path, holder: impl Into<String>) -> Self {
        Self {
            dir: store_dir.join(JOURNAL_SUBDIR),
            holder: holder.into(),
            faults: None,
            state: Mutex::new(JournalState { file: None, seq: 0 }),
        }
    }

    /// Attaches deterministic fault injection to the append path.
    #[must_use]
    pub fn with_faults(mut self, faults: Option<FaultInjector>) -> Self {
        self.faults = faults;
        self
    }

    /// This journal's holder identity.
    pub fn holder(&self) -> &str {
        &self.holder
    }

    /// This holder's journal file path.
    pub fn path(&self) -> PathBuf {
        self.dir.join(format!("{}.jsonl", self.holder))
    }

    /// Appends one event (fills `seq`, `at_ms`, `holder`) and fsyncs it.
    ///
    /// # Errors
    ///
    /// Propagates append/fsync failures (including injected journal
    /// faults). Callers on the simulation path report and swallow these —
    /// audit never aborts compute.
    #[allow(clippy::too_many_arguments)]
    pub fn append(
        &self,
        kind: EventKind,
        grid: &str,
        hash: &str,
        attempt: u32,
        wall: f64,
        checksum: &str,
        detail: &str,
    ) -> io::Result<()> {
        if let Some(faults) = &self.faults {
            if let Some(e) = faults.journal_fault(hash) {
                return Err(e);
            }
        }
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        if state.file.is_none() {
            std::fs::create_dir_all(&self.dir)?;
            state.file = Some(
                OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(self.path())?,
            );
        }
        let event = JournalEvent {
            seq: state.seq,
            at_ms: crate::lease::now_ms(),
            holder: self.holder.clone(),
            grid: grid.to_string(),
            kind,
            hash: hash.to_string(),
            attempt,
            wall,
            checksum: checksum.to_string(),
            detail: detail.to_string(),
        };
        let line = serde_json::to_string(&event).expect("journal events always serialize");
        let file = state.file.as_mut().expect("opened above");
        file.write_all(line.as_bytes())?;
        file.write_all(b"\n")?;
        file.sync_data()?;
        state.seq += 1;
        Ok(())
    }

    /// [`Journal::append`] that reports failures to stderr instead of
    /// propagating them — the audit-never-aborts-compute convenience.
    #[allow(clippy::too_many_arguments)]
    pub fn record(
        &self,
        kind: EventKind,
        grid: &str,
        hash: &str,
        attempt: u32,
        wall: f64,
        checksum: &str,
        detail: &str,
    ) {
        if let Err(e) = self.append(kind, grid, hash, attempt, wall, checksum, detail) {
            eprintln!(
                "chronus-grid: journal append failed for {hash} ({kind:?}): {e} (run continues; audit trail incomplete)"
            );
        }
    }
}

/// The merged, ordered view of every journal file under a store.
#[derive(Debug, Default)]
pub struct JournalScan {
    /// All parsed events, sorted by `(at_ms, holder, seq)`.
    pub events: Vec<JournalEvent>,
    /// Unparsable lines skipped (torn trailing writes from crashes).
    pub torn_lines: usize,
    /// Journal files read.
    pub files: usize,
}

/// Reads and merges every `<store_dir>/journal/*.jsonl`. Unparsable lines
/// (torn by a crash mid-append) are counted, not fatal.
///
/// # Errors
///
/// Propagates directory/file read failures; a missing journal directory is
/// an empty scan, not an error.
pub fn read_events(store_dir: &Path) -> io::Result<JournalScan> {
    let mut scan = JournalScan::default();
    let dir = store_dir.join(JOURNAL_SUBDIR);
    let entries = match std::fs::read_dir(&dir) {
        Ok(entries) => entries,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(scan),
        Err(e) => return Err(e),
    };
    let mut paths: Vec<PathBuf> = Vec::new();
    for entry in entries {
        let entry = entry?;
        let path = entry.path();
        if path.extension().is_some_and(|e| e == "jsonl") {
            paths.push(path);
        }
    }
    paths.sort();
    for path in paths {
        scan.files += 1;
        let text = std::fs::read_to_string(&path)?;
        for line in text.lines() {
            if line.trim().is_empty() {
                continue;
            }
            match serde_json::from_str::<JournalEvent>(line) {
                Ok(event) => scan.events.push(event),
                Err(_) => scan.torn_lines += 1,
            }
        }
    }
    scan.events
        .sort_by(|a, b| (a.at_ms, &a.holder, a.seq).cmp(&(b.at_ms, &b.holder, b.seq)));
    Ok(scan)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("chronus-grid-journal-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn append_and_read_round_trip() {
        let dir = scratch("roundtrip");
        let journal = Journal::open(&dir, "host-1-0");
        journal
            .append(EventKind::Claim, "g", &"a".repeat(32), 0, 0.0, "", "")
            .unwrap();
        journal
            .append(
                EventKind::Complete,
                "g",
                &"a".repeat(32),
                1,
                0.25,
                "deadbeef",
                "",
            )
            .unwrap();
        let scan = read_events(&dir).unwrap();
        assert_eq!(scan.files, 1);
        assert_eq!(scan.torn_lines, 0);
        assert_eq!(scan.events.len(), 2);
        assert_eq!(scan.events[0].kind, EventKind::Claim);
        assert_eq!(scan.events[0].seq, 0);
        assert_eq!(scan.events[1].kind, EventKind::Complete);
        assert_eq!(scan.events[1].checksum, "deadbeef");
        assert_eq!(scan.events[1].wall, 0.25);
        assert_eq!(scan.events[1].seq, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn reader_merges_holders_and_tolerates_torn_lines() {
        let dir = scratch("torn");
        let a = Journal::open(&dir, "host-1-0");
        let b = Journal::open(&dir, "host-2-0");
        a.append(EventKind::Claim, "g", &"a".repeat(32), 0, 0.0, "", "")
            .unwrap();
        b.append(EventKind::Gc, "-", &"b".repeat(32), 0, 0.0, "", "")
            .unwrap();
        // Simulate a crash mid-append: a torn half-line at EOF.
        {
            let mut f = OpenOptions::new().append(true).open(a.path()).unwrap();
            f.write_all(b"{\"seq\":9,\"at_ms\":1,\"holde").unwrap();
        }
        let scan = read_events(&dir).unwrap();
        assert_eq!(scan.files, 2);
        assert_eq!(scan.events.len(), 2);
        assert_eq!(scan.torn_lines, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_journal_dir_is_an_empty_scan() {
        let dir = scratch("empty");
        let scan = read_events(&dir).unwrap();
        assert_eq!(scan.files, 0);
        assert!(scan.events.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn record_swallows_injected_faults() {
        let dir = scratch("faulted");
        let plan = crate::FaultPlan::parse("journal:1.0,seed:3").unwrap();
        let journal = Journal::open(&dir, "host-1-0").with_faults(Some(plan.injector()));
        // Must not panic or error out of `record`.
        journal.record(EventKind::Claim, "g", &"a".repeat(32), 0, 0.0, "", "");
        assert!(
            journal
                .append(EventKind::Claim, "g", &"a".repeat(32), 0, 0.0, "", "")
                .is_err(),
            "append must surface the injected fault"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
