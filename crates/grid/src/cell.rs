//! Declarative descriptions of one grid cell: the workload and the fully
//! resolved simulator configuration.
//!
//! A cell is everything needed to reproduce one simulation run with no
//! further inputs: trace generation is re-derived from the names, slots and
//! seeds recorded here, so a [`CellSpec`] can be hashed, cached, shipped to
//! another machine, and re-simulated there with bit-identical results.

use chronus_cpu::Trace;
use chronus_ctrl::AddressMapping;
use chronus_sim::SimConfig;
use chronus_workloads::{perf_attack_trace, synthetic_app};
use serde::{Deserialize, Serialize};

/// Simulator-version stamp baked into every cache key.
///
/// Bump this whenever a change to the simulator (timing, scheduling,
/// mechanism behaviour, energy accounting, trace generation, …) can alter
/// any `SimReport` field: stale cache entries then miss instead of serving
/// results from an older simulator.
pub const SIM_VERSION: u32 = 3;

/// One synthetic per-core trace: the app profile plus the exact generation
/// parameters the harnesses use.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AppTrace {
    /// Profile name (must resolve via `chronus_workloads::profile_by_name`).
    pub app: String,
    /// Placement slot (base-address stripe) for `synthetic_app`.
    pub slot: u64,
    /// Trace-generation seed.
    pub seed: u64,
}

impl AppTrace {
    /// A trace spec.
    pub fn new(app: impl Into<String>, slot: u64, seed: u64) -> Self {
        Self {
            app: app.into(),
            slot,
            seed,
        }
    }

    fn generate(&self, instructions: u64) -> Trace {
        synthetic_app(&self.app, self.slot)
            .unwrap_or_else(|| panic!("unknown app profile '{}'", self.app))
            .generate(instructions, self.seed)
    }
}

/// The §11 performance-attack trace parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AttackSpec {
    /// Address mapping the attacker crafts addresses against.
    pub mapping: AddressMapping,
    /// Banks hammered round-robin.
    pub banks: usize,
    /// Aggressor rows per bank.
    pub rows: usize,
}

/// How a cell's per-core traces are produced.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum WorkloadSpec {
    /// One synthetic trace per entry (multi-programmed mix, homogeneous
    /// copies, or a single alone run).
    Apps {
        /// Per-core trace specs, one per core.
        apps: Vec<AppTrace>,
        /// Instructions generated per trace (harnesses pad past the
        /// retirement target).
        trace_instructions: u64,
    },
    /// Benign traces plus one `perf_attack_trace` appended as the last
    /// core (§11 / ablation harnesses).
    AppsWithAttacker {
        /// Benign per-core trace specs.
        apps: Vec<AppTrace>,
        /// Instructions generated per benign trace; also the attacker's
        /// access count.
        trace_instructions: u64,
        /// Attacker parameters.
        attack: AttackSpec,
    },
}

impl WorkloadSpec {
    /// Number of cores this workload drives.
    pub fn num_cores(&self) -> usize {
        match self {
            WorkloadSpec::Apps { apps, .. } => apps.len(),
            WorkloadSpec::AppsWithAttacker { apps, .. } => apps.len() + 1,
        }
    }

    /// Regenerates the per-core traces (deterministic in the spec).
    pub fn traces(&self, geo: &chronus_dram::Geometry) -> Vec<Trace> {
        match self {
            WorkloadSpec::Apps {
                apps,
                trace_instructions,
            } => apps
                .iter()
                .map(|a| a.generate(*trace_instructions))
                .collect(),
            WorkloadSpec::AppsWithAttacker {
                apps,
                trace_instructions,
                attack,
            } => {
                let mut traces: Vec<Trace> = apps
                    .iter()
                    .map(|a| a.generate(*trace_instructions))
                    .collect();
                traces.push(perf_attack_trace(
                    attack.mapping,
                    geo,
                    attack.banks,
                    attack.rows,
                    *trace_instructions as usize,
                ));
                traces
            }
        }
    }

    /// Short human label, e.g. `429.mcf+470.lbm` or `470.lbm+…+ATTACK`.
    pub fn summary(&self) -> String {
        let join = |apps: &[AppTrace]| {
            apps.iter()
                .map(|a| a.app.as_str())
                .collect::<Vec<_>>()
                .join("+")
        };
        match self {
            WorkloadSpec::Apps { apps, .. } => join(apps),
            WorkloadSpec::AppsWithAttacker { apps, .. } => format!("{}+ATTACK", join(apps)),
        }
    }
}

/// One experiment-grid cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellSpec {
    /// Display label (tables, progress); NOT part of the cache key, so
    /// relabelling cells never invalidates cached results.
    pub label: String,
    /// Trace production.
    pub workload: WorkloadSpec,
    /// Fully resolved simulator configuration.
    pub config: SimConfig,
}

impl CellSpec {
    /// A cell; `config.num_cores` is forced to match the workload.
    pub fn new(label: impl Into<String>, workload: WorkloadSpec, mut config: SimConfig) -> Self {
        config.num_cores = workload.num_cores();
        Self {
            label: label.into(),
            workload,
            config,
        }
    }
}

/// The identity actually hashed for the result store: everything that can
/// change the simulation output, and nothing that can't.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellKey {
    /// [`SIM_VERSION`] at hash time.
    pub sim_version: u32,
    /// The workload.
    pub workload: WorkloadSpec,
    /// The configuration.
    pub config: SimConfig,
}

impl CellKey {
    /// The key of a cell.
    pub fn of(cell: &CellSpec) -> Self {
        Self {
            sim_version: SIM_VERSION,
            workload: cell.workload.clone(),
            config: cell.config.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traces_regenerate_deterministically() {
        let w = WorkloadSpec::Apps {
            apps: vec![
                AppTrace::new("429.mcf", 0, 7),
                AppTrace::new("470.lbm", 1, 9),
            ],
            trace_instructions: 2_000,
        };
        let geo = chronus_dram::Geometry::ddr5();
        let a = w.traces(&geo);
        let b = w.traces(&geo);
        assert_eq!(a.len(), 2);
        assert_eq!(a[0].entries.len(), b[0].entries.len());
        assert_eq!(a[1].entries, b[1].entries);
    }

    #[test]
    fn attacker_appends_one_core() {
        let w = WorkloadSpec::AppsWithAttacker {
            apps: vec![AppTrace::new("470.lbm", 0, 1)],
            trace_instructions: 500,
            attack: AttackSpec {
                mapping: AddressMapping::Mop,
                banks: 2,
                rows: 4,
            },
        };
        assert_eq!(w.num_cores(), 2);
        let traces = w.traces(&chronus_dram::Geometry::ddr5());
        assert_eq!(traces.len(), 2);
        assert!(w.summary().ends_with("+ATTACK"));
    }

    #[test]
    fn cell_forces_core_count() {
        let w = WorkloadSpec::Apps {
            apps: vec![AppTrace::new("429.mcf", 0, 1)],
            trace_instructions: 100,
        };
        let cell = CellSpec::new("x", w, chronus_sim::SimConfig::four_core());
        assert_eq!(cell.config.num_cores, 1);
    }
}
