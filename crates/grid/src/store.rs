//! The content-addressed on-disk result store.
//!
//! One JSON file per completed cell, named `<hash>.json`, holding the full
//! [`CellKey`] (for auditability and `gc` debugging) plus the `SimReport`.
//! Writes go through a temp file + rename so concurrent sharded processes
//! sharing one directory never observe torn entries.

use std::collections::HashSet;
use std::io;
use std::path::{Path, PathBuf};

use chronus_sim::SimReport;
use serde::{Deserialize, Serialize};

use crate::cell::{CellKey, CellSpec};

/// Environment variable overriding the default store directory.
pub const GRID_DIR_ENV: &str = "CHRONUS_GRID_DIR";

/// Default store directory under the working directory.
pub const DEFAULT_GRID_DIR: &str = "grid-cache";

/// One stored entry: identity plus result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellRecord {
    /// Full cell identity (what was hashed).
    pub key: CellKey,
    /// The simulation result.
    pub report: SimReport,
}

/// A directory of completed cells keyed by content hash.
#[derive(Debug, Clone)]
pub struct ResultStore {
    dir: PathBuf,
}

impl ResultStore {
    /// Opens (creating if needed) a store at `dir`.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation failures.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(Self { dir })
    }

    /// Opens the default store: `$CHRONUS_GRID_DIR` or `./grid-cache`.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation failures.
    pub fn open_default() -> io::Result<Self> {
        Self::open(Self::default_dir())
    }

    /// The directory [`Self::open_default`] would use.
    pub fn default_dir() -> PathBuf {
        std::env::var_os(GRID_DIR_ENV)
            .map(PathBuf::from)
            .unwrap_or_else(|| PathBuf::from(DEFAULT_GRID_DIR))
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The file path of a hash.
    pub fn path_of(&self, hash: &str) -> PathBuf {
        self.dir.join(format!("{hash}.json"))
    }

    /// Whether a completed entry exists for `hash`.
    pub fn contains(&self, hash: &str) -> bool {
        self.path_of(hash).is_file()
    }

    /// Loads the report stored for `hash`; `None` if absent or unreadable
    /// (a corrupt entry behaves as a miss and is re-simulated).
    pub fn get(&self, hash: &str) -> Option<SimReport> {
        let text = std::fs::read_to_string(self.path_of(hash)).ok()?;
        match serde_json::from_str::<CellRecord>(&text) {
            Ok(rec) => Some(rec.report),
            Err(e) => {
                eprintln!(
                    "chronus-grid: ignoring corrupt cache entry {} ({e})",
                    self.path_of(hash).display()
                );
                None
            }
        }
    }

    /// Persists a completed cell atomically (write temp file, rename).
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn put(&self, hash: &str, cell: &CellSpec, report: &SimReport) -> io::Result<()> {
        let record = CellRecord {
            key: CellKey::of(cell),
            report: report.clone(),
        };
        let json = serde_json::to_string_pretty(&record).expect("records always serialize");
        let tmp = self.dir.join(format!(".{hash}.{}.tmp", std::process::id()));
        std::fs::write(&tmp, json)?;
        std::fs::rename(&tmp, self.path_of(hash))
    }

    /// Hashes of all completed entries in the store.
    ///
    /// # Errors
    ///
    /// Propagates directory-read failures.
    pub fn list(&self) -> io::Result<Vec<String>> {
        let mut out = Vec::new();
        for entry in std::fs::read_dir(&self.dir)? {
            let name = entry?.file_name();
            let name = name.to_string_lossy();
            if let Some(hash) = name.strip_suffix(".json") {
                if hash.len() == 32 && hash.bytes().all(|b| b.is_ascii_hexdigit()) {
                    out.push(hash.to_string());
                }
            }
        }
        out.sort();
        Ok(out)
    }

    /// Deletes every entry whose hash is not in `keep`; returns how many
    /// files were removed.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn gc(&self, keep: &HashSet<String>) -> io::Result<usize> {
        let mut removed = 0;
        for hash in self.list()? {
            if !keep.contains(&hash) {
                std::fs::remove_file(self.path_of(&hash))?;
                removed += 1;
            }
        }
        Ok(removed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::{AppTrace, WorkloadSpec};
    use crate::hash::cell_hash;
    use chronus_sim::{SimConfig, System};

    fn scratch(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("chronus-grid-store-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn tiny_cell() -> CellSpec {
        let w = WorkloadSpec::Apps {
            apps: vec![AppTrace::new("511.povray", 0, 5)],
            trace_instructions: 1_200,
        };
        let mut cfg = SimConfig::single_core();
        cfg.instructions_per_core = 1_000;
        CellSpec::new("tiny", w, cfg)
    }

    #[test]
    fn put_get_roundtrip() {
        let dir = scratch("roundtrip");
        let store = ResultStore::open(&dir).unwrap();
        let cell = tiny_cell();
        let hash = cell_hash(&cell);
        assert!(store.get(&hash).is_none());

        let report = System::build(&cell.config).run(cell.workload.traces(&cell.config.geometry));
        store.put(&hash, &cell, &report).unwrap();
        assert!(store.contains(&hash));
        assert_eq!(store.get(&hash).unwrap(), report);
        assert_eq!(store.list().unwrap(), vec![hash.clone()]);

        // Corrupt entries behave as misses.
        std::fs::write(store.path_of(&hash), "{oops").unwrap();
        assert!(store.get(&hash).is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn gc_keeps_only_requested_hashes() {
        let dir = scratch("gc");
        let store = ResultStore::open(&dir).unwrap();
        let cell = tiny_cell();
        let hash = cell_hash(&cell);
        let report = System::build(&cell.config).run(cell.workload.traces(&cell.config.geometry));
        store.put(&hash, &cell, &report).unwrap();
        let bogus = "0".repeat(32);
        std::fs::write(store.path_of(&bogus), "{}").unwrap();

        let keep: HashSet<String> = [hash.clone()].into_iter().collect();
        assert_eq!(store.gc(&keep).unwrap(), 1);
        assert!(store.contains(&hash));
        assert!(!store.contains(&bogus));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
