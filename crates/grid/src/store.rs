//! The content-addressed on-disk result store.
//!
//! One file per completed cell, named `<hash>.json`, holding the full
//! [`CellKey`] (for auditability and `gc` debugging) plus the `SimReport`,
//! followed by a one-line integrity footer:
//!
//! ```text
//! { …pretty JSON CellRecord… }
//! #chronus-cell v2 len=<payload bytes> fnv=<128-bit FNV digest>
//! ```
//!
//! Every read re-verifies the footer (length catches truncation, the
//! digest catches bit rot and torn writes, the version token catches
//! format drift), so a damaged entry can never silently feed a figure —
//! it behaves as a cache miss and is re-simulated. The footer is a pure
//! function of the payload, which preserves the byte-identity invariant:
//! two stores that simulated the same cells hold identical files.
//!
//! Writes go through a temp file + rename so concurrent sharded processes
//! sharing one directory never observe torn entries; temp files orphaned
//! by killed processes are reaped on open (when stale) and by
//! [`ResultStore::fsck`] (unconditionally). `fsck` moves entries that fail
//! verification into `quarantine/`, which re-enqueues them: the next run
//! misses on the quarantined hash and re-simulates the cell.
//!
//! Two kinds of non-authoritative sidecar live next to the entries:
//! `<hash>.wall` records the wall-clock seconds the cell cost (feeding the
//! executor's adaptive watchdog deadline) and `failures/<grid>.json` holds
//! the [`FailureManifest`](crate::exec::FailureManifest) of the last
//! degraded run. Neither participates in byte-identity or cache hits.

use std::collections::HashSet;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

use chronus_sim::SimReport;
use serde::{Deserialize, Serialize};

use crate::cell::{CellKey, CellSpec, SIM_VERSION};
use crate::exec::FailureManifest;
use crate::faults::FaultInjector;
use crate::hash::digest128;
use crate::journal::{EventKind, Journal};
use crate::lease;

/// Environment variable overriding the default store directory.
pub const GRID_DIR_ENV: &str = "CHRONUS_GRID_DIR";

/// Default store directory under the working directory.
pub const DEFAULT_GRID_DIR: &str = "grid-cache";

/// On-disk entry format version, stamped into (and checked against) every
/// footer. Bump when the entry layout changes; `fsck` then quarantines
/// entries written by other versions.
pub const STORE_FORMAT_VERSION: u32 = 2;

/// First token of the integrity footer line.
const FOOTER_TAG: &str = "#chronus-cell";

/// Temp files untouched for this long are considered orphaned by a dead
/// process and reaped when the store opens. Live writers rename within
/// milliseconds, so minutes of margin is conservative.
const STALE_TMP_AGE: Duration = Duration::from_secs(15 * 60);

/// One stored entry: identity plus result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellRecord {
    /// Full cell identity (what was hashed).
    pub key: CellKey,
    /// The simulation result.
    pub report: SimReport,
}

/// Why an on-disk entry failed verification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EntryIssue {
    /// The file could not be read (permissions, I/O error, bad UTF-8).
    Unreadable(String),
    /// No integrity footer — a legacy (pre-checksum) or torn entry.
    MissingFooter,
    /// Footer written by a different store format version.
    FormatVersion {
        /// The version token found in the footer.
        found: String,
    },
    /// Payload length disagrees with the footer (truncated or padded).
    Truncated {
        /// Bytes the footer promises.
        expected: usize,
        /// Bytes actually present.
        actual: usize,
    },
    /// Payload bytes do not hash to the footer digest.
    ChecksumMismatch,
    /// The payload is not a parseable [`CellRecord`].
    BadJson(String),
    /// The record was produced by a different simulator version.
    SimVersion {
        /// The `sim_version` recorded in the entry.
        found: u32,
    },
}

impl std::fmt::Display for EntryIssue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EntryIssue::Unreadable(e) => write!(f, "unreadable ({e})"),
            EntryIssue::MissingFooter => write!(f, "missing integrity footer (legacy or torn)"),
            EntryIssue::FormatVersion { found } => {
                write!(f, "store format {found}, expected v{STORE_FORMAT_VERSION}")
            }
            EntryIssue::Truncated { expected, actual } => {
                write!(f, "truncated ({actual} of {expected} payload bytes)")
            }
            EntryIssue::ChecksumMismatch => write!(f, "checksum mismatch"),
            EntryIssue::BadJson(e) => write!(f, "unparseable record ({e})"),
            EntryIssue::SimVersion { found } => {
                write!(f, "simulator version {found}, expected {SIM_VERSION}")
            }
        }
    }
}

/// The verified state of one store entry.
#[derive(Debug)]
pub enum EntryState {
    /// No file for this hash.
    Missing,
    /// The entry verified end to end.
    Ok(Box<CellRecord>),
    /// The file exists but failed verification.
    Bad(EntryIssue),
}

impl EntryState {
    /// Whether the entry verified.
    pub fn is_ok(&self) -> bool {
        matches!(self, EntryState::Ok(_))
    }

    /// Whether a file exists but failed verification.
    pub fn is_bad(&self) -> bool {
        matches!(self, EntryState::Bad(_))
    }
}

/// What one [`ResultStore::fsck`] pass found and did.
#[derive(Debug, Default)]
pub struct FsckReport {
    /// Entries examined.
    pub scanned: usize,
    /// Entries that verified.
    pub ok: usize,
    /// `(file name, reason)` of every entry moved to `quarantine/`.
    pub quarantined: Vec<(String, String)>,
    /// `(manifest file name, reason)` of every corrupt failure manifest
    /// moved to `quarantine/failures/`.
    pub quarantined_manifests: Vec<(String, String)>,
    /// Orphaned temp files removed.
    pub reaped_tmp: usize,
    /// Wall-clock sidecars whose entry no longer exists, removed.
    pub reaped_sidecars: usize,
    /// Entries (and temp files) left untouched because a live lease
    /// protects them.
    pub leased_skipped: usize,
}

impl FsckReport {
    /// Whether every entry and manifest verified (reaping orphans still
    /// counts as clean).
    pub fn is_clean(&self) -> bool {
        self.quarantined.is_empty() && self.quarantined_manifests.is_empty()
    }

    /// One machine-greppable line.
    pub fn summary(&self) -> String {
        format!(
            "scanned={} ok={} quarantined={} reaped_tmp={} reaped_sidecars={} manifests={} leased={}",
            self.scanned,
            self.ok,
            self.quarantined.len(),
            self.reaped_tmp,
            self.reaped_sidecars,
            self.quarantined_manifests.len(),
            self.leased_skipped
        )
    }
}

/// The verified state of a grid's failure manifest.
#[derive(Debug)]
pub enum ManifestState {
    /// No manifest for this grid.
    Missing,
    /// The manifest parsed cleanly.
    Ok(FailureManifest),
    /// A manifest file exists but cannot be read or parsed — failure
    /// history is at risk of silent loss.
    Bad(String),
}

/// Holds the advisory whole-store lock while in scope (dropped = released;
/// the kernel also releases it if the holder dies). Serializes the
/// multi-step read-modify-write paths that atomic rename alone cannot
/// protect: failure-manifest merges, `gc`, `fsck`, and `doctor`.
#[derive(Debug)]
pub struct StoreLock {
    _file: std::fs::File,
}

/// A directory of completed cells keyed by content hash.
#[derive(Debug, Clone)]
pub struct ResultStore {
    dir: PathBuf,
    faults: Option<FaultInjector>,
    journal: Option<Arc<Journal>>,
}

impl ResultStore {
    /// Opens (creating if needed) a store at `dir`, reaping temp files
    /// orphaned by dead processes (older than 15 minutes; count logged).
    ///
    /// # Errors
    ///
    /// Propagates directory-creation failures.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        let store = Self {
            dir,
            faults: None,
            journal: None,
        };
        match store.reap_tmp_older_than(STALE_TMP_AGE) {
            Ok(0) | Err(_) => {}
            Ok(n) => eprintln!(
                "chronus-grid: reaped {n} stale temp file(s) from {} (crash leftovers)",
                store.dir.display()
            ),
        }
        Ok(store)
    }

    /// Opens the default store: `$CHRONUS_GRID_DIR` or `./grid-cache`.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation failures.
    pub fn open_default() -> io::Result<Self> {
        Self::open(Self::default_dir())
    }

    /// The directory [`Self::open_default`] would use.
    pub fn default_dir() -> PathBuf {
        std::env::var_os(GRID_DIR_ENV)
            .map(PathBuf::from)
            .unwrap_or_else(|| PathBuf::from(DEFAULT_GRID_DIR))
    }

    /// Attaches a fault injector to the store's read/write boundary
    /// (deterministic I/O-error injection; see [`crate::faults`]).
    #[must_use]
    pub fn with_faults(mut self, faults: Option<FaultInjector>) -> Self {
        self.faults = faults;
        self
    }

    /// Attaches an operations journal: store-level mutations (demotes,
    /// quarantines, gc) are recorded through it. Cell-level events (claim,
    /// complete, fail) are the executor's responsibility — it has the grid
    /// context.
    #[must_use]
    pub fn with_journal(mut self, journal: Arc<Journal>) -> Self {
        self.journal = Some(journal);
        self
    }

    /// The attached journal, if any.
    pub fn journal(&self) -> Option<&Arc<Journal>> {
        self.journal.as_ref()
    }

    /// The attached fault injector, if any.
    pub fn faults(&self) -> Option<&FaultInjector> {
        self.faults.as_ref()
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Acquires the advisory whole-store lock (blocking). See
    /// [`StoreLock`]. Lock holders must not call other locking methods
    /// (`fsck`, `gc`) while holding it — `flock` does not nest across
    /// descriptors within one process.
    ///
    /// # Errors
    ///
    /// Propagates lock-file creation and `flock` failures.
    pub fn lock(&self) -> io::Result<StoreLock> {
        let file = std::fs::OpenOptions::new()
            .create(true)
            .truncate(false)
            .write(true)
            .open(self.dir.join(".store.lock"))?;
        file.lock()?;
        Ok(StoreLock { _file: file })
    }

    /// Records a store-level journal event, if a journal is attached.
    fn journal_event(&self, kind: EventKind, target: &str, detail: &str) {
        if let Some(journal) = &self.journal {
            journal.record(kind, "-", target, 0, 0.0, "", detail);
        }
    }

    /// The file path of a hash.
    pub fn path_of(&self, hash: &str) -> PathBuf {
        self.dir.join(format!("{hash}.json"))
    }

    /// The wall-clock sidecar path of a hash.
    fn wall_path(&self, hash: &str) -> PathBuf {
        self.dir.join(format!("{hash}.wall"))
    }

    /// The quarantine directory (created lazily by [`Self::fsck`]).
    pub fn quarantine_dir(&self) -> PathBuf {
        self.dir.join("quarantine")
    }

    /// The failure-manifest path of a grid.
    pub fn manifest_path(&self, grid: &str) -> PathBuf {
        self.dir.join("failures").join(format!("{grid}.json"))
    }

    /// Whether a completed entry exists for `hash` (presence only; reads
    /// verify integrity separately).
    pub fn contains(&self, hash: &str) -> bool {
        self.path_of(hash).is_file()
    }

    /// Reads and fully verifies the entry for `hash`: footer present,
    /// format version current, length exact, checksum matching, record
    /// parseable, simulator version current.
    pub fn verify(&self, hash: &str) -> EntryState {
        let text = match std::fs::read_to_string(self.path_of(hash)) {
            Ok(text) => text,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return EntryState::Missing,
            Err(e) => return EntryState::Bad(EntryIssue::Unreadable(e.to_string())),
        };
        match verify_entry_text(&text) {
            Ok(record) => EntryState::Ok(Box::new(record)),
            Err(issue) => EntryState::Bad(issue),
        }
    }

    /// Loads the report stored for `hash`; `None` if absent or failing
    /// verification (a damaged entry behaves as a miss and is
    /// re-simulated).
    pub fn get(&self, hash: &str) -> Option<SimReport> {
        if let Some(faults) = &self.faults {
            if let Some(e) = faults.io_fault("get", hash) {
                eprintln!("chronus-grid: read of cell {hash} failed ({e}); treating as miss");
                return None;
            }
        }
        match self.verify(hash) {
            EntryState::Ok(record) => Some(record.report),
            EntryState::Missing => None,
            EntryState::Bad(issue) => {
                eprintln!(
                    "chronus-grid: ignoring cache entry {} ({issue}); run `chronus-sweep fsck` \
                     to quarantine it",
                    self.path_of(hash).display()
                );
                self.journal_event(EventKind::Demote, hash, &issue.to_string());
                None
            }
        }
    }

    /// Persists a completed cell atomically (write temp file, rename),
    /// appending the integrity footer. Returns the footer digest, which
    /// the executor journals with the `Complete` event so `doctor` can
    /// later match journal against store contents.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures (including injected ones).
    pub fn put(&self, hash: &str, cell: &CellSpec, report: &SimReport) -> io::Result<String> {
        if let Some(faults) = &self.faults {
            if let Some(e) = faults.io_fault("put", hash) {
                return Err(e);
            }
        }
        let record = CellRecord {
            key: CellKey::of(cell),
            report: report.clone(),
        };
        let payload = serde_json::to_string_pretty(&record).expect("records always serialize");
        let digest = digest128(payload.as_bytes());
        let full = format!(
            "{payload}\n{FOOTER_TAG} v{STORE_FORMAT_VERSION} len={} fnv={digest}\n",
            payload.len()
        );
        let tmp = self.dir.join(format!(".{hash}.{}.tmp", std::process::id()));
        std::fs::write(&tmp, full)?;
        std::fs::rename(&tmp, self.path_of(hash))?;
        Ok(digest)
    }

    /// The footer digest of a fully verified entry; `None` when the entry
    /// is missing or fails verification.
    pub fn verified_digest(&self, hash: &str) -> Option<String> {
        let text = std::fs::read_to_string(self.path_of(hash)).ok()?;
        verify_entry_text(&text).ok()?;
        let trimmed = text.strip_suffix('\n').unwrap_or(&text);
        let (_, footer) = trimmed.rsplit_once('\n')?;
        footer
            .split_whitespace()
            .find_map(|t| t.strip_prefix("fnv=").map(str::to_string))
    }

    /// Records the wall-clock cost of a completed cell (best-effort
    /// sidecar; never fails the run and never affects byte-identity of the
    /// entries themselves).
    pub fn record_wall(&self, hash: &str, seconds: f64) {
        let _ = std::fs::write(self.wall_path(hash), format!("{seconds:.6}\n"));
    }

    /// The recorded wall-clock cost of a cell, if any.
    pub fn recorded_wall(&self, hash: &str) -> Option<f64> {
        let text = std::fs::read_to_string(self.wall_path(hash)).ok()?;
        text.trim().parse().ok()
    }

    /// Hashes of all completed entries in the store.
    ///
    /// # Errors
    ///
    /// Propagates directory-read failures.
    pub fn list(&self) -> io::Result<Vec<String>> {
        let mut out = Vec::new();
        for entry in std::fs::read_dir(&self.dir)? {
            let name = entry?.file_name();
            let name = name.to_string_lossy();
            if let Some(hash) = name.strip_suffix(".json") {
                if is_hash(hash) {
                    out.push(hash.to_string());
                }
            }
        }
        out.sort();
        Ok(out)
    }

    /// Deletes every entry (and its wall sidecar) whose hash is not in
    /// `keep`; returns how many entries were removed. Takes the store
    /// lock; entries protected by a live lease are skipped (a concurrent
    /// executor is computing them right now).
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn gc(&self, keep: &HashSet<String>) -> io::Result<usize> {
        let _lock = self.lock()?;
        let leased = lease::live_hashes(&self.dir);
        let mut removed = 0;
        for hash in self.list()? {
            if keep.contains(&hash) || leased.contains(&hash) {
                continue;
            }
            std::fs::remove_file(self.path_of(&hash))?;
            let _ = std::fs::remove_file(self.wall_path(&hash));
            self.journal_event(EventKind::Gc, &hash, "outside keep-set");
            removed += 1;
        }
        Ok(removed)
    }

    /// Removes temp files older than `age`; returns how many were reaped.
    /// `Duration::ZERO` reaps unconditionally (what `fsck` uses). Temp
    /// files of cells protected by a live lease are always left alone —
    /// their writer is mid-flight.
    ///
    /// # Errors
    ///
    /// Propagates directory-read failures (individual file races are
    /// ignored).
    pub fn reap_tmp_older_than(&self, age: Duration) -> io::Result<usize> {
        let leased = lease::live_hashes(&self.dir);
        let now = std::time::SystemTime::now();
        let mut reaped = 0;
        for entry in std::fs::read_dir(&self.dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if !name.ends_with(".tmp") {
                continue;
            }
            if tmp_hash(&name).is_some_and(|h| leased.contains(h)) {
                continue;
            }
            let stale = age.is_zero()
                || entry
                    .metadata()
                    .and_then(|m| m.modified())
                    .ok()
                    .and_then(|t| now.duration_since(t).ok())
                    .is_some_and(|elapsed| elapsed >= age);
            if stale && std::fs::remove_file(entry.path()).is_ok() {
                reaped += 1;
            }
        }
        Ok(reaped)
    }

    /// Scans the whole store: verifies every entry, moves the ones that
    /// fail into `quarantine/` (re-enqueueing them — the next run misses
    /// and re-simulates), quarantines corrupt failure manifests, reaps
    /// temp files and orphaned wall sidecars. Takes the store lock; cells
    /// protected by a live lease are skipped, not judged.
    ///
    /// # Errors
    ///
    /// Propagates directory-read and quarantine-move failures.
    pub fn fsck(&self) -> io::Result<FsckReport> {
        let _lock = self.lock()?;
        self.fsck_inner()
    }

    /// [`Self::fsck`] without taking the store lock — for callers (the
    /// `doctor` pass) that already hold it. `flock` does not nest across
    /// descriptors within one process, so re-locking would self-deadlock.
    pub(crate) fn fsck_inner(&self) -> io::Result<FsckReport> {
        let leased = lease::live_hashes(&self.dir);
        let mut report = FsckReport {
            reaped_tmp: self.reap_tmp_older_than(Duration::ZERO)?,
            ..FsckReport::default()
        };
        let mut sidecars: Vec<String> = Vec::new();
        for entry in std::fs::read_dir(&self.dir)? {
            let entry = entry?;
            if entry.file_type()?.is_dir() {
                continue;
            }
            let name = entry.file_name().to_string_lossy().into_owned();
            if let Some(hash) = name.strip_suffix(".wall") {
                if is_hash(hash) {
                    sidecars.push(hash.to_string());
                }
                continue;
            }
            let Some(hash) = name.strip_suffix(".json") else {
                continue;
            };
            if !is_hash(hash) {
                continue;
            }
            if leased.contains(hash) {
                report.leased_skipped += 1;
                continue;
            }
            report.scanned += 1;
            match self.verify(hash) {
                EntryState::Ok(_) => report.ok += 1,
                EntryState::Missing => {}
                EntryState::Bad(issue) => {
                    self.quarantine(&name)?;
                    self.journal_event(EventKind::Quarantine, hash, &issue.to_string());
                    report.quarantined.push((name, issue.to_string()));
                }
            }
        }
        for hash in sidecars {
            if leased.contains(&hash) {
                continue;
            }
            if !self.contains(&hash) && std::fs::remove_file(self.wall_path(&hash)).is_ok() {
                report.reaped_sidecars += 1;
            }
        }
        self.fsck_manifests(&mut report)?;
        Ok(report)
    }

    /// Quarantines corrupt failure manifests (and reaps their orphaned
    /// temp files) under `quarantine/failures/`.
    fn fsck_manifests(&self, report: &mut FsckReport) -> io::Result<()> {
        let fdir = self.dir.join("failures");
        let entries = match std::fs::read_dir(&fdir) {
            Ok(entries) => entries,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(()),
            Err(e) => return Err(e),
        };
        for entry in entries {
            let entry = entry?;
            let name = entry.file_name().to_string_lossy().into_owned();
            if name.ends_with(".tmp") {
                if std::fs::remove_file(entry.path()).is_ok() {
                    report.reaped_tmp += 1;
                }
                continue;
            }
            let Some(grid) = name.strip_suffix(".json") else {
                continue;
            };
            if let ManifestState::Bad(reason) = self.manifest_state_raw(grid) {
                let qdir = self.quarantine_dir().join("failures");
                std::fs::create_dir_all(&qdir)?;
                let dest = qdir.join(&name);
                let _ = std::fs::remove_file(&dest);
                std::fs::rename(entry.path(), dest)?;
                self.journal_event(EventKind::Quarantine, &format!("failures/{name}"), &reason);
                report.quarantined_manifests.push((name, reason));
            }
        }
        Ok(())
    }

    /// Moves one store file into `quarantine/` (replacing any previous
    /// quarantined copy of the same name).
    fn quarantine(&self, name: &str) -> io::Result<()> {
        let qdir = self.quarantine_dir();
        std::fs::create_dir_all(&qdir)?;
        let dest = qdir.join(name);
        let _ = std::fs::remove_file(&dest);
        std::fs::rename(self.dir.join(name), dest)
    }

    /// Persists a grid's failure manifest atomically under `failures/`.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn save_manifest(&self, manifest: &FailureManifest) -> io::Result<()> {
        let path = self.manifest_path(&manifest.grid);
        std::fs::create_dir_all(path.parent().expect("manifest path has a parent"))?;
        let json = serde_json::to_string_pretty(manifest).expect("manifests always serialize");
        let tmp = path.with_extension(format!("{}.tmp", std::process::id()));
        std::fs::write(&tmp, json)?;
        std::fs::rename(&tmp, path)
    }

    /// The verified state of a grid's failure manifest, without reporting.
    fn manifest_state_raw(&self, grid: &str) -> ManifestState {
        let text = match std::fs::read_to_string(self.manifest_path(grid)) {
            Ok(text) => text,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return ManifestState::Missing,
            Err(e) => return ManifestState::Bad(format!("unreadable ({e})")),
        };
        match serde_json::from_str(&text) {
            Ok(manifest) => ManifestState::Ok(manifest),
            Err(e) => ManifestState::Bad(format!("unparseable manifest ({e})")),
        }
    }

    /// The verified state of a grid's failure manifest. A `Bad` state is
    /// reported and journaled (demote path) — corrupt failure history must
    /// never vanish silently.
    pub fn manifest_state(&self, grid: &str) -> ManifestState {
        let state = self.manifest_state_raw(grid);
        if let ManifestState::Bad(reason) = &state {
            eprintln!(
                "chronus-grid: failure manifest {} is corrupt ({reason}); treating as absent — \
                 run `chronus-sweep fsck` to quarantine it",
                self.manifest_path(grid).display()
            );
            let name = format!("failures/{grid}.json");
            self.journal_event(EventKind::Demote, &name, reason);
        }
        state
    }

    /// Loads a grid's failure manifest; `None` when absent. A corrupt
    /// manifest is reported and journaled (see [`Self::manifest_state`])
    /// before behaving as absent.
    pub fn load_manifest(&self, grid: &str) -> Option<FailureManifest> {
        match self.manifest_state(grid) {
            ManifestState::Ok(manifest) => Some(manifest),
            ManifestState::Missing | ManifestState::Bad(_) => None,
        }
    }

    /// Removes a grid's failure manifest (a fully clean run heals it).
    pub fn clear_manifest(&self, grid: &str) {
        let _ = std::fs::remove_file(self.manifest_path(grid));
    }
}

/// Whether `s` looks like a store hash (32 lowercase hex chars).
fn is_hash(s: &str) -> bool {
    s.len() == 32 && s.bytes().all(|b| b.is_ascii_hexdigit())
}

/// The cell hash embedded in a temp-file name (`.{hash}.{pid}.tmp`).
fn tmp_hash(name: &str) -> Option<&str> {
    let stem = name.strip_prefix('.')?.strip_suffix(".tmp")?;
    let (hash, _pid) = stem.split_once('.')?;
    is_hash(hash).then_some(hash)
}

/// Splits and checks the footer, then parses the payload.
fn verify_entry_text(text: &str) -> Result<CellRecord, EntryIssue> {
    let trimmed = text.strip_suffix('\n').unwrap_or(text);
    let Some((payload, footer)) = trimmed.rsplit_once('\n') else {
        return Err(EntryIssue::MissingFooter);
    };
    if !footer.starts_with(FOOTER_TAG) {
        return Err(EntryIssue::MissingFooter);
    }
    let mut tokens = footer.split_whitespace().skip(1);
    let version = tokens.next().unwrap_or("");
    if version != format!("v{STORE_FORMAT_VERSION}") {
        return Err(EntryIssue::FormatVersion {
            found: version.to_string(),
        });
    }
    let field = |tok: Option<&str>, key: &str| -> Option<String> {
        tok.and_then(|t| t.strip_prefix(key).map(str::to_string))
    };
    let len: usize = field(tokens.next(), "len=")
        .and_then(|v| v.parse().ok())
        .ok_or(EntryIssue::MissingFooter)?;
    let fnv = field(tokens.next(), "fnv=").ok_or(EntryIssue::MissingFooter)?;
    if payload.len() != len {
        return Err(EntryIssue::Truncated {
            expected: len,
            actual: payload.len(),
        });
    }
    if digest128(payload.as_bytes()) != fnv {
        return Err(EntryIssue::ChecksumMismatch);
    }
    let record: CellRecord =
        serde_json::from_str(payload).map_err(|e| EntryIssue::BadJson(e.to_string()))?;
    if record.key.sim_version != SIM_VERSION {
        return Err(EntryIssue::SimVersion {
            found: record.key.sim_version,
        });
    }
    Ok(record)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::{AppTrace, WorkloadSpec};
    use crate::faults::FaultPlan;
    use crate::hash::cell_hash;
    use chronus_sim::{SimConfig, System};

    fn scratch(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("chronus-grid-store-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn tiny_cell() -> CellSpec {
        let w = WorkloadSpec::Apps {
            apps: vec![AppTrace::new("511.povray", 0, 5)],
            trace_instructions: 1_200,
        };
        let mut cfg = SimConfig::single_core();
        cfg.instructions_per_core = 1_000;
        CellSpec::new("tiny", w, cfg)
    }

    fn populated(tag: &str) -> (PathBuf, ResultStore, String, SimReport) {
        let dir = scratch(tag);
        let store = ResultStore::open(&dir).unwrap();
        let cell = tiny_cell();
        let hash = cell_hash(&cell);
        let report = System::build(&cell.config).run(cell.workload.traces(&cell.config.geometry));
        store.put(&hash, &cell, &report).unwrap();
        (dir, store, hash, report)
    }

    #[test]
    fn put_get_roundtrip() {
        let (dir, store, hash, report) = populated("roundtrip");
        assert!(store.contains(&hash));
        assert!(store.verify(&hash).is_ok());
        assert_eq!(store.get(&hash).unwrap(), report);
        assert_eq!(store.list().unwrap(), vec![hash.clone()]);
        assert!(matches!(
            store.verify("0".repeat(32).as_str()),
            EntryState::Missing
        ));

        // Corrupt entries behave as misses.
        std::fs::write(store.path_of(&hash), "{oops").unwrap();
        assert!(store.get(&hash).is_none());
        assert!(store.verify(&hash).is_bad());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncation_and_tampering_are_detected() {
        let (dir, store, hash, _) = populated("truncate");
        let path = store.path_of(&hash);
        let original = std::fs::read_to_string(&path).unwrap();

        // Tail truncation loses the footer entirely.
        std::fs::write(&path, &original[..original.len() / 2]).unwrap();
        assert!(matches!(
            store.verify(&hash),
            EntryState::Bad(EntryIssue::MissingFooter | EntryIssue::Truncated { .. })
        ));
        assert!(store.get(&hash).is_none());

        // A flipped payload byte fails the checksum even with the footer
        // intact.
        let flipped = original.replacen("\"report\"", "\"REPORT\"", 1);
        assert_ne!(flipped, original, "fixture must actually flip something");
        std::fs::write(&path, flipped).unwrap();
        assert!(matches!(
            store.verify(&hash),
            EntryState::Bad(EntryIssue::ChecksumMismatch)
        ));

        // A wrong format version is called out as such.
        let refooted = format!("{{}}\n{FOOTER_TAG} v99 len=2 fnv=00\n");
        std::fs::write(&path, refooted).unwrap();
        assert!(matches!(
            store.verify(&hash),
            EntryState::Bad(EntryIssue::FormatVersion { .. })
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn legacy_footerless_entries_fail_verification() {
        let (dir, store, hash, _) = populated("legacy");
        let path = store.path_of(&hash);
        let text = std::fs::read_to_string(&path).unwrap();
        // Strip the footer: exactly what a pre-v2 store entry looks like.
        let payload = text
            .rsplit_once('\n')
            .unwrap()
            .0
            .rsplit_once('\n')
            .unwrap()
            .0;
        std::fs::write(&path, payload).unwrap();
        assert!(matches!(
            store.verify(&hash),
            EntryState::Bad(EntryIssue::MissingFooter)
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn entries_are_byte_deterministic() {
        let (dir_a, store_a, hash, _) = populated("det-a");
        let (dir_b, store_b, hash_b, _) = populated("det-b");
        assert_eq!(hash, hash_b);
        assert_eq!(
            std::fs::read(store_a.path_of(&hash)).unwrap(),
            std::fs::read(store_b.path_of(&hash)).unwrap(),
            "same cell must serialize byte-identically, footer included"
        );
        let _ = std::fs::remove_dir_all(&dir_a);
        let _ = std::fs::remove_dir_all(&dir_b);
    }

    #[test]
    fn gc_keeps_only_requested_hashes() {
        let (dir, store, hash, _) = populated("gc");
        store.record_wall(&hash, 1.5);
        let bogus = "0".repeat(32);
        std::fs::write(store.path_of(&bogus), "{}").unwrap();
        store.record_wall(&bogus, 9.0);

        let keep: HashSet<String> = [hash.clone()].into_iter().collect();
        assert_eq!(store.gc(&keep).unwrap(), 1);
        assert!(store.contains(&hash));
        assert!(!store.contains(&bogus));
        assert_eq!(store.recorded_wall(&hash), Some(1.5));
        assert_eq!(store.recorded_wall(&bogus), None, "gc removes sidecars");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn tmp_reaping_is_age_gated() {
        let dir = scratch("tmp");
        let store = ResultStore::open(&dir).unwrap();
        std::fs::write(dir.join(".deadbeef.1234.tmp"), "partial").unwrap();
        // A fresh temp file survives the stale-only reap…
        assert_eq!(store.reap_tmp_older_than(STALE_TMP_AGE).unwrap(), 0);
        assert!(dir.join(".deadbeef.1234.tmp").exists());
        // …and the unconditional reap removes it.
        assert_eq!(store.reap_tmp_older_than(Duration::ZERO).unwrap(), 1);
        assert!(!dir.join(".deadbeef.1234.tmp").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fsck_quarantines_and_reaps() {
        let (dir, store, hash, _) = populated("fsck");
        store.record_wall(&hash, 0.5);
        // A truncated second entry, a temp orphan, and an orphan sidecar.
        let bad = "b".repeat(32);
        let good_bytes = std::fs::read_to_string(store.path_of(&hash)).unwrap();
        std::fs::write(store.path_of(&bad), &good_bytes[..40]).unwrap();
        std::fs::write(dir.join(".orphan.99.tmp"), "x").unwrap();
        store.record_wall(&"c".repeat(32), 2.0);

        let report = store.fsck().unwrap();
        assert_eq!(report.scanned, 2);
        assert_eq!(report.ok, 1);
        assert_eq!(report.quarantined.len(), 1);
        assert_eq!(report.quarantined[0].0, format!("{bad}.json"));
        assert_eq!(report.reaped_tmp, 1);
        assert_eq!(report.reaped_sidecars, 1);
        assert!(!report.is_clean());

        // The bad entry is gone from the store but preserved under
        // quarantine/; the good one is untouched.
        assert!(!store.contains(&bad));
        assert!(store.quarantine_dir().join(format!("{bad}.json")).is_file());
        assert!(store.verify(&hash).is_ok());
        assert_eq!(store.recorded_wall(&hash), Some(0.5));

        // A second pass is clean.
        let again = store.fsck().unwrap();
        assert!(again.is_clean());
        assert_eq!(again.ok, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn injected_io_faults_surface_on_put_and_get() {
        let dir = scratch("faults");
        let plan = FaultPlan {
            io_p: 1.0,
            max_attempt: Some(1),
            ..FaultPlan::default()
        };
        let store = ResultStore::open(&dir)
            .unwrap()
            .with_faults(Some(plan.injector()));
        let cell = tiny_cell();
        let hash = cell_hash(&cell);
        let report = System::build(&cell.config).run(cell.workload.traces(&cell.config.geometry));

        // First put fails with the injected error; the retry is gated
        // clean and succeeds.
        assert!(store.put(&hash, &cell, &report).is_err());
        store.put(&hash, &cell, &report).unwrap();
        // First get is injected into a miss; the retry reads through.
        assert!(store.get(&hash).is_none());
        assert_eq!(store.get(&hash).unwrap(), report);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn put_returns_the_footer_digest() {
        let (dir, store, hash, _) = populated("digest");
        let digest = store.verified_digest(&hash).expect("entry verifies");
        let text = std::fs::read_to_string(store.path_of(&hash)).unwrap();
        assert!(text.contains(&format!("fnv={digest}")));
        // A corrupt entry yields no digest.
        std::fs::write(store.path_of(&hash), "{oops").unwrap();
        assert_eq!(store.verified_digest(&hash), None);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_manifests_are_reported_not_swallowed() {
        let (dir, store, _, _) = populated("manifest-bad");
        let path = store.manifest_path("g");
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, "{not json").unwrap();
        assert!(matches!(store.manifest_state("g"), ManifestState::Bad(_)));
        assert!(store.load_manifest("g").is_none());
        assert!(matches!(
            store.manifest_state("nope"),
            ManifestState::Missing
        ));

        // fsck quarantines the corrupt manifest under quarantine/failures/.
        let report = store.fsck().unwrap();
        assert_eq!(report.quarantined_manifests.len(), 1);
        assert_eq!(report.quarantined_manifests[0].0, "g.json");
        assert!(!report.is_clean());
        assert!(!path.exists());
        assert!(store
            .quarantine_dir()
            .join("failures")
            .join("g.json")
            .is_file());
        assert!(matches!(store.manifest_state("g"), ManifestState::Missing));
        assert!(store.fsck().unwrap().is_clean());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn gc_and_fsck_skip_live_leased_cells() {
        let (dir, store, hash, _) = populated("leased");
        // A live lease on a second, *corrupt* cell: neither gc nor fsck
        // may touch it (its writer could be mid-flight), and its pending
        // temp file survives reaping.
        let leased = "d".repeat(32);
        std::fs::write(store.path_of(&leased), "{torn").unwrap();
        std::fs::write(dir.join(format!(".{leased}.77.tmp")), "pending").unwrap();
        let mgr = crate::lease::LeaseManager::open(&dir, "host-1-0").unwrap();
        mgr.try_claim(&leased, Duration::from_secs(60)).unwrap();

        let keep: HashSet<String> = HashSet::new();
        assert_eq!(store.gc(&keep).unwrap(), 1, "only the unleased entry goes");
        assert!(!store.contains(&hash));
        assert!(store.contains(&leased), "leased cell survives gc");

        let report = store.fsck().unwrap();
        assert_eq!(report.leased_skipped, 1);
        assert!(report.quarantined.is_empty(), "leased cell is not judged");
        assert_eq!(report.reaped_tmp, 0, "leased tmp survives");
        assert!(dir.join(format!(".{leased}.77.tmp")).exists());

        // Once the lease is released, fsck reaps and quarantines normally.
        mgr.release(&leased);
        let report = store.fsck().unwrap();
        assert_eq!(report.quarantined.len(), 1);
        assert_eq!(report.reaped_tmp, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn store_lock_is_exclusive_across_descriptors() {
        let dir = scratch("lock");
        let store = ResultStore::open(&dir).unwrap();
        let guard = store.lock().unwrap();
        // A second descriptor cannot acquire while the first is held.
        let file = std::fs::OpenOptions::new()
            .create(true)
            .truncate(false)
            .write(true)
            .open(dir.join(".store.lock"))
            .unwrap();
        assert!(file.try_lock().is_err(), "lock must be held");
        drop(guard);
        assert!(file.try_lock().is_ok(), "drop must release the lock");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn store_mutations_are_journaled() {
        let (dir, store, hash, _) = populated("journaled");
        let journal = Arc::new(crate::journal::Journal::open(&dir, "host-1-9"));
        let store = store.with_journal(journal);
        // Demote: a corrupt entry read through `get`.
        std::fs::write(store.path_of(&hash), "{oops").unwrap();
        assert!(store.get(&hash).is_none());
        // Quarantine: fsck moves it out.
        store.fsck().unwrap();
        let scan = crate::journal::read_events(&dir).unwrap();
        let kinds: Vec<EventKind> = scan.events.iter().map(|e| e.kind).collect();
        assert!(kinds.contains(&EventKind::Demote));
        assert!(kinds.contains(&EventKind::Quarantine));
        assert!(scan.events.iter().all(|e| e.hash == hash));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn wall_sidecars_roundtrip() {
        let dir = scratch("wall");
        let store = ResultStore::open(&dir).unwrap();
        let hash = "a".repeat(32);
        assert_eq!(store.recorded_wall(&hash), None);
        store.record_wall(&hash, 12.25);
        assert_eq!(store.recorded_wall(&hash), Some(12.25));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
