//! The content-addressed on-disk result store.
//!
//! One file per completed cell, named `<hash>.json`, holding the full
//! [`CellKey`] (for auditability and `gc` debugging) plus the `SimReport`,
//! followed by a one-line integrity footer:
//!
//! ```text
//! { …pretty JSON CellRecord… }
//! #chronus-cell v2 len=<payload bytes> fnv=<128-bit FNV digest>
//! ```
//!
//! Every read re-verifies the footer (length catches truncation, the
//! digest catches bit rot and torn writes, the version token catches
//! format drift), so a damaged entry can never silently feed a figure —
//! it behaves as a cache miss and is re-simulated. The footer is a pure
//! function of the payload, which preserves the byte-identity invariant:
//! two stores that simulated the same cells hold identical files.
//!
//! Writes go through a temp file + rename so concurrent sharded processes
//! sharing one directory never observe torn entries; temp files orphaned
//! by killed processes are reaped on open (when stale) and by
//! [`ResultStore::fsck`] (unconditionally). `fsck` moves entries that fail
//! verification into `quarantine/`, which re-enqueues them: the next run
//! misses on the quarantined hash and re-simulates the cell.
//!
//! Two kinds of non-authoritative sidecar live next to the entries:
//! `<hash>.wall` records the wall-clock seconds the cell cost (feeding the
//! executor's adaptive watchdog deadline) and `failures/<grid>.json` holds
//! the [`FailureManifest`](crate::exec::FailureManifest) of the last
//! degraded run. Neither participates in byte-identity or cache hits.

use std::collections::HashSet;
use std::io;
use std::path::{Path, PathBuf};
use std::time::Duration;

use chronus_sim::SimReport;
use serde::{Deserialize, Serialize};

use crate::cell::{CellKey, CellSpec, SIM_VERSION};
use crate::exec::FailureManifest;
use crate::faults::FaultInjector;
use crate::hash::digest128;

/// Environment variable overriding the default store directory.
pub const GRID_DIR_ENV: &str = "CHRONUS_GRID_DIR";

/// Default store directory under the working directory.
pub const DEFAULT_GRID_DIR: &str = "grid-cache";

/// On-disk entry format version, stamped into (and checked against) every
/// footer. Bump when the entry layout changes; `fsck` then quarantines
/// entries written by other versions.
pub const STORE_FORMAT_VERSION: u32 = 2;

/// First token of the integrity footer line.
const FOOTER_TAG: &str = "#chronus-cell";

/// Temp files untouched for this long are considered orphaned by a dead
/// process and reaped when the store opens. Live writers rename within
/// milliseconds, so minutes of margin is conservative.
const STALE_TMP_AGE: Duration = Duration::from_secs(15 * 60);

/// One stored entry: identity plus result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellRecord {
    /// Full cell identity (what was hashed).
    pub key: CellKey,
    /// The simulation result.
    pub report: SimReport,
}

/// Why an on-disk entry failed verification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EntryIssue {
    /// The file could not be read (permissions, I/O error, bad UTF-8).
    Unreadable(String),
    /// No integrity footer — a legacy (pre-checksum) or torn entry.
    MissingFooter,
    /// Footer written by a different store format version.
    FormatVersion {
        /// The version token found in the footer.
        found: String,
    },
    /// Payload length disagrees with the footer (truncated or padded).
    Truncated {
        /// Bytes the footer promises.
        expected: usize,
        /// Bytes actually present.
        actual: usize,
    },
    /// Payload bytes do not hash to the footer digest.
    ChecksumMismatch,
    /// The payload is not a parseable [`CellRecord`].
    BadJson(String),
    /// The record was produced by a different simulator version.
    SimVersion {
        /// The `sim_version` recorded in the entry.
        found: u32,
    },
}

impl std::fmt::Display for EntryIssue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EntryIssue::Unreadable(e) => write!(f, "unreadable ({e})"),
            EntryIssue::MissingFooter => write!(f, "missing integrity footer (legacy or torn)"),
            EntryIssue::FormatVersion { found } => {
                write!(f, "store format {found}, expected v{STORE_FORMAT_VERSION}")
            }
            EntryIssue::Truncated { expected, actual } => {
                write!(f, "truncated ({actual} of {expected} payload bytes)")
            }
            EntryIssue::ChecksumMismatch => write!(f, "checksum mismatch"),
            EntryIssue::BadJson(e) => write!(f, "unparseable record ({e})"),
            EntryIssue::SimVersion { found } => {
                write!(f, "simulator version {found}, expected {SIM_VERSION}")
            }
        }
    }
}

/// The verified state of one store entry.
#[derive(Debug)]
pub enum EntryState {
    /// No file for this hash.
    Missing,
    /// The entry verified end to end.
    Ok(Box<CellRecord>),
    /// The file exists but failed verification.
    Bad(EntryIssue),
}

impl EntryState {
    /// Whether the entry verified.
    pub fn is_ok(&self) -> bool {
        matches!(self, EntryState::Ok(_))
    }

    /// Whether a file exists but failed verification.
    pub fn is_bad(&self) -> bool {
        matches!(self, EntryState::Bad(_))
    }
}

/// What one [`ResultStore::fsck`] pass found and did.
#[derive(Debug, Default)]
pub struct FsckReport {
    /// Entries examined.
    pub scanned: usize,
    /// Entries that verified.
    pub ok: usize,
    /// `(file name, reason)` of every entry moved to `quarantine/`.
    pub quarantined: Vec<(String, String)>,
    /// Orphaned temp files removed.
    pub reaped_tmp: usize,
    /// Wall-clock sidecars whose entry no longer exists, removed.
    pub reaped_sidecars: usize,
}

impl FsckReport {
    /// Whether every entry verified (reaping orphans still counts as
    /// clean).
    pub fn is_clean(&self) -> bool {
        self.quarantined.is_empty()
    }

    /// One machine-greppable line.
    pub fn summary(&self) -> String {
        format!(
            "scanned={} ok={} quarantined={} reaped_tmp={} reaped_sidecars={}",
            self.scanned,
            self.ok,
            self.quarantined.len(),
            self.reaped_tmp,
            self.reaped_sidecars
        )
    }
}

/// A directory of completed cells keyed by content hash.
#[derive(Debug, Clone)]
pub struct ResultStore {
    dir: PathBuf,
    faults: Option<FaultInjector>,
}

impl ResultStore {
    /// Opens (creating if needed) a store at `dir`, reaping temp files
    /// orphaned by dead processes (older than 15 minutes; count logged).
    ///
    /// # Errors
    ///
    /// Propagates directory-creation failures.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        let store = Self { dir, faults: None };
        match store.reap_tmp_older_than(STALE_TMP_AGE) {
            Ok(0) | Err(_) => {}
            Ok(n) => eprintln!(
                "chronus-grid: reaped {n} stale temp file(s) from {} (crash leftovers)",
                store.dir.display()
            ),
        }
        Ok(store)
    }

    /// Opens the default store: `$CHRONUS_GRID_DIR` or `./grid-cache`.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation failures.
    pub fn open_default() -> io::Result<Self> {
        Self::open(Self::default_dir())
    }

    /// The directory [`Self::open_default`] would use.
    pub fn default_dir() -> PathBuf {
        std::env::var_os(GRID_DIR_ENV)
            .map(PathBuf::from)
            .unwrap_or_else(|| PathBuf::from(DEFAULT_GRID_DIR))
    }

    /// Attaches a fault injector to the store's read/write boundary
    /// (deterministic I/O-error injection; see [`crate::faults`]).
    #[must_use]
    pub fn with_faults(mut self, faults: Option<FaultInjector>) -> Self {
        self.faults = faults;
        self
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The file path of a hash.
    pub fn path_of(&self, hash: &str) -> PathBuf {
        self.dir.join(format!("{hash}.json"))
    }

    /// The wall-clock sidecar path of a hash.
    fn wall_path(&self, hash: &str) -> PathBuf {
        self.dir.join(format!("{hash}.wall"))
    }

    /// The quarantine directory (created lazily by [`Self::fsck`]).
    pub fn quarantine_dir(&self) -> PathBuf {
        self.dir.join("quarantine")
    }

    /// The failure-manifest path of a grid.
    pub fn manifest_path(&self, grid: &str) -> PathBuf {
        self.dir.join("failures").join(format!("{grid}.json"))
    }

    /// Whether a completed entry exists for `hash` (presence only; reads
    /// verify integrity separately).
    pub fn contains(&self, hash: &str) -> bool {
        self.path_of(hash).is_file()
    }

    /// Reads and fully verifies the entry for `hash`: footer present,
    /// format version current, length exact, checksum matching, record
    /// parseable, simulator version current.
    pub fn verify(&self, hash: &str) -> EntryState {
        let text = match std::fs::read_to_string(self.path_of(hash)) {
            Ok(text) => text,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return EntryState::Missing,
            Err(e) => return EntryState::Bad(EntryIssue::Unreadable(e.to_string())),
        };
        match verify_entry_text(&text) {
            Ok(record) => EntryState::Ok(Box::new(record)),
            Err(issue) => EntryState::Bad(issue),
        }
    }

    /// Loads the report stored for `hash`; `None` if absent or failing
    /// verification (a damaged entry behaves as a miss and is
    /// re-simulated).
    pub fn get(&self, hash: &str) -> Option<SimReport> {
        if let Some(faults) = &self.faults {
            if let Some(e) = faults.io_fault("get", hash) {
                eprintln!("chronus-grid: read of cell {hash} failed ({e}); treating as miss");
                return None;
            }
        }
        match self.verify(hash) {
            EntryState::Ok(record) => Some(record.report),
            EntryState::Missing => None,
            EntryState::Bad(issue) => {
                eprintln!(
                    "chronus-grid: ignoring cache entry {} ({issue}); run `chronus-sweep fsck` \
                     to quarantine it",
                    self.path_of(hash).display()
                );
                None
            }
        }
    }

    /// Persists a completed cell atomically (write temp file, rename),
    /// appending the integrity footer.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures (including injected ones).
    pub fn put(&self, hash: &str, cell: &CellSpec, report: &SimReport) -> io::Result<()> {
        if let Some(faults) = &self.faults {
            if let Some(e) = faults.io_fault("put", hash) {
                return Err(e);
            }
        }
        let record = CellRecord {
            key: CellKey::of(cell),
            report: report.clone(),
        };
        let payload = serde_json::to_string_pretty(&record).expect("records always serialize");
        let full = format!("{payload}\n{}\n", footer_line(&payload));
        let tmp = self.dir.join(format!(".{hash}.{}.tmp", std::process::id()));
        std::fs::write(&tmp, full)?;
        std::fs::rename(&tmp, self.path_of(hash))
    }

    /// Records the wall-clock cost of a completed cell (best-effort
    /// sidecar; never fails the run and never affects byte-identity of the
    /// entries themselves).
    pub fn record_wall(&self, hash: &str, seconds: f64) {
        let _ = std::fs::write(self.wall_path(hash), format!("{seconds:.6}\n"));
    }

    /// The recorded wall-clock cost of a cell, if any.
    pub fn recorded_wall(&self, hash: &str) -> Option<f64> {
        let text = std::fs::read_to_string(self.wall_path(hash)).ok()?;
        text.trim().parse().ok()
    }

    /// Hashes of all completed entries in the store.
    ///
    /// # Errors
    ///
    /// Propagates directory-read failures.
    pub fn list(&self) -> io::Result<Vec<String>> {
        let mut out = Vec::new();
        for entry in std::fs::read_dir(&self.dir)? {
            let name = entry?.file_name();
            let name = name.to_string_lossy();
            if let Some(hash) = name.strip_suffix(".json") {
                if is_hash(hash) {
                    out.push(hash.to_string());
                }
            }
        }
        out.sort();
        Ok(out)
    }

    /// Deletes every entry (and its wall sidecar) whose hash is not in
    /// `keep`; returns how many entries were removed.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn gc(&self, keep: &HashSet<String>) -> io::Result<usize> {
        let mut removed = 0;
        for hash in self.list()? {
            if !keep.contains(&hash) {
                std::fs::remove_file(self.path_of(&hash))?;
                let _ = std::fs::remove_file(self.wall_path(&hash));
                removed += 1;
            }
        }
        Ok(removed)
    }

    /// Removes temp files older than `age`; returns how many were reaped.
    /// `Duration::ZERO` reaps unconditionally (what `fsck` uses; only safe
    /// when no writer is live).
    ///
    /// # Errors
    ///
    /// Propagates directory-read failures (individual file races are
    /// ignored).
    pub fn reap_tmp_older_than(&self, age: Duration) -> io::Result<usize> {
        let now = std::time::SystemTime::now();
        let mut reaped = 0;
        for entry in std::fs::read_dir(&self.dir)? {
            let entry = entry?;
            if !entry.file_name().to_string_lossy().ends_with(".tmp") {
                continue;
            }
            let stale = age.is_zero()
                || entry
                    .metadata()
                    .and_then(|m| m.modified())
                    .ok()
                    .and_then(|t| now.duration_since(t).ok())
                    .is_some_and(|elapsed| elapsed >= age);
            if stale && std::fs::remove_file(entry.path()).is_ok() {
                reaped += 1;
            }
        }
        Ok(reaped)
    }

    /// Scans the whole store: verifies every entry, moves the ones that
    /// fail into `quarantine/` (re-enqueueing them — the next run misses
    /// and re-simulates), reaps all temp files and orphaned wall sidecars.
    ///
    /// # Errors
    ///
    /// Propagates directory-read and quarantine-move failures.
    pub fn fsck(&self) -> io::Result<FsckReport> {
        let mut report = FsckReport {
            reaped_tmp: self.reap_tmp_older_than(Duration::ZERO)?,
            ..FsckReport::default()
        };
        let mut sidecars: Vec<String> = Vec::new();
        for entry in std::fs::read_dir(&self.dir)? {
            let entry = entry?;
            if entry.file_type()?.is_dir() {
                continue;
            }
            let name = entry.file_name().to_string_lossy().into_owned();
            if let Some(hash) = name.strip_suffix(".wall") {
                if is_hash(hash) {
                    sidecars.push(hash.to_string());
                }
                continue;
            }
            let Some(hash) = name.strip_suffix(".json") else {
                continue;
            };
            if !is_hash(hash) {
                continue;
            }
            report.scanned += 1;
            match self.verify(hash) {
                EntryState::Ok(_) => report.ok += 1,
                EntryState::Missing => {}
                EntryState::Bad(issue) => {
                    self.quarantine(&name)?;
                    report.quarantined.push((name, issue.to_string()));
                }
            }
        }
        for hash in sidecars {
            if !self.contains(&hash) && std::fs::remove_file(self.wall_path(&hash)).is_ok() {
                report.reaped_sidecars += 1;
            }
        }
        Ok(report)
    }

    /// Moves one store file into `quarantine/` (replacing any previous
    /// quarantined copy of the same name).
    fn quarantine(&self, name: &str) -> io::Result<()> {
        let qdir = self.quarantine_dir();
        std::fs::create_dir_all(&qdir)?;
        let dest = qdir.join(name);
        let _ = std::fs::remove_file(&dest);
        std::fs::rename(self.dir.join(name), dest)
    }

    /// Persists a grid's failure manifest atomically under `failures/`.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn save_manifest(&self, manifest: &FailureManifest) -> io::Result<()> {
        let path = self.manifest_path(&manifest.grid);
        std::fs::create_dir_all(path.parent().expect("manifest path has a parent"))?;
        let json = serde_json::to_string_pretty(manifest).expect("manifests always serialize");
        let tmp = path.with_extension(format!("{}.tmp", std::process::id()));
        std::fs::write(&tmp, json)?;
        std::fs::rename(&tmp, path)
    }

    /// Loads a grid's failure manifest; `None` when absent or unreadable.
    pub fn load_manifest(&self, grid: &str) -> Option<FailureManifest> {
        let text = std::fs::read_to_string(self.manifest_path(grid)).ok()?;
        serde_json::from_str(&text).ok()
    }

    /// Removes a grid's failure manifest (a fully clean run heals it).
    pub fn clear_manifest(&self, grid: &str) {
        let _ = std::fs::remove_file(self.manifest_path(grid));
    }
}

/// Whether `s` looks like a store hash (32 lowercase hex chars).
fn is_hash(s: &str) -> bool {
    s.len() == 32 && s.bytes().all(|b| b.is_ascii_hexdigit())
}

/// The integrity footer of a payload.
fn footer_line(payload: &str) -> String {
    format!(
        "{FOOTER_TAG} v{STORE_FORMAT_VERSION} len={} fnv={}",
        payload.len(),
        digest128(payload.as_bytes())
    )
}

/// Splits and checks the footer, then parses the payload.
fn verify_entry_text(text: &str) -> Result<CellRecord, EntryIssue> {
    let trimmed = text.strip_suffix('\n').unwrap_or(text);
    let Some((payload, footer)) = trimmed.rsplit_once('\n') else {
        return Err(EntryIssue::MissingFooter);
    };
    if !footer.starts_with(FOOTER_TAG) {
        return Err(EntryIssue::MissingFooter);
    }
    let mut tokens = footer.split_whitespace().skip(1);
    let version = tokens.next().unwrap_or("");
    if version != format!("v{STORE_FORMAT_VERSION}") {
        return Err(EntryIssue::FormatVersion {
            found: version.to_string(),
        });
    }
    let field = |tok: Option<&str>, key: &str| -> Option<String> {
        tok.and_then(|t| t.strip_prefix(key).map(str::to_string))
    };
    let len: usize = field(tokens.next(), "len=")
        .and_then(|v| v.parse().ok())
        .ok_or(EntryIssue::MissingFooter)?;
    let fnv = field(tokens.next(), "fnv=").ok_or(EntryIssue::MissingFooter)?;
    if payload.len() != len {
        return Err(EntryIssue::Truncated {
            expected: len,
            actual: payload.len(),
        });
    }
    if digest128(payload.as_bytes()) != fnv {
        return Err(EntryIssue::ChecksumMismatch);
    }
    let record: CellRecord =
        serde_json::from_str(payload).map_err(|e| EntryIssue::BadJson(e.to_string()))?;
    if record.key.sim_version != SIM_VERSION {
        return Err(EntryIssue::SimVersion {
            found: record.key.sim_version,
        });
    }
    Ok(record)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::{AppTrace, WorkloadSpec};
    use crate::faults::FaultPlan;
    use crate::hash::cell_hash;
    use chronus_sim::{SimConfig, System};

    fn scratch(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("chronus-grid-store-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn tiny_cell() -> CellSpec {
        let w = WorkloadSpec::Apps {
            apps: vec![AppTrace::new("511.povray", 0, 5)],
            trace_instructions: 1_200,
        };
        let mut cfg = SimConfig::single_core();
        cfg.instructions_per_core = 1_000;
        CellSpec::new("tiny", w, cfg)
    }

    fn populated(tag: &str) -> (PathBuf, ResultStore, String, SimReport) {
        let dir = scratch(tag);
        let store = ResultStore::open(&dir).unwrap();
        let cell = tiny_cell();
        let hash = cell_hash(&cell);
        let report = System::build(&cell.config).run(cell.workload.traces(&cell.config.geometry));
        store.put(&hash, &cell, &report).unwrap();
        (dir, store, hash, report)
    }

    #[test]
    fn put_get_roundtrip() {
        let (dir, store, hash, report) = populated("roundtrip");
        assert!(store.contains(&hash));
        assert!(store.verify(&hash).is_ok());
        assert_eq!(store.get(&hash).unwrap(), report);
        assert_eq!(store.list().unwrap(), vec![hash.clone()]);
        assert!(matches!(
            store.verify("0".repeat(32).as_str()),
            EntryState::Missing
        ));

        // Corrupt entries behave as misses.
        std::fs::write(store.path_of(&hash), "{oops").unwrap();
        assert!(store.get(&hash).is_none());
        assert!(store.verify(&hash).is_bad());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncation_and_tampering_are_detected() {
        let (dir, store, hash, _) = populated("truncate");
        let path = store.path_of(&hash);
        let original = std::fs::read_to_string(&path).unwrap();

        // Tail truncation loses the footer entirely.
        std::fs::write(&path, &original[..original.len() / 2]).unwrap();
        assert!(matches!(
            store.verify(&hash),
            EntryState::Bad(EntryIssue::MissingFooter | EntryIssue::Truncated { .. })
        ));
        assert!(store.get(&hash).is_none());

        // A flipped payload byte fails the checksum even with the footer
        // intact.
        let flipped = original.replacen("\"report\"", "\"REPORT\"", 1);
        assert_ne!(flipped, original, "fixture must actually flip something");
        std::fs::write(&path, flipped).unwrap();
        assert!(matches!(
            store.verify(&hash),
            EntryState::Bad(EntryIssue::ChecksumMismatch)
        ));

        // A wrong format version is called out as such.
        let refooted = format!("{{}}\n{FOOTER_TAG} v99 len=2 fnv=00\n");
        std::fs::write(&path, refooted).unwrap();
        assert!(matches!(
            store.verify(&hash),
            EntryState::Bad(EntryIssue::FormatVersion { .. })
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn legacy_footerless_entries_fail_verification() {
        let (dir, store, hash, _) = populated("legacy");
        let path = store.path_of(&hash);
        let text = std::fs::read_to_string(&path).unwrap();
        // Strip the footer: exactly what a pre-v2 store entry looks like.
        let payload = text
            .rsplit_once('\n')
            .unwrap()
            .0
            .rsplit_once('\n')
            .unwrap()
            .0;
        std::fs::write(&path, payload).unwrap();
        assert!(matches!(
            store.verify(&hash),
            EntryState::Bad(EntryIssue::MissingFooter)
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn entries_are_byte_deterministic() {
        let (dir_a, store_a, hash, _) = populated("det-a");
        let (dir_b, store_b, hash_b, _) = populated("det-b");
        assert_eq!(hash, hash_b);
        assert_eq!(
            std::fs::read(store_a.path_of(&hash)).unwrap(),
            std::fs::read(store_b.path_of(&hash)).unwrap(),
            "same cell must serialize byte-identically, footer included"
        );
        let _ = std::fs::remove_dir_all(&dir_a);
        let _ = std::fs::remove_dir_all(&dir_b);
    }

    #[test]
    fn gc_keeps_only_requested_hashes() {
        let (dir, store, hash, _) = populated("gc");
        store.record_wall(&hash, 1.5);
        let bogus = "0".repeat(32);
        std::fs::write(store.path_of(&bogus), "{}").unwrap();
        store.record_wall(&bogus, 9.0);

        let keep: HashSet<String> = [hash.clone()].into_iter().collect();
        assert_eq!(store.gc(&keep).unwrap(), 1);
        assert!(store.contains(&hash));
        assert!(!store.contains(&bogus));
        assert_eq!(store.recorded_wall(&hash), Some(1.5));
        assert_eq!(store.recorded_wall(&bogus), None, "gc removes sidecars");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn tmp_reaping_is_age_gated() {
        let dir = scratch("tmp");
        let store = ResultStore::open(&dir).unwrap();
        std::fs::write(dir.join(".deadbeef.1234.tmp"), "partial").unwrap();
        // A fresh temp file survives the stale-only reap…
        assert_eq!(store.reap_tmp_older_than(STALE_TMP_AGE).unwrap(), 0);
        assert!(dir.join(".deadbeef.1234.tmp").exists());
        // …and the unconditional reap removes it.
        assert_eq!(store.reap_tmp_older_than(Duration::ZERO).unwrap(), 1);
        assert!(!dir.join(".deadbeef.1234.tmp").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fsck_quarantines_and_reaps() {
        let (dir, store, hash, _) = populated("fsck");
        store.record_wall(&hash, 0.5);
        // A truncated second entry, a temp orphan, and an orphan sidecar.
        let bad = "b".repeat(32);
        let good_bytes = std::fs::read_to_string(store.path_of(&hash)).unwrap();
        std::fs::write(store.path_of(&bad), &good_bytes[..40]).unwrap();
        std::fs::write(dir.join(".orphan.99.tmp"), "x").unwrap();
        store.record_wall(&"c".repeat(32), 2.0);

        let report = store.fsck().unwrap();
        assert_eq!(report.scanned, 2);
        assert_eq!(report.ok, 1);
        assert_eq!(report.quarantined.len(), 1);
        assert_eq!(report.quarantined[0].0, format!("{bad}.json"));
        assert_eq!(report.reaped_tmp, 1);
        assert_eq!(report.reaped_sidecars, 1);
        assert!(!report.is_clean());

        // The bad entry is gone from the store but preserved under
        // quarantine/; the good one is untouched.
        assert!(!store.contains(&bad));
        assert!(store.quarantine_dir().join(format!("{bad}.json")).is_file());
        assert!(store.verify(&hash).is_ok());
        assert_eq!(store.recorded_wall(&hash), Some(0.5));

        // A second pass is clean.
        let again = store.fsck().unwrap();
        assert!(again.is_clean());
        assert_eq!(again.ok, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn injected_io_faults_surface_on_put_and_get() {
        let dir = scratch("faults");
        let plan = FaultPlan {
            io_p: 1.0,
            max_attempt: Some(1),
            ..FaultPlan::default()
        };
        let store = ResultStore::open(&dir)
            .unwrap()
            .with_faults(Some(plan.injector()));
        let cell = tiny_cell();
        let hash = cell_hash(&cell);
        let report = System::build(&cell.config).run(cell.workload.traces(&cell.config.geometry));

        // First put fails with the injected error; the retry is gated
        // clean and succeeds.
        assert!(store.put(&hash, &cell, &report).is_err());
        store.put(&hash, &cell, &report).unwrap();
        // First get is injected into a miss; the retry reads through.
        assert!(store.get(&hash).is_none());
        assert_eq!(store.get(&hash).unwrap(), report);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn wall_sidecars_roundtrip() {
        let dir = scratch("wall");
        let store = ResultStore::open(&dir).unwrap();
        let hash = "a".repeat(32);
        assert_eq!(store.recorded_wall(&hash), None);
        store.record_wall(&hash, 12.25);
        assert_eq!(store.recorded_wall(&hash), Some(12.25));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
