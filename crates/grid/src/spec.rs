//! A named, ordered collection of cells.

use crate::cell::CellSpec;
use crate::hash::cell_hash;
use serde::{Deserialize, Serialize};

/// One declarative experiment grid.
///
/// Cell order is meaningful: sharding partitions by position, and
/// [`crate::exec::merge`] returns reports in spec order, so two processes
/// building the same spec agree on everything.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GridSpec {
    /// Grid name (figure/table identifier).
    pub name: String,
    /// The cells, in canonical order.
    pub cells: Vec<CellSpec>,
}

impl GridSpec {
    /// An empty grid.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            cells: Vec::new(),
        }
    }

    /// Appends a cell and returns its index.
    pub fn push(&mut self, cell: CellSpec) -> usize {
        self.cells.push(cell);
        self.cells.len() - 1
    }

    /// Content hashes of all cells, in cell order.
    pub fn hashes(&self) -> Vec<String> {
        self.cells.iter().map(cell_hash).collect()
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the grid has no cells.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::{AppTrace, WorkloadSpec};
    use chronus_sim::SimConfig;

    #[test]
    fn hashes_follow_cell_order() {
        let mut spec = GridSpec::new("t");
        assert!(spec.is_empty());
        for nrh in [64u32, 32] {
            let mut cfg = SimConfig::single_core();
            cfg.nrh = nrh;
            let w = WorkloadSpec::Apps {
                apps: vec![AppTrace::new("429.mcf", 0, 1)],
                trace_instructions: 100,
            };
            spec.push(CellSpec::new(format!("nrh{nrh}"), w, cfg));
        }
        assert_eq!(spec.len(), 2);
        let hashes = spec.hashes();
        assert_eq!(hashes.len(), 2);
        assert_ne!(hashes[0], hashes[1]);
    }
}
