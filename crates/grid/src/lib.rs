//! `chronus-grid` — sharded, cached, resumable experiment-grid
//! orchestration.
//!
//! The paper's artifact farms ~500 Ramulator jobs onto a Slurm cluster to
//! produce its figures; this crate is the single-machine (and
//! multi-machine) equivalent for the Rust reproduction. A figure or table
//! is a declarative [`GridSpec`]: an ordered list of [`CellSpec`]s, each
//! pairing a [`WorkloadSpec`] (how to regenerate the per-core traces) with
//! a fully resolved [`chronus_sim::SimConfig`]. Execution is:
//!
//! * **content-addressed** — every cell is keyed by a stable 128-bit hash
//!   of its resolved config + workload identity + a simulator-version
//!   stamp ([`cell::SIM_VERSION`]), so a completed cell is never
//!   re-simulated, across runs, figures, and machines sharing a store;
//! * **resumable** — interrupt a sweep anywhere; the next run picks up at
//!   the first missing cell;
//! * **sharded** — `--shard i/N` deterministically partitions the cells of
//!   a grid across processes or machines; [`exec::merge`] then assembles
//!   results from the shared (or copied-together) store byte-identically
//!   to an unsharded run.
//!
//! ```no_run
//! use chronus_grid::{AppTrace, CellSpec, ExecOpts, GridSpec, ResultStore, WorkloadSpec};
//! use chronus_sim::SimConfig;
//!
//! let mut spec = GridSpec::new("demo");
//! for nrh in [1024u32, 32] {
//!     let mut cfg = SimConfig::single_core();
//!     cfg.mechanism = chronus_core::MechanismKind::Chronus;
//!     cfg.nrh = nrh;
//!     let workload = WorkloadSpec::Apps {
//!         apps: vec![AppTrace::new("429.mcf", 0, 42)],
//!         trace_instructions: 110_000,
//!     };
//!     spec.push(CellSpec::new(format!("mcf@{nrh}"), workload, cfg));
//! }
//! let store = ResultStore::open_default().unwrap();
//! let outcome = chronus_grid::run_grid(&spec, Some(&store), &ExecOpts::default());
//! assert!(outcome.is_complete());
//! ```

pub mod batch;
pub mod cell;
pub mod doctor;
pub mod exec;
pub mod faults;
pub mod hash;
pub mod journal;
pub mod lease;
pub mod progress;
pub mod retry;
pub mod shard;
pub mod spec;
pub mod store;

pub use batch::{run_grid_batched, BatchSpec};
pub use cell::{AppTrace, AttackSpec, CellKey, CellSpec, WorkloadSpec, SIM_VERSION};
pub use doctor::{run_doctor, DoctorReport};
pub use exec::{
    merge, run_grid, run_grid_coordinated, simulate_cell, CellFailure, CoordOpts, ExecOpts,
    ExecStats, FailureKind, FailureManifest, GridOutcome, DEGRADED_EXIT,
};
pub use faults::{ExecFault, FaultInjector, FaultPlan, FAULTS_ENV};
pub use hash::cell_hash;
pub use journal::{EventKind, Journal, JournalEvent, JournalScan};
pub use lease::{ClaimOutcome, LeaseInfo, LeaseManager};
pub use progress::Progress;
pub use retry::RetryPolicy;
pub use shard::Shard;
pub use spec::GridSpec;
pub use store::{
    CellRecord, EntryIssue, EntryState, FsckReport, ManifestState, ResultStore, StoreLock,
    DEFAULT_GRID_DIR, GRID_DIR_ENV, STORE_FORMAT_VERSION,
};
