//! Capped exponential backoff with deterministic jitter.
//!
//! The executor retries failed cells (panics, watchdog timeouts, store
//! write errors) under a [`RetryPolicy`]. The schedule is a pure function
//! of the policy and a caller-supplied token (the cell's content hash
//! folded to a `u64`), so tests can assert the exact delays without a
//! clock and two machines retrying the same cell spread their attempts
//! identically — but cells with different hashes decorrelate, which keeps
//! a shared store from being hammered in lockstep after a common-mode
//! failure.

use crate::hash::unit01;

/// How (and how often) a failed operation is retried.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Retries after the first attempt (total attempts = `max_retries + 1`).
    pub max_retries: u32,
    /// Delay before the first retry, in milliseconds.
    pub base_ms: u64,
    /// Ceiling the exponential schedule saturates at, in milliseconds.
    pub cap_ms: u64,
    /// Jitter fraction in `[0, 1]`: each delay lands in
    /// `[raw·(1−j), raw·(1+j))`, deterministically per (token, retry).
    pub jitter: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_retries: 3,
            base_ms: 250,
            cap_ms: 10_000,
            jitter: 0.25,
        }
    }
}

impl RetryPolicy {
    /// No retries at all: one attempt, zero delays.
    pub const fn none() -> Self {
        Self {
            max_retries: 0,
            base_ms: 0,
            cap_ms: 0,
            jitter: 0.0,
        }
    }

    /// The default policy with a different retry budget.
    pub fn with_retries(max_retries: u32) -> Self {
        Self {
            max_retries,
            ..Self::default()
        }
    }

    /// Total attempts this policy allows.
    pub fn attempts(&self) -> u32 {
        self.max_retries + 1
    }

    /// The un-jittered delay before retry number `retry` (0-based):
    /// `min(base · 2^retry, cap)`.
    pub fn raw_delay_ms(&self, retry: u32) -> u64 {
        let factor = 1u64.checked_shl(retry).unwrap_or(u64::MAX);
        self.base_ms.saturating_mul(factor).min(self.cap_ms)
    }

    /// The jittered delay before retry number `retry`, deterministic in
    /// `(self, retry, token)`.
    pub fn delay_ms(&self, retry: u32, token: u64) -> u64 {
        let raw = self.raw_delay_ms(retry) as f64;
        let u = unit01(format!("retry|{token}|{retry}").as_bytes());
        let scaled = raw * (1.0 - self.jitter + 2.0 * self.jitter * u);
        scaled.round() as u64
    }

    /// The whole delay schedule for one operation: `max_retries` entries,
    /// `schedule_ms(t)[i]` being the pause before retry `i`.
    pub fn schedule_ms(&self, token: u64) -> Vec<u64> {
        (0..self.max_retries)
            .map(|r| self.delay_ms(r, token))
            .collect()
    }

    /// Sleeps for the delay before retry `retry`. The schedule itself stays
    /// testable without a clock through [`Self::delay_ms`].
    pub fn sleep_before_retry(&self, retry: u32, token: u64) {
        let ms = self.delay_ms(retry, token);
        if ms > 0 {
            std::thread::sleep(std::time::Duration::from_millis(ms));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn raw_schedule_is_capped_exponential() {
        let p = RetryPolicy {
            max_retries: 6,
            base_ms: 100,
            cap_ms: 1_600,
            jitter: 0.0,
        };
        let raw: Vec<u64> = (0..6).map(|r| p.raw_delay_ms(r)).collect();
        assert_eq!(raw, vec![100, 200, 400, 800, 1_600, 1_600]);
        // Zero jitter: the jittered schedule equals the raw one.
        assert_eq!(p.schedule_ms(7), raw);
    }

    #[test]
    fn huge_retry_counts_saturate_instead_of_overflowing() {
        let p = RetryPolicy {
            max_retries: 80,
            base_ms: 100,
            cap_ms: 5_000,
            jitter: 0.0,
        };
        assert_eq!(p.raw_delay_ms(63), 5_000);
        assert_eq!(p.raw_delay_ms(64), 5_000);
        assert_eq!(p.raw_delay_ms(79), 5_000);
    }

    #[test]
    fn jitter_stays_within_bounds_and_is_deterministic() {
        let p = RetryPolicy {
            max_retries: 8,
            base_ms: 200,
            cap_ms: 4_000,
            jitter: 0.25,
        };
        for token in [0u64, 1, 42, u64::MAX] {
            let schedule = p.schedule_ms(token);
            assert_eq!(schedule, p.schedule_ms(token), "schedule must be pure");
            for (retry, &ms) in schedule.iter().enumerate() {
                let raw = p.raw_delay_ms(retry as u32) as f64;
                assert!(
                    (ms as f64) >= (raw * 0.75).floor() && (ms as f64) <= (raw * 1.25).ceil(),
                    "retry {retry} delay {ms} outside ±25% of {raw}"
                );
            }
        }
        // Different tokens decorrelate.
        assert_ne!(p.schedule_ms(1), p.schedule_ms(2));
    }

    #[test]
    fn none_means_single_attempt() {
        let p = RetryPolicy::none();
        assert_eq!(p.attempts(), 1);
        assert!(p.schedule_ms(9).is_empty());
    }

    #[test]
    fn with_retries_keeps_default_shape() {
        let p = RetryPolicy::with_retries(1);
        assert_eq!(p.attempts(), 2);
        assert_eq!(p.base_ms, RetryPolicy::default().base_ms);
    }
}
