//! Stable content-addressed cell hashing.
//!
//! The key is the canonical compact-JSON rendering of a [`CellKey`], folded
//! through two independent 64-bit FNV-1a passes into a 128-bit hex digest.
//! JSON-then-hash (rather than `std::hash::Hash`) makes the digest stable
//! across Rust versions, platforms and processes — the property the on-disk
//! store and multi-machine sharding depend on. `std`'s `DefaultHasher` is
//! explicitly *not* guaranteed stable, so it is not used here.

use crate::cell::{CellKey, CellSpec};

const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
/// Standard FNV-1a offset basis.
const OFFSET_A: u64 = 0xcbf2_9ce4_8422_2325;
/// Second, independent basis so the two lanes decorrelate.
const OFFSET_B: u64 = 0x6c62_272e_07bb_0142;

fn fnv1a(bytes: &[u8], mut state: u64) -> u64 {
    for &b in bytes {
        state ^= u64::from(b);
        state = state.wrapping_mul(FNV_PRIME);
    }
    state
}

/// 128-bit hex digest (32 lowercase hex chars) of `bytes`.
pub fn digest128(bytes: &[u8]) -> String {
    let a = fnv1a(bytes, OFFSET_A);
    let b = fnv1a(bytes, OFFSET_B);
    format!("{a:016x}{b:016x}")
}

/// Stable 64-bit FNV-1a of `bytes` (lane A).
///
/// The deterministic building block behind retry jitter and fault-injection
/// decisions: unlike `std::hash::DefaultHasher`, the value is guaranteed
/// identical across Rust versions, platforms and processes.
pub fn mix64(bytes: &[u8]) -> u64 {
    fnv1a(bytes, OFFSET_A)
}

/// Maps `bytes` deterministically onto `[0, 1)`.
///
/// Used wherever a reproducible pseudo-random draw is needed (fault
/// injection rates, backoff jitter): the same input always yields the same
/// point of the unit interval, on every machine.
pub fn unit01(bytes: &[u8]) -> f64 {
    // 53 mantissa bits keep the quotient exact in f64.
    (mix64(bytes) >> 11) as f64 / (1u64 << 53) as f64
}

/// The content-addressed store key of one cell.
pub fn cell_hash(cell: &CellSpec) -> String {
    let key = CellKey::of(cell);
    let json = serde_json::to_string(&key).expect("cell keys always serialize");
    digest128(json.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::{AppTrace, WorkloadSpec};
    use chronus_sim::SimConfig;

    fn cell(nrh: u32) -> CellSpec {
        let w = WorkloadSpec::Apps {
            apps: vec![AppTrace::new("429.mcf", 0, 1)],
            trace_instructions: 1_000,
        };
        let mut cfg = SimConfig::single_core();
        cfg.nrh = nrh;
        CellSpec::new("label", w, cfg)
    }

    #[test]
    fn digest_is_stable_and_hexy() {
        let d = digest128(b"chronus");
        assert_eq!(d.len(), 32);
        assert_eq!(d, digest128(b"chronus"));
        assert_ne!(d, digest128(b"chronut"));
        assert!(d.bytes().all(|b| b.is_ascii_hexdigit()));
    }

    #[test]
    fn label_is_not_part_of_the_key() {
        let a = cell(64);
        let mut b = a.clone();
        b.label = "renamed".into();
        assert_eq!(cell_hash(&a), cell_hash(&b));
    }

    #[test]
    fn config_changes_change_the_key() {
        assert_ne!(cell_hash(&cell(64)), cell_hash(&cell(32)));
    }

    #[test]
    fn unit01_is_deterministic_and_in_range() {
        for input in [b"a".as_slice(), b"b", b"chronus", b""] {
            let u = unit01(input);
            assert!((0.0..1.0).contains(&u), "{u} out of range");
            assert_eq!(u, unit01(input));
        }
        assert_ne!(unit01(b"a"), unit01(b"b"));
        assert_eq!(mix64(b"seed"), mix64(b"seed"));
    }
}
