//! Deterministic cell partitioning for multi-process / multi-machine runs.

use std::fmt;
use std::str::FromStr;

/// One shard of a grid: `--shard i/N` claims every cell whose position in
/// the spec satisfies `index % N == i - 1`.
///
/// Position-based round-robin dealing is deterministic for a given spec
/// (the spec builders are themselves deterministic in the harness options)
/// and interleaves expensive neighbours — e.g. one N_RH column, which tends
/// to share cost characteristics — across shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Shard {
    /// 1-based shard index.
    pub index: usize,
    /// Total shard count.
    pub count: usize,
}

impl Shard {
    /// The trivial full partition `1/1`.
    pub const fn full() -> Self {
        Self { index: 1, count: 1 }
    }

    /// Whether this is the full partition.
    pub fn is_full(&self) -> bool {
        self.count == 1
    }

    /// Whether this shard owns the cell at `cell_index`.
    pub fn owns(&self, cell_index: usize) -> bool {
        cell_index % self.count == self.index - 1
    }
}

impl fmt::Display for Shard {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.index, self.count)
    }
}

impl FromStr for Shard {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let bad = || format!("invalid shard '{s}' (expected i/N with 1 <= i <= N, e.g. 2/4)");
        let (i, n) = s.split_once('/').ok_or_else(bad)?;
        let index: usize = i.trim().parse().map_err(|_| bad())?;
        let count: usize = n.trim().parse().map_err(|_| bad())?;
        if index == 0 || count == 0 || index > count {
            return Err(bad());
        }
        Ok(Shard { index, count })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_and_prints() {
        let s: Shard = "2/4".parse().unwrap();
        assert_eq!(s, Shard { index: 2, count: 4 });
        assert_eq!(s.to_string(), "2/4");
        assert_eq!("1/1".parse::<Shard>().unwrap(), Shard::full());
    }

    #[test]
    fn rejects_nonsense() {
        for bad in ["", "3", "0/2", "3/2", "a/b", "1/0", "1//2"] {
            assert!(bad.parse::<Shard>().is_err(), "{bad} should not parse");
        }
    }

    #[test]
    fn shards_partition_exactly() {
        let shards: Vec<Shard> = (1..=3).map(|i| Shard { index: i, count: 3 }).collect();
        for cell in 0..100 {
            let owners = shards.iter().filter(|s| s.owns(cell)).count();
            assert_eq!(owners, 1, "cell {cell} owned by {owners} shards");
        }
    }

    #[test]
    fn full_shard_owns_everything() {
        assert!((0..50).all(|i| Shard::full().owns(i)));
    }
}
