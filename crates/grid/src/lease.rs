//! Lease-based work claims: inter-process dedup of in-flight cells.
//!
//! Before simulating a cell, an executor atomically creates
//! `<store>/leases/<hash>.lease`. Creation is exclusive *and* carries the
//! full lease content atomically (the content is written to a temp file
//! first and then `hard_link`ed into place, so no observer can ever read a
//! half-written lease). A cell whose lease is held by a live holder is
//! *waited on, not recomputed*: N processes pointed at one store partition
//! the grid dynamically with zero duplicate simulation.
//!
//! Liveness is deadline-based and heartbeat-refreshed: the holder stamps
//! `deadline_ms` (wall-clock epoch milliseconds) into the lease and
//! refreshes it periodically while the cell runs. A lease is **stale** —
//! and may be reclaimed by anyone, deterministically — when any of:
//!
//! 1. the deadline has passed (no heartbeat for a full TTL);
//! 2. the lease file is unparsable (torn by tampering; creation itself is
//!    atomic);
//! 3. the holder ran on *this* host and its PID no longer exists (Linux
//!    `/proc` check — lets a `kill -9`'d holder be reclaimed immediately
//!    instead of after a TTL).
//!
//! Reclamation races are settled by `rename`: every contender renames the
//! stale lease to a private path, and the filesystem guarantees exactly one
//! rename succeeds; the winner deletes the carcass and retries the claim.
//! Because store entries are byte-deterministic and written via atomic
//! rename, even a lost lease (clock skew, extreme heartbeat delay) can only
//! cost duplicate compute — never a corrupt or diverging store.

use std::collections::HashSet;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use serde::{Deserialize, Serialize};

use crate::faults::FaultInjector;

/// Subdirectory of the store that holds lease files.
pub const LEASES_SUBDIR: &str = "leases";

/// The persisted content of one lease.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LeaseInfo {
    /// Holder identity (`host-pid-instance`).
    pub holder: String,
    /// Wall-clock epoch milliseconds after which the lease is stale.
    pub deadline_ms: u64,
    /// Heartbeat refreshes performed so far.
    pub refreshes: u64,
}

impl LeaseInfo {
    /// Whether this lease may be reclaimed at `now_ms`: deadline passed, or
    /// the holder demonstrably died on this host.
    pub fn is_stale(&self, now_ms: u64) -> bool {
        now_ms > self.deadline_ms || holder_dead_locally(&self.holder)
    }
}

/// Current wall-clock time as epoch milliseconds.
pub fn now_ms() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

/// The host part of holder identities minted by [`unique_holder`].
fn host_name() -> String {
    std::env::var("HOSTNAME")
        .ok()
        .filter(|h| !h.trim().is_empty())
        .unwrap_or_else(|| "local".to_string())
        .replace(['/', '\\', ':'], "_")
}

static HOLDER_SEQ: AtomicU64 = AtomicU64::new(0);

/// A process-unique holder identity: `host-pid-instance`. Each call mints a
/// fresh instance number, so two executors in one process never collide.
pub fn unique_holder() -> String {
    format!(
        "{}-{}-{}",
        host_name(),
        std::process::id(),
        HOLDER_SEQ.fetch_add(1, Ordering::Relaxed)
    )
}

/// Whether `holder` provably refers to a dead process on *this* host.
/// Conservative: unknown hosts, unparsable holders and platforms without
/// `/proc` all report `false` (fall back to the deadline rule).
fn holder_dead_locally(holder: &str) -> bool {
    if !Path::new("/proc/self").exists() {
        return false;
    }
    let mut parts = holder.rsplit('-');
    let _instance = parts.next();
    let Some(pid) = parts.next().and_then(|p| p.parse::<u32>().ok()) else {
        return false;
    };
    let host: String = {
        let rest: Vec<&str> = parts.collect();
        rest.into_iter().rev().collect::<Vec<_>>().join("-")
    };
    if host != host_name() {
        return false;
    }
    !Path::new(&format!("/proc/{pid}")).exists()
}

/// Outcome of one claim attempt.
#[derive(Debug)]
pub enum ClaimOutcome {
    /// This manager now holds the lease; release (or keep heartbeating)
    /// when done.
    Claimed,
    /// A live holder owns the cell; wait for it instead of recomputing.
    Held(LeaseInfo),
}

/// Creates, refreshes, releases and reclaims leases under one store.
#[derive(Debug, Clone)]
pub struct LeaseManager {
    dir: PathBuf,
    holder: String,
    faults: Option<FaultInjector>,
}

impl LeaseManager {
    /// A manager for `<store_dir>/leases`, claiming as `holder`.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation failures.
    pub fn open(store_dir: &Path, holder: impl Into<String>) -> io::Result<Self> {
        let dir = store_dir.join(LEASES_SUBDIR);
        std::fs::create_dir_all(&dir)?;
        Ok(Self {
            dir,
            holder: holder.into(),
            faults: None,
        })
    }

    /// Attaches deterministic fault injection to the lease I/O boundary.
    #[must_use]
    pub fn with_faults(mut self, faults: Option<FaultInjector>) -> Self {
        self.faults = faults;
        self
    }

    /// This manager's holder identity.
    pub fn holder(&self) -> &str {
        &self.holder
    }

    /// The lease-file path of a hash.
    pub fn lease_path(&self, hash: &str) -> PathBuf {
        self.dir.join(format!("{hash}.lease"))
    }

    /// Reads and parses the current lease of `hash`; `None` when absent or
    /// unparsable.
    pub fn read(&self, hash: &str) -> Option<LeaseInfo> {
        let text = std::fs::read_to_string(self.lease_path(hash)).ok()?;
        serde_json::from_str(&text).ok()
    }

    /// Atomically writes `info` into a private temp file and returns its
    /// path (same directory, so `rename`/`hard_link` stay atomic).
    fn write_tmp(&self, hash: &str, info: &LeaseInfo) -> io::Result<PathBuf> {
        let tmp = self.dir.join(format!(
            ".{hash}.{}.ltmp",
            crate::hash::mix64(self.holder.as_bytes())
        ));
        let json = serde_json::to_string(info).expect("leases always serialize");
        std::fs::write(&tmp, json)?;
        Ok(tmp)
    }

    /// Tries to claim `hash` for `ttl`. Stale leases (past deadline,
    /// unparsable, or held by a locally dead process) are reclaimed and the
    /// claim retried; a live holder's lease comes back as
    /// [`ClaimOutcome::Held`].
    ///
    /// # Errors
    ///
    /// Propagates I/O failures other than the expected exclusivity
    /// conflicts (including injected lease faults).
    pub fn try_claim(&self, hash: &str, ttl: Duration) -> io::Result<ClaimOutcome> {
        if let Some(faults) = &self.faults {
            if let Some(e) = faults.lease_fault("claim", hash) {
                return Err(e);
            }
        }
        let path = self.lease_path(hash);
        loop {
            let info = LeaseInfo {
                holder: self.holder.clone(),
                deadline_ms: now_ms() + ttl.as_millis() as u64,
                refreshes: 0,
            };
            let tmp = self.write_tmp(hash, &info)?;
            // `hard_link` is the exclusive-create that also lands the full
            // content atomically: it fails if the lease exists, and no
            // reader can ever observe an empty or half-written lease.
            let linked = std::fs::hard_link(&tmp, &path);
            let _ = std::fs::remove_file(&tmp);
            match linked {
                Ok(()) => return Ok(ClaimOutcome::Claimed),
                Err(e) if e.kind() == io::ErrorKind::AlreadyExists => {
                    match self.read(hash) {
                        Some(current) if !current.is_stale(now_ms()) => {
                            return Ok(ClaimOutcome::Held(current));
                        }
                        // Stale or unparsable: reclaim via the rename race
                        // (exactly one contender wins) and retry.
                        _ => {
                            if !self.reclaim(hash) {
                                // Lost the reclaim race; loop to observe the
                                // winner's fresh lease (or its release).
                                std::thread::yield_now();
                            }
                        }
                    }
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Removes a stale lease via the deterministic rename race; `true` when
    /// this manager won (the lease file is gone).
    fn reclaim(&self, hash: &str) -> bool {
        let carcass = self.dir.join(format!(
            ".{hash}.{}.reclaim",
            crate::hash::mix64(self.holder.as_bytes())
        ));
        match std::fs::rename(self.lease_path(hash), &carcass) {
            Ok(()) => {
                let _ = std::fs::remove_file(&carcass);
                true
            }
            Err(_) => false,
        }
    }

    /// Heartbeat: extends the deadline of a lease this manager holds.
    /// Returns `Ok(false)` when the lease was lost (reclaimed by another
    /// holder after going stale) — the caller keeps computing; the store's
    /// atomic, byte-deterministic writes make the duplicate harmless.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures (including injected lease faults).
    pub fn refresh(&self, hash: &str, ttl: Duration) -> io::Result<bool> {
        if let Some(faults) = &self.faults {
            if let Some(e) = faults.lease_fault("refresh", hash) {
                return Err(e);
            }
        }
        let Some(current) = self.read(hash) else {
            return Ok(false);
        };
        if current.holder != self.holder {
            return Ok(false);
        }
        let info = LeaseInfo {
            holder: self.holder.clone(),
            deadline_ms: now_ms() + ttl.as_millis() as u64,
            refreshes: current.refreshes + 1,
        };
        let tmp = self.write_tmp(hash, &info)?;
        std::fs::rename(&tmp, self.lease_path(hash))?;
        Ok(true)
    }

    /// Releases a lease this manager holds (a lease stolen after going
    /// stale is left untouched).
    pub fn release(&self, hash: &str) {
        if self.read(hash).is_some_and(|l| l.holder == self.holder) {
            let _ = std::fs::remove_file(self.lease_path(hash));
        }
    }

    /// Removes every stale lease under the store; returns the reclaimed
    /// `(hash, holder)` pairs. The executor-open hook and `doctor` both run
    /// this so crashed holders never block a cell longer than one TTL.
    ///
    /// # Errors
    ///
    /// Propagates directory-read failures (individual races are ignored).
    pub fn reclaim_stale(&self) -> io::Result<Vec<(String, String)>> {
        let mut reclaimed = Vec::new();
        let now = now_ms();
        for entry in std::fs::read_dir(&self.dir)? {
            let name = entry?.file_name();
            let name = name.to_string_lossy();
            let Some(hash) = name.strip_suffix(".lease") else {
                continue;
            };
            let holder = match self.read(hash) {
                Some(info) if info.is_stale(now) => info.holder,
                Some(_) => continue,
                None => "<unparsable>".to_string(),
            };
            if self.reclaim(hash) {
                reclaimed.push((hash.to_string(), holder));
            }
        }
        reclaimed.sort();
        Ok(reclaimed)
    }
}

/// Hashes currently protected by a live (non-stale) lease under
/// `<store_dir>/leases`. `gc`, `fsck` and tmp reaping consult this so they
/// never disturb a cell that is being computed right now.
pub fn live_hashes(store_dir: &Path) -> HashSet<String> {
    let mut out = HashSet::new();
    let dir = store_dir.join(LEASES_SUBDIR);
    let Ok(entries) = std::fs::read_dir(&dir) else {
        return out;
    };
    let now = now_ms();
    for entry in entries.flatten() {
        let name = entry.file_name();
        let name = name.to_string_lossy();
        let Some(hash) = name.strip_suffix(".lease") else {
            continue;
        };
        let live = std::fs::read_to_string(entry.path())
            .ok()
            .and_then(|text| serde_json::from_str::<LeaseInfo>(&text).ok())
            .is_some_and(|info| !info.is_stale(now));
        if live {
            out.insert(hash.to_string());
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("chronus-grid-lease-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    const TTL: Duration = Duration::from_secs(60);

    #[test]
    fn claim_is_exclusive_and_released() {
        let dir = scratch("excl");
        let a = LeaseManager::open(&dir, "host-1-0").unwrap();
        let b = LeaseManager::open(&dir, "host-1-1").unwrap();
        let hash = "a".repeat(32);

        assert!(matches!(
            a.try_claim(&hash, TTL).unwrap(),
            ClaimOutcome::Claimed
        ));
        match b.try_claim(&hash, TTL).unwrap() {
            ClaimOutcome::Held(info) => assert_eq!(info.holder, "host-1-0"),
            ClaimOutcome::Claimed => panic!("second claim must observe the first"),
        }
        a.release(&hash);
        assert!(matches!(
            b.try_claim(&hash, TTL).unwrap(),
            ClaimOutcome::Claimed
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_leases_are_reclaimed_on_claim() {
        let dir = scratch("stale");
        let mgr = LeaseManager::open(&dir, "host-1-0").unwrap();
        let hash = "b".repeat(32);
        // A foreign-host lease whose deadline has long passed.
        let stale = LeaseInfo {
            holder: "elsewhere-99-0".into(),
            deadline_ms: 1,
            refreshes: 0,
        };
        std::fs::write(
            mgr.lease_path(&hash),
            serde_json::to_string(&stale).unwrap(),
        )
        .unwrap();
        assert!(matches!(
            mgr.try_claim(&hash, TTL).unwrap(),
            ClaimOutcome::Claimed
        ));
        assert_eq!(mgr.read(&hash).unwrap().holder, "host-1-0");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unparsable_leases_count_as_stale() {
        let dir = scratch("torn");
        let mgr = LeaseManager::open(&dir, "host-1-0").unwrap();
        let hash = "c".repeat(32);
        std::fs::write(mgr.lease_path(&hash), "{torn").unwrap();
        assert!(matches!(
            mgr.try_claim(&hash, TTL).unwrap(),
            ClaimOutcome::Claimed
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn dead_local_pid_is_stale_despite_future_deadline() {
        if !Path::new("/proc/self").exists() {
            return; // liveness acceleration is Linux-only
        }
        let dir = scratch("deadpid");
        let mgr = LeaseManager::open(&dir, "tester-1-0").unwrap();
        let hash = "d".repeat(32);
        // PID 4294000000 is far above any real pid_max.
        let dead = LeaseInfo {
            holder: format!("{}-4294000000-0", host_name()),
            deadline_ms: now_ms() + 3_600_000,
            refreshes: 0,
        };
        std::fs::write(mgr.lease_path(&hash), serde_json::to_string(&dead).unwrap()).unwrap();
        assert!(dead.is_stale(now_ms()), "dead local pid must be stale");
        assert!(matches!(
            mgr.try_claim(&hash, TTL).unwrap(),
            ClaimOutcome::Claimed
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn refresh_extends_only_own_leases() {
        let dir = scratch("refresh");
        let a = LeaseManager::open(&dir, "host-1-0").unwrap();
        let b = LeaseManager::open(&dir, "host-1-1").unwrap();
        let hash = "e".repeat(32);
        a.try_claim(&hash, Duration::from_millis(50)).unwrap();
        let before = a.read(&hash).unwrap();
        assert!(a.refresh(&hash, TTL).unwrap());
        let after = a.read(&hash).unwrap();
        assert!(after.deadline_ms >= before.deadline_ms);
        assert_eq!(after.refreshes, 1);
        // A non-holder cannot refresh, and refreshing a missing lease
        // reports the loss instead of erroring.
        assert!(!b.refresh(&hash, TTL).unwrap());
        a.release(&hash);
        assert!(!a.refresh(&hash, TTL).unwrap());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn live_hashes_excludes_stale() {
        let dir = scratch("live");
        let mgr = LeaseManager::open(&dir, "host-1-0").unwrap();
        let live = "f".repeat(32);
        let stale = "0".repeat(32);
        mgr.try_claim(&live, TTL).unwrap();
        std::fs::write(
            mgr.lease_path(&stale),
            serde_json::to_string(&LeaseInfo {
                holder: "elsewhere-7-0".into(),
                deadline_ms: 1,
                refreshes: 0,
            })
            .unwrap(),
        )
        .unwrap();
        let set = live_hashes(&dir);
        assert!(set.contains(&live));
        assert!(!set.contains(&stale));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn reclaim_stale_sweeps_only_stale() {
        let dir = scratch("sweep");
        let mgr = LeaseManager::open(&dir, "host-1-0").unwrap();
        let live = "1".repeat(32);
        let stale = "2".repeat(32);
        mgr.try_claim(&live, TTL).unwrap();
        std::fs::write(
            mgr.lease_path(&stale),
            serde_json::to_string(&LeaseInfo {
                holder: "elsewhere-7-0".into(),
                deadline_ms: 1,
                refreshes: 0,
            })
            .unwrap(),
        )
        .unwrap();
        let reclaimed = mgr.reclaim_stale().unwrap();
        assert_eq!(reclaimed.len(), 1);
        assert_eq!(reclaimed[0].0, stale);
        assert_eq!(reclaimed[0].1, "elsewhere-7-0");
        assert!(mgr.read(&live).is_some(), "live lease must survive");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unique_holders_differ() {
        let a = unique_holder();
        let b = unique_holder();
        assert_ne!(a, b);
        assert!(a.contains(&std::process::id().to_string()));
    }
}
