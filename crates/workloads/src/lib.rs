//! Synthetic workload generation.
//!
//! The paper evaluates memory traces collected from SPEC CPU2006/2017,
//! TPC, MediaBench and YCSB. Those traces are not redistributable here, so
//! this crate synthesises statistically similar traces: each of the 57
//! single-core applications is described by an [`AppProfile`] capturing
//! the properties the paper's methodology actually keys on — row-buffer
//! misses per kilo-instruction (the H/M/L grouping of §6), row-buffer
//! locality, read/write balance, and footprint — and a seeded generator
//! produces traces with those statistics. See DESIGN.md §1 for why this
//! substitution preserves the evaluation's shape.
//!
//! [`mixes`] builds the 60 four-core mixes (10 each of HHHH, MMMM, LLLL,
//! HHMM, MMLL, LLHH) and the 23 eight-core homogeneous SPEC2017 workloads
//! of Appendix E; [`attack`] generates the adversarial patterns of §4 and
//! §11.

pub mod apps;
pub mod attack;
pub mod generator;
pub mod mixes;
pub mod profile;

pub use apps::{all_profiles, eight_core_spec17_profiles, profile_by_name};
pub use attack::{perf_attack_trace, wave_attack_trace};
pub use generator::synthetic_app;
pub use mixes::{four_core_mixes, Mix, MixClass};
pub use profile::{AppProfile, IntensityClass};
