//! Adversarial access patterns (§4 wave attack, §11 performance attack).
//!
//! Attack traces use non-cacheable loads ([`chronus_cpu::TraceOp::LoadNc`])
//! to model `clflush`-based hammering: every access reaches DRAM. Rows are
//! chosen through the *inverse* address mapping so the attacker hits the
//! exact (bank, row) coordinates it intends — the paper's threat model
//! assumes knowledge of the physical layout (§4).

use chronus_cpu::{Trace, TraceEntry, TraceOp};
use chronus_ctrl::AddressMapping;
use chronus_dram::{BankId, DramAddr, Geometry};

/// Builds the §4 wave attack: hammer `rows` decoy rows of one bank in
/// balanced rounds for `total_accesses` accesses.
///
/// Real wave attacks drop mitigated rows between rounds; for trace-driven
/// simulation (the attacker cannot observe refreshes mid-trace) we emit
/// the balanced round-robin pattern, which the paper's analysis shows is
/// the pressure component of the attack.
pub fn wave_attack_trace(
    mapping: AddressMapping,
    geo: &Geometry,
    bank: BankId,
    rows: &[u32],
    total_accesses: usize,
) -> Trace {
    assert!(!rows.is_empty(), "the wave needs at least one row");
    let mut t = Trace::new("wave-attack");
    for i in 0..total_accesses {
        let row = rows[i % rows.len()];
        let addr = mapping.encode(&DramAddr::new(bank, row, 0), geo);
        t.entries.push(TraceEntry {
            bubbles: 0,
            op: TraceOp::LoadNc(addr),
        });
    }
    t
}

/// Builds the §11 performance-degradation attack: hammer `rows_per_bank`
/// rows in each of `num_banks` banks (paper: 8 rows × 4 banks), cycling so
/// every return to a bank targets a different row (guaranteed row
/// conflict → activation).
pub fn perf_attack_trace(
    mapping: AddressMapping,
    geo: &Geometry,
    num_banks: usize,
    rows_per_bank: usize,
    total_accesses: usize,
) -> Trace {
    assert!(num_banks >= 1 && rows_per_bank >= 2);
    let banks: Vec<BankId> = (0..num_banks)
        .map(|i| BankId::from_flat(i * 5 % geo.total_banks(), geo))
        .collect();
    // Spread target rows across the bank to avoid shared victims.
    let rows: Vec<u32> = (0..rows_per_bank).map(|i| (1000 + i * 64) as u32).collect();
    let mut t = Trace::new("perf-attack");
    for i in 0..total_accesses {
        let bank = banks[i % banks.len()];
        let row = rows[(i / banks.len()) % rows.len()];
        let addr = mapping.encode(&DramAddr::new(bank, row, 0), geo);
        t.entries.push(TraceEntry {
            bubbles: 0,
            op: TraceOp::LoadNc(addr),
        });
    }
    t
}

/// A classic double-sided hammer against one victim row: alternates the
/// two adjacent aggressors.
pub fn double_sided_trace(
    mapping: AddressMapping,
    geo: &Geometry,
    bank: BankId,
    victim: u32,
    total_accesses: usize,
) -> Trace {
    assert!(victim >= 1 && (victim as usize) < geo.rows - 1);
    let aggressors = [victim - 1, victim + 1];
    let mut t = Trace::new("double-sided");
    for i in 0..total_accesses {
        let addr = mapping.encode(&DramAddr::new(bank, aggressors[i % 2], 0), geo);
        t.entries.push(TraceEntry {
            bubbles: 0,
            op: TraceOp::LoadNc(addr),
        });
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wave_trace_round_robins_target_rows() {
        let geo = Geometry::ddr5();
        let bank = BankId::new(0, 2, 1);
        let rows = [10u32, 20, 30];
        let t = wave_attack_trace(AddressMapping::Mop, &geo, bank, &rows, 9);
        assert_eq!(t.entries.len(), 9);
        for (i, e) in t.entries.iter().enumerate() {
            let a = AddressMapping::Mop.decode(e.op.addr(), &geo);
            assert_eq!(a.bank, bank);
            assert_eq!(a.row, rows[i % 3]);
            assert!(matches!(e.op, TraceOp::LoadNc(_)));
        }
    }

    #[test]
    fn perf_attack_forces_row_conflicts() {
        let geo = Geometry::ddr5();
        let t = perf_attack_trace(AddressMapping::Mop, &geo, 4, 8, 64);
        // Consecutive accesses to the same bank must target different rows.
        let decoded: Vec<DramAddr> = t
            .entries
            .iter()
            .map(|e| AddressMapping::Mop.decode(e.op.addr(), &geo))
            .collect();
        for w in decoded.windows(5) {
            let (first, again) = (w[0], w[4]); // 4 banks: stride 4 revisits
            assert_eq!(first.bank, again.bank);
            assert_ne!(first.row, again.row, "revisit must conflict");
        }
        let banks: std::collections::HashSet<_> = decoded.iter().map(|d| d.bank).collect();
        assert_eq!(banks.len(), 4);
    }

    #[test]
    fn double_sided_alternates_neighbours() {
        let geo = Geometry::ddr5();
        let bank = BankId::new(1, 0, 0);
        let t = double_sided_trace(AddressMapping::RoBaRaCoCh, &geo, bank, 100, 10);
        let rows: Vec<u32> = t
            .entries
            .iter()
            .map(|e| AddressMapping::RoBaRaCoCh.decode(e.op.addr(), &geo).row)
            .collect();
        assert_eq!(&rows[..4], &[99, 101, 99, 101]);
    }
}
