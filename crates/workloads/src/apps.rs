//! The workload roster: 57 single-core applications drawn from the
//! paper's five suites (SPEC CPU2006, SPEC CPU2017, TPC, MediaBench,
//! YCSB), plus the 23 SPEC CPU2017 applications of the Appendix E
//! eight-core study.
//!
//! MPKI values and localities are representative of each application's
//! published memory characterisation (e.g. [Singh & Awasthi, ICPE'19] for
//! SPEC 2017); they drive the synthetic generator, not a claim of exact
//! reproduction. Footprints are sized so high-intensity apps stream far
//! beyond the 8 MiB LLC.

use crate::profile::AppProfile;

const MIB: u64 = 1 << 20;

/// All 57 single-core applications (14 H, 19 M, 24 L).
pub fn all_profiles() -> Vec<AppProfile> {
    let p = |name, mpki, locality, read_ratio, footprint_mib: u64| AppProfile {
        name,
        mpki,
        locality,
        read_ratio,
        footprint: footprint_mib * MIB,
    };
    vec![
        // ---- High intensity (RBMPKI ≥ 10) ----
        p("429.mcf", 55.0, 0.15, 0.75, 256),
        p("505.mcf", 40.0, 0.18, 0.75, 256),
        p("470.lbm", 35.0, 0.85, 0.55, 192),
        p("519.lbm", 33.0, 0.85, 0.55, 192),
        p("462.libquantum", 30.0, 0.90, 0.80, 128),
        p("549.fotonik3d", 25.0, 0.80, 0.70, 160),
        p("459.GemsFDTD", 22.0, 0.75, 0.65, 160),
        p("434.zeusmp", 18.0, 0.70, 0.60, 128),
        p("510.parest", 15.0, 0.55, 0.70, 96),
        p("437.leslie3d", 14.0, 0.75, 0.60, 128),
        p("483.xalancbmk", 12.0, 0.25, 0.80, 96),
        p("482.sphinx3", 11.0, 0.50, 0.85, 64),
        p("471.omnetpp", 10.5, 0.20, 0.70, 96),
        p("520.omnetpp", 10.0, 0.20, 0.70, 96),
        // ---- Medium intensity (2 ≤ RBMPKI < 10) ----
        p("433.milc", 8.0, 0.60, 0.65, 96),
        p("450.soplex", 7.0, 0.45, 0.75, 64),
        p("ycsb-a", 7.0, 0.30, 0.55, 128),
        p("tpch2", 6.0, 0.40, 0.85, 128),
        p("wc_8443", 6.0, 0.50, 0.70, 64),
        p("tpch17", 5.0, 0.40, 0.85, 128),
        p("436.cactusADM", 5.0, 0.65, 0.60, 96),
        p("wc_map0", 5.0, 0.50, 0.70, 64),
        p("507.cactuBSSN", 4.5, 0.65, 0.60, 96),
        p("ycsb-b", 4.0, 0.30, 0.75, 128),
        p("tpch6", 4.0, 0.45, 0.85, 128),
        p("473.astar", 4.0, 0.30, 0.80, 48),
        p("jp2_encode", 3.5, 0.70, 0.55, 48),
        p("tpcc64", 3.0, 0.35, 0.65, 128),
        p("ycsb-c", 3.0, 0.30, 0.90, 128),
        p("ycsb-d", 2.8, 0.30, 0.80, 128),
        p("403.gcc", 2.5, 0.40, 0.70, 48),
        p("ycsb-e", 2.4, 0.35, 0.80, 128),
        p("531.deepsjeng", 2.2, 0.35, 0.75, 32),
        // ---- Low intensity (RBMPKI < 2) ----
        p("523.xalancbmk", 1.8, 0.30, 0.80, 48),
        p("grep_map0", 1.6, 0.55, 0.80, 32),
        p("481.wrf", 1.5, 0.65, 0.60, 64),
        p("557.xz", 1.4, 0.45, 0.65, 64),
        p("401.bzip2", 1.2, 0.55, 0.65, 32),
        p("jp2_decode", 1.1, 0.70, 0.60, 48),
        p("502.gcc", 1.0, 0.40, 0.70, 48),
        p("526.blender", 0.9, 0.55, 0.70, 32),
        p("500.perlbench", 0.9, 0.40, 0.75, 32),
        p("447.dealII", 0.8, 0.50, 0.75, 32),
        p("h264_encode", 0.8, 0.65, 0.60, 32),
        p("544.nab", 0.7, 0.55, 0.70, 24),
        p("525.x264", 0.6, 0.65, 0.65, 32),
        p("464.h264ref", 0.5, 0.65, 0.65, 32),
        p("445.gobmk", 0.5, 0.40, 0.75, 16),
        p("458.sjeng", 0.4, 0.40, 0.75, 16),
        p("541.leela", 0.3, 0.40, 0.75, 16),
        p("465.tonto", 0.3, 0.50, 0.70, 24),
        p("444.namd", 0.3, 0.60, 0.70, 24),
        p("538.imagick", 0.2, 0.60, 0.60, 24),
        p("456.hmmer", 0.2, 0.55, 0.70, 16),
        p("h264_decode", 0.6, 0.65, 0.70, 32),
        p("511.povray", 0.1, 0.50, 0.75, 16),
        p("548.exchange2", 0.05, 0.40, 0.75, 8),
    ]
}

/// The 23 SPEC CPU2017 applications used by the eight-core homogeneous
/// study (Fig. 14/15, following [Kim+, CAL'25]).
pub fn eight_core_spec17_profiles() -> Vec<AppProfile> {
    let p = |name, mpki, locality, read_ratio, footprint_mib: u64| AppProfile {
        name,
        mpki,
        locality,
        read_ratio,
        footprint: footprint_mib * MIB,
    };
    vec![
        p("503.bwaves", 9.0, 0.75, 0.65, 128),
        p("505.mcf", 40.0, 0.18, 0.75, 256),
        p("507.cactuBSSN", 4.5, 0.65, 0.60, 96),
        p("508.namd", 0.3, 0.60, 0.70, 24),
        p("510.parest", 15.0, 0.55, 0.70, 96),
        p("511.povray", 0.1, 0.50, 0.75, 16),
        p("519.lbm", 33.0, 0.85, 0.55, 192),
        p("520.omnetpp", 10.0, 0.20, 0.70, 96),
        p("521.wrf", 1.5, 0.65, 0.60, 64),
        p("523.xalancbmk", 1.8, 0.30, 0.80, 48),
        p("525.x264", 0.6, 0.65, 0.65, 32),
        p("526.blender", 0.9, 0.55, 0.70, 32),
        p("527.cam4", 2.0, 0.60, 0.65, 64),
        p("531.deepsjeng", 2.2, 0.35, 0.75, 32),
        p("538.imagick", 0.2, 0.60, 0.60, 24),
        p("541.leela", 0.3, 0.40, 0.75, 16),
        p("544.nab", 0.7, 0.55, 0.70, 24),
        p("548.exchange2", 0.05, 0.40, 0.75, 8),
        p("549.fotonik3d", 25.0, 0.80, 0.70, 160),
        p("554.roms", 12.0, 0.75, 0.65, 128),
        p("557.xz", 1.4, 0.45, 0.65, 64),
        p("500.perlbench", 0.9, 0.40, 0.75, 32),
        p("502.gcc", 1.0, 0.40, 0.70, 48),
    ]
}

/// Looks up a profile by application name.
pub fn profile_by_name(name: &str) -> Option<AppProfile> {
    all_profiles()
        .into_iter()
        .chain(eight_core_spec17_profiles())
        .find(|p| p.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::IntensityClass;

    #[test]
    fn roster_has_57_distinct_apps() {
        let apps = all_profiles();
        assert_eq!(apps.len(), 57);
        let names: std::collections::HashSet<_> = apps.iter().map(|p| p.name).collect();
        assert_eq!(names.len(), 57, "duplicate names");
    }

    #[test]
    fn class_pools_are_well_stocked() {
        let apps = all_profiles();
        let count = |c| apps.iter().filter(|p| p.class() == c).count();
        assert!(count(IntensityClass::High) >= 10);
        assert!(count(IntensityClass::Medium) >= 10);
        assert!(count(IntensityClass::Low) >= 10);
    }

    #[test]
    fn spec17_roster_has_23_apps() {
        assert_eq!(eight_core_spec17_profiles().len(), 23);
    }

    #[test]
    fn lookup_finds_fig7_apps() {
        for name in ["429.mcf", "470.lbm", "tpch17", "jp2_encode", "554.roms"] {
            assert!(profile_by_name(name).is_some(), "{name} missing");
        }
        assert!(profile_by_name("not-an-app").is_none());
    }

    #[test]
    fn profiles_are_sane() {
        for p in all_profiles() {
            assert!(p.mpki > 0.0 && p.mpki < 100.0, "{}", p.name);
            assert!((0.0..=1.0).contains(&p.locality), "{}", p.name);
            assert!((0.0..=1.0).contains(&p.read_ratio), "{}", p.name);
            assert!(p.footprint >= 8 * MIB, "{}", p.name);
        }
    }
}
