//! Multi-programmed workload mixes (§6).

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::apps::all_profiles;
use crate::profile::{AppProfile, IntensityClass};

/// The six four-core mix classes of §6.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MixClass {
    /// Four high-intensity applications.
    Hhhh,
    /// Four medium-intensity applications.
    Mmmm,
    /// Four low-intensity applications.
    Llll,
    /// Two high, two medium.
    Hhmm,
    /// Two medium, two low.
    Mmll,
    /// Two low, two high.
    Llhh,
}

impl MixClass {
    /// All six classes in the paper's order.
    pub fn all() -> [MixClass; 6] {
        [
            MixClass::Hhhh,
            MixClass::Mmmm,
            MixClass::Llll,
            MixClass::Hhmm,
            MixClass::Mmll,
            MixClass::Llhh,
        ]
    }

    /// The per-core intensity pattern.
    pub fn pattern(&self) -> [IntensityClass; 4] {
        use IntensityClass::{High as H, Low as L, Medium as M};
        match self {
            MixClass::Hhhh => [H, H, H, H],
            MixClass::Mmmm => [M, M, M, M],
            MixClass::Llll => [L, L, L, L],
            MixClass::Hhmm => [H, H, M, M],
            MixClass::Mmll => [M, M, L, L],
            MixClass::Llhh => [L, L, H, H],
        }
    }

    /// Label such as `"HHHH"`.
    pub fn label(&self) -> String {
        self.pattern().iter().map(|c| c.letter()).collect()
    }
}

impl std::fmt::Display for MixClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label())
    }
}

/// One multi-programmed mix.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Mix {
    /// Mix name, e.g. `"HHMM-3"`.
    pub name: String,
    /// The mix class.
    pub class: MixClass,
    /// One profile per core.
    pub apps: Vec<AppProfile>,
}

/// Builds the 60 four-core mixes: `per_class` (paper: 10) of each class,
/// sampled deterministically from the intensity pools.
pub fn four_core_mixes(per_class: usize, seed: u64) -> Vec<Mix> {
    let profiles = all_profiles();
    let pool = |c: IntensityClass| -> Vec<AppProfile> {
        profiles
            .iter()
            .copied()
            .filter(|p| p.class() == c)
            .collect()
    };
    let pools = [
        pool(IntensityClass::High),
        pool(IntensityClass::Medium),
        pool(IntensityClass::Low),
    ];
    let pool_of = |c: IntensityClass| match c {
        IntensityClass::High => &pools[0],
        IntensityClass::Medium => &pools[1],
        IntensityClass::Low => &pools[2],
    };
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::new();
    for class in MixClass::all() {
        for i in 0..per_class {
            let apps: Vec<AppProfile> = class
                .pattern()
                .iter()
                .map(|&c| *pool_of(c).choose(&mut rng).expect("non-empty pool"))
                .collect();
            out.push(Mix {
                name: format!("{}-{}", class.label(), i),
                class,
                apps,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sixty_mixes_at_paper_scale() {
        let mixes = four_core_mixes(10, 42);
        assert_eq!(mixes.len(), 60);
        for class in MixClass::all() {
            assert_eq!(mixes.iter().filter(|m| m.class == class).count(), 10);
        }
    }

    #[test]
    fn mixes_respect_their_pattern() {
        for mix in four_core_mixes(3, 7) {
            let pattern = mix.class.pattern();
            assert_eq!(mix.apps.len(), 4);
            for (app, want) in mix.apps.iter().zip(pattern) {
                assert_eq!(app.class(), want, "mix {} app {}", mix.name, app.name);
            }
        }
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(four_core_mixes(5, 1), four_core_mixes(5, 1));
        assert_ne!(four_core_mixes(5, 1), four_core_mixes(5, 2));
    }

    #[test]
    fn labels_read_like_the_paper() {
        assert_eq!(MixClass::Hhmm.label(), "HHMM");
        assert_eq!(MixClass::Llll.label(), "LLLL");
        assert_eq!(format!("{}", MixClass::Llhh), "LLHH");
    }
}
