//! The synthetic trace generator.
//!
//! Produces a trace whose MPKI, stream/random balance and read/write mix
//! match an [`AppProfile`]: with probability `locality` the next access
//! continues a sequential stream (row-buffer friendly under both MOP and
//! RoBaRaCoCh mappings); otherwise it jumps to a random line in the
//! footprint (a row miss and, for footprints ≫ LLC, a DRAM access).

use chronus_cpu::{Trace, TraceEntry, TraceOp};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::apps::profile_by_name;
use crate::profile::AppProfile;

/// Generates a trace of roughly `instructions` instructions for `profile`.
pub fn generate(profile: &AppProfile, instructions: u64, base_addr: u64, seed: u64) -> Trace {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9E37_79B9_7F4A_7C15);
    let mut trace = Trace::new(profile.name);
    let line = 64u64;
    let lines_in_footprint = (profile.footprint / line).max(16);
    let mut stream_pos: u64 = rng.gen_range(0..lines_in_footprint);
    let mean_bubbles = profile.bubbles_per_op();
    let mut emitted_insts: u64 = 0;
    while emitted_insts < instructions {
        // Jittered bubble count (±50 %) keeps the average on target without
        // lock-step periodicity.
        let bubbles = if mean_bubbles == 0 {
            0
        } else {
            let lo = mean_bubbles / 2;
            let hi = mean_bubbles + mean_bubbles / 2;
            rng.gen_range(lo..=hi.max(lo + 1))
        };
        let addr_line = if rng.gen::<f64>() < profile.locality {
            stream_pos = (stream_pos + 1) % lines_in_footprint;
            stream_pos
        } else {
            stream_pos = rng.gen_range(0..lines_in_footprint);
            stream_pos
        };
        let addr = base_addr + addr_line * line;
        let op = if rng.gen::<f64>() < profile.read_ratio {
            TraceOp::Load(addr)
        } else {
            TraceOp::Store(addr)
        };
        trace.entries.push(TraceEntry { bubbles, op });
        emitted_insts += bubbles as u64 + 1;
    }
    trace
}

/// A named-application generator handle.
#[derive(Debug, Clone)]
pub struct SyntheticApp {
    profile: AppProfile,
    base_addr: u64,
}

impl SyntheticApp {
    /// The profile behind this generator.
    pub fn profile(&self) -> &AppProfile {
        &self.profile
    }

    /// Generates `instructions` worth of trace with the given seed.
    pub fn generate(&self, instructions: u64, seed: u64) -> Trace {
        generate(&self.profile, instructions, self.base_addr, seed)
    }
}

/// Looks up `name` in the roster and returns a generator whose addresses
/// live in the `slot`-th 512 MiB region of physical memory (so
/// multi-programmed cores do not share data).
pub fn synthetic_app(name: &str, slot: u64) -> Option<SyntheticApp> {
    let profile = profile_by_name(name)?;
    Some(SyntheticApp {
        profile,
        base_addr: slot * (512 << 20),
    })
}

/// Same slot-based placement for an explicit profile.
pub fn synthetic_from_profile(profile: AppProfile, slot: u64) -> SyntheticApp {
    SyntheticApp {
        profile,
        base_addr: slot * (512 << 20),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mpki_matches_profile() {
        for name in ["429.mcf", "tpch2", "511.povray"] {
            let app = synthetic_app(name, 0).unwrap();
            let t = app.generate(200_000, 1);
            let target = app.profile().mpki;
            let got = t.mpki();
            assert!(
                (got - target).abs() / target < 0.15,
                "{name}: mpki {got} vs target {target}"
            );
        }
    }

    #[test]
    fn read_ratio_matches_profile() {
        let app = synthetic_app("470.lbm", 0).unwrap();
        let t = app.generate(500_000, 2);
        let got = t.read_fraction();
        assert!((got - 0.55).abs() < 0.05, "read fraction {got}");
    }

    #[test]
    fn deterministic_per_seed() {
        let app = synthetic_app("429.mcf", 0).unwrap();
        assert_eq!(app.generate(10_000, 7), app.generate(10_000, 7));
        assert_ne!(app.generate(10_000, 7), app.generate(10_000, 8));
    }

    #[test]
    fn slots_separate_address_spaces() {
        let a = synthetic_app("429.mcf", 0).unwrap().generate(10_000, 1);
        let b = synthetic_app("429.mcf", 1).unwrap().generate(10_000, 1);
        let max_a = a.entries.iter().map(|e| e.op.addr()).max().unwrap();
        let min_b = b.entries.iter().map(|e| e.op.addr()).min().unwrap();
        assert!(max_a < min_b);
    }

    #[test]
    fn addresses_stay_in_footprint() {
        let app = synthetic_app("456.hmmer", 0).unwrap();
        let t = app.generate(50_000, 3);
        let fp = app.profile().footprint;
        for e in &t.entries {
            assert!(e.op.addr() < fp);
        }
    }

    #[test]
    fn streaming_app_is_mostly_sequential() {
        let app = synthetic_app("462.libquantum", 0).unwrap();
        let t = app.generate(100_000, 4);
        let seq = t
            .entries
            .windows(2)
            .filter(|w| w[1].op.addr() == w[0].op.addr() + 64)
            .count();
        let frac = seq as f64 / (t.entries.len() - 1) as f64;
        assert!(frac > 0.8, "sequential fraction {frac}");
    }
}
