//! Application profiles.

use serde::{Deserialize, Serialize};

/// Memory-intensity class (§6: grouped by row-buffer misses per
/// kilo-instruction; lowest MPKI of 10 / 2 / 0 for H / M / L).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum IntensityClass {
    /// High intensity: RBMPKI ≥ 10.
    High,
    /// Medium intensity: 2 ≤ RBMPKI < 10.
    Medium,
    /// Low intensity: RBMPKI < 2.
    Low,
}

impl IntensityClass {
    /// Classifies an MPKI value.
    pub fn of_mpki(mpki: f64) -> Self {
        if mpki >= 10.0 {
            IntensityClass::High
        } else if mpki >= 2.0 {
            IntensityClass::Medium
        } else {
            IntensityClass::Low
        }
    }

    /// One-letter label (H/M/L).
    pub fn letter(&self) -> char {
        match self {
            IntensityClass::High => 'H',
            IntensityClass::Medium => 'M',
            IntensityClass::Low => 'L',
        }
    }
}

/// Statistical description of one application's memory behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct AppProfile {
    /// Application name (matching the paper's workload roster).
    pub name: &'static str,
    /// Target memory operations per kilo-instruction.
    pub mpki: f64,
    /// Probability that the next access continues the current sequential
    /// stream (row-buffer locality proxy).
    pub locality: f64,
    /// Fraction of memory operations that are loads.
    pub read_ratio: f64,
    /// Working-set size in bytes.
    pub footprint: u64,
}

impl AppProfile {
    /// The intensity class this profile lands in.
    pub fn class(&self) -> IntensityClass {
        IntensityClass::of_mpki(self.mpki)
    }

    /// Average bubbles between memory operations for the target MPKI.
    pub fn bubbles_per_op(&self) -> u32 {
        ((1000.0 / self.mpki).round() as u32).saturating_sub(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_boundaries() {
        assert_eq!(IntensityClass::of_mpki(10.0), IntensityClass::High);
        assert_eq!(IntensityClass::of_mpki(9.99), IntensityClass::Medium);
        assert_eq!(IntensityClass::of_mpki(2.0), IntensityClass::Medium);
        assert_eq!(IntensityClass::of_mpki(1.99), IntensityClass::Low);
    }

    #[test]
    fn bubbles_inverse_of_mpki() {
        let p = AppProfile {
            name: "x",
            mpki: 10.0,
            locality: 0.5,
            read_ratio: 0.7,
            footprint: 1 << 20,
        };
        assert_eq!(p.bubbles_per_op(), 99);
    }
}
