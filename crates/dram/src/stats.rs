//! Device-level statistics consumed by reports and the energy model.

use serde::{Deserialize, Serialize};

/// Command and activity counters for one DRAM channel.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DramStats {
    /// ACT commands.
    pub acts: u64,
    /// Explicit PRE commands (PREab counts once per closed bank).
    pub pres: u64,
    /// RD / RDA commands.
    pub reads: u64,
    /// WR / WRA commands.
    pub writes: u64,
    /// REFab commands (per rank).
    pub refs: u64,
    /// RFMab commands (per rank).
    pub rfms: u64,
    /// Victim-row refresh pseudo-commands (controller-side mechanisms).
    pub vrrs: u64,
    /// Victim rows refreshed while serving RFM commands.
    pub rfm_victim_rows: u64,
    /// Aggressors serviced by borrowed refreshes during REFab.
    pub borrowed_refreshes: u64,
    /// Cycles with at least one bank open, summed over ranks (background
    /// energy: active-standby portion).
    pub active_standby_cycles: u64,
    /// Cycles with all banks of a rank closed, summed over ranks.
    pub precharge_standby_cycles: u64,
    /// Total simulated cycles (memory clock).
    pub total_cycles: u64,
}

impl DramStats {
    /// Row-buffer activations plus preventive activations (VRR internally
    /// activates the victim row once).
    pub fn total_activations(&self) -> u64 {
        self.acts + self.vrrs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_include_vrr() {
        let s = DramStats {
            acts: 10,
            vrrs: 3,
            ..Default::default()
        };
        assert_eq!(s.total_activations(), 13);
    }
}
