//! Cycle-level DDR5 DRAM device model.
//!
//! This crate is the lowest layer of the Chronus reproduction stack. It
//! models a DDR5 module (ranks → bank groups → banks → rows) at command
//! granularity with a full timing-constraint engine, and exposes the two
//! extension points the paper's mechanisms need:
//!
//! * [`DramMitigation`] — the on-DRAM-die mitigation hook (PRAC counters,
//!   Chronus CCU, RFM victim selection, borrowed refresh).
//! * the `alert_n` back-off pin ([`DramDevice::alert_visible`]), which the
//!   memory controller polls to drive its RFM/back-off state machine.
//!
//! Three timing modes reproduce Table 1 and Appendix E of the paper:
//! [`TimingMode::Baseline`] (DDR5 without PRAC), [`TimingMode::Prac`]
//! (post-erratum PRAC timings), and [`TimingMode::PracBuggy`] (the
//! pre-erratum timings where `tRAS`/`tRTP`/`tWR` were not reduced).
//!
//! An optional [`oracle::DisturbOracle`] tracks ground-truth per-row
//! disturbance so tests can verify that no row is ever hammered `N_RH`
//! times between refreshes of its victims.
//!
//! ```
//! use chronus_dram::{Command, DramConfig, DramDevice, BankId};
//!
//! let cfg = DramConfig::ddr5_baseline();
//! let mut dev = DramDevice::new(cfg);
//! let bank = BankId::new(0, 0, 0);
//! assert!(dev.can_issue(&Command::Act { bank, row: 42 }, 0));
//! dev.issue(&Command::Act { bank, row: 42 }, 0);
//! assert_eq!(dev.open_row(bank), Some(42));
//! ```

pub mod bank;
pub mod command;
pub mod device;
pub mod geometry;
pub mod mitigation;
pub mod oracle;
pub mod rank;
pub mod stats;
pub mod timing;

pub use bank::{Bank, BankState};
pub use command::Command;
pub use device::{DramConfig, DramDevice};
pub use geometry::{BankId, DramAddr, Geometry, RowId};
pub use mitigation::{DramMitigation, MitigationStats, NoMitigation, RfmOutcome};
pub use oracle::{DisturbOracle, ThresholdModel};
pub use stats::DramStats;
pub use timing::{TimingMode, Timings, TimingsNs};

/// Memory-controller command-clock cycle count (tCK = 0.625 ns for DDR5-3200).
pub type Cycle = u64;
