//! DRAM module geometry and addressing types.
//!
//! The simulated system follows Table 2 of the paper: one channel, two
//! ranks, eight bank groups of four banks each (64 banks total) and 64K
//! rows per bank.

use serde::{Deserialize, Serialize};

/// Row index within a bank.
pub type RowId = u32;

/// Physical organization of one DRAM channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Geometry {
    /// Ranks sharing the channel (Table 2: 2).
    pub ranks: usize,
    /// Bank groups per rank (Table 2: 8).
    pub bankgroups: usize,
    /// Banks per bank group (Table 2: 4).
    pub banks_per_group: usize,
    /// Rows per bank (Table 2: 64K).
    pub rows: usize,
    /// Cache-line-sized columns per row (8 KiB row / 64 B line = 128).
    pub cols: usize,
    /// Bytes per column access (one cache line).
    pub line_bytes: usize,
}

impl Geometry {
    /// The paper's simulated configuration (Table 2).
    pub const fn ddr5() -> Self {
        Self {
            ranks: 2,
            bankgroups: 8,
            banks_per_group: 4,
            rows: 65_536,
            cols: 128,
            line_bytes: 64,
        }
    }

    /// A shrunken geometry for fast unit tests (same shape, fewer rows).
    pub const fn tiny() -> Self {
        Self {
            ranks: 1,
            bankgroups: 2,
            banks_per_group: 2,
            rows: 1024,
            cols: 16,
            line_bytes: 64,
        }
    }

    /// Banks in one rank.
    pub const fn banks_per_rank(&self) -> usize {
        self.bankgroups * self.banks_per_group
    }

    /// Banks in the whole channel.
    pub const fn total_banks(&self) -> usize {
        self.ranks * self.banks_per_rank()
    }

    /// Total channel capacity in bytes.
    pub const fn capacity_bytes(&self) -> u64 {
        (self.total_banks() * self.rows * self.cols * self.line_bytes) as u64
    }

    /// Row size in bytes.
    pub const fn row_bytes(&self) -> usize {
        self.cols * self.line_bytes
    }
}

impl Default for Geometry {
    fn default() -> Self {
        Self::ddr5()
    }
}

/// Identifies one bank in the channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct BankId {
    /// Rank index.
    pub rank: u8,
    /// Bank-group index within the rank.
    pub group: u8,
    /// Bank index within the bank group.
    pub bank: u8,
}

impl BankId {
    /// Creates a bank identifier.
    pub const fn new(rank: u8, group: u8, bank: u8) -> Self {
        Self { rank, group, bank }
    }

    /// Flat index across the channel: `rank * banks_per_rank + group * banks_per_group + bank`.
    pub fn flat(&self, geo: &Geometry) -> usize {
        (self.rank as usize) * geo.banks_per_rank()
            + (self.group as usize) * geo.banks_per_group
            + self.bank as usize
    }

    /// Inverse of [`BankId::flat`].
    pub fn from_flat(idx: usize, geo: &Geometry) -> Self {
        let rank = idx / geo.banks_per_rank();
        let rem = idx % geo.banks_per_rank();
        Self {
            rank: rank as u8,
            group: (rem / geo.banks_per_group) as u8,
            bank: (rem % geo.banks_per_group) as u8,
        }
    }
}

impl std::fmt::Display for BankId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "r{}g{}b{}", self.rank, self.group, self.bank)
    }
}

/// Fully decoded DRAM coordinates of one cache-line access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DramAddr {
    /// Target bank.
    pub bank: BankId,
    /// Row within the bank.
    pub row: RowId,
    /// Cache-line column within the row.
    pub col: u32,
}

impl DramAddr {
    /// Creates a decoded address.
    pub const fn new(bank: BankId, row: RowId, col: u32) -> Self {
        Self { bank, row, col }
    }

    /// True if `self` and `other` touch the same bank.
    pub fn same_bank(&self, other: &DramAddr) -> bool {
        self.bank == other.bank
    }

    /// True if `self` and `other` touch the same row of the same bank.
    pub fn same_row(&self, other: &DramAddr) -> bool {
        self.same_bank(other) && self.row == other.row
    }
}

/// Victim rows of `aggressor` under the given blast radius, clamped to the
/// bank (paper §5 assumes a blast radius of 2, i.e. four victims).
pub fn victims_of(aggressor: RowId, blast_radius: u32, rows: usize) -> Vec<RowId> {
    let mut v = Vec::with_capacity(2 * blast_radius as usize);
    for d in 1..=blast_radius {
        if aggressor >= d {
            v.push(aggressor - d);
        }
        let up = aggressor + d;
        if (up as usize) < rows {
            v.push(up);
        }
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ddr5_geometry_matches_table2() {
        let g = Geometry::ddr5();
        assert_eq!(g.total_banks(), 64);
        assert_eq!(g.banks_per_rank(), 32);
        assert_eq!(g.rows, 65_536);
        // 64 banks * 64K rows * 8 KiB rows = 32 GiB.
        assert_eq!(g.capacity_bytes(), 32 * (1 << 30));
        assert_eq!(g.row_bytes(), 8192);
    }

    #[test]
    fn bank_id_flat_roundtrip() {
        let g = Geometry::ddr5();
        for idx in 0..g.total_banks() {
            let b = BankId::from_flat(idx, &g);
            assert_eq!(b.flat(&g), idx);
        }
    }

    #[test]
    fn bank_id_flat_orders_rank_major() {
        let g = Geometry::ddr5();
        assert_eq!(BankId::new(0, 0, 0).flat(&g), 0);
        assert_eq!(BankId::new(0, 0, 1).flat(&g), 1);
        assert_eq!(BankId::new(0, 1, 0).flat(&g), 4);
        assert_eq!(BankId::new(1, 0, 0).flat(&g), 32);
    }

    #[test]
    fn victims_blast_radius_two_interior() {
        let v = victims_of(100, 2, 65_536);
        assert_eq!(v, vec![99, 101, 98, 102]);
    }

    #[test]
    fn victims_clamped_at_edges() {
        assert_eq!(victims_of(0, 2, 65_536), vec![1, 2]);
        assert_eq!(victims_of(1, 2, 65_536), vec![0, 2, 3]);
        let last = 65_535;
        assert_eq!(victims_of(last, 2, 65_536), vec![last - 1, last - 2]);
    }

    #[test]
    fn same_row_requires_same_bank() {
        let a = DramAddr::new(BankId::new(0, 0, 0), 5, 1);
        let b = DramAddr::new(BankId::new(0, 0, 1), 5, 1);
        assert!(!a.same_row(&b));
        assert!(a.same_row(&DramAddr::new(BankId::new(0, 0, 0), 5, 9)));
    }
}
