//! Ground-truth read-disturbance tracking.
//!
//! The oracle is *not* part of any mechanism: it observes every activation
//! and every victim refresh the device performs and maintains, per row, the
//! number of aggressor activations the row has absorbed since it was last
//! refreshed. Tests and the security harness use it to verify empirically
//! that a configuration keeps every row below `N_RH` (the paper's security
//! criterion, §8: a system is secure iff `A(i) < N_RH` for all rows at all
//! times — here expressed from the victim's perspective).

use crate::geometry::{victims_of, BankId, Geometry, RowId};

/// Per-row disturbance counters with would-be-bitflip detection.
///
/// Two complementary views are maintained:
///
/// * **Per-aggressor** `A(i)`: activations of row *i* since *i*'s victims
///   were last refreshed. This is the paper's §8 security criterion
///   (`A(i) < N_RH` for all rows at all times) and what the deterministic
///   mechanisms bound.
/// * **Per-victim damage**: disturbances a row absorbed from all its
///   neighbours since it was last refreshed — a diagnostic for
///   probabilistic mechanisms such as PARA that refresh victims
///   individually.
#[derive(Debug, Clone)]
pub struct DisturbOracle {
    geo: Geometry,
    blast_radius: u32,
    nrh: u32,
    /// damage[flat_bank][row] = disturbances absorbed since last refresh.
    damage: Vec<Vec<u32>>,
    /// acts[flat_bank][row] = A(row): activations since the row's victims
    /// were refreshed.
    acts: Vec<Vec<u32>>,
    max_damage: u32,
    max_acts: u32,
    flips: u64,
}

impl DisturbOracle {
    /// Creates an oracle that flags aggressors reaching `nrh` activations.
    pub fn new(geo: Geometry, blast_radius: u32, nrh: u32) -> Self {
        let banks = geo.total_banks();
        Self {
            geo,
            blast_radius,
            nrh,
            damage: (0..banks).map(|_| vec![0u32; geo.rows]).collect(),
            acts: (0..banks).map(|_| vec![0u32; geo.rows]).collect(),
            max_damage: 0,
            max_acts: 0,
            flips: 0,
        }
    }

    /// Records an activation of `row`: `A(row)` increments and all of
    /// `row`'s victims absorb one disturbance.
    pub fn on_activate(&mut self, bank: BankId, row: RowId) {
        let flat = bank.flat(&self.geo);
        let a = &mut self.acts[flat][row as usize];
        *a += 1;
        if *a > self.max_acts {
            self.max_acts = *a;
        }
        if *a == self.nrh {
            self.flips += 1;
        }
        for v in victims_of(row, self.blast_radius, self.geo.rows) {
            let d = &mut self.damage[flat][v as usize];
            *d += 1;
            if *d > self.max_damage {
                self.max_damage = *d;
            }
        }
    }

    /// Records that `row` itself has been refreshed (an individual VRR or
    /// the periodic sweep): its absorbed damage clears. Per-aggressor
    /// counts are unaffected — use [`DisturbOracle::on_victims_refreshed`]
    /// when a whole victim set is serviced.
    pub fn on_row_refreshed(&mut self, bank: BankId, row: RowId) {
        let flat = bank.flat(&self.geo);
        self.damage[flat][row as usize] = 0;
    }

    /// Records that all victims of `aggressor` were refreshed: `A(aggressor)`
    /// resets and the victims' damage clears.
    pub fn on_victims_refreshed(&mut self, bank: BankId, aggressor: RowId) {
        let flat = bank.flat(&self.geo);
        self.acts[flat][aggressor as usize] = 0;
        for v in victims_of(aggressor, self.blast_radius, self.geo.rows) {
            self.damage[flat][v as usize] = 0;
        }
    }

    /// Records a periodic-refresh sweep segment: REFab number `ref_idx`
    /// refreshes a 1/8192-th slice of every bank in the rank (DDR5 refreshes
    /// the whole device every 8192 REFs). Aggressors whose complete victim
    /// set lies inside the refreshed slice reset their `A` count.
    pub fn on_periodic_sweep(&mut self, rank: usize, ref_idx: u64) {
        let slices = 8192u64;
        let rows_per_slice = (self.geo.rows as u64).div_ceil(slices);
        let slice = ref_idx % slices;
        let start = (slice * rows_per_slice).min(self.geo.rows as u64) as usize;
        let end = ((slice + 1) * rows_per_slice).min(self.geo.rows as u64) as usize;
        let base = rank * self.geo.banks_per_rank();
        let br = self.blast_radius as usize;
        let a_start = if start == 0 { 0 } else { start + br };
        let a_end = if end >= self.geo.rows {
            self.geo.rows
        } else {
            end.saturating_sub(br)
        };
        for b in base..base + self.geo.banks_per_rank() {
            for d in &mut self.damage[b][start..end] {
                *d = 0;
            }
            if a_start < a_end {
                for a in &mut self.acts[b][a_start..a_end] {
                    *a = 0;
                }
            }
        }
    }

    /// Highest disturbance any victim has absorbed between refreshes.
    pub fn max_damage(&self) -> u32 {
        self.max_damage
    }

    /// Highest `A(i)` any aggressor reached between victim refreshes — the
    /// §8 security metric.
    pub fn max_aggressor_acts(&self) -> u32 {
        self.max_acts
    }

    /// Number of would-be bitflip events (an aggressor reaching `nrh`).
    pub fn flips(&self) -> u64 {
        self.flips
    }

    /// Current absorbed damage of one row.
    pub fn damage_of(&self, bank: BankId, row: RowId) -> u32 {
        self.damage[bank.flat(&self.geo)][row as usize]
    }

    /// Current `A(row)` of one row.
    pub fn acts_of(&self, bank: BankId, row: RowId) -> u32 {
        self.acts[bank.flat(&self.geo)][row as usize]
    }

    /// The configured disturbance threshold.
    pub fn nrh(&self) -> u32 {
        self.nrh
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn oracle() -> DisturbOracle {
        DisturbOracle::new(Geometry::tiny(), 2, 10)
    }

    #[test]
    fn activation_damages_victims_not_self() {
        let mut o = oracle();
        let b = BankId::new(0, 0, 0);
        o.on_activate(b, 100);
        assert_eq!(o.damage_of(b, 100), 0);
        assert_eq!(o.damage_of(b, 99), 1);
        assert_eq!(o.damage_of(b, 101), 1);
        assert_eq!(o.damage_of(b, 98), 1);
        assert_eq!(o.damage_of(b, 102), 1);
        assert_eq!(o.damage_of(b, 103), 0);
        assert_eq!(o.max_damage(), 1);
    }

    #[test]
    fn refresh_clears_damage() {
        let mut o = oracle();
        let b = BankId::new(0, 0, 0);
        for _ in 0..5 {
            o.on_activate(b, 100);
        }
        assert_eq!(o.damage_of(b, 101), 5);
        assert_eq!(o.acts_of(b, 100), 5);
        o.on_row_refreshed(b, 101);
        assert_eq!(o.damage_of(b, 101), 0);
        assert_eq!(o.damage_of(b, 99), 5); // untouched
        assert_eq!(o.acts_of(b, 100), 5); // single-victim refresh ≠ service
        o.on_victims_refreshed(b, 100);
        assert_eq!(o.damage_of(b, 99), 0);
        assert_eq!(o.acts_of(b, 100), 0);
        // High-water marks persist.
        assert_eq!(o.max_damage(), 5);
        assert_eq!(o.max_aggressor_acts(), 5);
    }

    #[test]
    fn double_sided_hammer_accumulates() {
        let mut o = oracle();
        let b = BankId::new(0, 0, 0);
        for _ in 0..4 {
            o.on_activate(b, 99);
            o.on_activate(b, 101);
        }
        // Row 100 is a blast-1 victim of both aggressors.
        assert_eq!(o.damage_of(b, 100), 8);
    }

    #[test]
    fn flips_detected_at_threshold() {
        let mut o = oracle();
        let b = BankId::new(0, 0, 0);
        for _ in 0..10 {
            o.on_activate(b, 50);
        }
        assert!(o.flips() > 0);
        assert_eq!(o.max_aggressor_acts(), 10);
    }

    #[test]
    fn periodic_sweep_clears_slice() {
        let geo = Geometry::tiny();
        let mut o = DisturbOracle::new(geo, 2, 1000);
        let b = BankId::new(0, 0, 0);
        o.on_activate(b, 1); // damages rows 0, 2, 3
                             // Slice 0 covers the first ceil(1024/8192) = 1 row of every bank.
        o.on_periodic_sweep(0, 0);
        assert_eq!(o.damage_of(b, 0), 0);
        assert_eq!(o.damage_of(b, 2), 1);
    }
}
