//! Ground-truth read-disturbance tracking.
//!
//! The oracle is *not* part of any mechanism: it observes every activation
//! and every victim refresh the device performs and maintains, per row, the
//! number of aggressor activations the row has absorbed since it was last
//! refreshed. Tests and the security harness use it to verify empirically
//! that a configuration keeps every row below `N_RH` (the paper's security
//! criterion, §8: a system is secure iff `A(i) < N_RH` for all rows at all
//! times — here expressed from the victim's perspective).
//!
//! Two refinements support the Monte-Carlo batch engine:
//!
//! * **Per-row thresholds** ([`ThresholdModel::PerRow`]): Variable Read
//!   Disturbance models `N_RH` as a per-row random variable. The per-row
//!   threshold is a pure hash of `(bank, row, seed)` — no per-row storage,
//!   deterministic across runs and processes.
//! * **Lanes**: the counter state (`acts`/`damage`) depends only on the
//!   command stream, never on the threshold, so one oracle can judge the
//!   same run against many threshold models at once. Each lane carries its
//!   own model and would-be-bitflip count; lane 0 is the "primary" lane the
//!   scalar accessors report.

use crate::geometry::{victims_of, BankId, Geometry, RowId};

/// How the would-be-bitflip threshold is assigned to rows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ThresholdModel {
    /// Every row flips at the same activation count (the classic scalar
    /// `N_RH`).
    Uniform(u32),
    /// Per-row thresholds drawn uniformly from `[floor, nominal]` by a
    /// deterministic hash of `(bank, row, seed)` — the Variable Read
    /// Disturbance model. `floor == nominal` degenerates to
    /// [`ThresholdModel::Uniform`] behaviour exactly.
    PerRow {
        /// The nominal (maximum) threshold; reported as `nrh`.
        nominal: u32,
        /// The weakest row's threshold (≥ 1, ≤ `nominal`).
        floor: u32,
        /// Sampling seed for the per-row hash.
        seed: u64,
    },
}

/// SplitMix64: a full-period 64-bit finalizer; one application per
/// `(bank, row)` gives an i.i.d.-quality per-row draw.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl ThresholdModel {
    /// The flip threshold of one row.
    pub fn threshold_of(&self, flat_bank: usize, row: RowId) -> u32 {
        match *self {
            ThresholdModel::Uniform(nrh) => nrh,
            ThresholdModel::PerRow {
                nominal,
                floor,
                seed,
            } => {
                debug_assert!(floor >= 1 && floor <= nominal);
                let span = (nominal - floor + 1) as u64;
                let h = splitmix64(seed ^ splitmix64(((flat_bank as u64) << 32) | row as u64));
                floor + (h % span) as u32
            }
        }
    }

    /// The smallest threshold any row can have — the fast-skip bound for
    /// the activation hot path.
    pub fn min_threshold(&self) -> u32 {
        match *self {
            ThresholdModel::Uniform(nrh) => nrh,
            ThresholdModel::PerRow { floor, .. } => floor,
        }
    }

    /// The nominal threshold (what reports call `nrh`).
    pub fn nominal(&self) -> u32 {
        match *self {
            ThresholdModel::Uniform(nrh) => nrh,
            ThresholdModel::PerRow { nominal, .. } => nominal,
        }
    }
}

/// One threshold model judging the shared counter state.
#[derive(Debug, Clone)]
struct OracleLane {
    model: ThresholdModel,
    flips: u64,
}

/// Per-row disturbance counters with would-be-bitflip detection.
///
/// Two complementary views are maintained:
///
/// * **Per-aggressor** `A(i)`: activations of row *i* since *i*'s victims
///   were last refreshed. This is the paper's §8 security criterion
///   (`A(i) < N_RH` for all rows at all times) and what the deterministic
///   mechanisms bound.
/// * **Per-victim damage**: disturbances a row absorbed from all its
///   neighbours since it was last refreshed — a diagnostic for
///   probabilistic mechanisms such as PARA that refresh victims
///   individually.
///
/// Counters live in flat structure-of-arrays vectors (`flat_bank × rows`)
/// shared by every lane; only the flip verdicts are per-lane.
#[derive(Debug, Clone)]
pub struct DisturbOracle {
    geo: Geometry,
    blast_radius: u32,
    /// damage[flat_bank * rows + row] = disturbances absorbed since last
    /// refresh.
    damage: Vec<u32>,
    /// acts[flat_bank * rows + row] = A(row): activations since the row's
    /// victims were refreshed.
    acts: Vec<u32>,
    max_damage: u32,
    max_acts: u32,
    lanes: Vec<OracleLane>,
    /// min over lanes of `min_threshold()`: activation counts below this
    /// can never flip any lane.
    min_thr: u32,
}

impl DisturbOracle {
    /// Creates an oracle that flags aggressors reaching `nrh` activations.
    pub fn new(geo: Geometry, blast_radius: u32, nrh: u32) -> Self {
        Self::with_model(geo, blast_radius, ThresholdModel::Uniform(nrh))
    }

    /// An oracle with a single (possibly per-row) threshold model.
    pub fn with_model(geo: Geometry, blast_radius: u32, model: ThresholdModel) -> Self {
        Self::with_lanes(geo, blast_radius, vec![model])
    }

    /// An oracle judging the same command stream against several threshold
    /// models at once (one lane per model; lane order is preserved).
    pub fn with_lanes(geo: Geometry, blast_radius: u32, models: Vec<ThresholdModel>) -> Self {
        assert!(!models.is_empty(), "oracle needs at least one lane");
        let cells = geo.total_banks() * geo.rows;
        let min_thr = models
            .iter()
            .map(ThresholdModel::min_threshold)
            .min()
            .expect("non-empty");
        Self {
            geo,
            blast_radius,
            damage: vec![0u32; cells],
            acts: vec![0u32; cells],
            max_damage: 0,
            max_acts: 0,
            lanes: models
                .into_iter()
                .map(|model| OracleLane { model, flips: 0 })
                .collect(),
            min_thr,
        }
    }

    /// Records an activation of `row`: `A(row)` increments and all of
    /// `row`'s victims absorb one disturbance.
    pub fn on_activate(&mut self, bank: BankId, row: RowId) {
        let flat = bank.flat(&self.geo);
        let base = flat * self.geo.rows;
        let a = &mut self.acts[base + row as usize];
        *a += 1;
        if *a > self.max_acts {
            self.max_acts = *a;
        }
        if *a >= self.min_thr {
            let a = *a;
            for lane in &mut self.lanes {
                if a == lane.model.threshold_of(flat, row) {
                    lane.flips += 1;
                }
            }
        }
        for v in victims_of(row, self.blast_radius, self.geo.rows) {
            let d = &mut self.damage[base + v as usize];
            *d += 1;
            if *d > self.max_damage {
                self.max_damage = *d;
            }
        }
    }

    /// Records that `row` itself has been refreshed (an individual VRR or
    /// the periodic sweep): its absorbed damage clears. Per-aggressor
    /// counts are unaffected — use [`DisturbOracle::on_victims_refreshed`]
    /// when a whole victim set is serviced.
    pub fn on_row_refreshed(&mut self, bank: BankId, row: RowId) {
        let flat = bank.flat(&self.geo);
        self.damage[flat * self.geo.rows + row as usize] = 0;
    }

    /// Records that all victims of `aggressor` were refreshed: `A(aggressor)`
    /// resets and the victims' damage clears.
    pub fn on_victims_refreshed(&mut self, bank: BankId, aggressor: RowId) {
        let flat = bank.flat(&self.geo);
        let base = flat * self.geo.rows;
        self.acts[base + aggressor as usize] = 0;
        for v in victims_of(aggressor, self.blast_radius, self.geo.rows) {
            self.damage[base + v as usize] = 0;
        }
    }

    /// Records a periodic-refresh sweep segment: REFab number `ref_idx`
    /// refreshes a 1/8192-th slice of every bank in the rank (DDR5 refreshes
    /// the whole device every 8192 REFs). Aggressors whose complete victim
    /// set lies inside the refreshed slice reset their `A` count.
    pub fn on_periodic_sweep(&mut self, rank: usize, ref_idx: u64) {
        let slices = 8192u64;
        let rows_per_slice = (self.geo.rows as u64).div_ceil(slices);
        let slice = ref_idx % slices;
        let start = (slice * rows_per_slice).min(self.geo.rows as u64) as usize;
        let end = ((slice + 1) * rows_per_slice).min(self.geo.rows as u64) as usize;
        let base = rank * self.geo.banks_per_rank();
        let br = self.blast_radius as usize;
        let a_start = if start == 0 { 0 } else { start + br };
        let a_end = if end >= self.geo.rows {
            self.geo.rows
        } else {
            end.saturating_sub(br)
        };
        for b in base..base + self.geo.banks_per_rank() {
            let o = b * self.geo.rows;
            self.damage[o + start..o + end].fill(0);
            if a_start < a_end {
                self.acts[o + a_start..o + a_end].fill(0);
            }
        }
    }

    /// Highest disturbance any victim has absorbed between refreshes.
    pub fn max_damage(&self) -> u32 {
        self.max_damage
    }

    /// Highest `A(i)` any aggressor reached between victim refreshes — the
    /// §8 security metric.
    pub fn max_aggressor_acts(&self) -> u32 {
        self.max_acts
    }

    /// Number of would-be bitflip events on the primary lane (an aggressor
    /// reaching its row's threshold).
    pub fn flips(&self) -> u64 {
        self.lanes[0].flips
    }

    /// Would-be bitflip count of lane `lane`.
    pub fn flips_of(&self, lane: usize) -> u64 {
        self.lanes[lane].flips
    }

    /// Number of threshold lanes.
    pub fn lane_count(&self) -> usize {
        self.lanes.len()
    }

    /// Current absorbed damage of one row.
    pub fn damage_of(&self, bank: BankId, row: RowId) -> u32 {
        self.damage[bank.flat(&self.geo) * self.geo.rows + row as usize]
    }

    /// Current `A(row)` of one row.
    pub fn acts_of(&self, bank: BankId, row: RowId) -> u32 {
        self.acts[bank.flat(&self.geo) * self.geo.rows + row as usize]
    }

    /// The configured (nominal) disturbance threshold of the primary lane.
    pub fn nrh(&self) -> u32 {
        self.lanes[0].model.nominal()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn oracle() -> DisturbOracle {
        DisturbOracle::new(Geometry::tiny(), 2, 10)
    }

    #[test]
    fn activation_damages_victims_not_self() {
        let mut o = oracle();
        let b = BankId::new(0, 0, 0);
        o.on_activate(b, 100);
        assert_eq!(o.damage_of(b, 100), 0);
        assert_eq!(o.damage_of(b, 99), 1);
        assert_eq!(o.damage_of(b, 101), 1);
        assert_eq!(o.damage_of(b, 98), 1);
        assert_eq!(o.damage_of(b, 102), 1);
        assert_eq!(o.damage_of(b, 103), 0);
        assert_eq!(o.max_damage(), 1);
    }

    #[test]
    fn refresh_clears_damage() {
        let mut o = oracle();
        let b = BankId::new(0, 0, 0);
        for _ in 0..5 {
            o.on_activate(b, 100);
        }
        assert_eq!(o.damage_of(b, 101), 5);
        assert_eq!(o.acts_of(b, 100), 5);
        o.on_row_refreshed(b, 101);
        assert_eq!(o.damage_of(b, 101), 0);
        assert_eq!(o.damage_of(b, 99), 5); // untouched
        assert_eq!(o.acts_of(b, 100), 5); // single-victim refresh ≠ service
        o.on_victims_refreshed(b, 100);
        assert_eq!(o.damage_of(b, 99), 0);
        assert_eq!(o.acts_of(b, 100), 0);
        // High-water marks persist.
        assert_eq!(o.max_damage(), 5);
        assert_eq!(o.max_aggressor_acts(), 5);
    }

    #[test]
    fn double_sided_hammer_accumulates() {
        let mut o = oracle();
        let b = BankId::new(0, 0, 0);
        for _ in 0..4 {
            o.on_activate(b, 99);
            o.on_activate(b, 101);
        }
        // Row 100 is a blast-1 victim of both aggressors.
        assert_eq!(o.damage_of(b, 100), 8);
    }

    #[test]
    fn flips_detected_at_threshold() {
        let mut o = oracle();
        let b = BankId::new(0, 0, 0);
        for _ in 0..10 {
            o.on_activate(b, 50);
        }
        assert!(o.flips() > 0);
        assert_eq!(o.max_aggressor_acts(), 10);
    }

    #[test]
    fn periodic_sweep_clears_slice() {
        let geo = Geometry::tiny();
        let mut o = DisturbOracle::new(geo, 2, 1000);
        let b = BankId::new(0, 0, 0);
        o.on_activate(b, 1); // damages rows 0, 2, 3
                             // Slice 0 covers the first ceil(1024/8192) = 1 row of every bank.
        o.on_periodic_sweep(0, 0);
        assert_eq!(o.damage_of(b, 0), 0);
        assert_eq!(o.damage_of(b, 2), 1);
    }

    #[test]
    fn per_row_thresholds_are_deterministic_and_bounded() {
        let m = ThresholdModel::PerRow {
            nominal: 100,
            floor: 50,
            seed: 7,
        };
        let again = ThresholdModel::PerRow {
            nominal: 100,
            floor: 50,
            seed: 7,
        };
        let mut seen_below_nominal = false;
        for bank in 0..4usize {
            for row in 0..256u32 {
                let t = m.threshold_of(bank, row);
                assert!((50..=100).contains(&t), "threshold {t} out of range");
                assert_eq!(t, again.threshold_of(bank, row), "not deterministic");
                seen_below_nominal |= t < 100;
            }
        }
        assert!(seen_below_nominal, "distribution degenerate at nominal");
        // A different seed must resample.
        let other = ThresholdModel::PerRow {
            nominal: 100,
            floor: 50,
            seed: 8,
        };
        let differs = (0..256u32).any(|r| other.threshold_of(0, r) != m.threshold_of(0, r));
        assert!(differs, "seed does not perturb the draw");
    }

    #[test]
    fn degenerate_per_row_distribution_matches_uniform_exactly() {
        // floor == nominal: every row's threshold collapses to the scalar
        // N_RH, so flips, watermarks, and per-row counters must reproduce
        // the Uniform oracle bit for bit regardless of seed.
        let geo = Geometry::tiny();
        let mut uniform = DisturbOracle::new(geo, 2, 10);
        let mut degenerate = DisturbOracle::with_model(
            geo,
            2,
            ThresholdModel::PerRow {
                nominal: 10,
                floor: 10,
                seed: 0xDEAD_BEEF,
            },
        );
        let b = BankId::new(0, 0, 0);
        for i in 0..25u32 {
            let row = 40 + (i % 3) * 7;
            uniform.on_activate(b, row);
            degenerate.on_activate(b, row);
            if i % 11 == 0 {
                uniform.on_victims_refreshed(b, row);
                degenerate.on_victims_refreshed(b, row);
            }
        }
        assert_eq!(uniform.flips(), degenerate.flips());
        assert_eq!(
            uniform.max_aggressor_acts(),
            degenerate.max_aggressor_acts()
        );
        assert_eq!(uniform.max_damage(), degenerate.max_damage());
        assert_eq!(uniform.nrh(), degenerate.nrh());
        for row in 0..120u32 {
            assert_eq!(uniform.acts_of(b, row), degenerate.acts_of(b, row));
            assert_eq!(uniform.damage_of(b, row), degenerate.damage_of(b, row));
        }
    }

    #[test]
    fn lanes_judge_the_same_counters_independently() {
        let geo = Geometry::tiny();
        let mut o = DisturbOracle::with_lanes(
            geo,
            2,
            vec![ThresholdModel::Uniform(5), ThresholdModel::Uniform(10)],
        );
        let b = BankId::new(0, 0, 0);
        for _ in 0..10 {
            o.on_activate(b, 50);
        }
        assert_eq!(o.lane_count(), 2);
        assert_eq!(o.flips_of(0), 1, "lane 0 crossed 5 once");
        assert_eq!(o.flips_of(1), 1, "lane 1 crossed 10 once");
        assert_eq!(o.flips(), o.flips_of(0), "primary lane is lane 0");
        // Counter state is shared: one activation stream, one watermark.
        assert_eq!(o.max_aggressor_acts(), 10);
    }

    #[test]
    fn lane_flips_match_solo_oracles_on_mixed_thresholds() {
        // The multi-lane batch contract: each lane's flip count equals a
        // dedicated single-lane oracle fed the same activation stream.
        let geo = Geometry::tiny();
        let models = [
            ThresholdModel::Uniform(4),
            ThresholdModel::Uniform(9),
            ThresholdModel::PerRow {
                nominal: 12,
                floor: 3,
                seed: 42,
            },
        ];
        let mut batched = DisturbOracle::with_lanes(geo, 2, models.to_vec());
        let mut solos: Vec<_> = models
            .iter()
            .map(|&m| DisturbOracle::with_model(geo, 2, m))
            .collect();
        let b = BankId::new(0, 0, 0);
        for i in 0..60u32 {
            let row = 30 + (i % 5) * 4;
            batched.on_activate(b, row);
            for s in &mut solos {
                s.on_activate(b, row);
            }
            if i % 17 == 0 {
                batched.on_victims_refreshed(b, row);
                for s in &mut solos {
                    s.on_victims_refreshed(b, row);
                }
            }
        }
        for (lane, solo) in solos.iter().enumerate() {
            assert_eq!(batched.flips_of(lane), solo.flips(), "lane {lane}");
        }
    }
}
