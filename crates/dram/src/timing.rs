//! DDR5 timing parameters and the PRAC timing modes of Table 1 / Appendix E.
//!
//! All parameters are specified in nanoseconds ([`TimingsNs`]) and resolved
//! once into command-clock cycles ([`Timings`], tCK = 0.625 ns for
//! DDR5-3200) by rounding up, mirroring how real controllers program mode
//! registers.

use serde::{Deserialize, Serialize};

/// Which Table 1 column the device uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TimingMode {
    /// DDR5 without PRAC (Table 1 left column; tRC = 47 ns).
    Baseline,
    /// DDR5 with PRAC, post-erratum (Table 1 right column; tRC = 52 ns,
    /// tRAS/tRTP/tWR reduced).
    Prac,
    /// The pre-erratum PRAC timings analysed in Appendix E / Table 4:
    /// tRP and tRC are increased but tRAS, tRTP and tWR are *not* reduced.
    PracBuggy,
}

impl TimingMode {
    /// Whether this mode models a PRAC-enabled device (counter update during
    /// precharge).
    pub fn is_prac(self) -> bool {
        !matches!(self, TimingMode::Baseline)
    }
}

impl std::fmt::Display for TimingMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            TimingMode::Baseline => "baseline",
            TimingMode::Prac => "prac",
            TimingMode::PracBuggy => "prac-buggy",
        };
        f.write_str(s)
    }
}

/// Raw DDR5-3200AN timing parameters in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimingsNs {
    /// Command clock period.
    pub tck: f64,
    /// ACT → RD/WR to the same bank.
    pub trcd: f64,
    /// RD → first data beat (CAS latency).
    pub tcl: f64,
    /// WR → first data beat (CAS write latency).
    pub tcwl: f64,
    /// PRE → ACT to the same bank.
    pub trp: f64,
    /// ACT → PRE to the same bank.
    pub tras: f64,
    /// ACT → ACT to the same bank.
    pub trc: f64,
    /// RD → PRE to the same bank.
    pub trtp: f64,
    /// End of write burst → PRE (write recovery).
    pub twr: f64,
    /// ACT → ACT, different bank group.
    pub trrd_s: f64,
    /// ACT → ACT, same bank group.
    pub trrd_l: f64,
    /// Four-activate window.
    pub tfaw: f64,
    /// CAS → CAS, different bank group.
    pub tccd_s: f64,
    /// CAS → CAS, same bank group.
    pub tccd_l: f64,
    /// End of write burst → RD, different bank group.
    pub twtr_s: f64,
    /// End of write burst → RD, same bank group.
    pub twtr_l: f64,
    /// Average periodic refresh interval.
    pub trefi: f64,
    /// REFab execution time.
    pub trfc: f64,
    /// RFM execution time (paper §5: 350 ns, refreshes the four victims of
    /// one aggressor row per bank).
    pub trfm: f64,
    /// Window of normal traffic after a back-off (§3: 180 ns).
    pub taboact: f64,
    /// Back-off signal propagation latency after PRE (§3: ≈5 ns).
    pub talert: f64,
    /// Refresh window in milliseconds (DDR5: 32 ms).
    pub trefw_ms: f64,
}

impl TimingsNs {
    /// DDR5-3200AN without PRAC (paper Table 1 plus standard bin values).
    pub fn ddr5_3200an_baseline() -> Self {
        Self {
            tck: 0.625,
            trcd: 13.75,
            tcl: 13.75,
            tcwl: 12.5,
            trp: 15.0,
            tras: 32.0,
            trc: 47.0,
            trtp: 7.5,
            twr: 30.0,
            trrd_s: 5.0,
            trrd_l: 5.0,
            tfaw: 20.0,
            tccd_s: 5.0,
            tccd_l: 5.0,
            twtr_s: 2.5,
            twtr_l: 10.0,
            trefi: 3900.0,
            trfc: 295.0,
            trfm: 350.0,
            taboact: 180.0,
            talert: 5.0,
            trefw_ms: 32.0,
        }
    }

    /// DDR5-3200AN with PRAC, post-erratum (Table 1 right column).
    pub fn ddr5_3200an_prac() -> Self {
        Self {
            trp: 36.0,
            tras: 16.0,
            trc: 52.0,
            trtp: 5.0,
            twr: 10.0,
            ..Self::ddr5_3200an_baseline()
        }
    }

    /// Pre-erratum PRAC timings (Appendix E): tRP/tRC raised, but
    /// tRAS/tRTP/tWR keep their non-PRAC values.
    pub fn ddr5_3200an_prac_buggy() -> Self {
        Self {
            trp: 36.0,
            trc: 52.0,
            ..Self::ddr5_3200an_baseline()
        }
    }

    /// Parameters for the given [`TimingMode`].
    pub fn for_mode(mode: TimingMode) -> Self {
        match mode {
            TimingMode::Baseline => Self::ddr5_3200an_baseline(),
            TimingMode::Prac => Self::ddr5_3200an_prac(),
            TimingMode::PracBuggy => Self::ddr5_3200an_prac_buggy(),
        }
    }

    /// Resolves to integral command-clock cycles (rounding up).
    pub fn resolve(&self) -> Timings {
        let c = |ns: f64| -> u64 { (ns / self.tck).ceil() as u64 };
        Timings {
            tck_ns: self.tck,
            rcd: c(self.trcd),
            cl: c(self.tcl),
            cwl: c(self.tcwl),
            rp: c(self.trp),
            ras: c(self.tras),
            rc: c(self.trc),
            rtp: c(self.trtp),
            wr: c(self.twr),
            rrd_s: c(self.trrd_s),
            rrd_l: c(self.trrd_l),
            faw: c(self.tfaw),
            ccd_s: c(self.tccd_s),
            ccd_l: c(self.tccd_l),
            wtr_s: c(self.twtr_s),
            wtr_l: c(self.twtr_l),
            refi: c(self.trefi),
            rfc: c(self.trfc),
            rfm: c(self.trfm),
            aboact: c(self.taboact),
            alert: c(self.talert),
            refw: c(self.trefw_ms * 1.0e6),
            bl: 8, // BL16 at double data rate occupies 8 command clocks.
        }
    }
}

/// Timing parameters resolved to command-clock cycles.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Timings {
    /// tCK in nanoseconds (for reporting / energy integration).
    pub tck_ns: f64,
    /// ACT → RD/WR, same bank.
    pub rcd: u64,
    /// Read CAS latency.
    pub cl: u64,
    /// Write CAS latency.
    pub cwl: u64,
    /// PRE → ACT, same bank.
    pub rp: u64,
    /// ACT → PRE, same bank.
    pub ras: u64,
    /// ACT → ACT, same bank.
    pub rc: u64,
    /// RD → PRE, same bank.
    pub rtp: u64,
    /// Write recovery before PRE.
    pub wr: u64,
    /// ACT → ACT across bank groups.
    pub rrd_s: u64,
    /// ACT → ACT within a bank group.
    pub rrd_l: u64,
    /// Four-activate window.
    pub faw: u64,
    /// CAS → CAS across bank groups.
    pub ccd_s: u64,
    /// CAS → CAS within a bank group.
    pub ccd_l: u64,
    /// Write → read turnaround across bank groups.
    pub wtr_s: u64,
    /// Write → read turnaround within a bank group.
    pub wtr_l: u64,
    /// Refresh interval.
    pub refi: u64,
    /// REFab duration.
    pub rfc: u64,
    /// RFM duration.
    pub rfm: u64,
    /// Normal-traffic window after back-off.
    pub aboact: u64,
    /// Alert propagation latency.
    pub alert: u64,
    /// Refresh window (32 ms).
    pub refw: u64,
    /// Burst length in command clocks (BL16 → 8).
    pub bl: u64,
}

impl Timings {
    /// Resolved timings for a mode, from the standard DDR5-3200AN bin.
    pub fn for_mode(mode: TimingMode) -> Self {
        TimingsNs::for_mode(mode).resolve()
    }

    /// Maximum row activations a single bank can absorb during the window of
    /// normal traffic (the paper's `A_normal = ⌊tABOACT / tRC⌋`, §8).
    pub fn a_normal(&self) -> u64 {
        self.aboact / self.rc
    }

    /// Converts a cycle count to nanoseconds.
    pub fn cycles_to_ns(&self, cycles: u64) -> f64 {
        cycles as f64 * self.tck_ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_matches_table1_left_column() {
        let t = TimingsNs::ddr5_3200an_baseline();
        assert_eq!(t.tras, 32.0);
        assert_eq!(t.trp, 15.0);
        assert_eq!(t.trc, 47.0);
        assert_eq!(t.trtp, 7.5);
        assert_eq!(t.twr, 30.0);
    }

    #[test]
    fn prac_matches_table1_right_column() {
        let t = TimingsNs::ddr5_3200an_prac();
        assert_eq!(t.tras, 16.0);
        assert_eq!(t.trp, 36.0);
        assert_eq!(t.trc, 52.0);
        assert_eq!(t.trtp, 5.0);
        assert_eq!(t.twr, 10.0);
    }

    #[test]
    fn buggy_mode_keeps_baseline_ras_rtp_wr() {
        let t = TimingsNs::ddr5_3200an_prac_buggy();
        assert_eq!(t.tras, 32.0);
        assert_eq!(t.trtp, 7.5);
        assert_eq!(t.twr, 30.0);
        assert_eq!(t.trp, 36.0);
        assert_eq!(t.trc, 52.0);
    }

    #[test]
    fn resolution_rounds_up() {
        let t = TimingsNs::ddr5_3200an_baseline().resolve();
        assert_eq!(t.rc, 76); // 47 / 0.625 = 75.2 → 76
        assert_eq!(t.ras, 52); // 51.2 → 52
        assert_eq!(t.rp, 24); // exact
        assert_eq!(t.rcd, 22);
        assert_eq!(t.refi, 6240);
        assert_eq!(t.rfm, 560);
        assert_eq!(t.aboact, 288);
    }

    #[test]
    fn prac_increases_row_cycle() {
        let b = Timings::for_mode(TimingMode::Baseline);
        let p = Timings::for_mode(TimingMode::Prac);
        assert!(p.rc > b.rc);
        assert!(p.rp > b.rp);
        assert!(p.ras < b.ras);
    }

    #[test]
    fn buggy_prac_effective_row_turnaround_is_worse() {
        // With the bug, ACT→PRE still needs 32 ns and PRE→ACT needs 36 ns,
        // so the effective row cycle for conflict-heavy access is
        // tRAS + tRP = 68 ns > 52 ns — the source of the inflated overheads
        // in the pre-erratum paper (Table 4).
        let buggy = Timings::for_mode(TimingMode::PracBuggy);
        let fixed = Timings::for_mode(TimingMode::Prac);
        assert!(buggy.ras + buggy.rp > fixed.ras + fixed.rp);
    }

    #[test]
    fn a_normal_is_three_for_baseline() {
        // ⌊180 / 47⌋ = 3 with baseline tRC (§8 uses tRC = 47 ns for Chronus).
        assert_eq!(Timings::for_mode(TimingMode::Baseline).a_normal(), 3);
    }

    #[test]
    fn refresh_window_is_32ms() {
        let t = Timings::for_mode(TimingMode::Baseline);
        assert_eq!(t.refw, 51_200_000); // 32 ms / 0.625 ns
    }
}
