//! DRAM command set.

use serde::{Deserialize, Serialize};

use crate::geometry::{BankId, RowId};

/// Commands the memory controller can issue to the device.
///
/// `Vrr` (victim-row refresh) is the pseudo-command used to model
/// controller-side preventive refreshes (Graphene, Hydra, PARA, ABACuS):
/// internally it is an activate + precharge of the victim row and occupies
/// the bank for `tRC`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Command {
    /// Activate `row` in `bank`.
    Act {
        /// Target bank.
        bank: BankId,
        /// Row to open.
        row: RowId,
    },
    /// Precharge the open row of `bank`.
    Pre {
        /// Target bank.
        bank: BankId,
    },
    /// Precharge all banks of `rank`.
    PreAll {
        /// Target rank.
        rank: usize,
    },
    /// Read a column burst from the open row.
    Rd {
        /// Target bank.
        bank: BankId,
        /// Column (cache line) index.
        col: u32,
    },
    /// Read with auto-precharge.
    RdA {
        /// Target bank.
        bank: BankId,
        /// Column (cache line) index.
        col: u32,
    },
    /// Write a column burst into the open row.
    Wr {
        /// Target bank.
        bank: BankId,
        /// Column (cache line) index.
        col: u32,
    },
    /// Write with auto-precharge.
    WrA {
        /// Target bank.
        bank: BankId,
        /// Column (cache line) index.
        col: u32,
    },
    /// All-bank periodic refresh of `rank` (REFab).
    RefAll {
        /// Target rank.
        rank: usize,
    },
    /// All-bank refresh-management command (RFMab): gives the device `tRFM`
    /// to preventively refresh victims it selects (§3).
    RfmAll {
        /// Target rank.
        rank: usize,
    },
    /// Controller-side victim-row refresh of one row (takes `tRC`).
    Vrr {
        /// Target bank.
        bank: BankId,
        /// Victim row to refresh.
        row: RowId,
    },
}

impl Command {
    /// The bank this command targets, if it is bank-scoped.
    pub fn bank(&self) -> Option<BankId> {
        match *self {
            Command::Act { bank, .. }
            | Command::Pre { bank }
            | Command::Rd { bank, .. }
            | Command::RdA { bank, .. }
            | Command::Wr { bank, .. }
            | Command::WrA { bank, .. }
            | Command::Vrr { bank, .. } => Some(bank),
            Command::PreAll { .. } | Command::RefAll { .. } | Command::RfmAll { .. } => None,
        }
    }

    /// The rank this command targets.
    pub fn rank(&self) -> usize {
        match *self {
            Command::PreAll { rank } | Command::RefAll { rank } | Command::RfmAll { rank } => rank,
            _ => self.bank().expect("bank-scoped command").rank as usize,
        }
    }

    /// True for commands that transfer data on the bus.
    pub fn is_cas(&self) -> bool {
        matches!(
            self,
            Command::Rd { .. } | Command::RdA { .. } | Command::Wr { .. } | Command::WrA { .. }
        )
    }

    /// True for reads (with or without auto-precharge).
    pub fn is_read(&self) -> bool {
        matches!(self, Command::Rd { .. } | Command::RdA { .. })
    }

    /// True for writes (with or without auto-precharge).
    pub fn is_write(&self) -> bool {
        matches!(self, Command::Wr { .. } | Command::WrA { .. })
    }

    /// Short mnemonic, e.g. `"ACT"`.
    pub fn mnemonic(&self) -> &'static str {
        match self {
            Command::Act { .. } => "ACT",
            Command::Pre { .. } => "PRE",
            Command::PreAll { .. } => "PREab",
            Command::Rd { .. } => "RD",
            Command::RdA { .. } => "RDA",
            Command::Wr { .. } => "WR",
            Command::WrA { .. } => "WRA",
            Command::RefAll { .. } => "REFab",
            Command::RfmAll { .. } => "RFMab",
            Command::Vrr { .. } => "VRR",
        }
    }
}

impl std::fmt::Display for Command {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            Command::Act { bank, row } => write!(f, "ACT {bank} row={row}"),
            Command::Pre { bank } => write!(f, "PRE {bank}"),
            Command::PreAll { rank } => write!(f, "PREab rank={rank}"),
            Command::Rd { bank, col } => write!(f, "RD {bank} col={col}"),
            Command::RdA { bank, col } => write!(f, "RDA {bank} col={col}"),
            Command::Wr { bank, col } => write!(f, "WR {bank} col={col}"),
            Command::WrA { bank, col } => write!(f, "WRA {bank} col={col}"),
            Command::RefAll { rank } => write!(f, "REFab rank={rank}"),
            Command::RfmAll { rank } => write!(f, "RFMab rank={rank}"),
            Command::Vrr { bank, row } => write!(f, "VRR {bank} row={row}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bank_scoped_commands_report_bank_and_rank() {
        let b = BankId::new(1, 3, 2);
        let cmd = Command::Act { bank: b, row: 7 };
        assert_eq!(cmd.bank(), Some(b));
        assert_eq!(cmd.rank(), 1);
    }

    #[test]
    fn rank_scoped_commands_have_no_bank() {
        let cmd = Command::RefAll { rank: 1 };
        assert_eq!(cmd.bank(), None);
        assert_eq!(cmd.rank(), 1);
    }

    #[test]
    fn cas_classification() {
        let b = BankId::new(0, 0, 0);
        assert!(Command::Rd { bank: b, col: 0 }.is_cas());
        assert!(Command::WrA { bank: b, col: 0 }.is_write());
        assert!(!Command::Act { bank: b, row: 0 }.is_cas());
        assert!(Command::RdA { bank: b, col: 0 }.is_read());
    }

    #[test]
    fn display_is_nonempty() {
        let b = BankId::new(0, 0, 0);
        for cmd in [
            Command::Act { bank: b, row: 1 },
            Command::Pre { bank: b },
            Command::RefAll { rank: 0 },
        ] {
            assert!(!format!("{cmd}").is_empty());
            assert!(!cmd.mnemonic().is_empty());
        }
    }
}
