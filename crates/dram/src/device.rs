//! The DRAM device: command legality checking and execution.
//!
//! The device owns the per-bank / per-rank / channel timing frontiers.
//! [`DramDevice::can_issue`] tells the controller whether a command is legal
//! *now*; [`DramDevice::issue`] executes it, updates every affected timing
//! frontier, feeds the mitigation hooks and the disturbance oracle, and
//! latches the `alert_n` back-off signal when the mechanism requests it.

use crate::bank::{Bank, BankState};
use crate::command::Command;
use crate::geometry::{victims_of, BankId, Geometry, RowId};
use crate::mitigation::{DramMitigation, MitigationStats, NoMitigation};
use crate::oracle::{DisturbOracle, ThresholdModel};
use crate::rank::Rank;
use crate::stats::DramStats;
use crate::timing::{TimingMode, Timings, TimingsNs};
use crate::Cycle;

/// Device configuration.
#[derive(Debug, Clone)]
pub struct DramConfig {
    /// Channel geometry.
    pub geometry: Geometry,
    /// Which Table 1 timing column is in effect.
    pub mode: TimingMode,
    /// Resolved timing parameters.
    pub timings: Timings,
    /// Read-disturbance blast radius (paper §5: 2).
    pub blast_radius: u32,
    /// If set, attach a [`DisturbOracle`] with this `N_RH`.
    pub oracle_nrh: Option<u32>,
    /// If set, attach a [`DisturbOracle`] with this threshold model
    /// (takes precedence over `oracle_nrh`); per-row Variable Read
    /// Disturbance distributions come in through here.
    pub oracle_model: Option<ThresholdModel>,
    /// Panic on timing violations instead of silently refusing; used by
    /// tests and debug runs.
    pub strict: bool,
}

impl DramConfig {
    /// Paper-default DDR5 module without PRAC timings.
    pub fn ddr5_baseline() -> Self {
        Self::with_mode(TimingMode::Baseline)
    }

    /// Paper-default DDR5 module with the given timing mode.
    pub fn with_mode(mode: TimingMode) -> Self {
        Self {
            geometry: Geometry::ddr5(),
            mode,
            timings: TimingsNs::for_mode(mode).resolve(),
            blast_radius: 2,
            oracle_nrh: None,
            oracle_model: None,
            strict: cfg!(debug_assertions),
        }
    }

    /// Small geometry for unit tests.
    pub fn tiny() -> Self {
        let mut c = Self::ddr5_baseline();
        c.geometry = Geometry::tiny();
        c.strict = true;
        c
    }
}

/// One DDR5 channel with its ranks, timing frontiers, mitigation mechanism,
/// statistics, and optional disturbance oracle.
pub struct DramDevice {
    cfg: DramConfig,
    ranks: Vec<Rank>,
    /// Channel-level earliest next RD issue (data-bus + turnaround).
    next_rd: Cycle,
    /// Channel-level earliest next WR issue.
    next_wr: Cycle,
    mitigation: Box<dyn DramMitigation + Send>,
    oracle: Option<DisturbOracle>,
    stats: DramStats,
    /// Reused scratch for [`DramMitigation::on_periodic_refresh`] so the
    /// refresh path never allocates.
    periodic_scratch: Vec<(BankId, RowId)>,
}

impl std::fmt::Debug for DramDevice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DramDevice")
            .field("mode", &self.cfg.mode)
            .field("mitigation", &self.mitigation.kind_name())
            .field("stats", &self.stats)
            .finish()
    }
}

impl DramDevice {
    /// A device with no mitigation mechanism (the evaluation baseline).
    pub fn new(cfg: DramConfig) -> Self {
        Self::with_mitigation(cfg, Box::new(NoMitigation))
    }

    /// A device with an on-die mitigation mechanism attached.
    pub fn with_mitigation(cfg: DramConfig, mitigation: Box<dyn DramMitigation + Send>) -> Self {
        let ranks = (0..cfg.geometry.ranks)
            .map(|_| Rank::new(&cfg.geometry))
            .collect();
        let oracle = cfg
            .oracle_model
            .map(|model| DisturbOracle::with_model(cfg.geometry, cfg.blast_radius, model))
            .or_else(|| {
                cfg.oracle_nrh
                    .map(|nrh| DisturbOracle::new(cfg.geometry, cfg.blast_radius, nrh))
            });
        Self {
            cfg,
            ranks,
            next_rd: 0,
            next_wr: 0,
            mitigation,
            oracle,
            stats: DramStats::default(),
            periodic_scratch: Vec::new(),
        }
    }

    /// Resolved timing parameters.
    pub fn timings(&self) -> &Timings {
        &self.cfg.timings
    }

    /// Channel geometry.
    pub fn geometry(&self) -> &Geometry {
        &self.cfg.geometry
    }

    /// Device configuration.
    pub fn config(&self) -> &DramConfig {
        &self.cfg
    }

    #[inline]
    fn bank(&self, id: BankId) -> &Bank {
        let g = &self.cfg.geometry;
        &self.ranks[id.rank as usize].banks
            [(id.group as usize) * g.banks_per_group + id.bank as usize]
    }

    fn bank_mut(&mut self, id: BankId) -> &mut Bank {
        let g = self.cfg.geometry;
        &mut self.ranks[id.rank as usize].banks
            [(id.group as usize) * g.banks_per_group + id.bank as usize]
    }

    /// The open row of `bank`, if any.
    #[inline]
    pub fn open_row(&self, bank: BankId) -> Option<RowId> {
        self.bank(bank).open_row()
    }

    /// True if every bank of `rank` is precharged.
    pub fn rank_all_idle(&self, rank: usize) -> bool {
        self.ranks[rank].all_idle()
    }

    /// Cycle until which `rank` is blocked by REF/RFM.
    pub fn rank_blocked_until(&self, rank: usize) -> Cycle {
        self.ranks[rank].blocked_until
    }

    /// True if the rank's back-off signal is asserted and already visible at
    /// `now` (assertions propagate with `tALERT`).
    pub fn alert_visible(&self, rank: usize, now: Cycle) -> bool {
        matches!(self.ranks[rank].alert_at, Some(at) if at <= now)
    }

    /// The cycle at which the rank's latched back-off assertion becomes
    /// visible, if one is latched — the event-driven loop uses this to wake
    /// exactly when the controller would first observe `alert_n`.
    pub fn alert_latched_at(&self, rank: usize) -> Option<Cycle> {
        self.ranks[rank].alert_at
    }

    /// Earliest cycle at which an all-bank REF/RFM could be accepted by
    /// `rank` assuming every bank is (or stays) precharged: the rank-block
    /// frontier joined with every bank's ACT frontier.
    pub fn refresh_ready_at(&self, rank: usize) -> Cycle {
        let r = &self.ranks[rank];
        let banks_ready = r.banks.iter().map(|b| b.next_act).max().unwrap_or(0);
        r.blocked_until.max(banks_ready)
    }

    /// Earliest cycle at which `PREab` could be accepted by `rank` (the
    /// rank-block frontier joined with the PRE frontier of every open
    /// bank); legal immediately if every bank is already idle.
    pub fn preall_ready_at(&self, rank: usize) -> Cycle {
        let r = &self.ranks[rank];
        let open_ready = r
            .banks
            .iter()
            .filter(|b| !b.is_idle())
            .map(|b| b.next_pre)
            .max()
            .unwrap_or(0);
        r.blocked_until.max(open_ready)
    }

    /// Rank- and channel-level CAS frontier for `rank`: the earliest cycle
    /// at which *any* `Rd` (`write == false`) or `Wr` (`write == true`) to
    /// the rank could issue, ignoring bank-group and bank frontiers. The
    /// full per-candidate time decomposes as
    /// `max(rank_cas_floor, group_cas_floor, bank_cas_at)` — schedulers use
    /// the shared floors to prune whole ranks and to compute min-over-banks
    /// wake times without per-candidate command dispatch.
    #[inline]
    pub fn rank_cas_floor(&self, rank: usize, write: bool) -> Cycle {
        let r = &self.ranks[rank];
        if write {
            r.blocked_until.max(r.next_wr_any).max(self.next_wr)
        } else {
            r.blocked_until.max(r.next_rd_any).max(self.next_rd)
        }
    }

    /// Bank-group-level CAS frontier (see [`DramDevice::rank_cas_floor`]).
    #[inline]
    pub fn group_cas_floor(&self, rank: usize, group: usize, write: bool) -> Cycle {
        let r = &self.ranks[rank];
        if write {
            r.next_wr_group[group]
        } else {
            r.next_rd_group[group]
        }
    }

    /// Bank-level CAS frontier: the bank's own `tCCD`/`tRCD`-driven term of
    /// the CAS decomposition. Callers are responsible for the structural
    /// check (the bank must hold the target row open).
    #[inline]
    pub fn bank_cas_at(&self, bank: BankId, write: bool) -> Cycle {
        let b = self.bank(bank);
        if write {
            b.next_wr
        } else {
            b.next_rd
        }
    }

    /// Rank-level ACT frontier: rank block, `tRRD_S`, and `tFAW`. The full
    /// per-candidate time is `max(rank_act_floor, group_act_floor,
    /// bank_act_at)` for an idle bank.
    #[inline]
    pub fn rank_act_floor(&self, rank: usize) -> Cycle {
        let r = &self.ranks[rank];
        r.blocked_until
            .max(r.next_act_any)
            .max(r.faw_ready_at(self.cfg.timings.faw))
    }

    /// Bank-group-level ACT frontier (`tRRD_L`).
    #[inline]
    pub fn group_act_floor(&self, rank: usize, group: usize) -> Cycle {
        self.ranks[rank].next_act_group[group]
    }

    /// Bank-level ACT frontier (`tRC`/`tRP`-driven). Callers are
    /// responsible for the structural check (the bank must be idle).
    #[inline]
    pub fn bank_act_at(&self, bank: BankId) -> Cycle {
        self.bank(bank).next_act
    }

    /// Complete `PRE` issuable time for `bank` (rank block joined with the
    /// bank's `tRAS`/`tRTP`/`tWR` frontier). Callers are responsible for
    /// the structural check (the bank must hold a row open).
    #[inline]
    pub fn bank_pre_at(&self, bank: BankId) -> Cycle {
        self.ranks[bank.rank as usize]
            .blocked_until
            .max(self.bank(bank).next_pre)
    }

    /// Clears the rank's back-off latch (controller acknowledgement).
    pub fn clear_alert(&mut self, rank: usize) {
        self.ranks[rank].alert_at = None;
    }

    /// Whether the mechanism still has rows above the back-off threshold in
    /// `rank` (drives Chronus's dynamic recovery, §7.2).
    pub fn alert_still_needed(&self, rank: usize) -> bool {
        self.mitigation.alert_still_needed(rank)
    }

    /// Device statistics (activity counters are finalized lazily; call
    /// [`DramDevice::finalize`] before reading background-cycle fields).
    pub fn stats(&self) -> &DramStats {
        &self.stats
    }

    /// Mechanism-reported counters.
    pub fn mitigation_stats(&self) -> MitigationStats {
        self.mitigation.stats()
    }

    /// The attached mitigation mechanism.
    pub fn mitigation(&self) -> &(dyn DramMitigation + Send) {
        self.mitigation.as_ref()
    }

    /// The disturbance oracle, if enabled.
    pub fn oracle(&self) -> Option<&DisturbOracle> {
        self.oracle.as_ref()
    }

    /// Replaces the attached oracle. The batch engine uses this right
    /// after construction to install a multi-lane oracle that judges one
    /// run against every batch member's threshold model; the oracle is
    /// purely observational, so swapping it never perturbs timing.
    pub fn set_oracle(&mut self, oracle: Option<DisturbOracle>) {
        self.oracle = oracle;
    }

    /// Informs the oracle that a controller-side mechanism has finished
    /// refreshing all victims of `aggressor` (the last `VRR` of the group
    /// has been issued). Resets the oracle's `A(aggressor)`; no timing
    /// effect — the individual `VRR` commands carry the cost.
    pub fn note_aggressor_serviced(&mut self, bank: BankId, aggressor: RowId) {
        if let Some(o) = &mut self.oracle {
            o.on_victims_refreshed(bank, aggressor);
        }
    }

    /// Folds open-bank activity into the stats; call once at end of
    /// simulation with the final cycle.
    pub fn finalize(&mut self, now: Cycle) {
        let mut active = 0;
        for r in &mut self.ranks {
            r.finalize_activity(now);
            active += r.active_cycles;
        }
        self.stats.active_standby_cycles = active;
        self.stats.total_cycles = now;
        self.stats.precharge_standby_cycles =
            (now * self.cfg.geometry.ranks as u64).saturating_sub(active);
    }

    /// Whether `cmd` may legally be issued at cycle `now`.
    pub fn can_issue(&self, cmd: &Command, now: Cycle) -> bool {
        let t = &self.cfg.timings;
        match *cmd {
            Command::Act { bank, row } => {
                debug_assert!((row as usize) < self.cfg.geometry.rows, "row out of range");
                let r = &self.ranks[bank.rank as usize];
                let b = self.bank(bank);
                b.is_idle()
                    && now >= r.blocked_until
                    && now >= b.next_act
                    && now >= r.next_act_any
                    && now >= r.next_act_group[bank.group as usize]
                    && now >= r.faw_ready_at(t.faw)
            }
            Command::Vrr { bank, .. } => {
                let r = &self.ranks[bank.rank as usize];
                let b = self.bank(bank);
                b.is_idle()
                    && now >= r.blocked_until
                    && now >= b.next_act
                    && now >= r.next_act_any
                    && now >= r.next_act_group[bank.group as usize]
                    && now >= r.faw_ready_at(t.faw)
            }
            Command::Pre { bank } => {
                let r = &self.ranks[bank.rank as usize];
                let b = self.bank(bank);
                !b.is_idle() && now >= r.blocked_until && now >= b.next_pre
            }
            Command::PreAll { rank } => {
                let r = &self.ranks[rank];
                now >= r.blocked_until && r.banks.iter().all(|b| b.is_idle() || now >= b.next_pre)
            }
            Command::Rd { bank, col } | Command::RdA { bank, col } => {
                debug_assert!((col as usize) < self.cfg.geometry.cols, "col out of range");
                let r = &self.ranks[bank.rank as usize];
                let b = self.bank(bank);
                !b.is_idle()
                    && now >= r.blocked_until
                    && now >= b.next_rd
                    && now >= r.next_rd_any
                    && now >= r.next_rd_group[bank.group as usize]
                    && now >= self.next_rd
            }
            Command::Wr { bank, col } | Command::WrA { bank, col } => {
                debug_assert!((col as usize) < self.cfg.geometry.cols, "col out of range");
                let r = &self.ranks[bank.rank as usize];
                let b = self.bank(bank);
                !b.is_idle()
                    && now >= r.blocked_until
                    && now >= b.next_wr
                    && now >= r.next_wr_any
                    && now >= r.next_wr_group[bank.group as usize]
                    && now >= self.next_wr
            }
            Command::RefAll { rank } | Command::RfmAll { rank } => {
                let r = &self.ranks[rank];
                now >= r.blocked_until && r.all_idle() && r.banks.iter().all(|b| now >= b.next_act)
            }
        }
    }

    /// The exact first cycle at or after `now` at which
    /// [`DramDevice::can_issue`] would accept `cmd`, assuming no further
    /// commands are issued in the meantime, or `Cycle::MAX` when `cmd` is
    /// structurally illegal in the current bank state (another command must
    /// change that state first — e.g. `ACT` to an open bank).
    ///
    /// Contract (pinned by tests): for every `t >= now`,
    /// `can_issue(cmd, t) == (t >= earliest_issue_at(cmd, now))`.
    /// The event-driven controller uses this as its issuable-time cache:
    /// every timing frontier consulted here only moves when a command
    /// issues, so the result stays exact until the next issue or arrival.
    pub fn earliest_issue_at(&self, cmd: &Command, now: Cycle) -> Cycle {
        let ready = match *cmd {
            Command::Act { bank, .. } | Command::Vrr { bank, .. } => {
                if !self.bank(bank).is_idle() {
                    return Cycle::MAX;
                }
                self.rank_act_floor(bank.rank as usize)
                    .max(self.group_act_floor(bank.rank as usize, bank.group as usize))
                    .max(self.bank_act_at(bank))
            }
            Command::Pre { bank } => {
                if self.bank(bank).is_idle() {
                    return Cycle::MAX;
                }
                self.bank_pre_at(bank)
            }
            Command::PreAll { rank } => self.preall_ready_at(rank),
            Command::Rd { bank, .. } | Command::RdA { bank, .. } => {
                if self.bank(bank).is_idle() {
                    return Cycle::MAX;
                }
                self.rank_cas_floor(bank.rank as usize, false)
                    .max(self.group_cas_floor(bank.rank as usize, bank.group as usize, false))
                    .max(self.bank_cas_at(bank, false))
            }
            Command::Wr { bank, .. } | Command::WrA { bank, .. } => {
                if self.bank(bank).is_idle() {
                    return Cycle::MAX;
                }
                self.rank_cas_floor(bank.rank as usize, true)
                    .max(self.group_cas_floor(bank.rank as usize, bank.group as usize, true))
                    .max(self.bank_cas_at(bank, true))
            }
            Command::RefAll { rank } | Command::RfmAll { rank } => {
                if !self.ranks[rank].all_idle() {
                    return Cycle::MAX;
                }
                self.refresh_ready_at(rank)
            }
        };
        ready.max(now)
    }

    /// Executes `cmd` at cycle `now`.
    ///
    /// # Panics
    ///
    /// Panics if the command is illegal at `now` and the device is in strict
    /// mode (`cfg.strict`, on by default in debug builds).
    pub fn issue(&mut self, cmd: &Command, now: Cycle) {
        if self.cfg.strict {
            assert!(
                self.can_issue(cmd, now),
                "timing violation: {cmd} at cycle {now}"
            );
        }
        let t = self.cfg.timings;
        match *cmd {
            Command::Act { bank, row } => {
                self.do_activate(bank, row, now, false);
            }
            Command::Vrr { bank, row } => {
                self.do_activate(bank, row, now, true);
            }
            Command::Pre { bank } => {
                let row = self.bank(bank).open_row().expect("PRE on idle bank");
                self.close_row(bank, row, now);
            }
            Command::PreAll { rank } => {
                let g = self.cfg.geometry;
                for i in 0..g.banks_per_rank() {
                    let id = BankId::from_flat(rank * g.banks_per_rank() + i, &g);
                    if let Some(row) = self.bank(id).open_row() {
                        self.close_row(id, row, now);
                    }
                }
            }
            Command::Rd { bank, .. } => {
                self.do_read(bank, now);
            }
            Command::RdA { bank, .. } => {
                self.do_read(bank, now);
                // Auto-precharge: row closes tRTP after the read.
                let row = self.bank(bank).open_row().expect("RDA on idle bank");
                let pre_at = now + t.rtp;
                self.close_row_at(bank, row, now, pre_at);
            }
            Command::Wr { bank, .. } => {
                self.do_write(bank, now);
            }
            Command::WrA { bank, .. } => {
                self.do_write(bank, now);
                let row = self.bank(bank).open_row().expect("WRA on idle bank");
                let pre_at = now + t.cwl + t.bl + t.wr;
                self.close_row_at(bank, row, now, pre_at);
            }
            Command::RefAll { rank } => {
                self.do_refresh(rank, now);
            }
            Command::RfmAll { rank } => {
                self.do_rfm(rank, now);
            }
        }
    }

    fn do_activate(&mut self, bank: BankId, row: RowId, now: Cycle, is_vrr: bool) {
        let t = self.cfg.timings;
        {
            let r = &mut self.ranks[bank.rank as usize];
            r.push_faw(now);
            r.next_act_any = r.next_act_any.max(now + t.rrd_s);
            let g = bank.group as usize;
            r.next_act_group[g] = r.next_act_group[g].max(now + t.rrd_l);
        }
        if is_vrr {
            // VRR = internal activate + precharge of the victim row; the
            // bank is busy for a full row cycle and stays precharged.
            let b = self.bank_mut(bank);
            b.next_act = b.next_act.max(now + t.rc);
            self.stats.vrrs += 1;
            if let Some(o) = &mut self.oracle {
                o.on_row_refreshed(bank, row);
            }
            return;
        }
        {
            let b = self.bank_mut(bank);
            debug_assert!(b.is_idle());
            b.state = BankState::Opened { row };
            b.next_pre = now + t.ras;
            b.next_rd = now + t.rcd;
            b.next_wr = now + t.rcd;
            b.next_act = now + t.rc;
            b.acts += 1;
        }
        self.ranks[bank.rank as usize].bank_opened(now);
        self.stats.acts += 1;
        if let Some(o) = &mut self.oracle {
            o.on_activate(bank, row);
        }
        if self.mitigation.on_activate(bank, row, now) {
            self.assert_alert(bank.rank as usize, now);
        }
    }

    fn close_row(&mut self, bank: BankId, row: RowId, now: Cycle) {
        let t = self.cfg.timings;
        {
            let b = self.bank_mut(bank);
            b.state = BankState::Idle;
            b.next_act = b.next_act.max(now + t.rp);
        }
        self.ranks[bank.rank as usize].bank_closed(now);
        self.stats.pres += 1;
        if self.mitigation.on_precharge(bank, row, now) {
            self.assert_alert(bank.rank as usize, now);
        }
    }

    /// Auto-precharge variant: the precharge point is `pre_at` (> now).
    fn close_row_at(&mut self, bank: BankId, row: RowId, now: Cycle, pre_at: Cycle) {
        let t = self.cfg.timings;
        {
            let b = self.bank_mut(bank);
            b.state = BankState::Idle;
            b.next_act = b.next_act.max(pre_at + t.rp);
        }
        self.ranks[bank.rank as usize].bank_closed(now);
        self.stats.pres += 1;
        if self.mitigation.on_precharge(bank, row, pre_at) {
            self.assert_alert(bank.rank as usize, pre_at);
        }
    }

    fn do_read(&mut self, bank: BankId, now: Cycle) {
        let t = self.cfg.timings;
        {
            let b = self.bank_mut(bank);
            b.next_pre = b.next_pre.max(now + t.rtp);
        }
        let r = &mut self.ranks[bank.rank as usize];
        r.next_rd_any = r.next_rd_any.max(now + t.ccd_s);
        let g = bank.group as usize;
        r.next_rd_group[g] = r.next_rd_group[g].max(now + t.ccd_l);
        // Data burst occupies [now+CL, now+CL+BL); block conflicting bus use.
        let burst_end = now + t.cl + t.bl;
        self.next_rd = self.next_rd.max(burst_end - t.cl);
        // Read→write turnaround: the write burst must start after the read
        // burst ends (plus 2 cycles of bus turnaround).
        self.next_wr = self.next_wr.max((burst_end + 2).saturating_sub(t.cwl));
        self.stats.reads += 1;
    }

    fn do_write(&mut self, bank: BankId, now: Cycle) {
        let t = self.cfg.timings;
        let burst_end = now + t.cwl + t.bl;
        {
            let b = self.bank_mut(bank);
            b.next_pre = b.next_pre.max(burst_end + t.wr);
        }
        let r = &mut self.ranks[bank.rank as usize];
        r.next_wr_any = r.next_wr_any.max(now + t.ccd_s);
        let g = bank.group as usize;
        r.next_wr_group[g] = r.next_wr_group[g].max(now + t.ccd_l);
        // Write→read turnaround (tWTR measured from end of write burst).
        r.next_rd_any = r.next_rd_any.max(burst_end + t.wtr_s);
        r.next_rd_group[g] = r.next_rd_group[g].max(burst_end + t.wtr_l);
        self.next_wr = self.next_wr.max(burst_end - t.cwl);
        self.next_rd = self.next_rd.max((burst_end + 2).saturating_sub(t.cl));
        self.stats.writes += 1;
    }

    fn do_refresh(&mut self, rank: usize, now: Cycle) {
        let t = self.cfg.timings;
        {
            let r = &mut self.ranks[rank];
            r.blocked_until = now + t.rfc;
            for b in &mut r.banks {
                b.next_act = b.next_act.max(now + t.rfc);
            }
            r.refs_done += 1;
        }
        self.stats.refs += 1;
        let ref_idx = self.ranks[rank].refs_done;
        if let Some(o) = &mut self.oracle {
            o.on_periodic_sweep(rank, ref_idx.wrapping_sub(1));
        }
        let mut serviced = std::mem::take(&mut self.periodic_scratch);
        serviced.clear();
        self.mitigation
            .on_periodic_refresh(rank, now, &mut serviced);
        self.stats.borrowed_refreshes += serviced.len() as u64;
        if let Some(o) = &mut self.oracle {
            for &(bank, aggressor) in &serviced {
                o.on_victims_refreshed(bank, aggressor);
            }
        }
        self.periodic_scratch = serviced;
    }

    fn do_rfm(&mut self, rank: usize, now: Cycle) {
        let t = self.cfg.timings;
        {
            let r = &mut self.ranks[rank];
            r.blocked_until = now + t.rfm;
            for b in &mut r.banks {
                b.next_act = b.next_act.max(now + t.rfm);
            }
        }
        self.stats.rfms += 1;
        let g = self.cfg.geometry;
        for i in 0..g.banks_per_rank() {
            let id = BankId::from_flat(rank * g.banks_per_rank() + i, &g);
            let outcome = self.mitigation.on_rfm(id, now);
            if let Some(aggressor) = outcome.refreshed_aggressor {
                self.stats.rfm_victim_rows +=
                    victims_of(aggressor, self.cfg.blast_radius, g.rows).len() as u64;
                if let Some(o) = &mut self.oracle {
                    o.on_victims_refreshed(id, aggressor);
                }
            }
        }
    }

    fn assert_alert(&mut self, rank: usize, now: Cycle) {
        let at = now + self.cfg.timings.alert;
        let slot = &mut self.ranks[rank].alert_at;
        if slot.is_none() {
            *slot = Some(at);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dev() -> DramDevice {
        DramDevice::new(DramConfig::tiny())
    }

    const B0: BankId = BankId::new(0, 0, 0);
    const B1: BankId = BankId::new(0, 0, 1);

    #[test]
    fn act_then_read_respects_trcd() {
        let mut d = dev();
        let t = *d.timings();
        d.issue(&Command::Act { bank: B0, row: 3 }, 0);
        assert!(!d.can_issue(&Command::Rd { bank: B0, col: 0 }, t.rcd - 1));
        assert!(d.can_issue(&Command::Rd { bank: B0, col: 0 }, t.rcd));
    }

    #[test]
    fn pre_respects_tras_and_act_respects_trp() {
        let mut d = dev();
        let t = *d.timings();
        d.issue(&Command::Act { bank: B0, row: 3 }, 0);
        assert!(!d.can_issue(&Command::Pre { bank: B0 }, t.ras - 1));
        assert!(d.can_issue(&Command::Pre { bank: B0 }, t.ras));
        d.issue(&Command::Pre { bank: B0 }, t.ras);
        let reopen = t.ras + t.rp;
        assert!(!d.can_issue(&Command::Act { bank: B0, row: 4 }, reopen - 1));
        assert!(d.can_issue(&Command::Act { bank: B0, row: 4 }, reopen.max(t.rc)));
    }

    #[test]
    fn same_bank_act_to_act_is_trc() {
        let mut d = dev();
        let t = *d.timings();
        d.issue(&Command::Act { bank: B0, row: 1 }, 0);
        d.issue(&Command::Pre { bank: B0 }, t.ras);
        // tRC (76) > tRAS + tRP (52 + 24 = 76) for baseline: equal here.
        assert!(!d.can_issue(&Command::Act { bank: B0, row: 2 }, t.rc - 1));
        assert!(d.can_issue(&Command::Act { bank: B0, row: 2 }, t.rc));
    }

    #[test]
    fn different_banks_separated_by_trrd() {
        let mut d = dev();
        let t = *d.timings();
        d.issue(&Command::Act { bank: B0, row: 1 }, 0);
        // Same bank group: tRRD_L.
        assert!(!d.can_issue(&Command::Act { bank: B1, row: 1 }, t.rrd_l - 1));
        assert!(d.can_issue(&Command::Act { bank: B1, row: 1 }, t.rrd_l));
    }

    #[test]
    fn faw_blocks_fifth_activation() {
        // Use an artificially long tFAW so the window binds (with the
        // standard bin, 4 × tRRD ≥ tFAW and the window is never limiting).
        let mut cfg = DramConfig::ddr5_baseline();
        let mut ns = TimingsNs::ddr5_3200an_baseline();
        ns.tfaw = 60.0; // 96 cycles
        cfg.timings = ns.resolve();
        cfg.strict = true;
        let mut d = DramDevice::new(cfg);
        let t = *d.timings();
        let g = *d.geometry();
        let mut now = 0;
        for i in 0..4usize {
            let bank = BankId::from_flat(i, &g);
            assert!(d.can_issue(&Command::Act { bank, row: 0 }, now));
            d.issue(&Command::Act { bank, row: 0 }, now);
            now += t.rrd_l;
        }
        // Four ACTs at 0, 8, 16, 24; the fifth must wait until 0 + tFAW.
        assert!(now < t.faw);
        let fifth = BankId::new(0, 4, 0);
        assert!(!d.can_issue(
            &Command::Act {
                bank: fifth,
                row: 0
            },
            now
        ));
        assert!(!d.can_issue(
            &Command::Act {
                bank: fifth,
                row: 0
            },
            t.faw - 1
        ));
        assert!(d.can_issue(
            &Command::Act {
                bank: fifth,
                row: 0
            },
            t.faw
        ));
    }

    #[test]
    fn refresh_blocks_rank() {
        let mut d = dev();
        let t = *d.timings();
        d.issue(&Command::RefAll { rank: 0 }, 0);
        assert_eq!(d.rank_blocked_until(0), t.rfc);
        assert!(!d.can_issue(&Command::Act { bank: B0, row: 0 }, t.rfc - 1));
        assert!(d.can_issue(&Command::Act { bank: B0, row: 0 }, t.rfc));
        assert_eq!(d.stats().refs, 1);
    }

    #[test]
    fn refresh_requires_all_banks_idle() {
        let mut d = dev();
        d.issue(&Command::Act { bank: B0, row: 0 }, 0);
        assert!(!d.can_issue(&Command::RefAll { rank: 0 }, 100));
    }

    #[test]
    fn rfm_blocks_rank_for_trfm() {
        let mut d = dev();
        let t = *d.timings();
        d.issue(&Command::RfmAll { rank: 0 }, 0);
        assert_eq!(d.rank_blocked_until(0), t.rfm);
        assert_eq!(d.stats().rfms, 1);
    }

    #[test]
    fn vrr_occupies_bank_for_trc() {
        let mut d = dev();
        let t = *d.timings();
        d.issue(&Command::Vrr { bank: B0, row: 9 }, 0);
        assert!(d.open_row(B0).is_none());
        assert!(!d.can_issue(&Command::Act { bank: B0, row: 1 }, t.rc - 1));
        assert!(d.can_issue(&Command::Act { bank: B0, row: 1 }, t.rc));
        assert_eq!(d.stats().vrrs, 1);
    }

    #[test]
    fn write_then_pre_respects_write_recovery() {
        let mut d = dev();
        let t = *d.timings();
        d.issue(&Command::Act { bank: B0, row: 3 }, 0);
        d.issue(&Command::Wr { bank: B0, col: 0 }, t.rcd);
        let pre_ok = t.rcd + t.cwl + t.bl + t.wr;
        assert!(!d.can_issue(&Command::Pre { bank: B0 }, pre_ok - 1));
        assert!(d.can_issue(&Command::Pre { bank: B0 }, pre_ok));
    }

    #[test]
    fn write_to_read_turnaround() {
        let mut d = dev();
        let t = *d.timings();
        d.issue(&Command::Act { bank: B0, row: 3 }, 0);
        d.issue(&Command::Act { bank: B1, row: 3 }, t.rrd_l);
        let wr_at = t.rcd;
        d.issue(&Command::Wr { bank: B0, col: 0 }, wr_at);
        let rd_ok = wr_at + t.cwl + t.bl + t.wtr_l; // same bank group
        assert!(!d.can_issue(&Command::Rd { bank: B1, col: 0 }, rd_ok - 1));
        assert!(d.can_issue(&Command::Rd { bank: B1, col: 0 }, rd_ok));
    }

    #[test]
    fn oracle_sees_activations() {
        let mut cfg = DramConfig::tiny();
        cfg.oracle_nrh = Some(100);
        let mut d = DramDevice::new(cfg);
        let t = *d.timings();
        let mut now = 0;
        for _ in 0..5 {
            d.issue(&Command::Act { bank: B0, row: 50 }, now);
            now += t.ras;
            d.issue(&Command::Pre { bank: B0 }, now);
            now += t.rp.max(t.rc - t.ras);
        }
        let o = d.oracle().unwrap();
        assert_eq!(o.damage_of(B0, 49), 5);
        assert_eq!(o.max_damage(), 5);
    }

    #[test]
    #[should_panic(expected = "timing violation")]
    fn strict_mode_panics_on_violation() {
        let mut d = dev();
        d.issue(&Command::Act { bank: B0, row: 0 }, 0);
        // Reading before tRCD is illegal.
        d.issue(&Command::Rd { bank: B0, col: 0 }, 1);
    }

    /// Pins the `earliest_issue_at` contract against `can_issue` over a
    /// window of cycles: legality must flip exactly at the reported cycle.
    fn assert_earliest_exact(d: &DramDevice, cmd: &Command, now: Cycle, horizon: Cycle) {
        let at = d.earliest_issue_at(cmd, now);
        for t in now..now + horizon {
            assert_eq!(
                d.can_issue(cmd, t),
                t >= at,
                "{cmd} at t={t}: earliest_issue_at said {at}"
            );
        }
    }

    #[test]
    fn earliest_issue_at_matches_can_issue_across_frontiers() {
        let mut d = dev();
        let t = *d.timings();
        // Idle bank: ACT legal immediately, CAS/PRE structurally blocked.
        assert_eq!(
            d.earliest_issue_at(&Command::Act { bank: B0, row: 1 }, 0),
            0
        );
        assert_eq!(
            d.earliest_issue_at(&Command::Rd { bank: B0, col: 0 }, 0),
            Cycle::MAX
        );
        assert_eq!(
            d.earliest_issue_at(&Command::Pre { bank: B0 }, 0),
            Cycle::MAX
        );
        d.issue(&Command::Act { bank: B0, row: 1 }, 0);
        // Open bank: ACT structurally blocked, RD gated by tRCD, PRE by tRAS.
        assert_eq!(
            d.earliest_issue_at(&Command::Act { bank: B0, row: 2 }, 0),
            Cycle::MAX
        );
        assert_earliest_exact(&d, &Command::Rd { bank: B0, col: 0 }, 1, t.rc + 8);
        assert_earliest_exact(&d, &Command::Wr { bank: B0, col: 0 }, 1, t.rc + 8);
        assert_earliest_exact(&d, &Command::Pre { bank: B0 }, 1, t.rc + 8);
        // Sibling bank: ACT gated by tRRD_L.
        assert_earliest_exact(&d, &Command::Act { bank: B1, row: 7 }, 1, t.rc + 8);
        // After a read: PRE pushed to tRTP, CAS frontiers advanced.
        d.issue(&Command::Rd { bank: B0, col: 0 }, t.rcd);
        assert_earliest_exact(&d, &Command::Pre { bank: B0 }, t.rcd, t.rc + 8);
        assert_earliest_exact(&d, &Command::Rd { bank: B0, col: 1 }, t.rcd, t.rc + 8);
        // Write→read turnaround on the channel frontier.
        d.issue(&Command::Act { bank: B1, row: 7 }, t.rrd_l.max(t.rcd + 1));
        let wr_at = d.earliest_issue_at(&Command::Wr { bank: B1, col: 0 }, t.rcd + 2);
        d.issue(&Command::Wr { bank: B1, col: 0 }, wr_at);
        assert_earliest_exact(&d, &Command::Rd { bank: B0, col: 2 }, wr_at, t.rc + 64);
    }

    #[test]
    fn earliest_issue_at_covers_rank_level_commands() {
        let mut d = dev();
        let t = *d.timings();
        // All idle: REF/RFM legal now, PREab legal now (no open banks).
        assert_eq!(d.earliest_issue_at(&Command::RefAll { rank: 0 }, 0), 0);
        assert_eq!(d.earliest_issue_at(&Command::PreAll { rank: 0 }, 0), 0);
        d.issue(&Command::Act { bank: B0, row: 1 }, 0);
        // Open bank: REFab structurally blocked until precharged; PREab
        // waits for the open bank's tRAS.
        assert_eq!(
            d.earliest_issue_at(&Command::RefAll { rank: 0 }, 1),
            Cycle::MAX
        );
        assert_earliest_exact(&d, &Command::PreAll { rank: 0 }, 1, t.rc + 8);
        d.issue(&Command::PreAll { rank: 0 }, t.ras);
        // Idle again: REFab waits out tRP (bank next_act frontier).
        assert_earliest_exact(&d, &Command::RefAll { rank: 0 }, t.ras, t.rc + 8);
        assert_earliest_exact(&d, &Command::RfmAll { rank: 0 }, t.ras, t.rc + 8);
        // After a REF the rank-block frontier gates everything.
        let ref_at = d.earliest_issue_at(&Command::RefAll { rank: 0 }, t.ras);
        d.issue(&Command::RefAll { rank: 0 }, ref_at);
        assert_earliest_exact(&d, &Command::Act { bank: B0, row: 1 }, ref_at, t.rfc + 8);
    }

    #[test]
    fn earliest_issue_at_respects_faw() {
        let mut cfg = DramConfig::ddr5_baseline();
        let mut ns = TimingsNs::ddr5_3200an_baseline();
        ns.tfaw = 60.0; // 96 cycles, so the window binds
        cfg.timings = ns.resolve();
        cfg.strict = true;
        let mut d = DramDevice::new(cfg);
        let t = *d.timings();
        let g = *d.geometry();
        let mut now = 0;
        for i in 0..4usize {
            d.issue(
                &Command::Act {
                    bank: BankId::from_flat(i, &g),
                    row: 0,
                },
                now,
            );
            now += t.rrd_l;
        }
        let fifth = Command::Act {
            bank: BankId::new(0, 4, 0),
            row: 0,
        };
        assert_eq!(d.earliest_issue_at(&fifth, now), t.faw);
        assert_earliest_exact(&d, &fifth, now, t.faw + 16);
    }

    #[test]
    fn finalize_accounts_background_split() {
        let mut d = dev();
        let t = *d.timings();
        d.issue(&Command::Act { bank: B0, row: 0 }, 10);
        d.issue(&Command::Pre { bank: B0 }, 10 + t.ras);
        d.finalize(1000);
        let s = d.stats();
        assert_eq!(s.active_standby_cycles, t.ras);
        assert_eq!(s.total_cycles, 1000);
        // One rank in the tiny geometry.
        assert_eq!(s.precharge_standby_cycles, 1000 - t.ras);
    }
}
