//! Per-rank state: banks, FAW window, rank-wide blocking, alert latch.

use serde::{Deserialize, Serialize};

use crate::bank::Bank;
use crate::geometry::Geometry;
use crate::Cycle;

/// One DRAM rank: its banks plus rank-scoped timing frontiers and the
/// per-rank `alert_n` (back-off) latch.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Rank {
    /// Banks, indexed `group * banks_per_group + bank`.
    pub banks: Vec<Bank>,
    /// Timestamps of the last four ACTs (tFAW sliding window), oldest first.
    faw: [Cycle; 4],
    /// Number of valid entries in `faw`.
    faw_len: usize,
    /// Earliest next ACT anywhere in the rank (tRRD_S).
    pub next_act_any: Cycle,
    /// Earliest next ACT per bank group (tRRD_L).
    pub next_act_group: Vec<Cycle>,
    /// Earliest next RD anywhere in the rank (tCCD_S, tWTR_S).
    pub next_rd_any: Cycle,
    /// Earliest next RD per bank group (tCCD_L, tWTR_L).
    pub next_rd_group: Vec<Cycle>,
    /// Earliest next WR anywhere in the rank (tCCD_S).
    pub next_wr_any: Cycle,
    /// Earliest next WR per bank group (tCCD_L).
    pub next_wr_group: Vec<Cycle>,
    /// Rank blocked (REFab / RFMab in progress) until this cycle.
    pub blocked_until: Cycle,
    /// Back-off latch: the cycle at which the assertion becomes visible to
    /// the controller, if asserted.
    pub alert_at: Option<Cycle>,
    /// Number of banks currently open (for background-energy accounting).
    open_banks: u32,
    /// Cycle at which `open_banks` last became non-zero.
    active_since: Cycle,
    /// Accumulated cycles with at least one bank open.
    pub active_cycles: u64,
    /// REFab commands served (drives the oracle's rolling refresh sweep).
    pub refs_done: u64,
}

impl Rank {
    /// A fresh rank for the given geometry.
    pub fn new(geo: &Geometry) -> Self {
        Self {
            banks: (0..geo.banks_per_rank()).map(|_| Bank::new()).collect(),
            faw: [0; 4],
            faw_len: 0,
            next_act_any: 0,
            next_act_group: vec![0; geo.bankgroups],
            next_rd_any: 0,
            next_rd_group: vec![0; geo.bankgroups],
            next_wr_any: 0,
            next_wr_group: vec![0; geo.bankgroups],
            blocked_until: 0,
            alert_at: None,
            open_banks: 0,
            active_since: 0,
            active_cycles: 0,
            refs_done: 0,
        }
    }

    /// Earliest cycle at which a new ACT satisfies the four-activate window.
    pub fn faw_ready_at(&self, faw_cycles: Cycle) -> Cycle {
        if self.faw_len < 4 {
            0
        } else {
            self.faw[0] + faw_cycles
        }
    }

    /// Records an ACT at `now` in the FAW window.
    pub fn push_faw(&mut self, now: Cycle) {
        if self.faw_len < 4 {
            self.faw[self.faw_len] = now;
            self.faw_len += 1;
        } else {
            self.faw.rotate_left(1);
            self.faw[3] = now;
        }
    }

    /// Marks one more bank open (for background-energy accounting).
    pub fn bank_opened(&mut self, now: Cycle) {
        if self.open_banks == 0 {
            self.active_since = now;
        }
        self.open_banks += 1;
    }

    /// Marks one bank closed.
    pub fn bank_closed(&mut self, now: Cycle) {
        debug_assert!(self.open_banks > 0, "closing a bank on an all-idle rank");
        self.open_banks -= 1;
        if self.open_banks == 0 {
            self.active_cycles += now.saturating_sub(self.active_since);
        }
    }

    /// Number of banks currently open.
    pub fn open_bank_count(&self) -> u32 {
        self.open_banks
    }

    /// Folds any in-progress active interval into `active_cycles`.
    pub fn finalize_activity(&mut self, now: Cycle) {
        if self.open_banks > 0 {
            self.active_cycles += now.saturating_sub(self.active_since);
            self.active_since = now;
        }
    }

    /// True if every bank is precharged.
    pub fn all_idle(&self) -> bool {
        self.banks.iter().all(Bank::is_idle)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rank() -> Rank {
        Rank::new(&Geometry::ddr5())
    }

    #[test]
    fn faw_empty_window_is_always_ready() {
        let r = rank();
        assert_eq!(r.faw_ready_at(32), 0);
    }

    #[test]
    fn faw_enforces_fourth_act() {
        let mut r = rank();
        for t in [10, 20, 30, 40] {
            r.push_faw(t);
        }
        // The next ACT must wait until the oldest (10) + tFAW.
        assert_eq!(r.faw_ready_at(32), 42);
        r.push_faw(50);
        assert_eq!(r.faw_ready_at(32), 52);
    }

    #[test]
    fn active_cycle_accounting() {
        let mut r = rank();
        r.bank_opened(100);
        r.bank_opened(110); // second bank, same active interval
        r.bank_closed(150);
        assert_eq!(r.active_cycles, 0); // still one bank open
        r.bank_closed(200);
        assert_eq!(r.active_cycles, 100);
        r.bank_opened(300);
        r.finalize_activity(320);
        assert_eq!(r.active_cycles, 120);
    }

    #[test]
    fn all_idle_tracks_bank_states() {
        let mut r = rank();
        assert!(r.all_idle());
        r.banks[3].state = crate::bank::BankState::Opened { row: 9 };
        assert!(!r.all_idle());
    }
}
