//! Per-bank state machine and timing frontier.

use serde::{Deserialize, Serialize};

use crate::geometry::RowId;
use crate::Cycle;

/// Row-buffer state of one bank.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BankState {
    /// All rows precharged.
    Idle,
    /// `row` is latched in the row buffer.
    Opened {
        /// The open row.
        row: RowId,
    },
}

/// One DRAM bank: its row-buffer state plus the earliest cycle at which each
/// command class may next be issued (the per-bank timing frontier).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Bank {
    /// Row-buffer state.
    pub state: BankState,
    /// Earliest next ACT.
    pub next_act: Cycle,
    /// Earliest next PRE.
    pub next_pre: Cycle,
    /// Earliest next RD.
    pub next_rd: Cycle,
    /// Earliest next WR.
    pub next_wr: Cycle,
    /// Activations served by this bank (for stats / PRFM RAA).
    pub acts: u64,
}

impl Bank {
    /// A fresh, idle bank.
    pub fn new() -> Self {
        Self {
            state: BankState::Idle,
            next_act: 0,
            next_pre: 0,
            next_rd: 0,
            next_wr: 0,
            acts: 0,
        }
    }

    /// The open row, if any.
    pub fn open_row(&self) -> Option<RowId> {
        match self.state {
            BankState::Idle => None,
            BankState::Opened { row } => Some(row),
        }
    }

    /// True if the bank is precharged.
    pub fn is_idle(&self) -> bool {
        matches!(self.state, BankState::Idle)
    }
}

impl Default for Bank {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_bank_is_idle() {
        let b = Bank::new();
        assert!(b.is_idle());
        assert_eq!(b.open_row(), None);
        assert_eq!(b.acts, 0);
    }

    #[test]
    fn opened_bank_reports_row() {
        let mut b = Bank::new();
        b.state = BankState::Opened { row: 123 };
        assert!(!b.is_idle());
        assert_eq!(b.open_row(), Some(123));
    }
}
