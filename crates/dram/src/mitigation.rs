//! The on-DRAM-die mitigation extension point.
//!
//! PRAC, Chronus and the PRFM device-side sampler (all in `chronus-core`)
//! implement [`DramMitigation`]; the device calls the hooks as commands are
//! executed. A mechanism signals the need for preventive refreshes by
//! returning `true` from [`DramMitigation::on_activate`] or
//! [`DramMitigation::on_precharge`], which latches the rank's `alert_n`
//! back-off signal (§3 of the paper).

use serde::{Deserialize, Serialize};

use crate::geometry::{BankId, RowId};
use crate::Cycle;

/// Result of serving one RFM command in one bank.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RfmOutcome {
    /// The aggressor row whose victims were preventively refreshed, if the
    /// mechanism had a candidate (the device refreshes `blast_radius`
    /// neighbours on each side).
    pub refreshed_aggressor: Option<RowId>,
}

/// Counters a mechanism reports for evaluation (energy adders, back-offs).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MitigationStats {
    /// Back-off assertions requested.
    pub back_offs: u64,
    /// In-DRAM counter read-modify-writes performed (PRAC: during PRE;
    /// Chronus: concurrent, in the counter subarray).
    pub counter_updates: u64,
    /// Aggressors whose victims were refreshed by RFM service.
    pub rfm_refreshes: u64,
    /// Aggressors whose victims were refreshed by borrowing time from
    /// periodic refreshes (§5).
    pub borrowed_refreshes: u64,
}

/// On-DRAM-die read-disturbance mitigation hook.
///
/// All methods take the current cycle so mechanisms can implement
/// time-based policies. The device guarantees `on_precharge` is called with
/// the row that was open, exactly once per row closure (explicit PRE,
/// auto-precharge, or PREab).
pub trait DramMitigation {
    /// A row was activated. Returns `true` to assert the back-off signal
    /// (Chronus asserts here: CCU updates the counter during the activation).
    fn on_activate(&mut self, bank: BankId, row: RowId, now: Cycle) -> bool;

    /// The open row is being closed. Returns `true` to assert the back-off
    /// signal (PRAC increments the counter and compares here).
    fn on_precharge(&mut self, bank: BankId, row: RowId, now: Cycle) -> bool;

    /// Serve one RFM command for `bank`: pick the most critical aggressor,
    /// reset its counter, and report it so the device can refresh its
    /// victims.
    fn on_rfm(&mut self, bank: BankId, now: Cycle) -> RfmOutcome;

    /// A periodic REFab on `rank`: the mechanism may borrow time to
    /// transparently refresh victims of high-count rows (§5). Serviced
    /// aggressors (at most one per bank per REF in the paper's model) are
    /// appended to `serviced`, a caller-owned scratch buffer that the
    /// device reuses across refreshes so the per-REF hot path stays
    /// allocation-free.
    fn on_periodic_refresh(&mut self, rank: usize, now: Cycle, serviced: &mut Vec<(BankId, RowId)>);

    /// After an RFM, does any row in `rank` still exceed the back-off
    /// threshold? Chronus keeps `alert_n` asserted while this holds (§7.2);
    /// PRAC always reports `false` (fixed `N_Ref` refreshes per back-off).
    fn alert_still_needed(&self, rank: usize) -> bool {
        let _ = rank;
        false
    }

    /// Introspection for tests: the activation count the mechanism holds for
    /// `row`, if it keeps one.
    fn counter_of(&self, bank: BankId, row: RowId) -> Option<u32> {
        let _ = (bank, row);
        None
    }

    /// Evaluation counters.
    fn stats(&self) -> MitigationStats {
        MitigationStats::default()
    }

    /// Short mechanism name for reports.
    fn kind_name(&self) -> &'static str;
}

/// The unprotected baseline: no counters, no back-offs, idle RFMs.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoMitigation;

impl DramMitigation for NoMitigation {
    fn on_activate(&mut self, _bank: BankId, _row: RowId, _now: Cycle) -> bool {
        false
    }

    fn on_precharge(&mut self, _bank: BankId, _row: RowId, _now: Cycle) -> bool {
        false
    }

    fn on_rfm(&mut self, _bank: BankId, _now: Cycle) -> RfmOutcome {
        RfmOutcome::default()
    }

    fn on_periodic_refresh(
        &mut self,
        _rank: usize,
        _now: Cycle,
        _serviced: &mut Vec<(BankId, RowId)>,
    ) {
    }

    fn kind_name(&self) -> &'static str {
        "none"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_mitigation_never_alerts() {
        let mut m = NoMitigation;
        let b = BankId::new(0, 0, 0);
        assert!(!m.on_activate(b, 1, 0));
        assert!(!m.on_precharge(b, 1, 10));
        assert_eq!(m.on_rfm(b, 20).refreshed_aggressor, None);
        let mut serviced = Vec::new();
        m.on_periodic_refresh(0, 30, &mut serviced);
        assert!(serviced.is_empty());
        assert!(!m.alert_still_needed(0));
        assert_eq!(m.stats(), MitigationStats::default());
        assert_eq!(m.kind_name(), "none");
    }
}
