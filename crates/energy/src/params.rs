//! Electrical parameters.

use serde::{Deserialize, Serialize};

/// Per-device DDR5 current/voltage parameters (representative 16 Gb x8
/// device; absolute values scale all results equally — the evaluation
/// reports energy *normalised* to the unmitigated baseline).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyParams {
    /// Core supply voltage (V).
    pub vdd: f64,
    /// Activate–precharge current (mA).
    pub idd0: f64,
    /// Precharge-standby current (mA).
    pub idd2n: f64,
    /// Active-standby current (mA).
    pub idd3n: f64,
    /// Read burst current (mA).
    pub idd4r: f64,
    /// Write burst current (mA).
    pub idd4w: f64,
    /// Refresh current (mA).
    pub idd5b: f64,
    /// Devices per rank (x8 devices on a 64-bit channel).
    pub devices_per_rank: f64,
}

impl Default for EnergyParams {
    fn default() -> Self {
        Self {
            vdd: 1.1,
            idd0: 140.0,
            idd2n: 85.0,
            idd3n: 110.0,
            idd4r: 390.0,
            idd4w: 370.0,
            idd5b: 280.0,
            devices_per_rank: 8.0,
        }
    }
}

impl EnergyParams {
    /// Energy (pJ, per rank) of one ACT/PRE pair given `tras`/`trc` in ns.
    pub fn act_pre_pj(&self, tras_ns: f64, trc_ns: f64) -> f64 {
        let per_device = self.vdd
            * (self.idd0 * trc_ns - self.idd3n * tras_ns - self.idd2n * (trc_ns - tras_ns));
        per_device * self.devices_per_rank
    }

    /// Energy (pJ, per rank) of one read burst of `tbl_ns`.
    pub fn read_pj(&self, tbl_ns: f64) -> f64 {
        self.vdd * (self.idd4r - self.idd3n) * tbl_ns * self.devices_per_rank
    }

    /// Energy (pJ, per rank) of one write burst of `tbl_ns`.
    pub fn write_pj(&self, tbl_ns: f64) -> f64 {
        self.vdd * (self.idd4w - self.idd3n) * tbl_ns * self.devices_per_rank
    }

    /// Energy (pJ, per rank) of one REFab of `trfc_ns`.
    pub fn refresh_pj(&self, trfc_ns: f64) -> f64 {
        self.vdd * (self.idd5b - self.idd3n) * trfc_ns * self.devices_per_rank
    }

    /// Background power in pJ/ns for the given standby state.
    /// (mA × V = mW, and 1 mW ≡ 1 pJ/ns.)
    pub fn background_pj_per_ns(&self, active: bool) -> f64 {
        let idd = if active { self.idd3n } else { self.idd2n };
        self.vdd * idd * self.devices_per_rank
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn act_pre_energy_is_positive_and_grows_with_trc() {
        let p = EnergyParams::default();
        let base = p.act_pre_pj(32.0, 47.0);
        let prac = p.act_pre_pj(16.0, 52.0);
        assert!(base > 0.0);
        assert!(prac > base, "longer tRC costs more energy");
    }

    #[test]
    fn read_costs_more_than_write() {
        let p = EnergyParams::default();
        assert!(p.read_pj(5.0) > p.write_pj(5.0));
    }

    #[test]
    fn refresh_dwarfs_single_activation() {
        let p = EnergyParams::default();
        assert!(p.refresh_pj(295.0) > p.act_pre_pj(32.0, 47.0));
    }
}
