//! Energy accounting over device statistics.

use chronus_dram::{DramStats, MitigationStats, Timings};
use serde::{Deserialize, Serialize};

use crate::params::EnergyParams;

/// Mechanism-specific energy adders.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct MechanismEnergy {
    /// Extra energy per in-DRAM counter update (PRAC's precharge-time
    /// read–modify–write), in pJ.
    pub per_counter_update_pj: f64,
    /// Extra energy per row access as a fraction of the ACT/PRE energy
    /// (Chronus counter subarray: 0.1907, §7.1).
    pub per_activate_factor: f64,
}

impl MechanismEnergy {
    /// PRAC's adder: the counter RMW inside the array, charged per update.
    pub fn prac() -> Self {
        Self {
            // One counter line sense + write-back ≈ a tenth of a full row
            // cycle's array energy.
            per_counter_update_pj: 180.0,
            per_activate_factor: 0.0,
        }
    }

    /// Chronus's adder: +19.07 % of row-access energy per activation (§7.1).
    pub fn chronus() -> Self {
        Self {
            per_counter_update_pj: 0.0,
            per_activate_factor: 0.1907,
        }
    }
}

/// Energy totals in pJ, by component.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct EnergyBreakdown {
    /// Demand row activations and precharges.
    pub act_pre_pj: f64,
    /// Read bursts.
    pub read_pj: f64,
    /// Write bursts.
    pub write_pj: f64,
    /// Periodic refresh.
    pub refresh_pj: f64,
    /// Preventive refreshes (RFM victims, VRRs, borrowed refreshes).
    pub preventive_pj: f64,
    /// Standby background energy.
    pub background_pj: f64,
    /// Mechanism adders (counter updates, counter-subarray activations).
    pub mechanism_pj: f64,
}

impl EnergyBreakdown {
    /// Total energy in pJ.
    pub fn total_pj(&self) -> f64 {
        self.act_pre_pj
            + self.read_pj
            + self.write_pj
            + self.refresh_pj
            + self.preventive_pj
            + self.background_pj
            + self.mechanism_pj
    }

    /// Total in millijoules.
    pub fn total_mj(&self) -> f64 {
        self.total_pj() / 1.0e9
    }
}

/// Computes the energy of a simulation run.
///
/// `victims_per_service` is twice the blast radius (4 for the paper's
/// blast radius of 2): borrowed refreshes are charged per victim row.
pub fn compute(
    stats: &DramStats,
    mit: &MitigationStats,
    t: &Timings,
    p: &EnergyParams,
    mech: &MechanismEnergy,
    victims_per_service: u32,
) -> EnergyBreakdown {
    let tras_ns = t.cycles_to_ns(t.ras);
    let trc_ns = t.cycles_to_ns(t.rc);
    let tbl_ns = t.cycles_to_ns(t.bl);
    let trfc_ns = t.cycles_to_ns(t.rfc);
    let act_pre = p.act_pre_pj(tras_ns, trc_ns);
    // Preventive refreshes are row activations of victim rows: RFM service
    // and borrowed refreshes touch `victims_per_service` rows per
    // aggressor; VRRs are counted per victim row already.
    let preventive_rows =
        stats.rfm_victim_rows + stats.vrrs + stats.borrowed_refreshes * victims_per_service as u64;
    let background = stats.active_standby_cycles as f64 * t.tck_ns * p.background_pj_per_ns(true)
        + stats.precharge_standby_cycles as f64 * t.tck_ns * p.background_pj_per_ns(false);
    let mechanism = mit.counter_updates as f64 * mech.per_counter_update_pj
        + stats.acts as f64 * act_pre * mech.per_activate_factor;
    EnergyBreakdown {
        act_pre_pj: stats.acts as f64 * act_pre,
        read_pj: stats.reads as f64 * p.read_pj(tbl_ns),
        write_pj: stats.writes as f64 * p.write_pj(tbl_ns),
        refresh_pj: stats.refs as f64 * p.refresh_pj(trfc_ns),
        preventive_pj: preventive_rows as f64 * act_pre,
        background_pj: background,
        mechanism_pj: mechanism,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chronus_dram::TimingMode;

    fn stats() -> DramStats {
        DramStats {
            acts: 1000,
            pres: 1000,
            reads: 3000,
            writes: 1000,
            refs: 10,
            rfms: 2,
            vrrs: 8,
            rfm_victim_rows: 8,
            borrowed_refreshes: 3,
            active_standby_cycles: 500_000,
            precharge_standby_cycles: 500_000,
            total_cycles: 500_000,
        }
    }

    #[test]
    fn all_components_positive() {
        let t = Timings::for_mode(TimingMode::Baseline);
        let e = compute(
            &stats(),
            &MitigationStats::default(),
            &t,
            &EnergyParams::default(),
            &MechanismEnergy::default(),
            4,
        );
        assert!(e.act_pre_pj > 0.0);
        assert!(e.read_pj > 0.0);
        assert!(e.write_pj > 0.0);
        assert!(e.refresh_pj > 0.0);
        assert!(e.preventive_pj > 0.0);
        assert!(e.background_pj > 0.0);
        assert_eq!(e.mechanism_pj, 0.0);
        assert!(e.total_pj() > 0.0);
        assert!((e.total_mj() - e.total_pj() / 1e9).abs() < 1e-12);
    }

    #[test]
    fn chronus_adder_is_19_percent_of_act_energy() {
        let t = Timings::for_mode(TimingMode::Baseline);
        let p = EnergyParams::default();
        let base = compute(
            &stats(),
            &MitigationStats::default(),
            &t,
            &p,
            &MechanismEnergy::default(),
            4,
        );
        let mit = MitigationStats {
            counter_updates: 1000,
            ..Default::default()
        };
        let chr = compute(&stats(), &mit, &t, &p, &MechanismEnergy::chronus(), 4);
        let expect = base.act_pre_pj * 0.1907;
        assert!((chr.mechanism_pj - expect).abs() / expect < 1e-9);
    }

    #[test]
    fn prac_adder_charges_counter_updates() {
        let t = Timings::for_mode(TimingMode::Prac);
        let mit = MitigationStats {
            counter_updates: 1000,
            ..Default::default()
        };
        let e = compute(
            &stats(),
            &mit,
            &t,
            &EnergyParams::default(),
            &MechanismEnergy::prac(),
            4,
        );
        assert!((e.mechanism_pj - 1000.0 * 180.0).abs() < 1e-6);
    }

    #[test]
    fn prac_timing_mode_raises_act_energy() {
        let p = EnergyParams::default();
        let base = compute(
            &stats(),
            &MitigationStats::default(),
            &Timings::for_mode(TimingMode::Baseline),
            &p,
            &MechanismEnergy::default(),
            4,
        );
        let prac = compute(
            &stats(),
            &MitigationStats::default(),
            &Timings::for_mode(TimingMode::Prac),
            &p,
            &MechanismEnergy::default(),
            4,
        );
        assert!(prac.act_pre_pj > base.act_pre_pj);
    }

    #[test]
    fn preventive_rows_counted_fully() {
        // 8 RFM victims + 8 VRRs + 3 borrowed × 4 victims = 28 row refreshes.
        let t = Timings::for_mode(TimingMode::Baseline);
        let p = EnergyParams::default();
        let e = compute(
            &stats(),
            &MitigationStats::default(),
            &t,
            &p,
            &MechanismEnergy::default(),
            4,
        );
        let per_row = p.act_pre_pj(t.cycles_to_ns(t.ras), t.cycles_to_ns(t.rc));
        assert!((e.preventive_pj - 28.0 * per_row).abs() < 1e-6);
    }
}
