//! DRAMPower-style DDR5 energy model.
//!
//! Current-based accounting in the style of DRAMPower [Chandrasekar+,
//! DSD'11], over the command counts and background-state residencies the
//! device collects:
//!
//! * ACT/PRE pair: `VDD · (IDD0·tRC − IDD3N·tRAS − IDD2N·(tRC−tRAS))`
//! * RD / WR burst: `VDD · (IDD4R/W − IDD3N) · tBL`
//! * REFab: `VDD · (IDD5B − IDD3N) · tRFC`
//! * preventive refreshes (RFM victims, VRRs, borrowed refreshes): one
//!   ACT/PRE pair per victim row
//! * background: `VDD · IDD3N` over active-standby time, `VDD · IDD2N`
//!   over precharge-standby time
//!
//! Mechanism adders follow the paper: PRAC pays an in-array counter
//! read–modify–write on every precharge; Chronus's counter-subarray
//! activation adds 19.07 % to each row access (§7.1, SPICE result).

pub mod model;
pub mod params;

pub use model::{compute, EnergyBreakdown, MechanismEnergy};
pub use params::EnergyParams;
