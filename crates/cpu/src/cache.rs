//! The shared last-level cache.
//!
//! Write-allocate, writeback, per-set LRU, with MSHR merging: concurrent
//! misses to one line share a single memory request. Misses and dirty
//! writebacks surface as [`UncoreRequest`]s that the simulator forwards to
//! the memory controller; fills come back through [`SharedLlc::on_fill`].

use std::collections::hash_map::Entry;
use std::collections::{HashMap, VecDeque};

use serde::{Deserialize, Serialize};

use crate::core::SimpleO3Core;

/// LLC geometry and latency (Table 2 defaults).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Total capacity in bytes (8 MiB).
    pub capacity: usize,
    /// Associativity (8).
    pub ways: usize,
    /// Line size in bytes (64).
    pub line_bytes: usize,
    /// Hit latency in CPU cycles.
    pub hit_latency: u32,
    /// Maximum outstanding misses.
    pub mshrs: usize,
}

impl Default for CacheConfig {
    fn default() -> Self {
        Self {
            capacity: 8 << 20,
            ways: 8,
            line_bytes: 64,
            hit_latency: 24,
            mshrs: 64,
        }
    }
}

impl CacheConfig {
    /// Number of sets.
    pub fn sets(&self) -> usize {
        self.capacity / self.line_bytes / self.ways
    }

    /// The Fig. 14/15 configuration: the 4.5× larger LLC of [Kim+, CAL'25].
    pub fn large_kim25() -> Self {
        Self {
            capacity: 36 << 20,
            ..Self::default()
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Line {
    tag: u64,
    dirty: bool,
    /// LRU stamp (bigger = more recent).
    lru: u64,
    valid: bool,
}

/// Result of a load probe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoadResult {
    /// In cache; data ready after the hit latency.
    Hit,
    /// Miss; the waiter token will be released by a future fill.
    Miss,
    /// No MSHR available: retry next cycle.
    Rejected,
}

/// A memory request the LLC wants the controller to perform.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UncoreRequest {
    /// Line-aligned byte address.
    pub line_addr: u64,
    /// True for writebacks.
    pub write: bool,
    /// True if the read must bypass the cache (non-cacheable load); the
    /// completion routes straight back to the waiter.
    pub uncached: bool,
    /// The core that initiated the miss (the first waiter for merged
    /// misses). Purely attributional — routing still goes through waiter
    /// tokens — so downstream per-core accounting can label the request.
    pub core: u8,
}

#[derive(Debug)]
struct Mshr {
    waiters: Vec<u64>,
    /// At least one waiter wants the line cached (demand load/store);
    /// pure-writeback-allocate entries fill without waiters.
    fill: bool,
    /// A store merged into this miss: the line installs dirty
    /// (write-allocate semantics).
    dirty: bool,
}

/// The shared LLC.
#[derive(Debug)]
pub struct SharedLlc {
    cfg: CacheConfig,
    /// All lines in one flat allocation, set-major: set `s` occupies
    /// `lines[s * ways .. (s + 1) * ways]`. One contiguous block keeps the
    /// per-access way scan on a single cache line instead of chasing a
    /// per-set `Vec` pointer.
    lines: Vec<Line>,
    /// `line_bytes - 1` complement, precomputed (line alignment mask).
    line_mask: u64,
    /// `log2(line_bytes)`, precomputed (line → line-index shift).
    line_shift: u32,
    /// Number of sets, precomputed (not necessarily a power of two — the
    /// Kim'25 36 MiB configuration has 73728 sets — so indexing stays a
    /// modulo, but of a cached value).
    num_sets: u64,
    mshr: HashMap<u64, Mshr>,
    /// Uncached loads in flight: line address → waiter FIFO. Unlike MSHRs,
    /// uncached loads never merge (clflush-hammer semantics): every load
    /// is its own DRAM access, and each fill wakes exactly one waiter.
    uncached: HashMap<u64, VecDeque<u64>>,
    uncached_outstanding: usize,
    /// Requests awaiting forwarding to the memory controller.
    outbox: VecDeque<UncoreRequest>,
    lru_clock: u64,
    hits: u64,
    misses: u64,
}

impl SharedLlc {
    /// An empty cache.
    pub fn new(cfg: CacheConfig) -> Self {
        assert!(
            cfg.line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        let sets = cfg.sets();
        Self {
            cfg,
            lines: vec![
                Line {
                    tag: 0,
                    dirty: false,
                    lru: 0,
                    valid: false,
                };
                sets * cfg.ways
            ],
            line_mask: !(cfg.line_bytes as u64 - 1),
            line_shift: cfg.line_bytes.trailing_zeros(),
            num_sets: sets as u64,
            mshr: HashMap::new(),
            uncached: HashMap::new(),
            uncached_outstanding: 0,
            outbox: VecDeque::new(),
            lru_clock: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// The cache configuration.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    fn line_addr(&self, addr: u64) -> u64 {
        addr & self.line_mask
    }

    fn set_of(&self, line_addr: u64) -> usize {
        ((line_addr >> self.line_shift) % self.num_sets) as usize
    }

    /// The ways of the set holding `line_addr`, as one contiguous slice.
    fn set_ways(&mut self, line_addr: u64) -> &mut [Line] {
        let base = self.set_of(line_addr) * self.cfg.ways;
        &mut self.lines[base..base + self.cfg.ways]
    }

    fn probe(&mut self, line_addr: u64) -> Option<&mut Line> {
        self.lru_clock += 1;
        let clock = self.lru_clock;
        let line = self
            .set_ways(line_addr)
            .iter_mut()
            .find(|l| l.valid && l.tag == line_addr)?;
        line.lru = clock;
        Some(line)
    }

    /// Probes for a cacheable load. On a miss, `token` is parked on the
    /// line's MSHR (merged with any existing miss).
    pub fn load(&mut self, addr: u64, token: u64) -> LoadResult {
        let line = self.line_addr(addr);
        if self.probe(line).is_some() {
            self.hits += 1;
            return LoadResult::Hit;
        }
        // One hash walk for merge + capacity check + allocation: capacity
        // only gates *new* entries, so it is read before the entry borrow.
        let at_capacity = self.mshr.len() >= self.cfg.mshrs;
        match self.mshr.entry(line) {
            Entry::Occupied(mut e) => {
                let m = e.get_mut();
                m.waiters.push(token);
                m.fill = true;
                self.misses += 1;
                LoadResult::Miss
            }
            Entry::Vacant(v) => {
                if at_capacity {
                    return LoadResult::Rejected;
                }
                self.misses += 1;
                v.insert(Mshr {
                    waiters: vec![token],
                    fill: true,
                    dirty: false,
                });
                self.outbox.push_back(UncoreRequest {
                    line_addr: line,
                    write: false,
                    uncached: false,
                    core: SimpleO3Core::token_core(token),
                });
                LoadResult::Miss
            }
        }
    }

    /// A store (write-allocate) from `core`: hit marks dirty and
    /// completes; a miss allocates an MSHR for the read-for-ownership but
    /// the store itself is posted (returns `true`). Returns `false` when
    /// the store must retry (MSHR pressure).
    pub fn store(&mut self, addr: u64, core: u8) -> bool {
        let line = self.line_addr(addr);
        if let Some(l) = self.probe(line) {
            l.dirty = true;
            self.hits += 1;
            return true;
        }
        let at_capacity = self.mshr.len() >= self.cfg.mshrs;
        match self.mshr.entry(line) {
            Entry::Occupied(mut e) => {
                let m = e.get_mut();
                m.fill = true;
                m.dirty = true;
                self.misses += 1;
                true
            }
            Entry::Vacant(v) => {
                if at_capacity {
                    return false;
                }
                self.misses += 1;
                v.insert(Mshr {
                    waiters: Vec::new(),
                    fill: true,
                    dirty: true,
                });
                self.outbox.push_back(UncoreRequest {
                    line_addr: line,
                    write: false,
                    uncached: false,
                    core,
                });
                true
            }
        }
    }

    /// Marks a previously filled line dirty (deferred store completion on
    /// RFO fill). No-op if the line is absent.
    pub fn mark_dirty(&mut self, addr: u64) {
        let line = self.line_addr(addr);
        if let Some(l) = self.probe(line) {
            l.dirty = true;
        }
    }

    /// A non-cacheable load: always produces its own DRAM read (no
    /// merging); `token` is woken when that read returns.
    pub fn load_uncached(&mut self, addr: u64, token: u64) -> LoadResult {
        if self.uncached_outstanding >= self.cfg.mshrs {
            return LoadResult::Rejected;
        }
        let line = self.line_addr(addr);
        self.uncached.entry(line).or_default().push_back(token);
        self.uncached_outstanding += 1;
        self.outbox.push_back(UncoreRequest {
            line_addr: line,
            write: false,
            uncached: true,
            core: SimpleO3Core::token_core(token),
        });
        LoadResult::Miss
    }

    /// The next request to forward to the memory controller, if any.
    pub fn peek_request(&self) -> Option<&UncoreRequest> {
        self.outbox.front()
    }

    /// Removes the request previously returned by
    /// [`SharedLlc::peek_request`] once the controller accepted it.
    pub fn pop_request(&mut self) -> Option<UncoreRequest> {
        self.outbox.pop_front()
    }

    /// A line read completed. Installs the line (cacheable fills), wakes
    /// waiters, and reports any dirty eviction; the caller turns the
    /// returned writeback into a memory write.
    ///
    /// `waiters` is a caller-owned scratch buffer: it is cleared, then
    /// filled with the tokens to wake. Reusing one buffer across fills
    /// keeps this path allocation-free (the uncached path runs once per
    /// attack access).
    pub fn on_fill(
        &mut self,
        line_addr: u64,
        uncached: bool,
        waiters: &mut Vec<u64>,
    ) -> Option<u64> {
        waiters.clear();
        if uncached {
            if let Some(q) = self.uncached.get_mut(&line_addr) {
                if let Some(t) = q.pop_front() {
                    waiters.push(t);
                    self.uncached_outstanding -= 1;
                }
                if q.is_empty() {
                    self.uncached.remove(&line_addr);
                }
            }
            return None;
        }
        let m = self.mshr.remove(&line_addr)?;
        waiters.extend_from_slice(&m.waiters);
        let mut writeback = None;
        if m.fill {
            self.lru_clock += 1;
            let clock = self.lru_clock;
            let victim = self
                .set_ways(line_addr)
                .iter_mut()
                .min_by_key(|l| if l.valid { l.lru } else { 0 })
                .expect("ways >= 1");
            if victim.valid && victim.dirty {
                writeback = Some(victim.tag);
            }
            *victim = Line {
                tag: line_addr,
                dirty: m.dirty,
                lru: clock,
                valid: true,
            };
        }
        writeback
    }

    /// (hits, misses) so far.
    pub fn hit_miss(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Outstanding MSHR entries (cacheable + uncached).
    pub fn inflight(&self) -> usize {
        self.mshr.len() + self.uncached_outstanding
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> SharedLlc {
        SharedLlc::new(CacheConfig {
            capacity: 4096, // 4 sets of 8 ways… wait, 4096/64/8 = 8 sets
            ways: 2,
            line_bytes: 64,
            hit_latency: 10,
            mshrs: 4,
        })
    }

    /// Test convenience over the scratch-buffer API.
    fn fill(c: &mut SharedLlc, line: u64, uncached: bool) -> (Vec<u64>, Option<u64>) {
        let mut waiters = Vec::new();
        let wb = c.on_fill(line, uncached, &mut waiters);
        (waiters, wb)
    }

    #[test]
    fn default_config_matches_table2() {
        let c = CacheConfig::default();
        assert_eq!(c.sets(), 16_384);
        assert_eq!(c.capacity, 8 << 20);
        assert_eq!(c.ways, 8);
    }

    #[test]
    fn miss_then_fill_then_hit() {
        let mut c = small();
        assert_eq!(c.load(0x1000, 7), LoadResult::Miss);
        let req = c.pop_request().unwrap();
        assert_eq!(req.line_addr, 0x1000);
        assert!(!req.write);
        assert_eq!(req.core, 0);
        let (waiters, _) = fill(&mut c, 0x1000, false);
        assert_eq!(waiters, vec![7]);
        assert_eq!(c.load(0x1000, 8), LoadResult::Hit);
    }

    #[test]
    fn concurrent_misses_merge() {
        let mut c = small();
        assert_eq!(c.load(0x1000, 1), LoadResult::Miss);
        assert_eq!(c.load(0x1040, 2), LoadResult::Miss);
        assert_eq!(c.load(0x1000, 3), LoadResult::Miss); // merges
        assert_eq!(c.outbox.len(), 2, "merged miss sends one request");
        let (waiters, _) = fill(&mut c, 0x1000, false);
        assert_eq!(waiters, vec![1, 3]);
    }

    #[test]
    fn mshr_capacity_rejects() {
        let mut c = small();
        for i in 0..4u64 {
            assert_eq!(c.load(0x10000 + i * 64, i), LoadResult::Miss);
        }
        assert_eq!(c.load(0x90000, 99), LoadResult::Rejected);
    }

    #[test]
    fn dirty_eviction_writes_back() {
        let mut c = small();
        // Fill both ways of one set with dirty lines, then force eviction.
        let set_stride = 64 * 32; // 2048-byte stride maps to the same set (32 sets)
        let a = 0x0;
        let b = a + set_stride;
        let d = b + set_stride;
        for addr in [a, b] {
            assert!(c.store(addr, 0));
            fill(&mut c, addr, false);
        }
        assert_eq!(c.load(d, 5), LoadResult::Miss);
        let (_, writeback) = fill(&mut c, d, false);
        assert!(writeback.is_some(), "a dirty victim must write back");
    }

    #[test]
    fn store_miss_installs_dirty_line() {
        // Write-allocate: the RFO fill must carry the store's dirty bit so
        // the eventual eviction writes back to DRAM.
        let mut c = small();
        assert!(c.store(0x1000, 2));
        let req = c.pop_request().unwrap();
        assert!(!req.write, "RFO is a read");
        assert_eq!(req.core, 2, "RFO attributed to the storing core");
        fill(&mut c, 0x1000, false);
        // Evict it via two more fills into the same set.
        let stride = 64 * 32;
        for i in 1..=2u64 {
            c.load(0x1000 + i * stride, i);
            let (_, writeback) = fill(&mut c, 0x1000 + i * stride, false);
            if i == 2 {
                assert_eq!(writeback, Some(0x1000), "store data lost");
            }
        }
    }

    #[test]
    fn uncached_loads_never_install() {
        let mut c = small();
        assert_eq!(c.load_uncached(0x5000, 9), LoadResult::Miss);
        let req = c.pop_request().unwrap();
        assert!(req.uncached);
        let (waiters, _) = fill(&mut c, 0x5000, true);
        assert_eq!(waiters, vec![9]);
        // Still a miss afterwards: nothing was cached.
        assert_eq!(c.load(0x5000, 10), LoadResult::Miss);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = small();
        let stride = 64 * 32;
        let (a, b, d) = (0u64, stride, 2 * stride);
        c.load(a, 1);
        fill(&mut c, a, false);
        c.load(b, 2);
        fill(&mut c, b, false);
        // Touch `a` so `b` is LRU.
        assert_eq!(c.load(a, 3), LoadResult::Hit);
        c.load(d, 4);
        fill(&mut c, d, false);
        assert_eq!(c.load(a, 5), LoadResult::Hit, "a must survive");
        assert_eq!(c.load(b, 6), LoadResult::Miss, "b was evicted");
    }

    #[test]
    fn fill_scratch_buffer_is_cleared_between_calls() {
        let mut c = small();
        c.load(0x1000, 1);
        c.load(0x2000, 2);
        let mut waiters = vec![99, 98, 97]; // stale contents must vanish
        c.on_fill(0x1000, false, &mut waiters);
        assert_eq!(waiters, vec![1]);
        c.on_fill(0x2000, false, &mut waiters);
        assert_eq!(waiters, vec![2]);
        // A fill with no MSHR leaves the buffer empty, not stale.
        c.on_fill(0x9000, false, &mut waiters);
        assert!(waiters.is_empty());
    }

    #[test]
    fn merged_miss_is_attributed_to_the_first_waiter() {
        let mut c = small();
        let t = |core: u8, n: u64| ((core as u64) << 48) | n;
        assert_eq!(c.load(0x1000, t(3, 1)), LoadResult::Miss);
        assert_eq!(c.load(0x1000, t(5, 2)), LoadResult::Miss); // merges
        let req = c.pop_request().unwrap();
        assert_eq!(req.core, 3, "one request, first core's label");
    }
}
