//! System-level performance metrics.
//!
//! The paper reports weighted speedup [Snavely & Tullsen, ASPLOS'00;
//! Eyerman & Eeckhout, IEEE Micro'08] normalised to a no-mitigation
//! baseline, and maximum single-application slowdown for the §11
//! performance-attack study.

/// Weighted speedup: `Σ IPC_shared(i) / IPC_alone(i)`.
///
/// # Panics
///
/// Panics if the slices have different lengths or any alone-IPC is zero.
pub fn weighted_speedup(ipc_shared: &[f64], ipc_alone: &[f64]) -> f64 {
    assert_eq!(ipc_shared.len(), ipc_alone.len(), "core count mismatch");
    ipc_shared
        .iter()
        .zip(ipc_alone)
        .map(|(&s, &a)| {
            assert!(a > 0.0, "alone IPC must be positive");
            s / a
        })
        .sum()
}

/// Maximum slowdown across applications: `max_i (1 − IPC_shared/IPC_alone)`,
/// as a fraction in `[0, 1)` for slowed-down workloads.
///
/// # Panics
///
/// Panics if the slices have different lengths or any alone-IPC is zero.
pub fn max_slowdown(ipc_shared: &[f64], ipc_alone: &[f64]) -> f64 {
    assert_eq!(ipc_shared.len(), ipc_alone.len(), "core count mismatch");
    ipc_shared
        .iter()
        .zip(ipc_alone)
        .map(|(&s, &a)| {
            assert!(a > 0.0, "alone IPC must be positive");
            1.0 - s / a
        })
        .fold(f64::MIN, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unimpeded_cores_score_core_count() {
        let ipc = [1.5, 2.0, 0.5, 3.0];
        assert!((weighted_speedup(&ipc, &ipc) - 4.0).abs() < 1e-12);
        assert!(max_slowdown(&ipc, &ipc).abs() < 1e-12);
    }

    #[test]
    fn slowdowns_reduce_the_sum() {
        let shared = [0.5, 1.0];
        let alone = [1.0, 1.0];
        assert!((weighted_speedup(&shared, &alone) - 1.5).abs() < 1e-12);
        assert!((max_slowdown(&shared, &alone) - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "core count mismatch")]
    fn mismatched_lengths_panic() {
        let _ = weighted_speedup(&[1.0], &[1.0, 2.0]);
    }
}
