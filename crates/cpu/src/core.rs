//! The SimpleO3-style trace-driven core.
//!
//! A 128-entry instruction window retires up to four instructions per
//! cycle in order; non-memory instructions (bubbles) complete immediately,
//! loads complete when the LLC (or DRAM, on a miss) answers, stores are
//! posted. The trace replays from the start if the core reaches its
//! instruction target before the rest of the system (standard
//! multi-programmed methodology; IPC is recorded at the moment the target
//! is reached).

use std::collections::VecDeque;

use serde::{Deserialize, Serialize};

use crate::cache::{LoadResult, SharedLlc};
use crate::trace::{Trace, TraceOp};

/// Core parameters (Table 2: 4-wide, 128-entry window).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CoreConfig {
    /// Instruction-window capacity.
    pub window: usize,
    /// Dispatch/retire width.
    pub width: usize,
}

impl Default for CoreConfig {
    fn default() -> Self {
        Self {
            window: 128,
            width: 4,
        }
    }
}

/// Externally visible execution state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoreState {
    /// Still executing toward the instruction target.
    Running,
    /// Reached the target (keeps replaying to apply pressure).
    Done,
}

#[derive(Debug, Clone, Copy)]
enum Slot {
    /// Completes at the given CPU cycle (bubbles, LLC hits).
    ReadyAt(u64),
    /// Waiting for a memory completion with this token.
    WaitingMem(u64),
}

/// A trace-driven out-of-order core.
#[derive(Debug)]
pub struct SimpleO3Core {
    cfg: CoreConfig,
    id: u8,
    trace: Trace,
    pos: usize,
    bubbles_left: u32,
    window: VecDeque<Slot>,
    next_token: u64,
    retired: u64,
    target: u64,
    finished_at: Option<u64>,
    llc_hit_latency: u32,
    stalled_op: Option<TraceOp>,
}

impl SimpleO3Core {
    /// A core executing `trace` until `target` instructions retire.
    pub fn new(id: u8, cfg: CoreConfig, trace: Trace, target: u64, llc_hit_latency: u32) -> Self {
        assert!(!trace.entries.is_empty(), "core needs a non-empty trace");
        Self {
            cfg,
            id,
            trace,
            pos: 0,
            bubbles_left: 0,
            window: VecDeque::with_capacity(cfg.window),
            next_token: 0,
            retired: 0,
            target,
            finished_at: None,
            llc_hit_latency,
            stalled_op: None,
        }
    }

    /// The core index.
    pub fn id(&self) -> u8 {
        self.id
    }

    /// Instructions retired so far.
    pub fn retired(&self) -> u64 {
        self.retired
    }

    /// Whether the instruction target has been reached.
    pub fn state(&self) -> CoreState {
        if self.finished_at.is_some() {
            CoreState::Done
        } else {
            CoreState::Running
        }
    }

    /// CPU cycle at which the target was reached.
    pub fn finished_at(&self) -> Option<u64> {
        self.finished_at
    }

    /// IPC at the point the target was reached (or up to `now` if still
    /// running).
    pub fn ipc(&self, now: u64) -> f64 {
        let cycles = self.finished_at.unwrap_or(now).max(1);
        self.target.min(self.retired) as f64 / cycles as f64
    }

    /// Tokens are tagged with the core id in the upper bits so the
    /// simulator can route completions.
    pub fn token_core(token: u64) -> u8 {
        (token >> 48) as u8
    }

    fn fresh_token(&mut self) -> u64 {
        let t = ((self.id as u64) << 48) | (self.next_token & 0xFFFF_FFFF_FFFF);
        self.next_token += 1;
        t
    }

    /// Delivers a memory completion for `token`.
    pub fn on_mem_complete(&mut self, token: u64, now: u64) {
        for slot in self.window.iter_mut() {
            if matches!(slot, Slot::WaitingMem(t) if *t == token) {
                *slot = Slot::ReadyAt(now);
                return;
            }
        }
    }

    /// Advances one CPU cycle: retire from the window head, then dispatch
    /// new instructions, issuing LLC accesses as needed.
    pub fn tick(&mut self, now: u64, llc: &mut SharedLlc) {
        // Retire in order.
        let mut retired_now = 0;
        while retired_now < self.cfg.width {
            match self.window.front() {
                Some(Slot::ReadyAt(at)) if *at <= now => {
                    self.window.pop_front();
                    self.retired += 1;
                    retired_now += 1;
                    if self.retired >= self.target && self.finished_at.is_none() {
                        self.finished_at = Some(now);
                    }
                }
                _ => break,
            }
        }
        // Dispatch.
        let mut dispatched = 0;
        while dispatched < self.cfg.width && self.window.len() < self.cfg.window {
            if self.bubbles_left > 0 {
                self.bubbles_left -= 1;
                self.window.push_back(Slot::ReadyAt(now));
                dispatched += 1;
                continue;
            }
            let op = match self.stalled_op.take() {
                Some(op) => op,
                None => {
                    let entry = self.trace.entries[self.pos];
                    self.pos = (self.pos + 1) % self.trace.entries.len();
                    if entry.bubbles > 0 {
                        self.bubbles_left = entry.bubbles;
                        // Re-enter the loop to dispatch the bubbles first.
                        self.stalled_op = Some(entry.op);
                        continue;
                    }
                    entry.op
                }
            };
            let accepted = match op {
                TraceOp::Load(addr) => {
                    let token = self.fresh_token();
                    match llc.load(addr, token) {
                        LoadResult::Hit => {
                            self.window
                                .push_back(Slot::ReadyAt(now + self.llc_hit_latency as u64));
                            true
                        }
                        LoadResult::Miss => {
                            self.window.push_back(Slot::WaitingMem(token));
                            true
                        }
                        LoadResult::Rejected => false,
                    }
                }
                TraceOp::LoadNc(addr) => {
                    let token = self.fresh_token();
                    match llc.load_uncached(addr, token) {
                        LoadResult::Miss => {
                            self.window.push_back(Slot::WaitingMem(token));
                            true
                        }
                        LoadResult::Hit => unreachable!("uncached loads never hit"),
                        LoadResult::Rejected => false,
                    }
                }
                TraceOp::Store(addr) => {
                    if llc.store(addr) {
                        // Posted: occupies a window slot this cycle only.
                        self.window.push_back(Slot::ReadyAt(now));
                        true
                    } else {
                        false
                    }
                }
            };
            if !accepted {
                self.stalled_op = Some(op);
                break;
            }
            dispatched += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::CacheConfig;
    use crate::trace::TraceEntry;

    fn bubble_trace(n: usize) -> Trace {
        Trace {
            name: "bubbles".into(),
            entries: (0..n)
                .map(|i| TraceEntry {
                    bubbles: 9,
                    op: TraceOp::Load(0x100000 + (i as u64) * 64),
                })
                .collect(),
        }
    }

    fn llc() -> SharedLlc {
        SharedLlc::new(CacheConfig::default())
    }

    #[test]
    fn bubbles_retire_at_full_width() {
        // All-bubble execution retires 4 IPC after warmup.
        let mut core = SimpleO3Core::new(0, CoreConfig::default(), bubble_trace(4), 400, 24);
        let mut llc = llc();
        let mut now = 0;
        while core.state() == CoreState::Running && now < 10_000 {
            core.tick(now, &mut llc);
            // Complete outstanding loads instantly to isolate bubble flow.
            while let Some(req) = llc.pop_request() {
                for t in llc.on_fill(req.line_addr, req.uncached).waiters {
                    core.on_mem_complete(t, now);
                }
            }
            now += 1;
        }
        assert_eq!(core.state(), CoreState::Done);
        let ipc = core.ipc(now);
        assert!(ipc > 2.0, "bubble IPC too low: {ipc}");
    }

    #[test]
    fn load_miss_blocks_retirement_until_completion() {
        let trace = Trace {
            name: "one-load".into(),
            entries: vec![TraceEntry {
                bubbles: 0,
                op: TraceOp::Load(0x40),
            }],
        };
        let mut core = SimpleO3Core::new(0, CoreConfig::default(), trace, 1, 24);
        let mut llc = llc();
        core.tick(0, &mut llc);
        for now in 1..50 {
            core.tick(now, &mut llc);
        }
        assert_eq!(core.state(), CoreState::Running, "no data, no retire");
        let req = llc.pop_request().unwrap();
        let waiters = llc.on_fill(req.line_addr, false).waiters;
        for t in waiters {
            core.on_mem_complete(t, 50);
        }
        core.tick(50, &mut llc);
        core.tick(51, &mut llc);
        assert_eq!(core.state(), CoreState::Done);
    }

    #[test]
    fn trace_wraps_around() {
        let mut core = SimpleO3Core::new(0, CoreConfig::default(), bubble_trace(2), 100, 24);
        let mut llc = llc();
        for now in 0..5000 {
            core.tick(now, &mut llc);
            while let Some(req) = llc.pop_request() {
                for t in llc.on_fill(req.line_addr, req.uncached).waiters {
                    core.on_mem_complete(t, now);
                }
            }
            if core.state() == CoreState::Done {
                break;
            }
        }
        assert_eq!(core.state(), CoreState::Done, "2-entry trace must wrap");
    }

    #[test]
    fn token_routing_embeds_core_id() {
        let mut core = SimpleO3Core::new(3, CoreConfig::default(), bubble_trace(1), 10, 24);
        let t = core.fresh_token();
        assert_eq!(SimpleO3Core::token_core(t), 3);
    }

    #[test]
    fn window_fills_under_memory_stalls() {
        // A pointer-chase of distinct lines with no completions: the window
        // must fill up and dispatch must stop.
        let trace = Trace {
            name: "chase".into(),
            entries: (0..64u64)
                .map(|i| TraceEntry {
                    bubbles: 0,
                    op: TraceOp::Load(i * 64),
                })
                .collect(),
        };
        let mut core = SimpleO3Core::new(0, CoreConfig::default(), trace, 1000, 24);
        let mut llc = SharedLlc::new(CacheConfig {
            mshrs: 1024,
            ..CacheConfig::default()
        });
        for now in 0..1000 {
            core.tick(now, &mut llc);
        }
        assert_eq!(core.retired(), 0);
        assert_eq!(core.window.len(), 128, "window saturated");
    }
}
