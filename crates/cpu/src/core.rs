//! The SimpleO3-style trace-driven core.
//!
//! A 128-entry instruction window retires up to four instructions per
//! cycle in order; non-memory instructions (bubbles) complete immediately,
//! loads complete when the LLC (or DRAM, on a miss) answers, stores are
//! posted. The trace replays from the start if the core reaches its
//! instruction target before the rest of the system (standard
//! multi-programmed methodology; IPC is recorded at the moment the target
//! is reached).

use std::collections::VecDeque;

use serde::{Deserialize, Serialize};

use crate::cache::{LoadResult, SharedLlc};
use crate::trace::{Trace, TraceOp};

/// Core parameters (Table 2: 4-wide, 128-entry window).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CoreConfig {
    /// Instruction-window capacity.
    pub window: usize,
    /// Dispatch/retire width.
    pub width: usize,
}

impl Default for CoreConfig {
    fn default() -> Self {
        Self {
            window: 128,
            width: 4,
        }
    }
}

/// Externally visible execution state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoreState {
    /// Still executing toward the instruction target.
    Running,
    /// Reached the target (keeps replaying to apply pressure).
    Done,
}

/// When the core next makes progress — the contract behind the simulator's
/// event-driven fast-forward. Whenever the core reports anything other
/// than [`CoreWake::Busy`], calling [`SimpleO3Core::tick`] before the
/// reported cycle is guaranteed to be a no-op, so those ticks may be
/// skipped wholesale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoreWake {
    /// May retire or dispatch on the very next cycle: tick every cycle.
    Busy,
    /// Nothing happens before this CPU cycle (head of window becomes
    /// ready, or a bubble sprint ends).
    At(u64),
    /// Stalled until a memory completion arrives; no timed event pending.
    Blocked,
}

#[derive(Debug, Clone, Copy)]
enum Slot {
    /// Completes at the given CPU cycle (bubbles, LLC hits).
    ReadyAt(u64),
    /// Waiting for a memory completion with this token.
    WaitingMem(u64),
}

/// A trace-driven out-of-order core.
#[derive(Debug)]
pub struct SimpleO3Core {
    cfg: CoreConfig,
    id: u8,
    trace: Trace,
    pos: usize,
    bubbles_left: u32,
    window: VecDeque<Slot>,
    next_token: u64,
    retired: u64,
    target: u64,
    finished_at: Option<u64>,
    llc_hit_latency: u32,
    stalled_op: Option<TraceOp>,
    /// Bubble-sprint horizon: ticks before this cycle are no-ops because a
    /// closed-form sprint already accounted for them.
    ff_until: u64,
    /// First CPU cycle the active sprint covers.
    sprint_start: u64,
    /// Instructions the sprint's first cycle retires (later cycles each
    /// retire a full `width`); kept so un-executed credit can be settled.
    sprint_first_retire: u64,
    /// Whether closed-form bubble sprints are allowed. The reference
    /// simulation loop disables them so its cores execute strictly cycle
    /// by cycle — which is exactly what lets the equivalence harness catch
    /// any sprint-math drift.
    sprint_enabled: bool,
    /// Slots appended by an active *fill sprint* (window filling behind a
    /// memory-blocked head). Nonzero only while such a sprint is in
    /// flight; a completion arriving mid-sprint pops the not-yet-reached
    /// tail of exactly these slots (see [`SimpleO3Core::on_mem_complete`]).
    fill_appended: u32,
}

impl SimpleO3Core {
    /// A core executing `trace` until `target` instructions retire.
    pub fn new(id: u8, cfg: CoreConfig, trace: Trace, target: u64, llc_hit_latency: u32) -> Self {
        assert!(!trace.entries.is_empty(), "core needs a non-empty trace");
        Self {
            cfg,
            id,
            trace,
            pos: 0,
            bubbles_left: 0,
            window: VecDeque::with_capacity(cfg.window),
            next_token: 0,
            retired: 0,
            target,
            finished_at: None,
            llc_hit_latency,
            stalled_op: None,
            ff_until: 0,
            sprint_start: 0,
            sprint_first_retire: 0,
            sprint_enabled: true,
            fill_appended: 0,
        }
    }

    /// Removes retirement credit a sprint granted for cycles that never
    /// elapsed. The simulation loop calls this once, with the last CPU
    /// cycle it actually simulated, before reading [`SimpleO3Core::retired`]
    /// — a run that ends mid-sprint (cycle-limit truncation, or another
    /// core finishing) must report exactly what the naive loop would have
    /// retired by that cycle.
    pub fn settle_retired(&mut self, last_cpu_cycle: u64) {
        if self.ff_until <= self.sprint_start {
            return;
        }
        let k = self.ff_until - self.sprint_start;
        let executed = if last_cpu_cycle < self.sprint_start {
            0
        } else {
            (last_cpu_cycle - self.sprint_start + 1).min(k)
        };
        if executed == k {
            return;
        }
        let w = self.cfg.width as u64;
        let credit_of = |cycles: u64| {
            if cycles == 0 {
                0
            } else {
                self.sprint_first_retire + w * (cycles - 1)
            }
        };
        self.retired -= credit_of(k) - credit_of(executed);
        self.ff_until = self.sprint_start + executed;
    }

    /// Enables or disables closed-form bubble sprints (enabled by
    /// default). With sprints off every cycle is executed naively.
    pub fn set_sprint_enabled(&mut self, enabled: bool) {
        self.sprint_enabled = enabled;
    }

    /// The core index.
    pub fn id(&self) -> u8 {
        self.id
    }

    /// Instructions retired so far.
    pub fn retired(&self) -> u64 {
        self.retired
    }

    /// Whether the instruction target has been reached.
    pub fn state(&self) -> CoreState {
        if self.finished_at.is_some() {
            CoreState::Done
        } else {
            CoreState::Running
        }
    }

    /// CPU cycle at which the target was reached.
    pub fn finished_at(&self) -> Option<u64> {
        self.finished_at
    }

    /// IPC at the point the target was reached (or up to `now` if still
    /// running).
    pub fn ipc(&self, now: u64) -> f64 {
        let cycles = self.finished_at.unwrap_or(now).max(1);
        self.target.min(self.retired) as f64 / cycles as f64
    }

    /// Tokens are tagged with the core id in the upper bits so the
    /// simulator can route completions.
    pub fn token_core(token: u64) -> u8 {
        (token >> 48) as u8
    }

    fn fresh_token(&mut self) -> u64 {
        let t = ((self.id as u64) << 48) | (self.next_token & 0xFFFF_FFFF_FFFF);
        self.next_token += 1;
        t
    }

    /// Delivers a memory completion for `token`.
    ///
    /// A completion landing mid-fill-sprint ends the sprint early: the
    /// appended slots stamped `now` or later model dispatches that, under
    /// naive execution, would happen only at or after this cycle — after
    /// the retirement the completion may now unblock — so they are popped
    /// back into `bubbles_left` and the horizon rewinds to `now`. Slots
    /// stamped before `now` were already dispatched in naive terms and
    /// stay. The rewind is always safe (it merely forfeits the skip).
    pub fn on_mem_complete(&mut self, token: u64, now: u64) {
        if self.fill_appended > 0 && now < self.ff_until {
            while self.fill_appended > 0
                && matches!(self.window.back(), Some(Slot::ReadyAt(at)) if *at >= now)
            {
                self.window.pop_back();
                self.fill_appended -= 1;
                self.bubbles_left += 1;
            }
            self.fill_appended = 0;
            self.ff_until = now;
        }
        for slot in self.window.iter_mut() {
            if matches!(slot, Slot::WaitingMem(t) if *t == token) {
                *slot = Slot::ReadyAt(now);
                return;
            }
        }
    }

    /// When this core next makes progress, evaluated after its tick for
    /// CPU cycle `now`. See [`CoreWake`] for the skip contract.
    pub fn next_event_cycle(&self, now: u64) -> CoreWake {
        if now + 1 < self.ff_until {
            // Mid-sprint: every tick before `ff_until` returns immediately.
            return CoreWake::At(self.ff_until);
        }
        if self.window.len() < self.cfg.window {
            // Dispatch can make progress (bubbles, a stalled-op retry that
            // touches LLC state, or a fresh trace entry).
            return CoreWake::Busy;
        }
        match self.window.front() {
            Some(Slot::WaitingMem(_)) => CoreWake::Blocked,
            Some(Slot::ReadyAt(at)) if *at > now => CoreWake::At(*at),
            _ => CoreWake::Busy,
        }
    }

    /// Attempts to replace upcoming pure-bubble cycles with a closed-form
    /// sprint. Called at the end of a tick for cycle `now`; on success the
    /// next `k` ticks become no-ops (guarded by `ff_until`) and the state
    /// delta they would have produced is applied immediately.
    ///
    /// Preconditions guarantee the skipped cycles are observationally
    /// identical to naive execution: every window slot is already ready
    /// (`ReadyAt ≤ now`), and enough bubbles remain that dispatch never
    /// reaches the stalled memory op. Each skipped cycle then retires
    /// `min(width, len)` slots and dispatches `width` bubbles, touching
    /// neither the LLC nor the token counter — so no externally visible
    /// state can diverge. `k` is additionally held at `≥ ⌈len/width⌉`, so
    /// the post-sprint window consists purely of sprint-dispatched slots
    /// and can be reconstructed exactly.
    fn try_bubble_sprint(&mut self, now: u64) {
        if !self.sprint_enabled {
            return;
        }
        let w = self.cfg.width as u64;
        let len = self.window.len() as u64;
        let min_k = len.div_ceil(w).max(2);
        if (self.bubbles_left as u64) < min_k * w {
            return;
        }
        if self
            .window
            .iter()
            .any(|s| !matches!(s, Slot::ReadyAt(at) if *at <= now))
        {
            return;
        }
        // Per sprint cycle: retire min(w, len) (len is constant once ≥ w),
        // dispatch w. Totals over k cycles:
        //   len ≥ w: retire w·k, window stays at len slots;
        //   len < w: retire len + w·(k−1), window settles at w slots.
        let retire_of = |k: u64| {
            if len >= w {
                w * k
            } else {
                len + w * (k - 1)
            }
        };
        let mut k = self.bubbles_left as u64 / w;
        if self.finished_at.is_none() {
            // Stop short of the instruction target so `finished_at` is
            // recorded by a real tick at the exact retirement cycle.
            let headroom = self.target.saturating_sub(1).saturating_sub(self.retired);
            if len >= w {
                k = k.min(headroom / w);
            } else {
                if headroom < len {
                    return;
                }
                k = k.min((headroom - len) / w + 1);
            }
        }
        if k < min_k {
            return;
        }
        self.retired += retire_of(k);
        self.bubbles_left -= (w * k) as u32;
        self.sprint_start = now + 1;
        self.sprint_first_retire = len.min(w);
        // The surviving slots are the newest dispatches: batch j (cycle
        // now + j, 1 ≤ j ≤ k) contributed w slots, so the slot at distance
        // d from the back carries stamp now + k − d/w.
        let new_len = len.max(w).min(w * k);
        self.window.clear();
        for i in 0..new_len {
            let d = new_len - 1 - i;
            self.window.push_back(Slot::ReadyAt(now + k - d / w));
        }
        self.ff_until = now + k + 1;
    }

    /// Attempts a *fill sprint*: with the window head blocked on memory
    /// and enough bubbles queued to top the window up, every upcoming
    /// cycle until the window is full retires nothing (retirement is
    /// in-order and the head is waiting) and dispatches only bubbles —
    /// touching neither the LLC nor the token counter. Those cycles are
    /// applied closed-form: the missing slots are appended with the
    /// stamps naive dispatch would have given them (`width` per cycle)
    /// and the next `⌈free/width⌉` ticks become no-ops. Unlike a bubble
    /// sprint this grants zero retirement credit, so there is nothing for
    /// [`SimpleO3Core::settle_retired`] to unwind; the only way the
    /// skipped cycles can diverge from naive execution is a memory
    /// completion arriving mid-sprint, which rewinds the undispatched
    /// tail (see [`SimpleO3Core::on_mem_complete`]).
    fn try_fill_sprint(&mut self, now: u64) {
        if !self.sprint_enabled || self.ff_until > now {
            // Sprints disabled, or a bubble sprint already fired.
            return;
        }
        let w = self.cfg.width as u64;
        let free = (self.cfg.window - self.window.len()) as u64;
        // Profitability floor (≥ 2 skipped cycles), and enough bubbles
        // that dispatch never reaches the stalled memory op mid-sprint.
        if free < 2 * w || (self.bubbles_left as u64) < free {
            return;
        }
        if !matches!(self.window.front(), Some(Slot::WaitingMem(_))) {
            return;
        }
        let k = free.div_ceil(w);
        for i in 0..free {
            self.window.push_back(Slot::ReadyAt(now + 1 + i / w));
        }
        self.bubbles_left -= free as u32;
        self.fill_appended = free as u32;
        self.ff_until = now + k + 1;
        // Zero retirement credit: mark the sprint pre-settled so
        // `settle_retired` ignores it.
        self.sprint_start = self.ff_until;
        self.sprint_first_retire = 0;
    }

    /// Advances one CPU cycle: retire from the window head, then dispatch
    /// new instructions, issuing LLC accesses as needed.
    pub fn tick(&mut self, now: u64, llc: &mut SharedLlc) {
        if now < self.ff_until {
            // A sprint already accounted for this cycle.
            return;
        }
        // Any fill sprint has fully elapsed once a tick executes.
        self.fill_appended = 0;
        // Retire in order.
        let mut retired_now = 0;
        while retired_now < self.cfg.width {
            match self.window.front() {
                Some(Slot::ReadyAt(at)) if *at <= now => {
                    self.window.pop_front();
                    self.retired += 1;
                    retired_now += 1;
                    if self.retired >= self.target && self.finished_at.is_none() {
                        self.finished_at = Some(now);
                    }
                }
                _ => break,
            }
        }
        // Dispatch.
        let mut dispatched = 0;
        while dispatched < self.cfg.width && self.window.len() < self.cfg.window {
            if self.bubbles_left > 0 {
                self.bubbles_left -= 1;
                self.window.push_back(Slot::ReadyAt(now));
                dispatched += 1;
                continue;
            }
            let op = match self.stalled_op.take() {
                Some(op) => op,
                None => {
                    let entry = self.trace.entries[self.pos];
                    self.pos = (self.pos + 1) % self.trace.entries.len();
                    if entry.bubbles > 0 {
                        self.bubbles_left = entry.bubbles;
                        // Re-enter the loop to dispatch the bubbles first.
                        self.stalled_op = Some(entry.op);
                        continue;
                    }
                    entry.op
                }
            };
            let accepted = match op {
                TraceOp::Load(addr) => {
                    let token = self.fresh_token();
                    match llc.load(addr, token) {
                        LoadResult::Hit => {
                            self.window
                                .push_back(Slot::ReadyAt(now + self.llc_hit_latency as u64));
                            true
                        }
                        LoadResult::Miss => {
                            self.window.push_back(Slot::WaitingMem(token));
                            true
                        }
                        LoadResult::Rejected => false,
                    }
                }
                TraceOp::LoadNc(addr) => {
                    let token = self.fresh_token();
                    match llc.load_uncached(addr, token) {
                        LoadResult::Miss => {
                            self.window.push_back(Slot::WaitingMem(token));
                            true
                        }
                        LoadResult::Hit => unreachable!("uncached loads never hit"),
                        LoadResult::Rejected => false,
                    }
                }
                TraceOp::Store(addr) => {
                    if llc.store(addr, self.id) {
                        // Posted: occupies a window slot this cycle only.
                        self.window.push_back(Slot::ReadyAt(now));
                        true
                    } else {
                        false
                    }
                }
            };
            if !accepted {
                self.stalled_op = Some(op);
                break;
            }
            dispatched += 1;
        }
        self.try_bubble_sprint(now);
        self.try_fill_sprint(now);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::CacheConfig;
    use crate::trace::TraceEntry;

    fn bubble_trace(n: usize) -> Trace {
        Trace {
            name: "bubbles".into(),
            entries: (0..n)
                .map(|i| TraceEntry {
                    bubbles: 9,
                    op: TraceOp::Load(0x100000 + (i as u64) * 64),
                })
                .collect(),
        }
    }

    fn llc() -> SharedLlc {
        SharedLlc::new(CacheConfig::default())
    }

    #[test]
    fn bubbles_retire_at_full_width() {
        // All-bubble execution retires 4 IPC after warmup.
        let mut core = SimpleO3Core::new(0, CoreConfig::default(), bubble_trace(4), 400, 24);
        let mut llc = llc();
        let mut now = 0;
        while core.state() == CoreState::Running && now < 10_000 {
            core.tick(now, &mut llc);
            // Complete outstanding loads instantly to isolate bubble flow.
            let mut waiters = Vec::new();
            while let Some(req) = llc.pop_request() {
                llc.on_fill(req.line_addr, req.uncached, &mut waiters);
                for t in waiters.drain(..) {
                    core.on_mem_complete(t, now);
                }
            }
            now += 1;
        }
        assert_eq!(core.state(), CoreState::Done);
        let ipc = core.ipc(now);
        assert!(ipc > 2.0, "bubble IPC too low: {ipc}");
    }

    #[test]
    fn load_miss_blocks_retirement_until_completion() {
        let trace = Trace {
            name: "one-load".into(),
            entries: vec![TraceEntry {
                bubbles: 0,
                op: TraceOp::Load(0x40),
            }],
        };
        let mut core = SimpleO3Core::new(0, CoreConfig::default(), trace, 1, 24);
        let mut llc = llc();
        core.tick(0, &mut llc);
        for now in 1..50 {
            core.tick(now, &mut llc);
        }
        assert_eq!(core.state(), CoreState::Running, "no data, no retire");
        let req = llc.pop_request().unwrap();
        let mut waiters = Vec::new();
        llc.on_fill(req.line_addr, false, &mut waiters);
        for t in waiters {
            core.on_mem_complete(t, 50);
        }
        core.tick(50, &mut llc);
        core.tick(51, &mut llc);
        assert_eq!(core.state(), CoreState::Done);
    }

    #[test]
    fn trace_wraps_around() {
        let mut core = SimpleO3Core::new(0, CoreConfig::default(), bubble_trace(2), 100, 24);
        let mut llc = llc();
        let mut waiters = Vec::new();
        for now in 0..5000 {
            core.tick(now, &mut llc);
            while let Some(req) = llc.pop_request() {
                llc.on_fill(req.line_addr, req.uncached, &mut waiters);
                for t in waiters.drain(..) {
                    core.on_mem_complete(t, now);
                }
            }
            if core.state() == CoreState::Done {
                break;
            }
        }
        assert_eq!(core.state(), CoreState::Done, "2-entry trace must wrap");
    }

    #[test]
    fn token_routing_embeds_core_id() {
        let mut core = SimpleO3Core::new(3, CoreConfig::default(), bubble_trace(1), 10, 24);
        let t = core.fresh_token();
        assert_eq!(SimpleO3Core::token_core(t), 3);
    }

    #[test]
    fn fill_sprint_matches_naive_execution() {
        // A load miss at the head with hundreds of bubbles behind it: the
        // sprint-enabled core must stay observationally identical to the
        // naive core, including across completions that land mid-sprint
        // (the rewind path). Completions are answered on a period chosen
        // to hit both mid-sprint and post-sprint delivery.
        let trace = Trace {
            name: "miss-then-bubbles".into(),
            entries: vec![
                TraceEntry {
                    bubbles: 0,
                    op: TraceOp::Load(0x40),
                },
                TraceEntry {
                    bubbles: 300,
                    op: TraceOp::Load(0x2000),
                },
            ],
        };
        let mut fast = SimpleO3Core::new(0, CoreConfig::default(), trace.clone(), 900, 24);
        let mut naive = SimpleO3Core::new(0, CoreConfig::default(), trace, 900, 24);
        naive.set_sprint_enabled(false);
        let mut llc_f = llc();
        let mut llc_n = llc();
        let mut waiters = Vec::new();
        let (mut saw_fill, mut saw_rewind) = (false, false);
        // Answer each miss a fixed 7 cycles after issue — well inside the
        // ~31-cycle fill sprint the first miss triggers.
        let mut pending: Vec<(u64, u64, bool)> = Vec::new();
        for now in 0..4000u64 {
            let mut i = 0;
            while i < pending.len() {
                let (at, line, uncached) = pending[i];
                if at != now {
                    i += 1;
                    continue;
                }
                pending.swap_remove(i);
                saw_rewind |= fast.fill_appended > 0 && now < fast.ff_until;
                llc_f.on_fill(line, uncached, &mut waiters);
                for t in waiters.drain(..) {
                    fast.on_mem_complete(t, now);
                }
                llc_n.on_fill(line, uncached, &mut waiters);
                for t in waiters.drain(..) {
                    naive.on_mem_complete(t, now);
                }
            }
            fast.tick(now, &mut llc_f);
            naive.tick(now, &mut llc_n);
            saw_fill |= fast.fill_appended > 0;
            while let Some(req) = llc_f.pop_request() {
                let req_n = llc_n.pop_request().expect("cores issue in lockstep");
                assert_eq!(req.line_addr, req_n.line_addr);
                pending.push((now + 7, req.line_addr, req.uncached));
            }
        }
        assert!(saw_fill, "test never triggered a fill sprint");
        assert!(saw_rewind, "test never exercised the mid-sprint rewind");
        // Observational equivalence: the loop above already asserted the
        // cores issued identical LLC requests in lockstep; the settled
        // retirement state must match too. (Internal window shape may
        // legitimately differ if the run ends mid-sprint.)
        fast.settle_retired(3999);
        assert_eq!(fast.retired(), naive.retired());
        assert_eq!(fast.finished_at(), naive.finished_at());
    }

    #[test]
    fn window_fills_under_memory_stalls() {
        // A pointer-chase of distinct lines with no completions: the window
        // must fill up and dispatch must stop.
        let trace = Trace {
            name: "chase".into(),
            entries: (0..64u64)
                .map(|i| TraceEntry {
                    bubbles: 0,
                    op: TraceOp::Load(i * 64),
                })
                .collect(),
        };
        let mut core = SimpleO3Core::new(0, CoreConfig::default(), trace, 1000, 24);
        let mut llc = SharedLlc::new(CacheConfig {
            mshrs: 1024,
            ..CacheConfig::default()
        });
        for now in 0..1000 {
            core.tick(now, &mut llc);
        }
        assert_eq!(core.retired(), 0);
        assert_eq!(core.window.len(), 128, "window saturated");
    }
}
