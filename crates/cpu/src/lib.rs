//! Trace-driven CPU frontend: cores, shared LLC, and system metrics.
//!
//! Models the processor side of Table 2: 4.2 GHz cores with a 128-entry
//! instruction window and 4-wide issue/retire, above a shared 8 MiB,
//! 8-way, 64 B-line last-level cache with MSHR-based miss handling.
//!
//! * [`trace`] — the memory-trace format (`bubbles` non-memory
//!   instructions followed by a load/store), compatible in spirit with
//!   Ramulator 2.0's SimpleO3 traces, plus a non-cacheable load used by
//!   adversarial patterns (modelling `clflush`-based hammering).
//! * [`cache`] — the shared LLC: write-allocate, writeback, LRU, MSHR
//!   merging; misses surface as line requests the simulator forwards to
//!   the memory controller.
//! * [`core`] — the SimpleO3-style core model.
//! * [`metrics`] — weighted speedup [Snavely & Tullsen, ASPLOS'00] and
//!   maximum slowdown, the paper's performance metrics.

pub mod cache;
pub mod core;
pub mod metrics;
pub mod trace;

pub use cache::{CacheConfig, LoadResult, SharedLlc, UncoreRequest};
pub use core::{CoreConfig, CoreState, CoreWake, SimpleO3Core};
pub use metrics::{max_slowdown, weighted_speedup};
pub use trace::{Trace, TraceEntry, TraceOp};
