//! Memory-trace representation and (de)serialisation.

use std::io::{self, BufRead, BufReader, Read, Write};

use serde::{Deserialize, Serialize};

/// One memory operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TraceOp {
    /// Cacheable load of the line containing `addr`.
    Load(u64),
    /// Cacheable store to the line containing `addr`.
    Store(u64),
    /// Non-cacheable load (models `clflush` + load hammering; bypasses the
    /// LLC and always reaches DRAM).
    LoadNc(u64),
}

impl TraceOp {
    /// The byte address accessed.
    pub fn addr(&self) -> u64 {
        match *self {
            TraceOp::Load(a) | TraceOp::Store(a) | TraceOp::LoadNc(a) => a,
        }
    }
}

/// `bubbles` non-memory instructions followed by one memory operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceEntry {
    /// Non-memory instructions preceding the operation.
    pub bubbles: u32,
    /// The memory operation.
    pub op: TraceOp,
}

/// A complete application trace.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Trace {
    /// Human-readable trace name (e.g. the application it models).
    pub name: String,
    /// The entries, in program order.
    pub entries: Vec<TraceEntry>,
}

impl Trace {
    /// An empty trace with a name.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            entries: Vec::new(),
        }
    }

    /// Total instructions represented (bubbles + memory operations).
    pub fn instructions(&self) -> u64 {
        self.entries.iter().map(|e| e.bubbles as u64 + 1).sum()
    }

    /// Memory operations per kilo-instruction.
    pub fn mpki(&self) -> f64 {
        let insts = self.instructions();
        if insts == 0 {
            0.0
        } else {
            self.entries.len() as f64 * 1000.0 / insts as f64
        }
    }

    /// Fraction of memory operations that are loads (cacheable or not).
    pub fn read_fraction(&self) -> f64 {
        if self.entries.is_empty() {
            return 0.0;
        }
        let reads = self
            .entries
            .iter()
            .filter(|e| !matches!(e.op, TraceOp::Store(_)))
            .count();
        reads as f64 / self.entries.len() as f64
    }

    /// Writes the text format: one `"<bubbles> <L|S|N> <hex addr>"` line
    /// per entry, preceded by a `# name` header.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from `w`.
    pub fn write_text<W: Write>(&self, mut w: W) -> io::Result<()> {
        writeln!(w, "# {}", self.name)?;
        for e in &self.entries {
            let (tag, addr) = match e.op {
                TraceOp::Load(a) => ('L', a),
                TraceOp::Store(a) => ('S', a),
                TraceOp::LoadNc(a) => ('N', a),
            };
            writeln!(w, "{} {} {:#x}", e.bubbles, tag, addr)?;
        }
        Ok(())
    }

    /// Reads the text format produced by [`Trace::write_text`].
    ///
    /// # Errors
    ///
    /// Returns `InvalidData` on malformed lines and propagates I/O errors.
    pub fn read_text<R: Read>(r: R) -> io::Result<Self> {
        let mut trace = Trace::new("unnamed");
        for line in BufReader::new(r).lines() {
            let line = line?;
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            if let Some(name) = line.strip_prefix('#') {
                trace.name = name.trim().to_string();
                continue;
            }
            let mut parts = line.split_whitespace();
            let err = || io::Error::new(io::ErrorKind::InvalidData, format!("bad line: {line}"));
            let bubbles: u32 = parts.next().ok_or_else(err)?.parse().map_err(|_| err())?;
            let tag = parts.next().ok_or_else(err)?;
            let addr_s = parts.next().ok_or_else(err)?;
            let addr = if let Some(hex) = addr_s.strip_prefix("0x") {
                u64::from_str_radix(hex, 16).map_err(|_| err())?
            } else {
                addr_s.parse().map_err(|_| err())?
            };
            let op = match tag {
                "L" => TraceOp::Load(addr),
                "S" => TraceOp::Store(addr),
                "N" => TraceOp::LoadNc(addr),
                _ => return Err(err()),
            };
            trace.entries.push(TraceEntry { bubbles, op });
        }
        Ok(trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Trace {
        Trace {
            name: "sample".into(),
            entries: vec![
                TraceEntry {
                    bubbles: 10,
                    op: TraceOp::Load(0x1000),
                },
                TraceEntry {
                    bubbles: 0,
                    op: TraceOp::Store(0x2040),
                },
                TraceEntry {
                    bubbles: 5,
                    op: TraceOp::LoadNc(0x3000),
                },
            ],
        }
    }

    #[test]
    fn instruction_and_mpki_accounting() {
        let t = sample();
        assert_eq!(t.instructions(), 18);
        assert!((t.mpki() - 3.0 * 1000.0 / 18.0).abs() < 1e-9);
        assert!((t.read_fraction() - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn text_roundtrip() {
        let t = sample();
        let mut buf = Vec::new();
        t.write_text(&mut buf).unwrap();
        let back = Trace::read_text(&buf[..]).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn read_rejects_garbage() {
        let res = Trace::read_text("10 X 0x40\n".as_bytes());
        assert!(res.is_err());
        let res = Trace::read_text("notanumber L 0x40\n".as_bytes());
        assert!(res.is_err());
    }

    #[test]
    fn read_accepts_decimal_addresses() {
        let t = Trace::read_text("3 L 4096\n".as_bytes()).unwrap();
        assert_eq!(t.entries[0].op, TraceOp::Load(4096));
    }
}
