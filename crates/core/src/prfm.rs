//! Device-side aggressor sampling for PRFM-protected chips.
//!
//! Early-DDR5 PRFM devices have no per-row counters; when the controller's
//! RAA counters force an RFM, the chip must still pick *which* victims to
//! refresh. We model the in-DRAM TRR-style sampler as a small
//! tracking table that counts activations of resident rows (the same
//! structure our PRAC ATT uses, fed without per-row counters). The paper's
//! wave-attack analysis (§5, Eq. 1) assumes each RFM refreshes the victims
//! of one aggressor — which is exactly what this sampler provides.

use chronus_dram::{BankId, Cycle, DramMitigation, Geometry, MitigationStats, RfmOutcome, RowId};

use crate::att::Att;

/// TRR-style activation sampler, one table per bank.
#[derive(Debug)]
pub struct PrfmSampler {
    geo: Geometry,
    att: Vec<Att>,
    stats: MitigationStats,
}

impl PrfmSampler {
    /// A sampler with `entries` tracking entries per bank.
    pub fn new(geo: Geometry, entries: usize) -> Self {
        let banks = geo.total_banks();
        Self {
            geo,
            att: (0..banks).map(|_| Att::new(entries)).collect(),
            stats: MitigationStats::default(),
        }
    }
}

impl DramMitigation for PrfmSampler {
    fn on_activate(&mut self, bank: BankId, row: RowId, _now: Cycle) -> bool {
        self.att[bank.flat(&self.geo)].bump(row);
        false // PRFM has no back-off signal
    }

    fn on_precharge(&mut self, _bank: BankId, _row: RowId, _now: Cycle) -> bool {
        false
    }

    fn on_rfm(&mut self, bank: BankId, _now: Cycle) -> RfmOutcome {
        let flat = bank.flat(&self.geo);
        match self.att[flat].take_max() {
            Some((row, _)) => {
                self.stats.rfm_refreshes += 1;
                RfmOutcome {
                    refreshed_aggressor: Some(row),
                }
            }
            None => RfmOutcome::default(),
        }
    }

    fn on_periodic_refresh(
        &mut self,
        _rank: usize,
        _now: Cycle,
        _serviced: &mut Vec<(BankId, RowId)>,
    ) {
        // No borrowed refresh without per-row counters.
    }

    fn stats(&self) -> MitigationStats {
        self.stats
    }

    fn kind_name(&self) -> &'static str {
        "prfm-sampler"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const B: BankId = BankId::new(0, 0, 0);

    #[test]
    fn rfm_refreshes_most_activated_row() {
        let mut m = PrfmSampler::new(Geometry::tiny(), 4);
        for _ in 0..5 {
            m.on_activate(B, 7, 0);
        }
        for _ in 0..2 {
            m.on_activate(B, 9, 0);
        }
        assert_eq!(m.on_rfm(B, 1).refreshed_aggressor, Some(7));
        assert_eq!(m.on_rfm(B, 2).refreshed_aggressor, Some(9));
        assert_eq!(m.on_rfm(B, 3).refreshed_aggressor, None);
    }

    #[test]
    fn never_asserts_backoff() {
        let mut m = PrfmSampler::new(Geometry::tiny(), 4);
        for _ in 0..10_000 {
            assert!(!m.on_activate(B, 1, 0));
            assert!(!m.on_precharge(B, 1, 0));
        }
    }
}
