//! Read-disturbance mitigation mechanisms — the paper's core contribution.
//!
//! On-DRAM-die mechanisms (implement [`chronus_dram::DramMitigation`]):
//!
//! * [`PracMechanism`] — PRAC (JEDEC DDR5, April 2024): per-row activation
//!   counters incremented during precharge, an Aggressor Tracking Table,
//!   the `alert_n` back-off, and borrowed refreshes (§3, §5).
//! * [`ChronusMechanism`] — Chronus (§7): Concurrent Counter Update in a
//!   separate counter subarray (no timing inflation) plus Chronus Back-Off
//!   (dynamic refresh count, no delay period). A `dynamic_backoff = false`
//!   build gives **Chronus-PB** (CCU with PRAC's back-off policy, §9).
//! * [`PrfmSampler`] — the device-side aggressor sampler PRFM-protected
//!   chips use to pick RFM victims.
//!
//! Controller-side mechanisms (implement [`chronus_ctrl::CtrlMitigation`]):
//! [`Graphene`], [`Hydra`], [`Para`] and [`Abacus`] (Appendix C).
//!
//! [`MechanismKind::build`] assembles any of these into a ready-to-simulate
//! [`MechanismSetup`], deriving wave-attack-secure thresholds from
//! `chronus-security` exactly as §5/§8 prescribe.

pub mod abacus;
pub mod att;
pub mod chronus;
pub mod decrementer;
pub mod graphene;
pub mod hydra;
pub mod mechanism;
pub mod misra_gries;
pub mod para;
pub mod prac;
pub mod prfm;
pub mod storage;

pub use abacus::Abacus;
pub use att::Att;
pub use chronus::ChronusMechanism;
pub use decrementer::{decrement, Decrementer, GateCensus};
pub use graphene::Graphene;
pub use hydra::Hydra;
pub use mechanism::{MechanismKind, MechanismSetup};
pub use misra_gries::MisraGries;
pub use para::Para;
pub use prac::PracMechanism;
pub use prfm::PrfmSampler;
