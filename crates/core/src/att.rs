//! The Aggressor Tracking Table (§3).
//!
//! PRAC and Chronus cannot scan all per-row counters during an RFM, so each
//! bank keeps a small table of the rows with the highest activation counts.
//! The update rule follows §3 verbatim: on precharge, a row is recorded if
//! it is already present, if an entry is invalid, or if its count exceeds
//! the table's minimum.

use chronus_dram::RowId;

/// A k-entry aggressor tracking table for one bank.
#[derive(Debug, Clone)]
pub struct Att {
    entries: Vec<Option<(RowId, u32)>>,
}

impl Att {
    /// A table with `capacity` entries, all invalid (§8: `A_normal + 1`,
    /// i.e. 4 entries, suffices for DDR5).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1, "the ATT needs at least one entry");
        Self {
            entries: vec![None; capacity],
        }
    }

    /// Table capacity.
    pub fn capacity(&self) -> usize {
        self.entries.len()
    }

    /// Number of valid entries.
    pub fn len(&self) -> usize {
        self.entries.iter().filter(|e| e.is_some()).count()
    }

    /// True if no entry is valid.
    pub fn is_empty(&self) -> bool {
        self.entries.iter().all(|e| e.is_none())
    }

    /// Records `row` with activation count `count` (the §3 update rule).
    pub fn observe(&mut self, row: RowId, count: u32) {
        // 1. Already present: update the count.
        for e in self.entries.iter_mut().flatten() {
            if e.0 == row {
                e.1 = count;
                return;
            }
        }
        // 2. An invalid entry exists: insert.
        if let Some(slot) = self.entries.iter_mut().find(|e| e.is_none()) {
            *slot = Some((row, count));
            return;
        }
        // 3. Replace the minimum if the new count exceeds it.
        let min = self
            .entries
            .iter_mut()
            .min_by_key(|e| e.map(|(_, c)| c).unwrap_or(0))
            .expect("table is non-empty");
        if count > min.expect("all valid here").1 {
            *min = Some((row, count));
        }
    }

    /// Sampler variant for counter-less devices (PRFM TRR): present → +1,
    /// otherwise insert with count 1, replacing the minimum entry if full.
    pub fn bump(&mut self, row: RowId) {
        for e in self.entries.iter_mut().flatten() {
            if e.0 == row {
                e.1 += 1;
                return;
            }
        }
        if let Some(slot) = self.entries.iter_mut().find(|e| e.is_none()) {
            *slot = Some((row, 1));
            return;
        }
        let min = self
            .entries
            .iter_mut()
            .min_by_key(|e| e.map(|(_, c)| c).unwrap_or(0))
            .expect("table is non-empty");
        *min = Some((row, 1));
    }

    /// The entry with the maximum count, without removing it.
    pub fn peek_max(&self) -> Option<(RowId, u32)> {
        self.entries
            .iter()
            .flatten()
            .max_by_key(|(_, c)| *c)
            .copied()
    }

    /// Removes and returns the entry with the maximum count (the RFM
    /// service rule: refresh the victims of the hottest tracked row).
    pub fn take_max(&mut self) -> Option<(RowId, u32)> {
        let idx = self
            .entries
            .iter()
            .enumerate()
            .filter_map(|(i, e)| e.map(|(_, c)| (i, c)))
            .max_by_key(|&(_, c)| c)
            .map(|(i, _)| i)?;
        self.entries[idx].take()
    }

    /// Invalidates `row`'s entry if present.
    pub fn remove(&mut self, row: RowId) {
        for e in self.entries.iter_mut() {
            if matches!(e, Some((r, _)) if *r == row) {
                *e = None;
                return;
            }
        }
    }

    /// Iterates over valid entries.
    pub fn iter(&self) -> impl Iterator<Item = (RowId, u32)> + '_ {
        self.entries.iter().flatten().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn observe_inserts_until_full() {
        let mut att = Att::new(2);
        assert!(att.is_empty());
        att.observe(1, 5);
        att.observe(2, 3);
        assert_eq!(att.len(), 2);
        assert_eq!(att.peek_max(), Some((1, 5)));
    }

    #[test]
    fn observe_updates_existing_entry() {
        let mut att = Att::new(2);
        att.observe(1, 5);
        att.observe(1, 9);
        assert_eq!(att.len(), 1);
        assert_eq!(att.peek_max(), Some((1, 9)));
    }

    #[test]
    fn observe_replaces_minimum_when_larger() {
        let mut att = Att::new(2);
        att.observe(1, 5);
        att.observe(2, 3);
        att.observe(3, 4); // beats the min (2,3)
        let rows: Vec<_> = att.iter().map(|(r, _)| r).collect();
        assert!(rows.contains(&1) && rows.contains(&3));
        att.observe(4, 1); // does not beat min (3,4)
        let rows: Vec<_> = att.iter().map(|(r, _)| r).collect();
        assert!(!rows.contains(&4));
    }

    #[test]
    fn take_max_removes_hottest() {
        let mut att = Att::new(4);
        att.observe(10, 7);
        att.observe(20, 9);
        att.observe(30, 2);
        assert_eq!(att.take_max(), Some((20, 9)));
        assert_eq!(att.take_max(), Some((10, 7)));
        assert_eq!(att.take_max(), Some((30, 2)));
        assert_eq!(att.take_max(), None);
    }

    #[test]
    fn att_keeps_top_k_counts() {
        // Feed monotonically counted rows; the table must end up holding
        // the k rows with the highest final counts.
        let mut att = Att::new(4);
        for row in 0..32u32 {
            att.observe(row, row + 1);
        }
        let mut rows: Vec<_> = att.iter().map(|(r, _)| r).collect();
        rows.sort_unstable();
        assert_eq!(rows, vec![28, 29, 30, 31]);
    }

    #[test]
    fn bump_sampler_counts_and_replaces() {
        let mut att = Att::new(2);
        att.bump(1);
        att.bump(1);
        att.bump(2);
        assert_eq!(att.peek_max(), Some((1, 2)));
        att.bump(3); // replaces min (2,1)
        let rows: Vec<_> = att.iter().map(|(r, _)| r).collect();
        assert!(rows.contains(&1) && rows.contains(&3));
    }

    #[test]
    fn remove_invalidates() {
        let mut att = Att::new(2);
        att.observe(1, 5);
        att.remove(1);
        assert!(att.is_empty());
        att.remove(42); // no-op
    }
}
