//! Hydra [Qureshi+, ISCA'22]: hybrid group/row tracking with in-DRAM
//! counters.
//!
//! Two levels:
//!
//! 1. A **Group Count Table** (GCT) in controller SRAM counts activations
//!    per group of rows. While a group's count stays below the group
//!    threshold, no per-row state exists.
//! 2. When a group saturates, tracking switches to per-row counters stored
//!    **in DRAM** (the Row Count Table, RCT), cached in a small SRAM
//!    structure. RCT cache misses inject real DRAM read traffic and dirty
//!    evictions inject writebacks — the source of Hydra's overhead at low
//!    `N_RH` (Fig. 8/10).
//!
//! A row whose count reaches `N_RH / 2` triggers a preventive refresh of
//! its victims. All state resets every `tREFW` epoch.

use std::collections::HashMap;

use chronus_ctrl::{CtrlMitigation, CtrlMitigationStats, MitigationAction};
use chronus_dram::{Cycle, DramAddr, Geometry, RowId};

/// Hydra configuration.
#[derive(Debug, Clone, Copy)]
pub struct HydraConfig {
    /// Rows per GCT group (Hydra paper: 128 rows/group).
    pub rows_per_group: usize,
    /// Group threshold: switch to per-row tracking at this group count
    /// (Hydra paper: 0.4 × N_RH).
    pub group_threshold: u32,
    /// Per-row threshold triggering a preventive refresh (N_RH / 2).
    pub row_threshold: u32,
    /// RCT cache capacity in entries (Hydra paper: 4K entries).
    pub cache_entries: usize,
    /// Epoch length in cycles (tREFW).
    pub epoch_cycles: u64,
}

impl HydraConfig {
    /// Hydra configured for `nrh` with the paper's proportions.
    pub fn for_nrh(nrh: u32, epoch_cycles: u64) -> Self {
        Self {
            rows_per_group: 128,
            group_threshold: (nrh * 2 / 5).max(1),
            row_threshold: (nrh / 2).max(1),
            cache_entries: 4096,
            epoch_cycles,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct CacheLine {
    key: (usize, RowId),
    count: u32,
    dirty: bool,
}

/// The Hydra mechanism.
#[derive(Debug)]
pub struct Hydra {
    geo: Geometry,
    cfg: HydraConfig,
    /// Per flat bank, per group: activation counts.
    gct: Vec<Vec<u32>>,
    /// RCT backing store (models DRAM-resident counters; traffic costs are
    /// injected separately).
    rct: HashMap<(usize, RowId), u32>,
    /// FIFO RCT cache.
    cache: Vec<CacheLine>,
    cache_next: usize,
    epoch_end: Cycle,
    stats: CtrlMitigationStats,
}

impl Hydra {
    /// A Hydra instance for the given geometry and configuration.
    pub fn new(geo: Geometry, cfg: HydraConfig) -> Self {
        let groups = geo.rows.div_ceil(cfg.rows_per_group);
        Self {
            geo,
            cfg,
            gct: (0..geo.total_banks()).map(|_| vec![0u32; groups]).collect(),
            rct: HashMap::new(),
            cache: Vec::with_capacity(cfg.cache_entries),
            cache_next: 0,
            epoch_end: cfg.epoch_cycles,
            stats: CtrlMitigationStats::default(),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &HydraConfig {
        &self.cfg
    }

    /// DRAM address of the RCT entry for (`flat_bank`, `row`): counters
    /// live in reserved rows at the top of the same bank.
    fn rct_addr(&self, bank: chronus_dram::BankId, row: RowId) -> DramAddr {
        let per_row = self.geo.cols as u32; // one counter line per col slot
        let idx = row / per_row;
        let col = row % per_row;
        let rct_row = (self.geo.rows as u32 - 1).saturating_sub(idx);
        DramAddr::new(bank, rct_row, col)
    }

    fn cache_lookup(&mut self, key: (usize, RowId)) -> Option<usize> {
        self.cache.iter().position(|l| l.key == key)
    }

    /// Inserts into the RCT cache, returning the evicted dirty line if any.
    fn cache_insert(&mut self, line: CacheLine) -> Option<CacheLine> {
        if self.cache.len() < self.cfg.cache_entries {
            self.cache.push(line);
            return None;
        }
        let slot = self.cache_next;
        self.cache_next = (self.cache_next + 1) % self.cfg.cache_entries;
        let evicted = self.cache[slot];
        self.cache[slot] = line;
        evicted.dirty.then_some(evicted)
    }
}

impl CtrlMitigation for Hydra {
    fn on_activate(&mut self, addr: DramAddr, now: Cycle, actions: &mut Vec<MitigationAction>) {
        if now >= self.epoch_end {
            for g in &mut self.gct {
                g.iter_mut().for_each(|c| *c = 0);
            }
            self.rct.clear();
            self.cache.clear();
            self.cache_next = 0;
            self.epoch_end = now - now % self.cfg.epoch_cycles + self.cfg.epoch_cycles;
        }
        let flat = addr.bank.flat(&self.geo);
        let group = addr.row as usize / self.cfg.rows_per_group;
        let gcount = &mut self.gct[flat][group];
        if *gcount < self.cfg.group_threshold {
            *gcount += 1;
            return;
        }
        // Per-row tracking phase. Rows start at the group threshold
        // (conservative initialisation, as in Hydra).
        let key = (flat, addr.row);
        let count = match self.cache_lookup(key) {
            Some(i) => {
                self.cache[i].count += 1;
                self.cache[i].dirty = true;
                self.cache[i].count
            }
            None => {
                // Miss: fetch the counter from DRAM (read traffic), then
                // update it in cache.
                self.stats.aux_reads += 1;
                actions.push(MitigationAction::AuxRead {
                    addr: self.rct_addr(addr.bank, addr.row),
                });
                let stored = *self.rct.get(&key).unwrap_or(&self.cfg.group_threshold);
                let count = stored + 1;
                if let Some(evicted) = self.cache_insert(CacheLine {
                    key,
                    count,
                    dirty: true,
                }) {
                    self.stats.aux_writes += 1;
                    self.rct.insert(evicted.key, evicted.count);
                    let (eflat, erow) = evicted.key;
                    let ebank = chronus_dram::BankId::from_flat(eflat, &self.geo);
                    actions.push(MitigationAction::AuxWrite {
                        addr: self.rct_addr(ebank, erow),
                    });
                }
                count
            }
        };
        if count >= self.cfg.row_threshold {
            // Reset and preventively refresh.
            if let Some(i) = self.cache_lookup(key) {
                self.cache[i].count = 0;
                self.cache[i].dirty = true;
            }
            self.rct.insert(key, 0);
            self.stats.triggers += 1;
            self.stats.victim_refreshes += 1;
            actions.push(MitigationAction::RefreshVictims {
                bank: addr.bank,
                aggressor: addr.row,
            });
        }
    }

    fn stats(&self) -> CtrlMitigationStats {
        self.stats
    }

    fn kind_name(&self) -> &'static str {
        "hydra"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chronus_dram::BankId;

    fn mech(nrh: u32) -> Hydra {
        Hydra::new(Geometry::tiny(), HydraConfig::for_nrh(nrh, 51_200_000))
    }

    const B: BankId = BankId::new(0, 0, 0);

    #[test]
    fn group_phase_absorbs_early_activations() {
        let mut h = mech(100);
        let addr = DramAddr::new(B, 5, 0);
        let mut actions = Vec::new();
        for _ in 0..h.config().group_threshold {
            h.on_activate(addr, 0, &mut actions);
        }
        assert!(actions.is_empty(), "no RCT traffic in the group phase");
        // The next activation enters per-row tracking: one RCT fetch.
        h.on_activate(addr, 0, &mut actions);
        assert!(matches!(actions[0], MitigationAction::AuxRead { .. }));
    }

    #[test]
    fn row_threshold_triggers_refresh() {
        let mut h = mech(20);
        let addr = DramAddr::new(B, 5, 0);
        let mut actions = Vec::new();
        // group_threshold = 8; row_threshold = 10. Rows initialise at 8,
        // so two more tracked activations reach 10.
        for _ in 0..20 {
            h.on_activate(addr, 0, &mut actions);
            if actions
                .iter()
                .any(|a| matches!(a, MitigationAction::RefreshVictims { .. }))
            {
                break;
            }
        }
        assert!(
            actions
                .iter()
                .any(|a| matches!(a, MitigationAction::RefreshVictims { aggressor: 5, .. })),
            "no refresh in {actions:?}"
        );
        assert!(h.stats().triggers >= 1);
    }

    #[test]
    fn cache_hit_avoids_dram_traffic() {
        let mut h = mech(1000);
        let addr = DramAddr::new(B, 5, 0);
        let mut actions = Vec::new();
        for _ in 0..h.config().group_threshold + 1 {
            h.on_activate(addr, 0, &mut actions);
        }
        let reads_after_first_miss = h.stats().aux_reads;
        assert_eq!(reads_after_first_miss, 1);
        h.on_activate(addr, 0, &mut actions);
        assert_eq!(h.stats().aux_reads, 1, "second access hits the cache");
    }

    #[test]
    fn cache_evictions_write_back() {
        let mut h = Hydra::new(
            Geometry::tiny(),
            HydraConfig {
                rows_per_group: 128,
                group_threshold: 1,
                row_threshold: 1000,
                cache_entries: 2,
                epoch_cycles: 51_200_000,
            },
        );
        let mut actions = Vec::new();
        // Activate 3+ distinct rows past the tiny cache.
        for row in [5u32, 200, 400, 600] {
            let addr = DramAddr::new(B, row, 0);
            h.on_activate(addr, 0, &mut actions); // group phase (th=1)
            h.on_activate(addr, 0, &mut actions); // tracked
        }
        assert!(h.stats().aux_writes > 0, "evictions must write back");
    }

    #[test]
    fn rct_addresses_land_in_reserved_region() {
        let h = mech(100);
        let a = h.rct_addr(B, 5);
        assert!(a.row as usize >= Geometry::tiny().rows - 64);
    }
}
