//! The gate-level 8-bit decrementer of Appendix A (Table 3).
//!
//! Chronus updates a row's activation budget with a custom circuit that
//! decrements an 8-bit value by one using only gates already present in
//! DRAM sense-amplifier stripes (NOT, MUX, NAND, NOR). This module models
//! the circuit gate-by-gate, keeps a census of gate and transistor usage,
//! and is exhaustively verified to compute `x − 1` (wrapping) for all 256
//! inputs.
//!
//! The per-bit structure (borrow-lookahead through the previous output):
//!
//! ```text
//! y0 = ¬x0
//! y1 = x0 ? x1 : ¬x1
//! y2 = nor(x0, x1) ? ¬x2 : x2
//! yi = nand(y(i−1), ¬x(i−1)) ? xi : ¬xi      for i = 3..7
//! ```

use serde::{Deserialize, Serialize};

/// Transistor costs of the gate primitives (CMOS static logic).
const T_NOT: u32 = 2;
const T_MUX: u32 = 8;
const T_NAND: u32 = 4;
const T_NOR: u32 = 4;

/// Gate and transistor usage of one decrementer instance (Table 3).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct GateCensus {
    /// Inverters.
    pub nots: u32,
    /// 2:1 multiplexers.
    pub muxes: u32,
    /// 2-input NANDs.
    pub nands: u32,
    /// 2-input NORs.
    pub nors: u32,
}

impl GateCensus {
    /// Total gate count.
    pub fn gates(&self) -> u32 {
        self.nots + self.muxes + self.nands + self.nors
    }

    /// Total transistor count.
    pub fn transistors(&self) -> u32 {
        self.nots * T_NOT + self.muxes * T_MUX + self.nands * T_NAND + self.nors * T_NOR
    }
}

/// A gate-level 8-bit decrementer that records its gate usage.
#[derive(Debug, Clone, Default)]
pub struct Decrementer {
    census: GateCensus,
}

impl Decrementer {
    /// A fresh circuit with an empty census.
    pub fn new() -> Self {
        Self::default()
    }

    fn not(&mut self, a: bool) -> bool {
        self.census.nots += 1;
        !a
    }

    fn mux(&mut self, sel: bool, hi: bool, lo: bool) -> bool {
        self.census.muxes += 1;
        if sel {
            hi
        } else {
            lo
        }
    }

    fn nand(&mut self, a: bool, b: bool) -> bool {
        self.census.nands += 1;
        !(a & b)
    }

    fn nor(&mut self, a: bool, b: bool) -> bool {
        self.census.nors += 1;
        !(a | b)
    }

    /// Evaluates the circuit on `x`, accumulating gate usage.
    pub fn eval(&mut self, x: u8) -> u8 {
        let xb = |i: u8| (x >> i) & 1 == 1;
        let mut y = [false; 8];
        // y0 = ¬x0
        y[0] = self.not(xb(0));
        // y1 = x0 ? x1 : ¬x1
        let nx1 = self.not(xb(1));
        y[1] = self.mux(xb(0), xb(1), nx1);
        // y2 = nor(x0, x1) ? ¬x2 : x2
        let sel2 = self.nor(xb(0), xb(1));
        let nx2 = self.not(xb(2));
        y[2] = self.mux(sel2, nx2, xb(2));
        // yi = nand(y(i-1), ¬x(i-1)) ? xi : ¬xi
        for i in 3usize..8 {
            let nprev = self.not(xb(i as u8 - 1));
            let sel = self.nand(y[i - 1], nprev);
            let nxi = self.not(xb(i as u8));
            // One NOT per row in Table 3: the ¬xi inverter is shared with
            // the ¬x(i-1) of the next row in layout; account one NOT per
            // row by re-using `nxi` bookkeeping (subtract the double count).
            self.census.nots -= 1;
            y[i] = self.mux(sel, xb(i as u8), nxi);
        }
        y.iter()
            .enumerate()
            .fold(0u8, |acc, (i, &b)| acc | ((b as u8) << i))
    }

    /// The accumulated gate census.
    pub fn census(&self) -> GateCensus {
        self.census
    }

    /// Census of a single evaluation (one hardware instance).
    pub fn instance_census() -> GateCensus {
        let mut d = Decrementer::new();
        let _ = d.eval(0);
        d.census
    }
}

/// Convenience: gate-level `x − 1` (wrapping at zero).
pub fn decrement(x: u8) -> u8 {
    Decrementer::new().eval(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decrements_all_256_inputs() {
        for x in 0..=255u8 {
            assert_eq!(decrement(x), x.wrapping_sub(1), "x = {x}");
        }
    }

    #[test]
    fn zero_wraps_to_all_ones() {
        assert_eq!(decrement(0), 0xFF);
    }

    #[test]
    fn census_matches_table3() {
        let c = Decrementer::instance_census();
        assert_eq!(c.nots, 8, "Table 3: 8 NOT gates");
        assert_eq!(c.muxes, 7, "Table 3: 7 MUX gates");
        assert_eq!(c.nands, 5, "Table 3: 5 NAND gates");
        assert_eq!(c.nors, 1, "Table 3: 1 NOR gate");
        assert_eq!(c.gates(), 21, "21 gates total (§7.1)");
        assert_eq!(c.transistors(), 96, "96 transistors total (§7.1)");
    }

    #[test]
    fn census_is_input_independent() {
        for x in [0u8, 1, 127, 128, 255] {
            let mut d = Decrementer::new();
            let _ = d.eval(x);
            assert_eq!(d.census(), Decrementer::instance_census(), "x = {x}");
        }
    }
}
