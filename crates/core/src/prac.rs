//! PRAC: Per Row Activation Counting (§3, JEDEC DDR5 April 2024).
//!
//! Each DRAM row carries an activation counter stored with the row's data.
//! The counter is read–modified–written **while the row is being closed**
//! — which is exactly why PRAC inflates `tRP`/`tRC` (Table 1; the timing
//! cost is modelled by running the device in [`chronus_dram::TimingMode::Prac`]).
//! When a precharged row's count reaches the back-off threshold `N_BO`, the
//! chip asserts `alert_n`. RFM service refreshes the victims of the hottest
//! row in the bank's Aggressor Tracking Table. Every other periodic REF,
//! the chip borrows time to transparently service one aggressor per bank
//! (§5, "borrowed refresh").

use chronus_dram::{BankId, Cycle, DramMitigation, Geometry, MitigationStats, RfmOutcome, RowId};

use crate::att::Att;

/// The PRAC on-die mechanism state.
#[derive(Debug)]
pub struct PracMechanism {
    geo: Geometry,
    nbo: u32,
    counters: Vec<Vec<u32>>,
    att: Vec<Att>,
    /// Borrowed refresh fires on every other REFab, per rank.
    borrow_toggle: Vec<bool>,
    stats: MitigationStats,
}

impl PracMechanism {
    /// PRAC with back-off threshold `nbo` and `att_entries` tracking
    /// entries per bank.
    pub fn new(geo: Geometry, nbo: u32, att_entries: usize) -> Self {
        assert!(nbo >= 1, "N_BO must be at least 1");
        let banks = geo.total_banks();
        Self {
            geo,
            nbo,
            counters: (0..banks).map(|_| vec![0u32; geo.rows]).collect(),
            att: (0..banks).map(|_| Att::new(att_entries)).collect(),
            borrow_toggle: vec![false; geo.ranks],
            stats: MitigationStats::default(),
        }
    }

    /// The configured back-off threshold.
    pub fn nbo(&self) -> u32 {
        self.nbo
    }
}

impl DramMitigation for PracMechanism {
    fn on_activate(&mut self, _bank: BankId, _row: RowId, _now: Cycle) -> bool {
        // PRAC does its counter work during precharge.
        false
    }

    fn on_precharge(&mut self, bank: BankId, row: RowId, _now: Cycle) -> bool {
        let flat = bank.flat(&self.geo);
        let c = &mut self.counters[flat][row as usize];
        *c += 1;
        let count = *c;
        self.stats.counter_updates += 1;
        self.att[flat].observe(row, count);
        if count >= self.nbo {
            self.stats.back_offs += 1;
            true
        } else {
            false
        }
    }

    fn on_rfm(&mut self, bank: BankId, _now: Cycle) -> RfmOutcome {
        let flat = bank.flat(&self.geo);
        match self.att[flat].take_max() {
            Some((row, _)) => {
                self.counters[flat][row as usize] = 0;
                self.stats.rfm_refreshes += 1;
                RfmOutcome {
                    refreshed_aggressor: Some(row),
                }
            }
            None => RfmOutcome::default(),
        }
    }

    fn on_periodic_refresh(
        &mut self,
        rank: usize,
        _now: Cycle,
        serviced: &mut Vec<(BankId, RowId)>,
    ) {
        self.borrow_toggle[rank] = !self.borrow_toggle[rank];
        if !self.borrow_toggle[rank] {
            return;
        }
        let base = rank * self.geo.banks_per_rank();
        for i in 0..self.geo.banks_per_rank() {
            let flat = base + i;
            if let Some((row, _)) = self.att[flat].take_max() {
                self.counters[flat][row as usize] = 0;
                self.stats.borrowed_refreshes += 1;
                serviced.push((BankId::from_flat(flat, &self.geo), row));
            }
        }
    }

    fn counter_of(&self, bank: BankId, row: RowId) -> Option<u32> {
        Some(self.counters[bank.flat(&self.geo)][row as usize])
    }

    fn stats(&self) -> MitigationStats {
        self.stats
    }

    fn kind_name(&self) -> &'static str {
        "prac"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mech(nbo: u32) -> PracMechanism {
        PracMechanism::new(Geometry::tiny(), nbo, 4)
    }

    const B: BankId = BankId::new(0, 0, 0);

    #[test]
    fn counter_increments_on_precharge_not_activate() {
        let mut m = mech(100);
        assert!(!m.on_activate(B, 5, 0));
        assert_eq!(m.counter_of(B, 5), Some(0));
        assert!(!m.on_precharge(B, 5, 10));
        assert_eq!(m.counter_of(B, 5), Some(1));
    }

    #[test]
    fn backoff_asserted_at_threshold() {
        let mut m = mech(3);
        assert!(!m.on_precharge(B, 5, 0));
        assert!(!m.on_precharge(B, 5, 1));
        assert!(m.on_precharge(B, 5, 2));
        // Still over threshold on the next precharge (masking is the
        // controller's job).
        assert!(m.on_precharge(B, 5, 3));
        assert_eq!(m.stats().back_offs, 2);
    }

    #[test]
    fn rfm_services_hottest_row_and_resets() {
        let mut m = mech(100);
        for _ in 0..5 {
            m.on_precharge(B, 7, 0);
        }
        for _ in 0..3 {
            m.on_precharge(B, 9, 0);
        }
        let out = m.on_rfm(B, 10);
        assert_eq!(out.refreshed_aggressor, Some(7));
        assert_eq!(m.counter_of(B, 7), Some(0));
        assert_eq!(m.counter_of(B, 9), Some(3));
        // Next RFM picks the next hottest.
        assert_eq!(m.on_rfm(B, 11).refreshed_aggressor, Some(9));
        assert_eq!(m.on_rfm(B, 12).refreshed_aggressor, None);
    }

    #[test]
    fn borrowed_refresh_fires_every_other_ref() {
        let mut m = mech(100);
        m.on_precharge(B, 7, 0);
        let mut serviced = Vec::new();
        m.on_periodic_refresh(0, 100, &mut serviced);
        assert_eq!(serviced, vec![(B, 7)]);
        assert_eq!(m.counter_of(B, 7), Some(0));
        m.on_precharge(B, 8, 200);
        // Second REF: toggle off.
        serviced.clear();
        m.on_periodic_refresh(0, 300, &mut serviced);
        assert!(serviced.is_empty());
        // Third REF: on again.
        m.on_periodic_refresh(0, 400, &mut serviced);
        assert_eq!(serviced.len(), 1);
    }

    #[test]
    fn prac_never_claims_dynamic_backoff() {
        let m = mech(10);
        assert!(!m.alert_still_needed(0));
    }
}
